// Package sectorpack is a Go implementation of the directional-antenna
// sector-packing problem from Berman, Jeong, Kasiviswanathan and Urgaonkar,
// "Packing to angles and sectors" (SPAA 2007 / ECCC TR06-030).
//
// Customers sit on the plane with integer demands; a directional antenna
// with parameters (α, ρ, R) serves the sector of points at angles
// [α, α+ρ] within radius R, up to an integer capacity. The library chooses
// antenna orientations and a customer assignment maximizing served profit,
// in three variants: Sectors (the general problem), Angles (unbounded
// radii), and DisjointAngles (serving sectors must not overlap).
//
// This package is the public façade: it re-exports the model types and the
// solver suite so downstream users never import internal packages.
//
//	in := sectorpack.MustGenerate(sectorpack.GenConfig{
//	    Family: sectorpack.Uniform, Seed: 1, N: 200, M: 4,
//	    Variant: sectorpack.Sectors,
//	})
//	sol, err := sectorpack.SolveGreedy(context.Background(), in, sectorpack.Options{})
//
// See DESIGN.md for the algorithm inventory and EXPERIMENTS.md for the
// reproduction results.
package sectorpack

import (
	"context"

	"sectorpack/internal/angular"
	"sectorpack/internal/core"
	"sectorpack/internal/exact"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// Core model types (aliases, so values interoperate with the internals).
type (
	// Customer is a demand point on the plane.
	Customer = model.Customer
	// Antenna is a directional antenna with width, range and capacity.
	Antenna = model.Antenna
	// Instance is a complete problem instance.
	Instance = model.Instance
	// Assignment is an orientation-plus-ownership solution candidate.
	Assignment = model.Assignment
	// Solution pairs an assignment with its objective value.
	Solution = model.Solution
	// Variant selects the problem flavor (Sectors, Angles, DisjointAngles).
	Variant = model.Variant
	// Options tunes the approximation solvers.
	Options = core.Options
	// GenConfig describes a synthetic workload to generate.
	GenConfig = gen.Config
	// Family names a workload family.
	Family = gen.Family
)

// Problem variants.
const (
	// Sectors is the general problem: angle and radius both constrain.
	Sectors = model.Sectors
	// Angles is the pure angular problem (unbounded radii).
	Angles = model.Angles
	// DisjointAngles additionally requires serving sectors to be
	// pairwise interior-disjoint.
	DisjointAngles = model.DisjointAngles
)

// Workload families.
const (
	// Uniform scatters customers uniformly on a disk.
	Uniform = gen.Uniform
	// Hotspot clusters customers in a few angular hotspots.
	Hotspot = gen.Hotspot
	// Rings places customers on concentric rings.
	Rings = gen.Rings
	// Zipf draws heavy-tailed demands.
	Zipf = gen.Zipf
	// Adversarial embeds a greedy-killer knapsack gadget.
	Adversarial = gen.Adversarial
)

// Unassigned marks a customer served by no antenna.
const Unassigned = model.Unassigned

// SolveGreedy runs the successive best-window heuristic (the workhorse
// approximation; see internal/core.SolveGreedy).
func SolveGreedy(ctx context.Context, in *Instance, opt Options) (Solution, error) {
	return core.SolveGreedy(ctx, in, opt)
}

// SolveLocalSearch runs greedy plus reassignment/reorientation polish.
func SolveLocalSearch(ctx context.Context, in *Instance, opt Options) (Solution, error) {
	return core.SolveLocalSearch(ctx, in, opt)
}

// SolveLPRound runs greedy, then LP rounding of the assignment at the
// greedy orientations.
func SolveLPRound(ctx context.Context, in *Instance, opt Options) (Solution, error) {
	return core.SolveLPRound(ctx, in, opt)
}

// SolveUnitFlow solves unit-demand instances by max-flow b-matching; exact
// for a single antenna.
func SolveUnitFlow(ctx context.Context, in *Instance, opt Options) (Solution, error) {
	return core.SolveUnitFlow(ctx, in, opt)
}

// SolveDisjointDP solves the DisjointAngles variant exactly by the
// chain dynamic program (small antenna counts).
func SolveDisjointDP(ctx context.Context, in *Instance, opt Options) (Solution, error) {
	return angular.SolveDisjoint(ctx, in, opt.Knapsack)
}

// SolveAuto picks the strongest affordable solver for the instance (exact
// methods on small inputs, specialized solvers where they apply, greedy +
// local search otherwise); the chosen strategy is reported in
// Solution.Algorithm.
func SolveAuto(ctx context.Context, in *Instance, opt Options) (Solution, error) {
	return core.SolveAuto(ctx, in, opt)
}

// SolveExact computes the optimum of a small instance by exhaustive
// candidate-orientation enumeration; use only for calibration.
func SolveExact(ctx context.Context, in *Instance) (Solution, error) {
	return exact.Solve(ctx, in, exact.Limits{})
}

// Solve dispatches to a registered solver by name; see SolverNames.
func Solve(ctx context.Context, name string, in *Instance, opt Options) (Solution, error) {
	s, err := core.Get(name)
	if err != nil {
		return Solution{}, err
	}
	return s(ctx, in, opt)
}

// SolverNames lists the registered solver names.
func SolverNames() []string { return core.Names() }

// BatchResult is one SolveBatch item's outcome: a verified solution or a
// typed error, never both.
type BatchResult = core.BatchResult

// SolveBatch solves every instance concurrently on a bounded worker pool
// with the named solver, returning per-item results aligned with the
// input; a failing item errors in its own slot while the rest proceed.
// See internal/core.SolveBatch for per-item deadlines and hedged batches.
func SolveBatch(ctx context.Context, name string, ins []*Instance, opt Options) ([]BatchResult, error) {
	s, err := core.Get(name)
	if err != nil {
		return nil, err
	}
	return core.SolveBatch(ctx, ins, s, core.BatchOptions{Options: opt, SolverName: name}), nil
}

// Fail-soft pipeline errors (aliases into internal/core).
type (
	// PanicError is a solver panic converted into an error by the fail-soft
	// pipeline; it carries the panic value and the captured stack.
	PanicError = core.PanicError
	// InvalidSolutionError reports solver output rejected by the post-solve
	// feasibility gate (missing assignment, Check failure, or a profit that
	// does not recompute).
	InvalidSolutionError = core.InvalidSolutionError
)

// SolveHedged dispatches to the named solver hedged by the greedy safety
// net: when the primary times out, errors, panics, or returns an invalid
// assignment, the greedy solution is returned instead, annotated with
// Degraded/SolverUsed/FallbackReason provenance. A healthy primary's
// solution is bit-identical to Solve. See internal/core.SolveHedged for
// the full contract (custom fallbacks, grace tuning).
func SolveHedged(ctx context.Context, name string, in *Instance, opt Options) (Solution, error) {
	s, err := core.Get(name)
	if err != nil {
		return Solution{}, err
	}
	return core.SolveHedged(ctx, in, s, core.HedgeOptions{Options: opt, PrimaryName: name})
}

// UpperBound returns a certified upper bound on the optimal profit (the
// cheap per-antenna Dantzig bound, clipped by the total profit).
func UpperBound(in *Instance) float64 { return core.UpperBound(in) }

// ConfigLPBound returns the tighter orientation-relaxed configuration-LP
// upper bound; costlier (a dense LP solve) but never looser than
// UpperBound. See internal/core.ConfigLPBound for the formulation.
func ConfigLPBound(in *Instance) (float64, error) { return core.ConfigLPBound(in) }

// Generate builds a synthetic instance from the config.
func Generate(cfg GenConfig) (*Instance, error) { return gen.Generate(cfg) }

// MustGenerate is Generate that panics on error (static configs).
func MustGenerate(cfg GenConfig) *Instance { return gen.MustGenerate(cfg) }
