#!/usr/bin/env bash
# Fleet SLO smoke: boot two sectord shards behind sectorproxy, drive the
# real HTTP path with sectorload, and gate on the fleet objectives —
# no non-shed 5xx or transport failures, p99 under the threshold, and
# every sampled proxied answer identical to a direct backend solve.
#
# Usage: scripts/slo_smoke.sh [report.json]
set -euo pipefail
cd "$(dirname "$0")/.."

REPORT="${1:-slo_report.json}"
DURATION="${SLO_DURATION:-15s}"
RPS="${SLO_RPS:-60}"
MAX_P99_MS="${SLO_MAX_P99_MS:-2000}"

BIN="$(mktemp -d)"
B0=18481 B1=18482 FRONT=18480
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/sectord ./cmd/sectorproxy ./cmd/sectorload

wait_healthy() {
  for _ in $(seq 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "slo_smoke: $1 never became healthy" >&2
  return 1
}

"$BIN/sectord" -addr "localhost:$B0" -shard s0 &
pids+=($!)
"$BIN/sectord" -addr "localhost:$B1" -shard s1 &
pids+=($!)
wait_healthy "http://localhost:$B0"
wait_healthy "http://localhost:$B1"

"$BIN/sectorproxy" -addr "localhost:$FRONT" \
  -backends "http://localhost:$B0,http://localhost:$B1" &
pids+=($!)
wait_healthy "http://localhost:$FRONT"

# Open-loop load through the proxy; -verify replays sampled solves against
# shard s0 directly, so a routing layer that edits answers fails the gate.
# No -max-error-rate means ANY non-shed 5xx or transport failure fails.
"$BIN/sectorload" \
  -url "http://localhost:$FRONT" \
  -mode open -rps "$RPS" -duration "$DURATION" \
  -verify "http://localhost:$B0" \
  -max-p99 "$MAX_P99_MS" \
  -report "$REPORT"

echo "slo_smoke: fleet met its SLO; report in $REPORT"
