package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesOrder(t *testing.T) {
	jobs := make([]Job[int], 100)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	res, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range res {
		if r != i*i {
			t.Fatalf("result %d = %d, want %d", i, r, i*i)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run[int](context.Background(), nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
}

func TestRunErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int32
	jobs := make([]Job[int], 200)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			executed.Add(1)
			if i == 3 {
				return 0, boom
			}
			// Simulate work so cancellation has time to take effect.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		}
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if n := executed.Load(); n == 200 {
		t.Error("cancellation should have skipped some jobs")
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job[int]{func(context.Context) (int, error) { return 1, nil }}
	_, err := Run(ctx, jobs, Options{})
	if err == nil {
		t.Fatal("cancelled context must surface as an error")
	}
}

func TestRunWorkerCap(t *testing.T) {
	var inFlight, peak atomic.Int32
	jobs := make([]Job[int], 50)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return 0, nil
		}
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: 3}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds worker cap 3", p)
	}
}

func TestMap(t *testing.T) {
	inputs := []int{1, 2, 3, 4}
	out, err := Map(context.Background(), inputs, func(_ context.Context, x int) (string, error) {
		return fmt.Sprintf("v%d", x), nil
	}, Options{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	want := []string{"v1", "v2", "v3", "v4"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	jobs := []Job[int]{
		func(context.Context) (int, error) { time.Sleep(5 * time.Millisecond); return 0, errA },
		func(context.Context) (int, error) { return 0, errB },
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 2})
	// Lowest job index wins regardless of completion order.
	if !errors.Is(err, errA) {
		t.Fatalf("want errA (lowest index), got %v", err)
	}
}
