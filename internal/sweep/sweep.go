// Package sweep runs experiment workloads in parallel: a fixed pool of
// workers (GOMAXPROCS by default) drains a queue of deterministic jobs and
// collects results in submission order, so experiment tables are
// reproducible regardless of scheduling. Cancellation flows through a
// context; the first job error aborts the sweep.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job is one unit of work; Run must be safe to call concurrently with
// other jobs' Run (jobs share nothing mutable).
type Job[T any] func(ctx context.Context) (T, error)

// Options tunes Run.
type Options struct {
	// Workers is the pool size; zero means GOMAXPROCS.
	Workers int
}

// Run executes the jobs on a worker pool and returns their results in the
// order the jobs were given. The first error cancels the remaining jobs
// and is returned (wrapped with its job index).
func Run[T any](ctx context.Context, jobs []Job[T], opt Options) ([]T, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type failure struct {
		idx int
		err error
	}
	var (
		mu    sync.Mutex
		first *failure
	)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				if ctx.Err() != nil {
					continue // drain remaining indices after cancellation
				}
				res, err := jobs[idx](ctx)
				if err != nil {
					mu.Lock()
					if first == nil || idx < first.idx {
						first = &failure{idx: idx, err: err}
					}
					mu.Unlock()
					cancel()
					continue
				}
				results[idx] = res
			}
		}()
	}
	for idx := range jobs {
		idxCh <- idx
	}
	close(idxCh)
	wg.Wait()

	if first != nil {
		return nil, fmt.Errorf("sweep: job %d: %w", first.idx, first.err)
	}
	// Only an external cancellation can leave ctx done without a recorded
	// failure (our own cancel fires solely on job errors).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Map is a convenience wrapper: it applies f to every input in parallel.
func Map[In, Out any](ctx context.Context, inputs []In, f func(context.Context, In) (Out, error), opt Options) ([]Out, error) {
	jobs := make([]Job[Out], len(inputs))
	for i := range inputs {
		in := inputs[i]
		jobs[i] = func(ctx context.Context) (Out, error) { return f(ctx, in) }
	}
	return Run(ctx, jobs, opt)
}
