// Package sweep runs experiment workloads in parallel: a fixed pool of
// workers (GOMAXPROCS by default) drains a queue of deterministic jobs and
// collects results in submission order, so experiment tables are
// reproducible regardless of scheduling. Cancellation flows through a
// context; the first job error aborts the sweep.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one unit of work; Run must be safe to call concurrently with
// other jobs' Run (jobs share nothing mutable).
type Job[T any] func(ctx context.Context) (T, error)

// Options tunes Run.
type Options struct {
	// Workers is the pool size; zero means GOMAXPROCS.
	Workers int
}

// Run executes the jobs on a worker pool and returns their results in the
// order the jobs were given. The first error cancels the remaining jobs
// and is returned (wrapped with its job index).
//
// Work is dispatched by a chunked atomic counter rather than a feed
// channel: each worker claims a contiguous block of job indices with one
// atomic add, so the dispatcher costs a few nanoseconds per chunk instead
// of a channel handoff (and a blocked feeding goroutine) per job. Chunks
// keep counter contention negligible for fine-grained jobs while staying
// small enough — at most 1/(8·workers) of the queue — to load-balance
// uneven job costs.
func Run[T any](ctx context.Context, jobs []Job[T], opt Options) ([]T, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type failure struct {
		idx int
		err error
	}
	var (
		mu    sync.Mutex
		first *failure
	)
	chunk := len(jobs) / (8 * workers)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				base := int(next.Add(int64(chunk))) - chunk
				if base >= len(jobs) {
					return
				}
				end := base + chunk
				if end > len(jobs) {
					end = len(jobs)
				}
				for idx := base; idx < end; idx++ {
					if ctx.Err() != nil {
						continue // skip remaining indices after cancellation
					}
					res, err := jobs[idx](ctx)
					if err != nil {
						mu.Lock()
						if first == nil || idx < first.idx {
							first = &failure{idx: idx, err: err}
						}
						mu.Unlock()
						cancel()
						continue
					}
					results[idx] = res
				}
			}
		}()
	}
	wg.Wait()

	if first != nil {
		return nil, fmt.Errorf("sweep: job %d: %w", first.idx, first.err)
	}
	// Only an external cancellation can leave ctx done without a recorded
	// failure (our own cancel fires solely on job errors).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Map is a convenience wrapper: it applies f to every input in parallel.
func Map[In, Out any](ctx context.Context, inputs []In, f func(context.Context, In) (Out, error), opt Options) ([]Out, error) {
	jobs := make([]Job[Out], len(inputs))
	for i := range inputs {
		in := inputs[i]
		jobs[i] = func(ctx context.Context) (Out, error) { return f(ctx, in) }
	}
	return Run(ctx, jobs, opt)
}
