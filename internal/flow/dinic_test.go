package flow

import (
	"math/rand"
	"testing"
)

func mustEdge(t *testing.T, g *Network, u, v int, c int64) int {
	t.Helper()
	h, err := g.AddEdge(u, v, c)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d,%d): %v", u, v, c, err)
	}
	return h
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example with max flow 23.
	g := NewNetwork(6, 10)
	s := g.AddNode()
	v1, v2, v3, v4 := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	tk := g.AddNode()
	mustEdge(t, g, s, v1, 16)
	mustEdge(t, g, s, v2, 13)
	mustEdge(t, g, v1, v3, 12)
	mustEdge(t, g, v2, v1, 4)
	mustEdge(t, g, v2, v4, 14)
	mustEdge(t, g, v3, v2, 9)
	mustEdge(t, g, v3, tk, 20)
	mustEdge(t, g, v4, v3, 7)
	mustEdge(t, g, v4, tk, 4)
	got, err := g.MaxFlow(s, tk)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if got != 23 {
		t.Fatalf("max flow = %d, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewNetwork(2, 0)
	s, tk := g.AddNode(), g.AddNode()
	got, err := g.MaxFlow(s, tk)
	if err != nil || got != 0 {
		t.Fatalf("flow = %d err = %v, want 0", got, err)
	}
}

func TestSingleEdge(t *testing.T) {
	g := NewNetwork(2, 1)
	s, tk := g.AddNode(), g.AddNode()
	h := mustEdge(t, g, s, tk, 7)
	got, _ := g.MaxFlow(s, tk)
	if got != 7 {
		t.Fatalf("flow = %d, want 7", got)
	}
	if g.Flow(h) != 7 {
		t.Fatalf("edge flow = %d, want 7", g.Flow(h))
	}
}

func TestErrors(t *testing.T) {
	g := NewNetwork(2, 1)
	s := g.AddNode()
	if _, err := g.AddEdge(s, 5, 1); err == nil {
		t.Error("unknown node must error")
	}
	if _, err := g.AddEdge(s, s, -1); err == nil {
		t.Error("negative capacity must error")
	}
	if _, err := g.MaxFlow(s, s); err == nil {
		t.Error("s == t must error")
	}
	if _, err := g.MaxFlow(s, 9); err == nil {
		t.Error("out-of-range sink must error")
	}
}

func TestAddNodes(t *testing.T) {
	g := NewNetwork(0, 0)
	first := g.AddNodes(5)
	if first != 0 || g.NumNodes() != 5 {
		t.Fatalf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
}

// bipartiteBrute computes maximum bipartite matching by augmenting DFS —
// an independent oracle for the unit-capacity case.
func bipartiteBrute(nL, nR int, adj [][]int) int {
	matchR := make([]int, nR)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] < 0 || try(matchR[v], seen) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	count := 0
	for u := 0; u < nL; u++ {
		seen := make([]bool, nR)
		if try(u, seen) {
			count++
		}
	}
	return count
}

func TestBipartiteMatchingAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(8)
		adj := make([][]int, nL)
		g := NewNetwork(nL+nR+2, nL*nR+nL+nR)
		s := g.AddNode()
		left := g.AddNodes(nL)
		right := g.AddNodes(nR)
		tk := g.AddNode()
		for u := 0; u < nL; u++ {
			mustEdge(t, g, s, left+u, 1)
			for v := 0; v < nR; v++ {
				if rng.Float64() < 0.4 {
					adj[u] = append(adj[u], v)
					mustEdge(t, g, left+u, right+v, 1)
				}
			}
		}
		for v := 0; v < nR; v++ {
			mustEdge(t, g, right+v, tk, 1)
		}
		want := int64(bipartiteBrute(nL, nR, adj))
		got, err := g.MaxFlow(s, tk)
		if err != nil {
			t.Fatalf("MaxFlow: %v", err)
		}
		if got != want {
			t.Fatalf("matching = %d, want %d", got, want)
		}
	}
}

// TestFlowConservation checks that on random networks the computed flow is
// conserved at internal nodes and respects capacities, and that the min-cut
// capacity equals the flow value (strong duality certificate).
func TestFlowConservationAndMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		g := NewNetwork(n, n*n/2)
		for i := 0; i < n; i++ {
			g.AddNode()
		}
		type eh struct{ u, v, h int }
		var handles []eh
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.3 {
					h := mustEdge(t, g, u, v, rng.Int63n(20)+1)
					handles = append(handles, eh{u, v, h})
				}
			}
		}
		s, tk := 0, n-1
		val, err := g.MaxFlow(s, tk)
		if err != nil {
			t.Fatalf("MaxFlow: %v", err)
		}
		// conservation
		net := make([]int64, n)
		for _, e := range handles {
			f := g.Flow(e.h)
			if f < 0 {
				t.Fatalf("negative flow %d on edge %d->%d", f, e.u, e.v)
			}
			net[e.u] -= f
			net[e.v] += f
		}
		for i := 0; i < n; i++ {
			if i == s || i == tk {
				continue
			}
			if net[i] != 0 {
				t.Fatalf("conservation violated at node %d: %d", i, net[i])
			}
		}
		if net[tk] != val || net[s] != -val {
			t.Fatalf("endpoint imbalance: s=%d t=%d val=%d", net[s], net[tk], val)
		}
		// min cut certificate
		reach := g.MinCutReachable(s)
		if reach[tk] {
			t.Fatal("sink reachable in residual graph after max flow")
		}
		var cutCap int64
		for _, e := range handles {
			if reach[e.u] && !reach[e.v] {
				cutCap += g.edges[e.h].orig
			}
		}
		if cutCap != val {
			t.Fatalf("cut capacity %d != flow value %d", cutCap, val)
		}
	}
}
