// Package flow implements Dinic's maximum-flow algorithm on integer-capacity
// networks. Sector packing uses it for the UNIT variant: with orientations
// fixed, serving unit-demand customers is a bipartite b-matching between
// customers and antennas, which is a unit-capacity flow problem that Dinic
// solves exactly in O(E·√V).
package flow

import (
	"fmt"
	"math"
)

// Network is a directed flow network under construction. Nodes are dense
// integer ids created by AddNode; edges carry int64 capacities.
type Network struct {
	// adjacency: per node, indices into edges
	adj   [][]int32
	edges []edge
}

type edge struct {
	to   int32
	cap  int64 // residual capacity
	orig int64 // original capacity (for flow reporting)
}

// NewNetwork returns an empty network with capacity hints for nodes/edges.
func NewNetwork(nodeHint, edgeHint int) *Network {
	return &Network{
		adj:   make([][]int32, 0, nodeHint),
		edges: make([]edge, 0, 2*edgeHint),
	}
}

// AddNode creates a node and returns its id.
func (g *Network) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddNodes creates k nodes and returns the id of the first.
func (g *Network) AddNodes(k int) int {
	first := len(g.adj)
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, nil)
	}
	return first
}

// NumNodes returns the current node count.
func (g *Network) NumNodes() int { return len(g.adj) }

// AddEdge adds a directed edge u→v with the given capacity (and an implicit
// residual reverse edge of capacity zero). It returns an edge handle usable
// with Flow after solving.
func (g *Network) AddEdge(u, v int, capacity int64) (int, error) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return 0, fmt.Errorf("flow: edge (%d,%d) references unknown node (have %d)", u, v, len(g.adj))
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: negative capacity %d on edge (%d,%d)", capacity, u, v)
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: capacity, orig: capacity})
	g.edges = append(g.edges, edge{to: int32(u), cap: 0, orig: 0})
	g.adj[u] = append(g.adj[u], int32(id))
	g.adj[v] = append(g.adj[v], int32(id+1))
	return id, nil
}

// Flow returns the flow pushed through the edge handle returned by AddEdge.
func (g *Network) Flow(handle int) int64 {
	return g.edges[handle].orig - g.edges[handle].cap
}

// MaxFlow computes the maximum s→t flow, mutating the network's residual
// capacities. Calling it twice continues from the previous residual state,
// so a fresh computation needs a fresh network.
func (g *Network) MaxFlow(s, t int) (int64, error) {
	if s < 0 || s >= len(g.adj) || t < 0 || t >= len(g.adj) {
		return 0, fmt.Errorf("flow: source %d or sink %d out of range (have %d nodes)", s, t, len(g.adj))
	}
	if s == t {
		return 0, fmt.Errorf("flow: source equals sink")
	}
	level := make([]int32, len(g.adj))
	iter := make([]int, len(g.adj))
	queue := make([]int32, 0, len(g.adj))
	var total int64
	for g.bfs(s, t, level, &queue) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := g.dfs(s, t, math.MaxInt64, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total, nil
}

// bfs builds the level graph; returns whether t is reachable.
func (g *Network) bfs(s, t int, level []int32, queue *[]int32) bool {
	for i := range level {
		level[i] = -1
	}
	q := (*queue)[:0]
	level[s] = 0
	q = append(q, int32(s))
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, eid := range g.adj[u] {
			e := &g.edges[eid]
			if e.cap > 0 && level[e.to] < 0 {
				level[e.to] = level[u] + 1
				q = append(q, e.to)
			}
		}
	}
	*queue = q[:0]
	return level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (g *Network) dfs(u, t int, limit int64, level []int32, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(g.adj[u]); iter[u]++ {
		eid := g.adj[u][iter[u]]
		e := &g.edges[eid]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		send := limit
		if e.cap < send {
			send = e.cap
		}
		pushed := g.dfs(int(e.to), t, send, level, iter)
		if pushed > 0 {
			e.cap -= pushed
			g.edges[eid^1].cap += pushed
			return pushed
		}
	}
	return 0
}

// MinCutReachable returns the set of nodes reachable from s in the residual
// graph after MaxFlow; the edges from this set to its complement form a
// minimum cut. Useful for verifying optimality in tests.
func (g *Network) MinCutReachable(s int) []bool {
	seen := make([]bool, len(g.adj))
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			if e.cap > 0 && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, int(e.to))
			}
		}
	}
	return seen
}
