package core

import (
	"context"
	"fmt"
	"runtime/debug"

	"sectorpack/internal/model"
)

// PanicError is a solver panic converted into an error by SafeSolve: the
// serving layer must degrade, not die, so a crashing solver surfaces as a
// value the pipeline can route (500, fallback, counter) while the captured
// stack keeps the bug debuggable.
type PanicError struct {
	// Solver is the registry name of the panicking solver, when known.
	Solver string
	// Value is the value passed to panic().
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Solver != "" {
		return fmt.Sprintf("core: solver %q panicked: %v", e.Solver, e.Value)
	}
	return fmt.Sprintf("core: solver panicked: %v", e.Value)
}

// InvalidSolutionError is a solver output rejected by the post-solve
// feasibility gate (VerifySolution): the assignment fails
// (*model.Assignment).Check or the reported profit does not match it.
type InvalidSolutionError struct {
	Solver string
	Err    error
}

func (e *InvalidSolutionError) Error() string {
	return fmt.Sprintf("core: solver %q returned an invalid solution: %v", e.Solver, e.Err)
}

func (e *InvalidSolutionError) Unwrap() error { return e.Err }

// SafeSolve runs s with panic isolation: a panic inside the solver is
// recovered and returned as a *PanicError carrying the stack, instead of
// unwinding into the caller. Non-panicking runs are byte-identical to
// calling s directly — the wrapper adds only a deferred recover.
func SafeSolve(ctx context.Context, in *model.Instance, opt Options, s Solver, name string) (sol model.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol = model.Solution{}
			err = &PanicError{Solver: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return s(ctx, in, opt)
}

// Safe wraps a solver in SafeSolve under the given name. The registry
// applies it to every solver it hands out, so no Get-resolved solver can
// take down its caller by panicking.
func Safe(name string, s Solver) Solver {
	return func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		return SafeSolve(ctx, in, opt, s, name)
	}
}

// VerifySolution is the post-solve feasibility gate: it rejects a solution
// whose assignment is missing, fails (*model.Assignment).Check against the
// instance, or whose reported profit disagrees with the assignment. The
// serving layer runs it on every solver output before serving, so a buggy
// solver yields an *InvalidSolutionError rather than an infeasible answer.
func VerifySolution(solver string, in *model.Instance, sol model.Solution) error {
	if sol.Assignment == nil {
		return &InvalidSolutionError{Solver: solver, Err: fmt.Errorf("solution has no assignment")}
	}
	if err := sol.Assignment.Check(in); err != nil {
		return &InvalidSolutionError{Solver: solver, Err: err}
	}
	if got := sol.Assignment.Profit(in); got != sol.Profit {
		return &InvalidSolutionError{Solver: solver, Err: fmt.Errorf("reported profit %d but assignment recomputes to %d", sol.Profit, got)}
	}
	return nil
}
