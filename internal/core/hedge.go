package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sectorpack/internal/model"
)

// FallbackReason values recorded in model.Solution.FallbackReason by
// SolveHedged when the primary solver fails and the fallback answers.
const (
	// FallbackDeadline: the primary ran out of time (context deadline or
	// cancellation).
	FallbackDeadline = "deadline"
	// FallbackPanic: the primary panicked (see *PanicError).
	FallbackPanic = "panic"
	// FallbackInvalid: the primary returned an assignment rejected by the
	// post-solve VerifySolution gate.
	FallbackInvalid = "invalid"
	// FallbackError: the primary returned any other error.
	FallbackError = "error"
)

// DefaultFallbackGrace bounds how long SolveHedged waits for the fallback
// leg after the primary has failed, when HedgeOptions leaves it zero.
const DefaultFallbackGrace = time.Second

// HedgeOptions tunes SolveHedged.
type HedgeOptions struct {
	// Options is passed to both the primary and the fallback solver.
	Options
	// PrimaryName labels the primary solver in provenance and errors.
	PrimaryName string
	// Fallback is the safety-net solver; nil means SolveGreedy, the
	// microsecond-scale workhorse at the bottom of the quality ladder.
	Fallback Solver
	// FallbackName labels the fallback; empty means "greedy" when Fallback
	// is nil, "fallback" otherwise.
	FallbackName string
	// FallbackGrace bounds the wait for a still-running fallback after the
	// primary has already failed; zero means DefaultFallbackGrace. The
	// grace matters only when the fallback is slower than the primary's
	// failure — the common case is the fallback finishing long before.
	FallbackGrace time.Duration
}

func (h HedgeOptions) fallback() (Solver, string) {
	s, name := h.Fallback, h.FallbackName
	if s == nil {
		s = SolveGreedy
		if name == "" {
			name = "greedy"
		}
	}
	if name == "" {
		name = "fallback"
	}
	return s, name
}

func (h HedgeOptions) grace() time.Duration {
	if h.FallbackGrace <= 0 {
		return DefaultFallbackGrace
	}
	return h.FallbackGrace
}

// hedgeResult carries one leg's outcome across its goroutine boundary.
type hedgeResult struct {
	sol model.Solution
	err error
}

// SolveHedged races the primary solver against a fallback safety net and
// degrades instead of failing: when the primary times out, errors,
// panics, or returns an invalid assignment, the fallback's solution is
// returned annotated with Degraded/SolverUsed/FallbackReason provenance.
//
// Both legs run under SafeSolve (panics become errors) and behind the
// VerifySolution gate (invalid output is a failure, never an answer). The
// fallback leg is detached from ctx's cancellation — a primary deadline
// must not kill the safety net — but is cancelled as soon as SolveHedged
// returns, and its wait after a primary failure is bounded by
// FallbackGrace.
//
// When the primary succeeds, its solution is returned with only SolverUsed
// stamped: value and assignment are bit-identical to calling the primary
// directly. When both legs fail, the joined errors are returned, so
// errors.Is(err, context.DeadlineExceeded) still detects a timed-out solve.
func SolveHedged(ctx context.Context, in *model.Instance, primary Solver, hopt HedgeOptions) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	fallback, fallbackName := hopt.fallback()
	primaryName := hopt.PrimaryName
	if primaryName == "" {
		primaryName = "primary"
	}

	// The fallback leg survives ctx's deadline (that is its whole point)
	// but dies with SolveHedged: fcancel fires on every return path.
	fctx, fcancel := context.WithCancel(context.WithoutCancel(ctx))
	defer fcancel()
	fallbackCh := make(chan hedgeResult, 1)
	go func() {
		sol, err := SafeSolve(fctx, in, hopt.Options, fallback, fallbackName)
		if err == nil {
			err = VerifySolution(fallbackName, in, sol)
		}
		fallbackCh <- hedgeResult{sol, err}
	}()

	primaryCh := make(chan hedgeResult, 1)
	go func() {
		sol, err := SafeSolve(ctx, in, hopt.Options, primary, primaryName)
		if err == nil {
			err = VerifySolution(primaryName, in, sol)
		}
		primaryCh <- hedgeResult{sol, err}
	}()

	var pres hedgeResult
	select {
	case pres = <-primaryCh:
	case <-ctx.Done():
		// A hung primary may never notice the cancellation; do not wait
		// for it. Its goroutine parks on the buffered channel and is
		// collected whenever it eventually returns.
		pres = hedgeResult{err: ctx.Err()}
	}
	if pres.err == nil {
		sol := pres.sol
		sol.SolverUsed = primaryName
		return sol, nil
	}
	reason := classifyFailure(pres.err)

	// Primary failed: collect the fallback. If it was already done the
	// hedge "won" — the degraded answer is ready at the deadline with no
	// added latency. Otherwise wait out the grace, then cancel it and give
	// it one more grace period to unwind (every well-behaved solver
	// returns promptly on cancellation).
	fres, win := awaitFallback(fallbackCh, fcancel, hopt.grace())
	if fres.err != nil {
		return model.Solution{}, errors.Join(
			fmt.Errorf("hedged solve: primary %q failed: %w", primaryName, pres.err),
			fmt.Errorf("fallback %q failed: %w", fallbackName, fres.err),
		)
	}
	sol := fres.sol
	sol.Degraded = true
	sol.SolverUsed = fallbackName
	sol.FallbackReason = reason
	sol.FallbackDetail = pres.err.Error()
	sol.HedgeWin = win
	return sol, nil
}

// awaitFallback collects the fallback leg's result after a primary
// failure. The returned bool reports a hedge win: the fallback had already
// finished when the primary failed.
func awaitFallback(ch <-chan hedgeResult, cancel context.CancelFunc, grace time.Duration) (hedgeResult, bool) {
	select {
	case res := <-ch:
		return res, true
	default:
	}
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res, false
	case <-timer.C:
	}
	cancel()
	timer.Reset(grace)
	select {
	case res := <-ch:
		return res, false
	case <-timer.C:
		return hedgeResult{err: fmt.Errorf("fallback did not return within %v of cancellation", grace)}, false
	}
}

// classifyFailure maps a primary-leg error to its FallbackReason.
func classifyFailure(err error) string {
	var pe *PanicError
	var ie *InvalidSolutionError
	switch {
	case errors.As(err, &pe):
		return FallbackPanic
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return FallbackDeadline
	case errors.As(err, &ie):
		return FallbackInvalid
	default:
		return FallbackError
	}
}
