package core

import (
	"context"
	"math"
	"math/rand"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// AnnealSteps is the default Metropolis step budget of SolveAnneal.
const AnnealSteps = 20_000

// SolveAnneal refines the greedy solution by simulated annealing over the
// joint orientation/assignment space. Two move kinds alternate:
//
//   - reassign: a random uncovered-or-covered customer is inserted into,
//     moved between, or evicted from antennas whose current sector covers
//     it (capacity permitting);
//   - reorient: a random antenna jumps to a random candidate orientation
//     and re-solves its knapsack over its own plus the unassigned
//     customers (other antennas' assignments are untouched).
//
// Acceptance follows the Metropolis rule on the profit delta with a
// geometric cooling schedule; the best solution ever visited is returned,
// so the result never falls below greedy. Deterministic in Options.Seed.
//
// DisjointAngles: reorientation candidates that would overlap another
// serving sector are rejected, preserving feasibility throughout.
//
// Cancellation: ctx is checked once per Metropolis step; a cancelled solve
// returns ctx.Err() and discards the annealing state.
func SolveAnneal(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	sol, err := SolveGreedy(ctx, in, opt)
	if err != nil {
		return model.Solution{}, err
	}
	sol.Algorithm = "anneal"
	n, m := in.N(), in.M()
	if n == 0 || m == 0 {
		return sol, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5ee7))

	cur := sol.Assignment.Clone()
	curProfit := sol.Profit
	best := cur.Clone()
	bestProfit := curProfit
	load := cur.Load(in)

	// Candidate orientations per antenna, shared across steps, built over
	// one columnar view with the per-antenna work fanned out.
	cands, err := angular.CandidatesAll(ctx, in)
	if err != nil {
		return model.Solution{}, err
	}

	temp := initialTemp(in)
	cooling := math.Pow(1e-3, 1.0/float64(AnnealSteps)) // temp decays to 0.1% over the run

	accept := func(delta int64) bool {
		if delta >= 0 {
			return true
		}
		if temp <= 0 {
			return false
		}
		return rng.Float64() < math.Exp(float64(delta)/temp)
	}

	for step := 0; step < AnnealSteps; step++ {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		temp *= cooling
		if rng.Intn(3) < 2 { // 2/3 reassign, 1/3 reorient
			i := rng.Intn(n)
			c := in.Customers[i]
			from := cur.Owner[i]
			// Choose a target: a covering antenna with room, or eviction.
			j := rng.Intn(m + 1)
			if j == m { // eviction
				if from == model.Unassigned {
					continue
				}
				if accept(-c.Profit) {
					cur.Owner[i] = model.Unassigned
					load[from] -= c.Demand
					curProfit -= c.Profit
				}
				continue
			}
			if j == from || !in.Antennas[j].Covers(cur.Orientation[j], c) {
				continue
			}
			if in.Variant == model.DisjointAngles && !usedBy(cur, j) {
				continue // idle antennas hold no cleared sector
			}
			if load[j]+c.Demand > in.Antennas[j].Capacity {
				continue
			}
			var delta int64
			if from == model.Unassigned {
				delta = c.Profit
			}
			if accept(delta) {
				if from != model.Unassigned {
					load[from] -= c.Demand
				}
				cur.Owner[i] = j
				load[j] += c.Demand
				curProfit += delta
			}
		} else {
			j := rng.Intn(m)
			if len(cands[j]) == 0 {
				continue
			}
			alpha := cands[j][rng.Intn(len(cands[j]))]
			if in.Variant == model.DisjointAngles && overlapsServing(in, cur, j, alpha) {
				continue
			}
			// Re-solve antenna j's knapsack over its customers plus the pool.
			active := make([]bool, n)
			var released int64
			for i, owner := range cur.Owner {
				if owner == model.Unassigned || owner == j {
					active[i] = true
					if owner == j {
						released += in.Customers[i].Profit
					}
				}
			}
			items, ids := angular.WindowItems(in, j, alpha, active)
			var take []int
			var gained int64
			if len(items) > 0 {
				res, _, err := knapsack.Solve(items, in.Antennas[j].Capacity, opt.Knapsack)
				if err != nil {
					return model.Solution{}, err
				}
				gained = res.Profit
				for k, tk := range res.Take {
					if tk {
						take = append(take, ids[k])
					}
				}
			}
			if accept(gained - released) {
				for i, owner := range cur.Owner {
					if owner == j {
						cur.Owner[i] = model.Unassigned
					}
				}
				cur.Orientation[j] = alpha
				var l int64
				for _, i := range take {
					cur.Owner[i] = j
					l += in.Customers[i].Demand
				}
				load[j] = l
				curProfit += gained - released
			}
		}
		if curProfit > bestProfit {
			bestProfit = curProfit
			best = cur.Clone()
		}
	}
	if bestProfit > sol.Profit {
		sol.Assignment = best
		sol.Profit = bestProfit
	}
	return sol, nil
}

// initialTemp scales the starting temperature to the demand landscape: a
// few median-profit moves should be freely acceptable at the start.
func initialTemp(in *model.Instance) float64 {
	var sum int64
	for _, c := range in.Customers {
		sum += c.Profit
	}
	if in.N() == 0 {
		return 1
	}
	return 2 * float64(sum) / float64(in.N())
}

// overlapsServing reports whether orienting antenna j at alpha would
// overlap another serving sector's interior.
func overlapsServing(in *model.Instance, as *model.Assignment, j int, alpha float64) bool {
	iv := geom.NewInterval(alpha, in.Antennas[j].Rho)
	for k := range in.Antennas {
		if k == j || !usedBy(as, k) {
			continue
		}
		if iv.InteriorsOverlap(geom.NewInterval(as.Orientation[k], in.Antennas[k].Rho)) {
			return true
		}
	}
	return false
}
