package core

import (
	"context"
	"strings"
	"testing"

	"sectorpack/internal/model"
)

// rayInstance builds an instance containing one zero-width antenna aimed
// at a customer cluster: customer 0 sits exactly on a reachable angle,
// customer 1 is off-axis from everything relevant. Variant-appropriate
// shapes keep every registered solver in its supported domain.
func rayInstance(variant model.Variant) *model.Instance {
	in := &model.Instance{
		Name:    "ray-regression",
		Variant: variant,
		Customers: []model.Customer{
			{Theta: 1.0, R: 2, Demand: 1},
			{Theta: 2.5, R: 2, Demand: 1},
			{Theta: 4.0, R: 2, Demand: 1},
		},
		Antennas: []model.Antenna{
			{Rho: 0, Capacity: 2},   // the degenerate ray
			{Rho: 1.2, Capacity: 2}, // a regular sector
		},
	}
	if variant == model.Sectors {
		for j := range in.Antennas {
			in.Antennas[j].Range = 5
		}
	}
	return in.Normalize()
}

// TestZeroWidthRayAllSolvers is the regression test for the zero-width
// inconsistency: every registered solver must accept Rho == 0 antennas,
// treat them as degenerate rays (serving only exactly-aligned customers),
// and return a feasible assignment. Before the fix, greedy served
// zero-width antennas, SolveDisjoint rejected them, and SolveAuto refused
// to dispatch.
func TestZeroWidthRayAllSolvers(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "test-") {
			continue // misbehaving solvers injected by the fault harness
		}
		solver, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []model.Variant{model.Sectors, model.Angles, model.DisjointAngles} {
			if name == "disjoint-dp" && variant != model.DisjointAngles {
				continue // disjoint-dp only supports its own variant
			}
			if name == "unitflow" && variant == model.DisjointAngles {
				continue // unitflow does not support disjointness
			}
			in := rayInstance(variant)
			sol, err := solver(context.Background(), in, Options{Seed: 1})
			if err != nil {
				t.Errorf("%s/%v: rejected zero-width antenna: %v", name, variant, err)
				continue
			}
			checkSolution(t, in, sol)
			// The ray may only serve customers exactly aligned with its
			// orientation. Assignment.Check enforces coverage, so any
			// customer owned by antenna 0 must sit on its axis; assert it
			// explicitly anyway since this is the semantic under test.
			for i, owner := range sol.Assignment.Owner {
				if owner == 0 && !in.Antennas[0].Covers(sol.Assignment.Orientation[0], in.Customers[i]) {
					t.Errorf("%s/%v: ray serves off-axis customer %d", name, variant, i)
				}
			}
		}
	}
}

// TestZeroWidthRayServesAlignedCustomer pins the positive half of the
// semantics on the solvers with optimality or greedy guarantees: a lone
// ray antenna must actually pick up a customer it can align with.
func TestZeroWidthRayServesAlignedCustomer(t *testing.T) {
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 1.0, R: 2, Demand: 1, Profit: 5},
			{Theta: 2.0, R: 2, Demand: 1, Profit: 3},
		},
		Antennas: []model.Antenna{{Rho: 0, Range: 5, Capacity: 1}},
	}
	in.Normalize()
	for _, name := range []string{"greedy", "localsearch", "auto", "exact", "lpround"} {
		solver, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := solver(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSolution(t, in, sol)
		if sol.Profit != 5 {
			t.Errorf("%s: profit = %d, want 5 (ray aimed at the best aligned customer)", name, sol.Profit)
		}
	}
}

// TestZeroWidthRayDisjointCoexists pins the DisjointAngles case the DP
// now handles: a ray and a positive-width sector can both serve, and the
// ray's empty interior is exempt from the disjointness constraint even
// when it points inside the sector.
func TestZeroWidthRayDisjointCoexists(t *testing.T) {
	in := &model.Instance{
		Variant: model.DisjointAngles,
		Customers: []model.Customer{
			{Theta: 1.0, R: 1, Demand: 1, Profit: 2},
			{Theta: 1.2, R: 1, Demand: 1, Profit: 2},
			{Theta: 1.1, R: 3, Demand: 1, Profit: 7},
		},
		Antennas: []model.Antenna{
			{Rho: 0.5, Capacity: 2},
			{Rho: 0, Capacity: 1},
		},
	}
	in.Normalize()
	solver, err := Get("disjoint-dp")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, in, sol)
	if sol.Profit != 11 {
		t.Errorf("profit = %d, want 11 (sector serves the pair, ray spears the distant customer)", sol.Profit)
	}
}
