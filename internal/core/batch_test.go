package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sectorpack/internal/model"
)

// batchInstances builds n copies of the golden sectors instance; each item
// gets its own *Instance so per-item mutation in one slot cannot leak into
// another.
func batchInstances(n int) []*model.Instance {
	ins := make([]*model.Instance, n)
	for i := range ins {
		ins[i] = goldenSectorsInstance()
	}
	return ins
}

// emptySolution is a feasible all-unassigned answer, the cheapest thing a
// test solver can return that passes the VerifySolution gate.
func emptySolution(in *model.Instance, alg string) model.Solution {
	return model.Solution{Assignment: model.NewAssignment(in.N(), in.M()), Algorithm: alg}
}

func TestSolveBatchEmptyAndNilItems(t *testing.T) {
	if got := SolveBatch(context.Background(), nil, SolveGreedy, BatchOptions{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	ins := batchInstances(3)
	ins[1] = nil
	results := SolveBatch(context.Background(), ins, SolveGreedy, BatchOptions{Options: Options{Seed: 1}})
	if results[1].Err == nil {
		t.Error("nil item did not error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("item %d failed alongside the nil item: %v", i, results[i].Err)
		}
	}
}

// TestSolveBatchIsolatesPanicsAndInvalidOutput: a panicking item and an
// item whose solver returns an infeasible answer land typed errors in their
// own slots; the rest of the batch still solves.
func TestSolveBatchIsolatesPanicsAndInvalidOutput(t *testing.T) {
	ins := batchInstances(4)
	ins[1].Name = "panic"
	ins[2].Name = "invalid"
	solver := func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		switch in.Name {
		case "panic":
			panic("batch item boom")
		case "invalid":
			sol := emptySolution(in, "bad")
			sol.Profit = 99 // empty assignment recomputes to 0: infeasible claim
			return sol, nil
		default:
			return SolveGreedy(ctx, in, opt)
		}
	}
	results := SolveBatch(context.Background(), ins, solver, BatchOptions{Options: Options{Seed: 1}, SolverName: "test-batch"})
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Errorf("panicking item returned %v, want *PanicError", results[1].Err)
	}
	var ie *InvalidSolutionError
	if !errors.As(results[2].Err, &ie) {
		t.Errorf("infeasible item returned %v, want *InvalidSolutionError", results[2].Err)
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil {
			t.Errorf("healthy item %d failed: %v", i, results[i].Err)
		}
	}
}

func TestSolveBatchItemTimeout(t *testing.T) {
	ins := batchInstances(2)
	park := func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	}
	start := time.Now()
	results := SolveBatch(context.Background(), ins, park, BatchOptions{ItemTimeout: 30 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("batch with per-item deadlines took %v", elapsed)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("item %d: err %v, want deadline exceeded", i, r.Err)
		}
	}
}

// TestSolveBatchHedgedDegrades: with Hedged set, a failing primary solver
// degrades each item to the greedy safety net instead of erroring.
func TestSolveBatchHedgedDegrades(t *testing.T) {
	ins := batchInstances(3)
	failing := func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		return model.Solution{}, errors.New("primary down")
	}
	results := SolveBatch(context.Background(), ins, failing, BatchOptions{
		Options:    Options{Seed: 1},
		SolverName: "test-failing",
		Hedged:     true,
	})
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("hedged item %d errored: %v", i, r.Err)
			continue
		}
		if !r.Solution.Degraded || r.Solution.SolverUsed != "greedy" {
			t.Errorf("item %d: degraded=%v solver_used=%q, want greedy fallback",
				i, r.Solution.Degraded, r.Solution.SolverUsed)
		}
		if err := r.Solution.Assignment.Check(ins[i]); err != nil {
			t.Errorf("item %d fallback infeasible: %v", i, err)
		}
	}
}

// TestSolveBatchCancellation: cancelling the batch ctx fails undispatched
// and in-flight items with the ctx error instead of hanging.
func TestSolveBatchCancellation(t *testing.T) {
	ins := batchInstances(8)
	ctx, cancel := context.WithCancel(context.Background())
	var entered sync.Once
	park := func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		entered.Do(cancel) // first item to run kills the batch
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	}
	results := SolveBatch(ctx, ins, park, BatchOptions{Workers: 2})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d: err %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestSolveBatchWorkerBound: no more than Workers items run concurrently.
func TestSolveBatchWorkerBound(t *testing.T) {
	const workers = 2
	ins := batchInstances(9)
	var inFlight, peak atomic.Int64
	solver := func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		//sectorlint:ignore ctxloop lock-free max update; the CAS retry loop is bounded by contention, not solve work
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return emptySolution(in, "counted"), nil
	}
	results := SolveBatch(context.Background(), ins, solver, BatchOptions{Workers: workers})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent items, want <= %d", got, workers)
	}
}

// TestSolveBatchRecordsElapsed: per-item wall time is reported.
func TestSolveBatchRecordsElapsed(t *testing.T) {
	results := SolveBatch(context.Background(), batchInstances(1), SolveGreedy, BatchOptions{Options: Options{Seed: 1}})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Elapsed <= 0 {
		t.Errorf("item elapsed %v, want > 0", results[0].Elapsed)
	}
}
