package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/exact"
	"sectorpack/internal/model"
)

func TestAnnealFeasibleAndDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	variants := []model.Variant{model.Sectors, model.Angles, model.DisjointAngles}
	for trial := 0; trial < 12; trial++ {
		in := randInstance(rng, 10+rng.Intn(20), 1+rng.Intn(3), variants[trial%3])
		g, err := SolveGreedy(context.Background(), in, Options{Seed: 1, SkipBound: true})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		a, err := SolveAnneal(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("anneal: %v", err)
		}
		checkSolution(t, in, a)
		if a.Profit < g.Profit {
			t.Fatalf("anneal %d < greedy %d (best-so-far must dominate)", a.Profit, g.Profit)
		}
	}
}

func TestAnnealDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	in := randInstance(rng, 18, 2, model.Sectors)
	a, err := SolveAnneal(context.Background(), in, Options{Seed: 9})
	if err != nil {
		t.Fatalf("anneal: %v", err)
	}
	b, err := SolveAnneal(context.Background(), in, Options{Seed: 9})
	if err != nil {
		t.Fatalf("anneal: %v", err)
	}
	if a.Profit != b.Profit {
		t.Fatalf("anneal not deterministic: %d vs %d", a.Profit, b.Profit)
	}
}

func TestAnnealNeverExceedsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 8; trial++ {
		in := randInstance(rng, 4+rng.Intn(6), 1+rng.Intn(2), model.Sectors)
		a, err := SolveAnneal(context.Background(), in, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatalf("anneal: %v", err)
		}
		checkSolution(t, in, a)
		opt, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if a.Profit > opt.Profit {
			t.Fatalf("anneal %d exceeds exact optimum %d — feasibility bug", a.Profit, opt.Profit)
		}
	}
}

func TestAnnealEmptyInstance(t *testing.T) {
	in := (&model.Instance{Variant: model.Angles}).Normalize()
	sol, err := SolveAnneal(context.Background(), in, Options{})
	if err != nil || sol.Profit != 0 {
		t.Fatalf("empty: %d, %v", sol.Profit, err)
	}
}

func TestAnnealRegistered(t *testing.T) {
	if _, err := Get("anneal"); err != nil {
		t.Fatalf("anneal not registered: %v", err)
	}
}
