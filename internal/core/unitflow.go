package core

import (
	"context"
	"fmt"

	"sectorpack/internal/angular"
	"sectorpack/internal/flow"
	"sectorpack/internal/model"
)

// SolveUnitFlow solves the UNIT variant (all demands and profits equal) by
// max-flow: with orientations fixed, maximizing served customers is a
// bipartite b-matching — source → customer (capacity 1), customer →
// covering antenna (capacity 1), antenna → sink (capacity ⌊C_j/d⌋) — which
// Dinic solves exactly.
//
// Orientations: for a single antenna every candidate orientation is tried,
// making the solver exact (candidate-orientation lemma). For multiple
// antennas the orientations come from a greedy pass and the flow then
// computes the optimal assignment at those orientations, so the result is
// a heuristic that always dominates greedy at equal orientations.
//
// The instance must satisfy UnitDemand; Sectors and Angles variants only
// (disjointness would couple the orientation choices).
//
// Cancellation: ctx is checked before each candidate orientation's flow
// solve (single antenna) and at the greedy/flow phase boundary.
func SolveUnitFlow(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	if !in.UnitDemand() {
		return model.Solution{}, fmt.Errorf("core: SolveUnitFlow requires unit demands")
	}
	if in.Variant == model.DisjointAngles {
		return model.Solution{}, fmt.Errorf("core: SolveUnitFlow does not support %v", model.DisjointAngles)
	}
	n, m := in.N(), in.M()
	sol := model.Solution{Algorithm: "unitflow", Assignment: model.NewAssignment(n, m)}
	if n == 0 || m == 0 {
		return sol, nil
	}

	if m == 1 {
		// Exact: sweep every candidate orientation.
		best := model.NewAssignment(n, m)
		var bestProfit int64 = -1
		for _, alpha := range angular.Candidates(in, 0) {
			if err := ctx.Err(); err != nil {
				return model.Solution{}, err
			}
			as, p, err := flowAssign(in, []float64{alpha})
			if err != nil {
				return model.Solution{}, err
			}
			if p > bestProfit {
				bestProfit = p
				best = as
			}
		}
		if bestProfit < 0 {
			bestProfit = 0
		}
		sol.Assignment = best
		sol.Profit = bestProfit
		if !opt.SkipBound {
			sol.UpperBound = UpperBound(in)
		}
		return sol, nil
	}

	greedy, err := SolveGreedy(ctx, in, opt)
	if err != nil {
		return model.Solution{}, err
	}
	if err := ctx.Err(); err != nil {
		return model.Solution{}, err
	}
	as, p, err := flowAssign(in, greedy.Assignment.Orientation)
	if err != nil {
		return model.Solution{}, err
	}
	sol.Assignment = as
	sol.Profit = p
	sol.UpperBound = greedy.UpperBound
	if greedy.Profit > p {
		// Flow maximizes served count at fixed orientations, which equals
		// profit for unit instances, so this cannot happen; keep the
		// defensive fallback anyway.
		sol.Assignment = greedy.Assignment
		sol.Profit = greedy.Profit
	}
	return sol, nil
}

// flowAssign computes the optimal unit-demand assignment at the given
// orientations via Dinic and returns it with its profit.
func flowAssign(in *model.Instance, alphas []float64) (*model.Assignment, int64, error) {
	n, m := in.N(), in.M()
	d := in.Customers[0].Demand
	unitProfit := in.Customers[0].Profit

	g := flow.NewNetwork(n+m+2, n*m+n+m)
	src := g.AddNode()
	custBase := g.AddNodes(n)
	antBase := g.AddNodes(m)
	sink := g.AddNode()
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(src, custBase+i, 1); err != nil {
			return nil, 0, err
		}
	}
	type arc struct {
		cust, ant int
		handle    int
	}
	var arcs []arc
	for i, c := range in.Customers {
		for j, a := range in.Antennas {
			if a.Covers(alphas[j], c) {
				h, err := g.AddEdge(custBase+i, antBase+j, 1)
				if err != nil {
					return nil, 0, err
				}
				arcs = append(arcs, arc{cust: i, ant: j, handle: h})
			}
		}
	}
	for j, a := range in.Antennas {
		units := a.Capacity / d
		if _, err := g.AddEdge(antBase+j, sink, units); err != nil {
			return nil, 0, err
		}
	}
	served, err := g.MaxFlow(src, sink)
	if err != nil {
		return nil, 0, err
	}
	as := model.NewAssignment(n, m)
	copy(as.Orientation, alphas)
	for _, e := range arcs {
		if g.Flow(e.handle) > 0 {
			as.Owner[e.cust] = e.ant
		}
	}
	return as, served * unitProfit, nil
}
