package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/exact"
	"sectorpack/internal/model"
)

func TestConfigLPBoundDominatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 12; trial++ {
		in := randInstance(rng, 3+rng.Intn(7), 1+rng.Intn(2), model.Sectors)
		bound, err := ConfigLPBound(in)
		if err != nil {
			t.Fatalf("ConfigLPBound: %v", err)
		}
		opt, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if bound < float64(opt.Profit)-1e-6 {
			t.Fatalf("config LP bound %v below OPT %d", bound, opt.Profit)
		}
	}
}

func TestConfigLPBoundNoLooserThanSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 5+rng.Intn(15), 1+rng.Intn(3), model.Sectors)
		cfg, err := ConfigLPBound(in)
		if err != nil {
			t.Fatalf("ConfigLPBound: %v", err)
		}
		simple := UpperBound(in)
		if cfg > simple+1e-6 {
			t.Fatalf("config bound %v looser than simple bound %v", cfg, simple)
		}
	}
}

func TestConfigLPBoundTighterWhenAntennasCompete(t *testing.T) {
	// Two antennas both covering the same single cluster: the simple bound
	// double-counts the cluster, the configuration LP does not.
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.10, R: 1, Demand: 4},
			{Theta: 0.15, R: 1, Demand: 4},
			{Theta: 0.20, R: 1, Demand: 4},
		},
		Antennas: []model.Antenna{
			{Rho: 1, Capacity: 100},
			{Rho: 1, Capacity: 100},
		},
	}
	in.Normalize()
	simple := UpperBound(in)
	cfg, err := ConfigLPBound(in)
	if err != nil {
		t.Fatalf("ConfigLPBound: %v", err)
	}
	// Both bounds clip at the total profit of 12 here (UpperBound takes a
	// min with it), so assert dominance and achievability.
	if cfg > simple+1e-6 {
		t.Fatalf("config bound %v above simple %v", cfg, simple)
	}
	if cfg < 12-1e-6 {
		t.Fatalf("config bound %v below the achievable optimum 12", cfg)
	}
}

func TestConfigLPBoundCapacitySplit(t *testing.T) {
	// One cluster, two antennas with capacity 5 each, total demand 12:
	// OPT serves 10 (both antennas on the cluster). Simple bound clips at
	// min(12, 5+5) = 10; config LP must agree, not exceed.
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.10, R: 1, Demand: 4},
			{Theta: 0.15, R: 1, Demand: 4},
			{Theta: 0.20, R: 1, Demand: 4},
		},
		Antennas: []model.Antenna{
			{Rho: 1, Capacity: 5},
			{Rho: 1, Capacity: 5},
		},
	}
	in.Normalize()
	cfg, err := ConfigLPBound(in)
	if err != nil {
		t.Fatalf("ConfigLPBound: %v", err)
	}
	if cfg > 10+1e-6 {
		t.Fatalf("config bound %v should respect the capacity cap 10", cfg)
	}
}

func TestConfigLPBoundEmpty(t *testing.T) {
	in := (&model.Instance{Variant: model.Angles}).Normalize()
	bound, err := ConfigLPBound(in)
	if err != nil || bound != 0 {
		t.Fatalf("empty: %v, %v", bound, err)
	}
}
