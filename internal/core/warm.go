package core

import (
	"context"
	"fmt"

	"sectorpack/internal/angular"
	"sectorpack/internal/model"
)

// SolveGreedyWarm is SolveGreedy running on a caller-maintained engine
// instead of building (and prewarming) its own. A delta session keeps one
// engine warm across re-solves — sweeps survive every delta that cannot
// touch them (angular.Engine.Rebase) — so the dominant from-scratch cost,
// rebuilding per-antenna sweep state, is skipped. The engine caches only
// instance geometry, never assignment state, so the result is bit-identical
// to SolveGreedy on the same instance and options (the session differential
// suite enforces this).
//
// The engine must have been built for (or rebased onto) exactly this
// instance value; a mismatch is an error rather than a silent wrong answer.
func SolveGreedyWarm(ctx context.Context, in *model.Instance, opt Options, eng *angular.Engine) (model.Solution, error) {
	if err := checkWarmEngine(in, eng); err != nil {
		return model.Solution{}, err
	}
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	return solveGreedyWithEngine(ctx, in, opt, nil, eng)
}

// SolveLocalSearchWarm is SolveLocalSearch on a caller-maintained engine,
// with the same contract as SolveGreedyWarm: bit-identical results, the
// engine must match the instance.
func SolveLocalSearchWarm(ctx context.Context, in *model.Instance, opt Options, eng *angular.Engine) (model.Solution, error) {
	if err := checkWarmEngine(in, eng); err != nil {
		return model.Solution{}, err
	}
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	return solveLocalSearchWithEngine(ctx, in, opt, eng)
}

func checkWarmEngine(in *model.Instance, eng *angular.Engine) error {
	if eng == nil {
		return fmt.Errorf("core: warm solve requires an engine")
	}
	if eng.Instance() != in {
		return fmt.Errorf("core: engine was built for a different instance")
	}
	return nil
}
