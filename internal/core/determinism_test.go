package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// The goldens below were captured from the pre-fail-soft pipeline (commit
// 6c65004) by running every registered solver on the two fixed instances.
// They pin the PR-3 determinism guarantee: panic isolation, the registry's
// Safe wrapper, and the hedged pipeline must leave an uncancelled,
// non-degraded solve byte-identical — same profit, same orientations (full
// float64 precision), same owners.
var goldenSolves = map[string]string{
	"anneal":      "profit=4 alg=anneal orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
	"auto":        "profit=4 alg=auto/exact orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
	"baseline":    "profit=1 alg=baseline orient=[0,3.1415926535897931] owner=[-1,-1,-1,-1,-1,-1,-1,0,-1,-1]",
	"disjoint-dp": "profit=28 alg=disjoint-dp orient=[4.1681646696392463,5.8107576220157924] owner=[1,0,-1,-1,-1,1,0,-1,1,-1]",
	"exact":       "profit=4 alg=exact orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
	"greedy":      "profit=4 alg=greedy orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
	"localsearch": "profit=4 alg=localsearch orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
	"lpround":     "profit=4 alg=lpround orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
	"unitflow":    "profit=4 alg=unitflow orient=[2.2255965865489049,4.3871433096762162] owner=[-1,-1,1,0,-1,0,-1,-1,-1,1]",
}

func goldenSectorsInstance() *model.Instance {
	return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 7, N: 10, M: 2, Variant: model.Sectors, UnitDemand: true})
}

func goldenDisjointInstance() *model.Instance {
	return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 11, N: 10, M: 2, Variant: model.DisjointAngles})
}

func solveFingerprint(sol model.Solution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profit=%d alg=%s orient=[", sol.Profit, sol.Algorithm)
	for i, o := range sol.Assignment.Orientation {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%.17g", o)
	}
	b.WriteString("] owner=[")
	for i, o := range sol.Assignment.Owner {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%d", o)
	}
	b.WriteString("]")
	return b.String()
}

// TestRegistrySolversMatchPrePRGoldens is the determinism guard: every
// built-in solver, resolved through the (now Safe-wrapping) registry with
// no cancellation, must reproduce the pre-PR solution exactly.
func TestRegistrySolversMatchPrePRGoldens(t *testing.T) {
	for name, want := range goldenSolves {
		in := goldenSectorsInstance()
		if name == "disjoint-dp" {
			in = goldenDisjointInstance()
		}
		solver, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		sol, err := solver(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got := solveFingerprint(sol); got != want {
			t.Errorf("%s drifted from pre-PR behavior:\n got  %s\n want %s", name, got, want)
		}
	}
}

// TestGoldensCoverAllBuiltins forces this guard to grow with the registry:
// a newly registered built-in solver must record its golden.
func TestGoldensCoverAllBuiltins(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "test-") {
			continue // solvers injected by other tests in this package
		}
		if _, ok := goldenSolves[name]; !ok {
			t.Errorf("registered solver %q has no determinism golden; capture one and add it to goldenSolves", name)
		}
	}
}

// TestSolveBatchMatchesGoldens extends the determinism guard through the
// batching layer: every registered solver, run over a batch of identical
// instances on the worker pool, must put the exact golden bytes in every
// slot — batching may change scheduling, never answers.
func TestSolveBatchMatchesGoldens(t *testing.T) {
	for name, want := range goldenSolves {
		mk := goldenSectorsInstance
		if name == "disjoint-dp" {
			mk = goldenDisjointInstance
		}
		solver, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		ins := []*model.Instance{mk(), mk(), mk()}
		results := SolveBatch(context.Background(), ins, solver, BatchOptions{
			Options:    Options{Seed: 1},
			SolverName: name,
		})
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("%s item %d: %v", name, i, r.Err)
				continue
			}
			if got := solveFingerprint(r.Solution); got != want {
				t.Errorf("%s item %d drifted from golden through the batch path:\n got  %s\n want %s", name, i, got, want)
			}
		}
	}
}

// TestHedgedSolveMatchesGoldensWhenHealthy extends the guard through the
// hedged pipeline: with a healthy primary and no deadline, SolveHedged
// must return the same bytes as the plain registry solve.
func TestHedgedSolveMatchesGoldensWhenHealthy(t *testing.T) {
	for name, want := range goldenSolves {
		in := goldenSectorsInstance()
		if name == "disjoint-dp" {
			in = goldenDisjointInstance()
		}
		solver, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		sol, err := SolveHedged(context.Background(), in, solver, HedgeOptions{
			Options:     Options{Seed: 1},
			PrimaryName: name,
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sol.Degraded {
			t.Errorf("%s: healthy hedged solve marked Degraded (%s: %s)", name, sol.FallbackReason, sol.FallbackDetail)
		}
		if got := solveFingerprint(sol); got != want {
			t.Errorf("%s hedged solve drifted from pre-PR behavior:\n got  %s\n want %s", name, got, want)
		}
	}
}
