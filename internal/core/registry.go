package core

import (
	"fmt"
	"sort"

	"sectorpack/internal/angular"
	"sectorpack/internal/exact"
	"sectorpack/internal/model"
)

// Solver is a named solving strategy.
type Solver func(*model.Instance, Options) (model.Solution, error)

// solvers maps CLI/experiment names to strategies.
var solvers = map[string]Solver{
	"greedy":      SolveGreedy,
	"localsearch": SolveLocalSearch,
	"lpround":     SolveLPRound,
	"unitflow":    SolveUnitFlow,
	"anneal":      SolveAnneal,
	"baseline":    SolveBaseline,
	"auto":        SolveAuto,
	"disjoint-dp": func(in *model.Instance, opt Options) (model.Solution, error) {
		return angular.SolveDisjoint(in, opt.Knapsack)
	},
	"exact": func(in *model.Instance, _ Options) (model.Solution, error) {
		return exact.Solve(in, exact.Limits{})
	},
}

// Get returns the named solver.
func Get(name string) (Solver, error) {
	s, ok := solvers[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown solver %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the registered solver names, sorted.
func Names() []string {
	out := make([]string, 0, len(solvers))
	for name := range solvers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
