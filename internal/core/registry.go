package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sectorpack/internal/angular"
	"sectorpack/internal/exact"
	"sectorpack/internal/model"
)

// Solver is a named solving strategy. Every solver honors ctx: it checks
// for cancellation at its iteration boundaries (greedy steps, local-search
// moves, orientation tuples, anneal steps) and returns ctx.Err() promptly,
// discarding partial work. An uncancelled run is a deterministic function
// of (instance, Options) exactly as before contexts were threaded through.
type Solver func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error)

// registryMu guards solvers: the sectord daemon resolves solvers from
// concurrent request handlers while tests may Register instrumented ones.
var registryMu sync.RWMutex

// solvers maps CLI/experiment/daemon names to strategies.
var solvers = map[string]Solver{
	"greedy":      SolveGreedy,
	"localsearch": SolveLocalSearch,
	"lpround":     SolveLPRound,
	"unitflow":    SolveUnitFlow,
	"anneal":      SolveAnneal,
	"baseline":    SolveBaseline,
	"auto":        SolveAuto,
	"disjoint-dp": func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		return angular.SolveDisjoint(ctx, in, opt.Knapsack)
	},
	"exact": func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		return exact.Solve(ctx, in, opt.ExactLimits)
	},
}

// Get returns the named solver, wrapped in Safe: a panic inside any
// registry-resolved solver is returned as a *PanicError instead of
// unwinding into the caller. The wrapper is transparent on non-panicking
// runs, so registry solves stay bit-identical to calling the solver
// function directly.
func Get(name string) (Solver, error) {
	registryMu.RLock()
	s, ok := solvers[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown solver %q (have %v)", name, Names())
	}
	return Safe(name, s), nil
}

// Register adds (or replaces) a named solver. The built-in names are
// pre-registered; replacing one affects every subsequent Get, so outside of
// tests callers should stick to fresh names.
func Register(name string, s Solver) {
	registryMu.Lock()
	defer registryMu.Unlock()
	solvers[name] = s
}

// Unregister removes a named solver. The fault-injection harness registers
// deliberately misbehaving solvers and must be able to take them back out
// so registry-iterating tests see only well-behaved entries.
func Unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(solvers, name)
}

// Names lists the registered solver names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(solvers))
	for name := range solvers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
