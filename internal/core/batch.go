package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sectorpack/internal/model"
)

// BatchOptions tunes SolveBatch.
type BatchOptions struct {
	// Options is passed to the solver for every item.
	Options
	// SolverName labels the solver in panic/invalid errors and hedged
	// provenance; empty means "batch".
	SolverName string
	// Workers bounds the worker pool; zero means min(GOMAXPROCS, items).
	Workers int
	// ItemTimeout is the per-item solve deadline, layered under the batch
	// ctx; zero means no per-item deadline.
	ItemTimeout time.Duration
	// Hedged routes each item through SolveHedged: a failing item degrades
	// to the greedy safety net (Solution.Degraded set) instead of erroring.
	Hedged bool
}

func (o BatchOptions) workers(items int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o BatchOptions) solverName() string {
	if o.SolverName == "" {
		return "batch"
	}
	return o.SolverName
}

// BatchResult is one item's outcome: a verified solution or a typed error
// (*PanicError, *InvalidSolutionError, a context error, or a plain solver
// error), never both.
type BatchResult struct {
	Solution model.Solution
	Err      error
	Elapsed  time.Duration
}

// SolveBatch solves every instance concurrently on a bounded worker pool
// and returns per-item results aligned with the input. The batch never
// fails as a whole: a panicking, erroring, invalid, or timed-out item
// produces an error (or, with Hedged, a degraded solution) in its own slot
// while the rest proceed. Each item runs under SafeSolve and behind the
// VerifySolution gate exactly like the serving layer's single solves, so
// an uncancelled, non-hedged item is bit-identical to calling the solver
// directly.
//
// Cancelling ctx stops the batch: items not yet started (and items whose
// solver honors cancellation) report ctx's error.
func SolveBatch(ctx context.Context, ins []*model.Instance, solver Solver, opt BatchOptions) []BatchResult {
	results := make([]BatchResult, len(ins))
	if len(ins) == 0 {
		return results
	}
	name := opt.solverName()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opt.workers(len(ins)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				start := time.Now()
				sol, err := solveBatchItem(ctx, ins[i], solver, name, opt)
				results[i] = BatchResult{Solution: sol, Err: err, Elapsed: time.Since(start)}
			}
		}()
	}
	for i := range ins {
		select {
		case work <- i:
		case <-ctx.Done():
			start := time.Now()
			results[i] = BatchResult{Err: ctx.Err(), Elapsed: time.Since(start)}
		}
	}
	close(work)
	wg.Wait()
	return results
}

// solveBatchItem runs one item under its per-item deadline.
func solveBatchItem(ctx context.Context, in *model.Instance, solver Solver, name string, opt BatchOptions) (model.Solution, error) {
	if in == nil {
		return model.Solution{}, fmt.Errorf("core: batch item has nil instance")
	}
	if opt.ItemTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.ItemTimeout)
		defer cancel()
	}
	if opt.Hedged {
		return SolveHedged(ctx, in, solver, HedgeOptions{Options: opt.Options, PrimaryName: name})
	}
	sol, err := SafeSolve(ctx, in, opt.Options, solver, name)
	if err != nil {
		return model.Solution{}, err
	}
	if err := VerifySolution(name, in, sol); err != nil {
		return model.Solution{}, err
	}
	return sol, nil
}
