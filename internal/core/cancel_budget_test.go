package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sectorpack/internal/model"
)

// tripCtx is a context whose Err starts failing after a fixed number of
// consults. It makes "the solver checks ctx at iteration boundaries"
// testable deterministically: a solver that only consulted ctx once at the
// top would survive the budget and run to completion, returning a solution
// instead of context.Canceled.
type tripCtx struct {
	remaining atomic.Int64
}

func newTripCtx(budget int64) *tripCtx {
	c := &tripCtx{}
	c.remaining.Store(budget)
	return c
}

func (c *tripCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *tripCtx) Done() <-chan struct{}       { return nil }
func (c *tripCtx) Value(key any) any           { return nil }
func (c *tripCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestSolversConsultContextMidLoop pins the sectorlint ctxloop fix: the
// solvers below used to consult ctx at most a handful of times up front,
// so a context cancelled mid-enumeration could not interrupt their
// instance-sized loops. With per-iteration checks in place, a small consult
// budget must always trip inside the loops on a 30-customer instance.
func TestSolversConsultContextMidLoop(t *testing.T) {
	cases := []struct {
		name    string
		variant model.Variant
		run     func(ctx context.Context, in *model.Instance) error
	}{
		{"baseline", model.Sectors, func(ctx context.Context, in *model.Instance) error {
			_, err := SolveBaseline(ctx, in, Options{SkipBound: true, Seed: 1})
			return err
		}},
		{"splittable-exact", model.Sectors, func(ctx context.Context, in *model.Instance) error {
			_, err := SolveSplittableExact(ctx, in)
			return err
		}},
		{"disjoint-dp", model.DisjointAngles, func(ctx context.Context, in *model.Instance) error {
			solver, err := Get("disjoint-dp")
			if err != nil {
				return err
			}
			_, err = solver(ctx, in, Options{SkipBound: true, Seed: 1})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := randInstance(rand.New(rand.NewSource(6)), 30, 3, tc.variant)
			if err := tc.run(newTripCtx(5), in); !errors.Is(err, context.Canceled) {
				t.Errorf("budget of 5 ctx consults on a 30-customer instance must trip mid-loop; err = %v", err)
			}
			// A generous budget must leave the solve unaffected.
			if err := tc.run(newTripCtx(1_000_000), in); err != nil {
				t.Errorf("generous budget must not interfere: %v", err)
			}
		})
	}
}
