package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sectorpack/internal/model"
)

// TestSolversHonorCancelledContext runs every registered solver under an
// already-cancelled context: each must return context.Canceled without
// doing any work or returning a partial assignment.
func TestSolversHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		if strings.HasPrefix(name, "test-") {
			continue // misbehaving solvers injected by the fault harness
		}
		variant := model.Sectors
		if name == "disjoint-dp" {
			variant = model.DisjointAngles
		}
		in := randInstance(rand.New(rand.NewSource(3)), 12, 2, variant)
		// Unit demands keep the instance inside every solver's domain
		// (unitflow rejects non-unit demands before it looks at ctx).
		for i := range in.Customers {
			in.Customers[i].Demand, in.Customers[i].Profit = 1, 1
		}
		solver, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := solver(ctx, in, Options{Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if sol.Assignment != nil {
			t.Errorf("%s: cancelled solve returned a partial assignment", name)
		}
	}
}

// TestGreedyCancelledMidRun cancels a large greedy solve (n=800) shortly
// after it starts; the solver must notice at an iteration boundary and
// return promptly.
func TestGreedyCancelledMidRun(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(4)), 800, 6, model.Sectors)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SolveGreedy(ctx, in, Options{Seed: 1})
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// nil means the solve beat the cancellation — acceptable, the
		// point is that it never hangs and never reports a bogus error.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("greedy did not return promptly after cancellation")
	}
}

// TestUncancelledBackgroundUnchanged pins the contract that threading
// contexts through changed nothing for uncancelled runs: two solves under
// background contexts are bit-identical.
func TestUncancelledBackgroundUnchanged(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(5)), 40, 3, model.Sectors)
	a, err := SolveLocalSearch(context.Background(), in, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b, err := SolveLocalSearch(ctx, in, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Profit != b.Profit {
		t.Fatalf("profit differs under live context: %d vs %d", a.Profit, b.Profit)
	}
	for j := range a.Assignment.Orientation {
		if math.Float64bits(a.Assignment.Orientation[j]) != math.Float64bits(b.Assignment.Orientation[j]) {
			t.Fatalf("orientation %d differs under live context", j)
		}
	}
}
