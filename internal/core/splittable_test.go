package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/exact"
	"sectorpack/internal/model"
)

func TestSplittableFeasibleAndDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 8+rng.Intn(20), 1+rng.Intn(3), model.Sectors)
		g, err := SolveGreedy(context.Background(), in, Options{SkipBound: true})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		s, err := SolveSplittable(context.Background(), in, Options{SkipBound: true})
		if err != nil {
			t.Fatalf("splittable: %v", err)
		}
		if err := s.Check(in); err != nil {
			t.Fatalf("splittable infeasible: %v", err)
		}
		if s.Value < float64(g.Profit)-1e-6 {
			t.Fatalf("splittable %v < integral greedy %d at the same orientations", s.Value, g.Profit)
		}
	}
}

func TestSplittableExactDominatesIntegralExact(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 3+rng.Intn(7), 1+rng.Intn(2), model.Sectors)
		integral, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		split, err := SolveSplittableExact(context.Background(), in)
		if err != nil {
			t.Fatalf("splittable exact: %v", err)
		}
		if err := split.Check(in); err != nil {
			t.Fatalf("splittable infeasible: %v", err)
		}
		if !split.Exact {
			t.Fatal("exact flag unset")
		}
		if split.Value < float64(integral.Profit)-1e-6 {
			t.Fatalf("splittable optimum %v below integral optimum %d", split.Value, integral.Profit)
		}
		// The splittable optimum never exceeds the total profit.
		if split.Value > float64(in.TotalProfit())+1e-6 {
			t.Fatalf("splittable %v exceeds total profit %d", split.Value, in.TotalProfit())
		}
	}
}

func TestSplittableStrictGapExists(t *testing.T) {
	// One antenna, capacity 3, two customers of demand 2 each: integral
	// serves one (profit 2), splittable serves 1 + 1/2 (value 3).
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2},
			{Theta: 0.2, R: 1, Demand: 2},
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 3}},
	}
	in.Normalize()
	integral, err := exact.Solve(context.Background(), in, exact.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	split, err := SolveSplittableExact(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if integral.Profit != 2 {
		t.Fatalf("integral = %d, want 2", integral.Profit)
	}
	if split.Value < 3-1e-6 {
		t.Fatalf("splittable = %v, want 3 (fill the residual capacity)", split.Value)
	}
}

func TestSplittableRejectsDisjoint(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(173)), 5, 2, model.DisjointAngles)
	if _, err := SolveSplittableExact(context.Background(), in); err == nil {
		t.Error("DisjointAngles must be rejected")
	}
}

func TestSplittableEmpty(t *testing.T) {
	in := (&model.Instance{Variant: model.Angles}).Normalize()
	s, err := SolveSplittable(context.Background(), in, Options{})
	if err != nil || s.Value != 0 {
		t.Fatalf("empty splittable: %v err=%v", s.Value, err)
	}
	se, err := SolveSplittableExact(context.Background(), in)
	if err != nil || se.Value != 0 {
		t.Fatalf("empty splittable exact: %v err=%v", se.Value, err)
	}
}

func TestSplitSolutionCheckRejections(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2},
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 3}},
	}
	in.Normalize()
	good, err := SolveSplittableExact(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Check(in); err != nil {
		t.Fatalf("good solution rejected: %v", err)
	}
	bad := good
	bad.Frac = [][]float64{{1.5}} // over-served customer
	if err := bad.Check(in); err == nil {
		t.Error("over-service must be rejected")
	}
	bad.Frac = [][]float64{{-0.2}}
	if err := bad.Check(in); err == nil {
		t.Error("negative fraction must be rejected")
	}
	// wrong value
	bad = good
	bad.Value += 5
	if err := bad.Check(in); err == nil {
		t.Error("wrong value must be rejected")
	}
	// fraction on non-covering antenna
	bad = good
	bad.Orientation = []float64{3.0}
	bad.Frac = [][]float64{{0.5}}
	bad.Value = 1
	if err := bad.Check(in); err == nil {
		t.Error("non-covering fractional service must be rejected")
	}
}
