package core

import (
	"context"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// SolveLocalSearch runs greedy, then alternates two improvement moves to a
// local optimum (or Options.LocalSearchRounds sweeps):
//
//  1. assignment polish: mkp.LocalSearch at the current orientations
//     (insert unserved customers, profitable swaps, relocations);
//  2. reorientation: for each antenna in turn, release its customers and
//     re-run the constrained best-window search over them plus the
//     unserved pool, keeping the change when it strictly improves.
//
// The result is never worse than greedy.
//
// Cancellation: ctx is checked before every reorientation move and every
// polish round; a cancelled solve returns ctx.Err(), discarding the
// partial improvement state.
func SolveLocalSearch(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	// One engine for the greedy seed AND every reorientation of every
	// round: the per-antenna sweeps depend only on instance geometry, not
	// on the evolving assignment, so they are built once (in parallel,
	// over the shared columnar view) and reused throughout.
	eng := angular.NewEngine(in)
	if err := eng.Prewarm(ctx); err != nil {
		return model.Solution{}, err
	}
	return solveLocalSearchWithEngine(ctx, in, opt, eng)
}

// solveLocalSearchWithEngine is the local-search loop over a caller-supplied
// engine; SolveLocalSearchWarm hands it a delta session's long-lived engine
// so re-solves skip the sweep rebuild.
func solveLocalSearchWithEngine(ctx context.Context, in *model.Instance, opt Options, eng *angular.Engine) (model.Solution, error) {
	sol, err := solveGreedyWithEngine(ctx, in, opt, nil, eng)
	if err != nil {
		return model.Solution{}, err
	}
	sol.Algorithm = "localsearch"
	n, m := in.N(), in.M()
	if n == 0 || m == 0 {
		return sol, nil
	}
	for round := 0; round < opt.lsRounds(); round++ {
		improved := false

		// Move 2 first: reorientation tends to unlock more.
		for j := 0; j < m; j++ {
			if err := ctx.Err(); err != nil {
				return model.Solution{}, err
			}
			cur := sol.Assignment
			// Customers currently on j plus the unserved pool are up for
			// grabs; everyone else stays put.
			active := make([]bool, n)
			var released int64
			for i, owner := range cur.Owner {
				if owner == model.Unassigned || owner == j {
					active[i] = true
					if owner == j {
						released += in.Customers[i].Profit
					}
				}
			}
			placed := placedSectors(in, cur, j)
			win, err := bestWindowConstrained(ctx, eng, j, active, placed, opt.Knapsack)
			if err != nil {
				return model.Solution{}, err
			}
			if win.Profit > released {
				for i, owner := range cur.Owner {
					if owner == j {
						cur.Owner[i] = model.Unassigned
					}
				}
				cur.Orientation[j] = win.Alpha
				for _, i := range win.Customers {
					cur.Owner[i] = j
				}
				sol.Profit += win.Profit - released
				improved = true
			}
		}

		// Move 1: global assignment polish at fixed orientations.
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		p := assignmentProblem(in, sol.Assignment)
		start := mkp.Result{Profit: sol.Profit, Bin: make([]int, n)}
		for i, owner := range sol.Assignment.Owner {
			if owner == model.Unassigned {
				start.Bin[i] = mkp.Unassigned
			} else {
				start.Bin[i] = owner
			}
		}
		polished, err := mkp.LocalSearch(p, start, opt.lsRounds())
		if err != nil {
			return model.Solution{}, err
		}
		if polished.Profit > sol.Profit {
			for i, b := range polished.Bin {
				if b == mkp.Unassigned {
					sol.Assignment.Owner[i] = model.Unassigned
				} else {
					sol.Assignment.Owner[i] = b
				}
			}
			sol.Profit = polished.Profit
			improved = true
		}
		if !improved {
			break
		}
	}
	return sol, nil
}

// placedSectors returns the serving sectors of all antennas except skip,
// for the DisjointAngles constraint; nil for other variants. Note nil vs
// empty matters to bestWindowConstrained: nil disables the disjointness
// filter, while an empty non-nil slice keeps it (with nothing placed yet).
func placedSectors(in *model.Instance, as *model.Assignment, skip int) []geom.Interval {
	if in.Variant != model.DisjointAngles {
		return nil
	}
	out := []geom.Interval{}
	for j := range in.Antennas {
		if j == skip || !usedBy(as, j) {
			continue
		}
		out = append(out, geom.NewInterval(as.Orientation[j], in.Antennas[j].Rho))
	}
	return out
}

// assignmentProblem builds the restricted MKP induced by fixed
// orientations; under DisjointAngles idle antennas are excluded from
// eligibility (their sector is not actually cleared).
func assignmentProblem(in *model.Instance, as *model.Assignment) *mkp.Problem {
	n, m := in.N(), in.M()
	p := &mkp.Problem{
		Items:      make([]knapsack.Item, n),
		Capacities: make([]int64, m),
		Eligible:   make([][]bool, n),
	}
	for i, c := range in.Customers {
		p.Items[i] = knapsack.Item{Weight: c.Demand, Profit: c.Profit}
		p.Eligible[i] = make([]bool, m)
	}
	for j, a := range in.Antennas {
		p.Capacities[j] = a.Capacity
		idleDisjoint := in.Variant == model.DisjointAngles && !usedBy(as, j)
		for i, c := range in.Customers {
			p.Eligible[i][j] = !idleDisjoint && a.Covers(as.Orientation[j], c)
		}
	}
	return p
}
