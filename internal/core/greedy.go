package core

import (
	"context"
	"fmt"
	"sort"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// SolveGreedy is the successive best-window heuristic: antennas are
// processed in decreasing capacity order; each picks the orientation and
// customer subset maximizing its own profit over the still-unserved
// customers (candidate-orientation enumeration with a knapsack per
// candidate), and the served customers are removed.
//
// Guarantee sketch [reconstruction]: with an exact inner knapsack this is
// the successive-knapsack heuristic — each step captures at least a 1/m
// fraction of what the optimum still could, giving 1−(1−1/m)^m ≥ 1−1/e for
// identical antennas; with the FPTAS inner solver the factor picks up the
// usual (1−ε). Under DisjointAngles the candidate set per step is filtered
// to orientations whose sector keeps clear of previously placed serving
// sectors (and the ends of placed sectors join the candidate set, so the
// greedy can pack flush chains too).
func SolveGreedy(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	return SolveGreedyOrdered(ctx, in, opt, nil)
}

// SolveGreedyOrdered is SolveGreedy with an explicit antenna processing
// order (indices into the antenna slice); nil means the default
// capacity-descending order. Exposed for the order-ablation experiment.
//
// All steps share one angular.Engine, so each antenna's sweep is built once
// per solve rather than once per step, and every best-window search runs
// with Dantzig-bound pruning.
//
// Cancellation: ctx is checked before each greedy step and inside each
// step's candidate-window evaluation; a cancelled solve returns ctx.Err()
// with no partial assignment.
func SolveGreedyOrdered(ctx context.Context, in *model.Instance, opt Options, order []int) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	eng := angular.NewEngine(in)
	if err := eng.Prewarm(ctx); err != nil {
		return model.Solution{}, err
	}
	return solveGreedyWithEngine(ctx, in, opt, order, eng)
}

// solveGreedyWithEngine is the greedy loop over a caller-supplied engine,
// so SolveLocalSearch can run its greedy seed and its reorientation moves
// on one shared set of sweeps instead of building them twice. The engine
// caches only instance geometry (sweeps and candidate angles), never
// assignment state, so sharing cannot change results.
func solveGreedyWithEngine(ctx context.Context, in *model.Instance, opt Options, order []int, eng *angular.Engine) (model.Solution, error) {
	n, m := in.N(), in.M()
	as := model.NewAssignment(n, m)
	sol := model.Solution{Algorithm: "greedy", Assignment: as}

	if order == nil {
		order = make([]int, m)
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool {
			return in.Antennas[order[a]].Capacity > in.Antennas[order[b]].Capacity
		})
	} else if len(order) != m {
		return model.Solution{}, fmt.Errorf("core: order has %d entries for %d antennas", len(order), m)
	}

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	var placed []geom.Interval // serving sectors placed so far (DisjointAngles)

	for _, j := range order {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		win, err := bestWindowConstrained(ctx, eng, j, active, placed, opt.Knapsack)
		if err != nil {
			return model.Solution{}, err
		}
		if len(win.Customers) == 0 {
			continue
		}
		as.Orientation[j] = win.Alpha
		for _, i := range win.Customers {
			as.Owner[i] = j
			active[i] = false
		}
		sol.Profit += win.Profit
		if in.Variant == model.DisjointAngles {
			placed = append(placed, geom.NewInterval(win.Alpha, in.Antennas[j].Rho))
		}
	}
	if !opt.SkipBound {
		sol.UpperBound = UpperBound(in)
	}
	return sol, nil
}

// bestWindowConstrained is Engine.BestWindow extended with the
// DisjointAngles placement constraint: the window's sector interior must
// not intersect any already placed serving sector. The candidate set is
// augmented with the ends of placed sectors so flush packing is reachable;
// ends that coincide (within geom.Eps) with an existing candidate — flush
// chains anchored at a customer angle do this systematically — are dropped
// so the same window is never knapsack-solved twice. Evaluation shares
// BestWindow's pruned, parallel machinery via Engine.BestWindowAt.
func bestWindowConstrained(ctx context.Context, eng *angular.Engine, antenna int, active []bool, placed []geom.Interval, kopt knapsack.Options) (angular.Window, error) {
	if placed == nil {
		return eng.BestWindow(ctx, antenna, active, kopt)
	}
	in := eng.Instance()
	rho := in.Antennas[antenna].Rho
	base := eng.Candidates(antenna)
	cands := make([]float64, 0, len(base)+len(placed))
	cands = append(cands, base...)
	for _, iv := range placed {
		end := iv.End()
		if !nearAngle(base, cands[len(base):], end) {
			cands = append(cands, end)
		}
	}
	kept := cands[:0] // filter in place: disjointness against placed sectors
	for _, alpha := range cands {
		sector := geom.NewInterval(alpha, rho)
		ok := true
		for _, iv := range placed {
			if sector.InteriorsOverlap(iv) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, alpha)
		}
	}
	return eng.BestWindowAt(ctx, antenna, kept, active, kopt)
}

// nearAngle reports whether alpha lies within geom.Eps of an entry of the
// sorted slice (searched in O(log n)) or of the extras slice (scanned;
// callers pass the handful of already-appended sector ends).
func nearAngle(sorted, extras []float64, alpha float64) bool {
	k := sort.SearchFloat64s(sorted, alpha)
	if k < len(sorted) && sorted[k]-alpha <= geom.Eps {
		return true
	}
	if k > 0 && alpha-sorted[k-1] <= geom.Eps {
		return true
	}
	// The 2π seam: an end just below 2π can duplicate a candidate at ~0
	// and vice versa.
	if len(sorted) > 0 {
		if geom.WrapGap(alpha, sorted[0]) <= geom.Eps || geom.WrapGap(sorted[len(sorted)-1], alpha) <= geom.Eps {
			return true
		}
	}
	for _, x := range extras {
		if geom.AnglesClose(x, alpha) {
			return true
		}
	}
	return false
}
