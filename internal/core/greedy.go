package core

import (
	"fmt"
	"sort"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// SolveGreedy is the successive best-window heuristic: antennas are
// processed in decreasing capacity order; each picks the orientation and
// customer subset maximizing its own profit over the still-unserved
// customers (candidate-orientation enumeration with a knapsack per
// candidate), and the served customers are removed.
//
// Guarantee sketch [reconstruction]: with an exact inner knapsack this is
// the successive-knapsack heuristic — each step captures at least a 1/m
// fraction of what the optimum still could, giving 1−(1−1/m)^m ≥ 1−1/e for
// identical antennas; with the FPTAS inner solver the factor picks up the
// usual (1−ε). Under DisjointAngles the candidate set per step is filtered
// to orientations whose sector keeps clear of previously placed serving
// sectors (and the ends of placed sectors join the candidate set, so the
// greedy can pack flush chains too).
func SolveGreedy(in *model.Instance, opt Options) (model.Solution, error) {
	return SolveGreedyOrdered(in, opt, nil)
}

// SolveGreedyOrdered is SolveGreedy with an explicit antenna processing
// order (indices into the antenna slice); nil means the default
// capacity-descending order. Exposed for the order-ablation experiment.
func SolveGreedyOrdered(in *model.Instance, opt Options, order []int) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	n, m := in.N(), in.M()
	as := model.NewAssignment(n, m)
	sol := model.Solution{Algorithm: "greedy", Assignment: as}

	if order == nil {
		order = make([]int, m)
		for j := range order {
			order[j] = j
		}
		sort.SliceStable(order, func(a, b int) bool {
			return in.Antennas[order[a]].Capacity > in.Antennas[order[b]].Capacity
		})
	} else if len(order) != m {
		return model.Solution{}, fmt.Errorf("core: order has %d entries for %d antennas", len(order), m)
	}

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	var placed []geom.Interval // serving sectors placed so far (DisjointAngles)

	for _, j := range order {
		win, err := bestWindowConstrained(in, j, active, placed, opt.Knapsack)
		if err != nil {
			return model.Solution{}, err
		}
		if len(win.Customers) == 0 {
			continue
		}
		as.Orientation[j] = win.Alpha
		for _, i := range win.Customers {
			as.Owner[i] = j
			active[i] = false
		}
		sol.Profit += win.Profit
		if in.Variant == model.DisjointAngles {
			placed = append(placed, geom.NewInterval(win.Alpha, in.Antennas[j].Rho))
		}
	}
	if !opt.SkipBound {
		sol.UpperBound = UpperBound(in)
	}
	return sol, nil
}

// bestWindowConstrained is angular.BestWindow extended with the
// DisjointAngles placement constraint: the window's sector interior must
// not intersect any already placed serving sector. The candidate set is
// augmented with the ends of placed sectors so flush packing is reachable.
func bestWindowConstrained(in *model.Instance, antenna int, active []bool, placed []geom.Interval, kopt knapsack.Options) (angular.Window, error) {
	if placed == nil {
		return angular.BestWindow(in, antenna, active, kopt)
	}
	rho := in.Antennas[antenna].Rho
	cands := angular.Candidates(in, antenna)
	for _, iv := range placed {
		cands = append(cands, iv.End())
	}
	best := angular.Window{Profit: -1, Exact: true}
	for _, alpha := range cands {
		sector := geom.NewInterval(alpha, rho)
		ok := true
		for _, iv := range placed {
			if sector.InteriorsOverlap(iv) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		items, ids := angular.WindowItems(in, antenna, alpha, active)
		if len(items) == 0 {
			continue
		}
		res, exact, err := knapsack.Solve(items, in.Antennas[antenna].Capacity, kopt)
		if err != nil {
			return angular.Window{}, err
		}
		if res.Profit > best.Profit {
			w := angular.Window{Alpha: alpha, Profit: res.Profit, Exact: best.Exact && exact}
			for k, take := range res.Take {
				if take {
					w.Customers = append(w.Customers, ids[k])
				}
			}
			best = w
		} else {
			best.Exact = best.Exact && exact
		}
	}
	if best.Profit < 0 {
		best.Profit = 0
		best.Customers = nil
	}
	return best, nil
}
