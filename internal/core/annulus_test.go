package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/angular"
	"sectorpack/internal/exact"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// annulusInstance places half the customers inside the dead zone.
func annulusInstance() *model.Instance {
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0.1, R: 0.5, Demand: 5}, // dead zone
			{Theta: 0.2, R: 3.0, Demand: 4},
			{Theta: 0.3, R: 0.8, Demand: 6}, // dead zone
			{Theta: 0.4, R: 4.0, Demand: 3},
		},
		Antennas: []model.Antenna{{Rho: 1, Range: 6, MinRange: 1, Capacity: 20}},
	}
	return in.Normalize()
}

func TestAnnulusExcludesDeadZone(t *testing.T) {
	in := annulusInstance()
	for _, name := range []string{"greedy", "localsearch", "lpround", "anneal", "exact"} {
		solver, _ := Get(name)
		sol, err := solver(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSolution(t, in, sol)
		if sol.Profit != 7 {
			t.Errorf("%s: profit %d, want 7 (dead-zone customers unservable)", name, sol.Profit)
		}
		for _, i := range []int{0, 2} {
			if sol.Assignment.Owner[i] != model.Unassigned {
				t.Errorf("%s: dead-zone customer %d was served", name, i)
			}
		}
	}
}

func TestAnnulusGreedyMatchesExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 3+rng.Intn(7), 1+rng.Intn(2), model.Sectors)
		for j := range in.Antennas {
			in.Antennas[j].MinRange = 1 + rng.Float64()*2
		}
		g, err := SolveGreedy(context.Background(), in, Options{SkipBound: true})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		checkSolution(t, in, g)
		ex, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if 2*g.Profit < ex.Profit {
			t.Fatalf("greedy %d < OPT/2 (%d) under annulus constraint", g.Profit, ex.Profit)
		}
	}
}

func TestAnnulusDisjointDP(t *testing.T) {
	in := &model.Instance{
		Variant: model.DisjointAngles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 0.5, Demand: 9}, // dead zone: must stay unserved
			{Theta: 0.2, R: 3.0, Demand: 4},
			{Theta: 2.5, R: 5.0, Demand: 3},
		},
		Antennas: []model.Antenna{
			{Rho: 1, Capacity: 10, MinRange: 1},
			{Rho: 1, Capacity: 10, MinRange: 1},
		},
	}
	in.Normalize()
	sol, err := angular.SolveDisjoint(context.Background(), in, knapsack.Options{})
	if err != nil {
		t.Fatalf("SolveDisjoint: %v", err)
	}
	if err := sol.Assignment.Check(in); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if sol.Profit != 7 {
		t.Fatalf("profit = %d, want 7", sol.Profit)
	}
}

func TestAnnulusValidation(t *testing.T) {
	in := annulusInstance()
	in.Antennas[0].MinRange = 7 // exceeds range 6
	if err := in.Validate(); err == nil {
		t.Error("min range above range must be rejected")
	}
	in.Antennas[0].MinRange = -1
	if err := in.Validate(); err == nil {
		t.Error("negative min range must be rejected")
	}
}
