package core

import (
	"context"
	"strings"
	"testing"

	"sectorpack/internal/angular"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// diffWorkers is the worker count the parallel leg of the differential
// tests pins. It deliberately exceeds any expected GOMAXPROCS so the test
// exercises oversubscription, and CI runs this file under -race with
// GOMAXPROCS>=4 so the goroutines genuinely interleave.
const diffWorkers = 8

// solveAtWorkers runs the solver with the angular worker knob pinned to w,
// restoring the previous setting before returning.
func solveAtWorkers(t *testing.T, w int, name string, solver Solver, in *model.Instance) string {
	t.Helper()
	prev := angular.SetMaxWorkers(w)
	defer angular.SetMaxWorkers(prev)
	sol, err := solver(context.Background(), in, Options{Seed: 1})
	if err != nil {
		t.Fatalf("%s at %d workers: %v", name, w, err)
	}
	return solveFingerprint(sol)
}

// TestScalarVsParallelAllSolvers is the differential gate for the columnar
// refactor: every registered solver must produce bit-identical solutions —
// profit, full-precision orientations, owners — whether the angular paths
// (Prewarm, CandidatesAll, candidate-window evaluation) run scalar or
// fanned out across workers. Parallelism may change scheduling, never
// answers.
func TestScalarVsParallelAllSolvers(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "test-") {
			continue // solvers injected by other tests in this package
		}
		mk := goldenSectorsInstance
		if name == "disjoint-dp" {
			mk = goldenDisjointInstance
		}
		solver, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		scalar := solveAtWorkers(t, 1, name, solver, mk())
		parallel := solveAtWorkers(t, diffWorkers, name, solver, mk())
		if scalar != parallel {
			t.Errorf("%s: scalar and parallel paths disagree:\n scalar   %s\n parallel %s", name, scalar, parallel)
		}
	}
}

// TestScalarVsParallelLargeInstances drives the same differential through
// instances big enough to cross every parallel gate (n*m above the Prewarm
// fan-out threshold, candidate counts above the evaluation fan-out
// threshold), across generator families. Restricted to the two solvers
// whose hot path is the angular engine — greedy (streaming window ranges)
// and localsearch (explicit-angle windows plus engine reuse); baseline
// never touches the engine, lpround/anneal reach it only through greedy or
// CandidatesAll (covered directly in the angular package's differential),
// and the exponential and flow-based solvers are covered by the
// small-instance matrix above.
func TestScalarVsParallelLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential instances skipped in -short mode")
	}
	instances := []struct {
		label string
		cfg   gen.Config
	}{
		{"uniform", gen.Config{Family: gen.Uniform, Seed: 3, N: 1200, M: 14, Tightness: 12, ProfitSpread: 0.4}},
		{"hotspot", gen.Config{Family: gen.Hotspot, Seed: 4, N: 1200, M: 14, Tightness: 12, ProfitSpread: 0.4, MinRange: 2}},
		{"zipf", gen.Config{Family: gen.Zipf, Seed: 5, N: 1200, M: 14, Tightness: 12}},
	}
	for _, tc := range instances {
		in := gen.MustGenerate(tc.cfg)
		for _, name := range []string{"greedy", "localsearch"} {
			solver, err := Get(name)
			if err != nil {
				t.Fatalf("Get(%s): %v", name, err)
			}
			scalar := solveAtWorkers(t, 1, name, solver, in)
			parallel := solveAtWorkers(t, diffWorkers, name, solver, in)
			if scalar != parallel {
				t.Errorf("%s/%s: scalar and parallel paths disagree:\n scalar   %s\n parallel %s",
					tc.label, name, scalar, parallel)
			}
		}
	}
}
