package core

import (
	"context"
	"fmt"

	"sectorpack/internal/angular"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// SplitSolution is a solution of the splittable-demand variant: each
// customer's demand may be divided across the antennas covering it, and
// profit accrues proportionally to the fraction served.
type SplitSolution struct {
	Orientation []float64
	// Frac[i][j] is the fraction of customer i served by antenna j.
	Frac  [][]float64
	Value float64
	// Exact reports whether the orientations were chosen by exhaustive
	// candidate enumeration (true splittable optimum) rather than a
	// greedy pass.
	Exact bool
}

// Check verifies fractional feasibility: coverage of every positive
// fraction, per-customer total at most 1, per-antenna fractional load
// within capacity, and the reported value.
func (s SplitSolution) Check(in *model.Instance) error {
	if len(s.Orientation) != in.M() || len(s.Frac) != in.N() {
		return fmt.Errorf("splittable: shape mismatch")
	}
	const tol = 1e-6
	load := make([]float64, in.M())
	var value float64
	for i, row := range s.Frac {
		if len(row) != in.M() {
			return fmt.Errorf("splittable: customer %d row has %d antennas", i, len(row))
		}
		var total float64
		for j, f := range row {
			if f < -tol {
				return fmt.Errorf("splittable: negative fraction x[%d][%d] = %v", i, j, f)
			}
			if f > tol && !in.Antennas[j].Covers(s.Orientation[j], in.Customers[i]) {
				return fmt.Errorf("splittable: customer %d fractionally served by non-covering antenna %d", i, j)
			}
			total += f
			load[j] += f * float64(in.Customers[i].Demand)
			value += f * float64(in.Customers[i].Profit)
		}
		if total > 1+tol {
			return fmt.Errorf("splittable: customer %d served %v > 1", i, total)
		}
	}
	for j, l := range load {
		if l > float64(in.Antennas[j].Capacity)*(1+tol)+tol {
			return fmt.Errorf("splittable: antenna %d fractional load %v exceeds %d", j, l, in.Antennas[j].Capacity)
		}
	}
	if diff := s.Value - value; diff > tol*(1+value) || diff < -tol*(1+value) {
		return fmt.Errorf("splittable: reported value %v != recomputed %v", s.Value, value)
	}
	return nil
}

// splitAt solves the splittable assignment LP at fixed orientations.
func splitAt(in *model.Instance, alphas []float64) (SplitSolution, error) {
	n, m := in.N(), in.M()
	p := &mkp.Problem{
		Items:      make([]knapsack.Item, n),
		Capacities: make([]int64, m),
		Eligible:   make([][]bool, n),
	}
	for i, c := range in.Customers {
		p.Items[i] = knapsack.Item{Weight: c.Demand, Profit: c.Profit}
		p.Eligible[i] = make([]bool, m)
		for j, a := range in.Antennas {
			p.Eligible[i][j] = a.Covers(alphas[j], c)
		}
	}
	for j, a := range in.Antennas {
		p.Capacities[j] = a.Capacity
	}
	value, x, err := mkp.LPRelax(p)
	if err != nil {
		return SplitSolution{}, err
	}
	return SplitSolution{
		Orientation: append([]float64(nil), alphas...),
		Frac:        x,
		Value:       value,
	}, nil
}

// SolveSplittable solves the splittable-demand variant heuristically:
// orientations from the greedy integral pass, then the exact fractional
// assignment LP at those orientations. Its value always dominates the
// integral greedy (the greedy assignment is LP-feasible).
func SolveSplittable(ctx context.Context, in *model.Instance, opt Options) (SplitSolution, error) {
	g, err := SolveGreedy(ctx, in, opt)
	if err != nil {
		return SplitSolution{}, err
	}
	if in.N() == 0 || in.M() == 0 {
		return SplitSolution{Orientation: make([]float64, in.M()), Frac: make([][]float64, in.N())}, nil
	}
	return splitAt(in, g.Assignment.Orientation)
}

// MaxSplittableTuples guards SolveSplittableExact's enumeration.
const MaxSplittableTuples = 100_000

// SolveSplittableExact computes the true splittable optimum for small
// instances by enumerating candidate orientation tuples (the
// candidate-orientation lemma holds verbatim for fractional service) and
// solving the LP at each. Sectors/Angles variants only.
//
// Cancellation: ctx is checked before each tuple's LP solve.
func SolveSplittableExact(ctx context.Context, in *model.Instance) (SplitSolution, error) {
	if err := validateForSolve(in); err != nil {
		return SplitSolution{}, err
	}
	if in.Variant == model.DisjointAngles {
		return SplitSolution{}, fmt.Errorf("core: SolveSplittableExact does not support %v", in.Variant)
	}
	n, m := in.N(), in.M()
	if n == 0 || m == 0 {
		return SplitSolution{Orientation: make([]float64, m), Frac: make([][]float64, n), Exact: true}, nil
	}
	cands, err := angular.CandidatesAll(ctx, in)
	if err != nil {
		return SplitSolution{}, err
	}
	total := int64(1)
	for j := 0; j < m; j++ {
		if err := ctx.Err(); err != nil {
			return SplitSolution{}, err
		}
		if len(cands[j]) == 0 {
			cands[j] = []float64{0}
		}
		total *= int64(len(cands[j]))
		if total > MaxSplittableTuples {
			return SplitSolution{}, fmt.Errorf("core: splittable tuple space exceeds %d", MaxSplittableTuples)
		}
	}
	best := SplitSolution{Value: -1}
	alphas := make([]float64, m)
	var rec func(j int) error
	rec = func(j int) error {
		if j == m {
			if err := ctx.Err(); err != nil {
				return err
			}
			s, err := splitAt(in, alphas)
			if err != nil {
				return err
			}
			if s.Value > best.Value {
				best = s
			}
			return nil
		}
		for _, a := range cands[j] {
			alphas[j] = a
			if err := rec(j + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return SplitSolution{}, err
	}
	best.Exact = true
	return best, nil
}
