package core

import (
	"context"
	"sort"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// SolveBaseline is the no-optimization reference point: antennas are
// spread uniformly around the circle (no candidate search, no knapsack)
// and customers are assigned greedily by profit density to any covering
// antenna with room. O(n log n + n·m); every real solver in the registry
// should beat it, and the experiments use it to size the value of the
// optimization machinery.
//
// Under DisjointAngles the antennas are instead packed flush from angle 0
// (prefix-sum starts), which is interior-disjoint for any widths summing
// to at most 2π (guaranteed by validation).
func SolveBaseline(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	if err := ctx.Err(); err != nil {
		return model.Solution{}, err
	}
	n, m := in.N(), in.M()
	as := model.NewAssignment(n, m)
	sol := model.Solution{Algorithm: "baseline", Assignment: as}
	if n == 0 || m == 0 {
		if !opt.SkipBound {
			sol.UpperBound = UpperBound(in)
		}
		return sol, nil
	}
	if in.Variant == model.DisjointAngles {
		var acc float64
		for j, a := range in.Antennas {
			if err := ctx.Err(); err != nil {
				return model.Solution{}, err
			}
			as.Orientation[j] = geom.NormAngle(acc)
			acc += a.Rho
		}
	} else {
		for j := range in.Antennas {
			as.Orientation[j] = geom.TwoPi * float64(j) / float64(m)
		}
	}
	// Profit-density order, then first covering antenna with room.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := in.Customers[order[a]], in.Customers[order[b]]
		return ca.Profit*cb.Demand > cb.Profit*ca.Demand
	})
	load := make([]int64, m)
	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		c := in.Customers[i]
		for j, a := range in.Antennas {
			if load[j]+c.Demand <= a.Capacity && a.Covers(as.Orientation[j], c) {
				as.Owner[i] = j
				load[j] += c.Demand
				sol.Profit += c.Profit
				break
			}
		}
	}
	if !opt.SkipBound {
		sol.UpperBound = UpperBound(in)
	}
	return sol, nil
}
