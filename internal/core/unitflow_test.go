package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/exact"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func randUnitInstance(rng *rand.Rand, n, m int, variant model.Variant) *model.Instance {
	in := randInstance(rng, n, m, variant)
	for i := range in.Customers {
		in.Customers[i].Demand = 2
		in.Customers[i].Profit = 2
	}
	return in
}

func TestUnitFlowSingleAntennaExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		in := randUnitInstance(rng, 3+rng.Intn(8), 1, model.Sectors)
		sol, err := SolveUnitFlow(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("unitflow: %v", err)
		}
		checkSolution(t, in, sol)
		opt, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if sol.Profit != opt.Profit {
			t.Fatalf("unitflow %d != exact %d", sol.Profit, opt.Profit)
		}
	}
}

func TestUnitFlowMultiAntennaDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		in := randUnitInstance(rng, 10+rng.Intn(15), 2+rng.Intn(2), model.Sectors)
		g, err := SolveGreedy(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		uf, err := SolveUnitFlow(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("unitflow: %v", err)
		}
		checkSolution(t, in, uf)
		if uf.Profit < g.Profit {
			t.Fatalf("unitflow %d < greedy %d", uf.Profit, g.Profit)
		}
	}
}

func TestUnitFlowRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	mixed := randInstance(rng, 6, 1, model.Sectors)
	mixed.Customers[0].Demand = 99
	mixed.Normalize()
	if _, err := SolveUnitFlow(context.Background(), mixed, Options{}); err == nil {
		t.Error("non-unit demands must be rejected")
	}
	dis := randUnitInstance(rng, 6, 2, model.DisjointAngles)
	if _, err := SolveUnitFlow(context.Background(), dis, Options{}); err == nil {
		t.Error("DisjointAngles must be rejected")
	}
}

func TestUnitFlowCapacityUnits(t *testing.T) {
	// Capacity 5 with unit demand 2 serves at most 2 customers.
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2, Profit: 2},
			{Theta: 0.2, R: 1, Demand: 2, Profit: 2},
			{Theta: 0.3, R: 1, Demand: 2, Profit: 2},
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 5}},
	}
	in.Normalize()
	sol, err := SolveUnitFlow(context.Background(), in, Options{})
	if err != nil {
		t.Fatalf("unitflow: %v", err)
	}
	if sol.Profit != 4 {
		t.Fatalf("profit = %d, want 4 (⌊5/2⌋ = 2 customers)", sol.Profit)
	}
	_ = geom.TwoPi
}
