package core

import (
	"sectorpack/internal/angular"
	"sectorpack/internal/exact"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// autoExactLimit is the instance size (customers) up to which SolveAuto
// prefers provably exact methods.
const autoExactLimit = 12

// SolveAuto picks the strongest affordable solver for the instance:
//
//   - tiny instances (n ≤ 12, small orientation space): exhaustive exact;
//   - DisjointAngles with few antennas: the exact chain DP;
//   - unit demands (Sectors/Angles): the flow solver (exact for m = 1);
//   - everything else: localsearch (greedy + polish).
//
// The chosen strategy is reported in Solution.Algorithm (prefixed with
// "auto/"), so callers can see what ran.
func SolveAuto(in *model.Instance, opt Options) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	sol, err := dispatchAuto(in, opt)
	if err != nil {
		return model.Solution{}, err
	}
	sol.Algorithm = "auto/" + sol.Algorithm
	return sol, nil
}

func dispatchAuto(in *model.Instance, opt Options) (model.Solution, error) {
	n, m := in.N(), in.M()
	if in.Variant == model.DisjointAngles {
		if m <= angular.MaxDisjointAntennas && n <= 40 && noZeroWidth(in) {
			return angular.SolveDisjoint(in, opt.Knapsack)
		}
		return SolveLocalSearch(in, opt)
	}
	if n <= autoExactLimit && n <= mkp.MaxExactItems && m <= 2 {
		return exact.SolveParallel(in, exact.Limits{}, 0)
	}
	if in.UnitDemand() && n > 0 {
		return SolveUnitFlow(in, opt)
	}
	return SolveLocalSearch(in, opt)
}

func noZeroWidth(in *model.Instance) bool {
	for _, a := range in.Antennas {
		if a.Rho <= 1e-9 {
			return false
		}
	}
	return true
}
