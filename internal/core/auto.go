package core

import (
	"context"

	"sectorpack/internal/angular"
	"sectorpack/internal/exact"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// autoExactLimit is the instance size (customers) up to which SolveAuto
// prefers provably exact methods.
const autoExactLimit = 12

// SolveAuto picks the strongest affordable solver for the instance:
//
//   - tiny instances (n ≤ 12, small orientation space): exhaustive exact;
//   - DisjointAngles with few antennas: the exact chain DP (zero-width
//     antennas included — the DP serves them as degenerate rays);
//   - unit demands (Sectors/Angles): the flow solver (exact for m = 1);
//   - everything else: localsearch (greedy + polish).
//
// The chosen strategy is reported in Solution.Algorithm (prefixed with
// "auto/"), so callers can see what ran. The exact chain inherits
// Options.ExactLimits, so a caller-imposed tuple budget survives dispatch.
//
// Dispatch runs under SafeSolve: a panic in the chosen solver surfaces as
// a *PanicError, never as an unwinding panic in the caller.
func SolveAuto(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	if err := validateForSolve(in); err != nil {
		return model.Solution{}, err
	}
	sol, err := SafeSolve(ctx, in, opt, dispatchAuto, "auto")
	if err != nil {
		return model.Solution{}, err
	}
	sol.Algorithm = "auto/" + sol.Algorithm
	return sol, nil
}

func dispatchAuto(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	n, m := in.N(), in.M()
	if in.Variant == model.DisjointAngles {
		if m <= angular.MaxDisjointAntennas && n <= 40 {
			return angular.SolveDisjoint(ctx, in, opt.Knapsack)
		}
		return SolveLocalSearch(ctx, in, opt)
	}
	if n <= autoExactLimit && n <= mkp.MaxExactItems && m <= 2 {
		return exact.SolveParallel(ctx, in, opt.ExactLimits, 0)
	}
	if in.UnitDemand() && n > 0 {
		return SolveUnitFlow(ctx, in, opt)
	}
	return SolveLocalSearch(ctx, in, opt)
}
