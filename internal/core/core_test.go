package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/exact"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// randInstance builds a random valid instance of the given variant.
func randInstance(rng *rand.Rand, n, m int, variant model.Variant) *model.Instance {
	in := &model.Instance{Variant: variant}
	for i := 0; i < n; i++ {
		in.Customers = append(in.Customers, model.Customer{
			Theta:  rng.Float64() * geom.TwoPi,
			R:      rng.Float64() * 10,
			Demand: 1 + rng.Int63n(6),
		})
	}
	budget := geom.TwoPi * 0.9
	for j := 0; j < m; j++ {
		maxW := budget / float64(m)
		w := 0.2 + rng.Float64()*(maxW-0.2)
		a := model.Antenna{Rho: w, Capacity: 4 + rng.Int63n(16)}
		if variant == model.Sectors {
			a.Range = 3 + rng.Float64()*8
		}
		in.Antennas = append(in.Antennas, a)
	}
	return in.Normalize()
}

// checkSolution asserts feasibility and internal consistency.
func checkSolution(t *testing.T, in *model.Instance, sol model.Solution) {
	t.Helper()
	if err := sol.Assignment.Check(in); err != nil {
		t.Fatalf("%s: infeasible: %v", sol.Algorithm, err)
	}
	if got := sol.Assignment.Profit(in); got != sol.Profit {
		t.Fatalf("%s: reported profit %d != assignment profit %d", sol.Algorithm, sol.Profit, got)
	}
	if sol.UpperBound > 0 && float64(sol.Profit) > sol.UpperBound+1e-6 {
		t.Fatalf("%s: profit %d exceeds its own bound %v", sol.Algorithm, sol.Profit, sol.UpperBound)
	}
}

func TestAllSolversFeasibleOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	variants := []model.Variant{model.Sectors, model.Angles, model.DisjointAngles}
	for trial := 0; trial < 30; trial++ {
		variant := variants[trial%3]
		in := randInstance(rng, 5+rng.Intn(20), 1+rng.Intn(3), variant)
		for _, name := range []string{"greedy", "localsearch", "lpround"} {
			solver, err := Get(name)
			if err != nil {
				t.Fatalf("Get(%s): %v", name, err)
			}
			sol, err := solver(context.Background(), in, Options{Seed: int64(trial)})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkSolution(t, in, sol)
		}
	}
}

func TestGreedyAtLeastHalfOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 3+rng.Intn(7), 1+rng.Intn(2), model.Sectors)
		opt, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		g, err := SolveGreedy(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		checkSolution(t, in, g)
		if 2*g.Profit < opt.Profit {
			t.Fatalf("greedy %d < OPT/2 (OPT=%d)", g.Profit, opt.Profit)
		}
	}
}

func TestUpperBoundDominatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 3+rng.Intn(6), 1+rng.Intn(2), model.Sectors)
		opt, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		if b := UpperBound(in); b < float64(opt.Profit)-1e-6 {
			t.Fatalf("UpperBound %v < OPT %d", b, opt.Profit)
		}
	}
}

func TestLocalSearchAndLPRoundDominateGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 8+rng.Intn(15), 1+rng.Intn(3), model.Sectors)
		g, err := SolveGreedy(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		ls, err := SolveLocalSearch(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("localsearch: %v", err)
		}
		lr, err := SolveLPRound(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("lpround: %v", err)
		}
		checkSolution(t, in, ls)
		checkSolution(t, in, lr)
		if ls.Profit < g.Profit {
			t.Fatalf("localsearch %d < greedy %d", ls.Profit, g.Profit)
		}
		if lr.Profit < g.Profit {
			t.Fatalf("lpround %d < greedy %d", lr.Profit, g.Profit)
		}
	}
}

func TestSolversDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	in := randInstance(rng, 15, 2, model.Sectors)
	for _, name := range []string{"greedy", "localsearch", "lpround"} {
		solver, _ := Get(name)
		a, err := solver(context.Background(), in, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := solver(context.Background(), in, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Profit != b.Profit {
			t.Fatalf("%s not deterministic: %d vs %d", name, a.Profit, b.Profit)
		}
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown solver must error")
	}
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 solvers, got %v", names)
	}
	for _, name := range names {
		if _, err := Get(name); err != nil {
			t.Errorf("Get(%s): %v", name, err)
		}
	}
}

func TestEmptyInstanceAllSolvers(t *testing.T) {
	in := (&model.Instance{Variant: model.Angles}).Normalize()
	for _, name := range []string{"greedy", "localsearch", "lpround", "unitflow"} {
		solver, _ := Get(name)
		sol, err := solver(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("%s on empty: %v", name, err)
		}
		if sol.Profit != 0 {
			t.Fatalf("%s on empty: profit %d", name, sol.Profit)
		}
	}
}

func TestGreedySkipBound(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	in := randInstance(rng, 10, 2, model.Sectors)
	sol, err := SolveGreedy(context.Background(), in, Options{SkipBound: true})
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if sol.UpperBound != 0 {
		t.Error("SkipBound must suppress the bound")
	}
}

func TestGreedyDisjointProducesDisjointSectors(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 10+rng.Intn(15), 2+rng.Intn(3), model.DisjointAngles)
		sol, err := SolveGreedy(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		checkSolution(t, in, sol) // Check enforces serving-sector disjointness
	}
}

func TestBaselineFeasibleAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	variants := []model.Variant{model.Sectors, model.Angles, model.DisjointAngles}
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 10+rng.Intn(20), 1+rng.Intn(4), variants[trial%3])
		sol, err := SolveBaseline(context.Background(), in, Options{Seed: 1})
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		checkSolution(t, in, sol)
	}
}

func TestGreedyUsuallyBeatsBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	winsGreedy, winsBaseline := 0, 0
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 25, 3, model.Sectors)
		g, err := SolveGreedy(context.Background(), in, Options{SkipBound: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveBaseline(context.Background(), in, Options{SkipBound: true})
		if err != nil {
			t.Fatal(err)
		}
		if g.Profit > b.Profit {
			winsGreedy++
		} else if b.Profit > g.Profit {
			winsBaseline++
		}
	}
	if winsGreedy <= winsBaseline {
		t.Errorf("greedy should usually beat the no-optimization baseline: %d vs %d", winsGreedy, winsBaseline)
	}
}

func TestSolveAutoPicksStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	cases := []struct {
		in         *model.Instance
		wantPrefix string
	}{
		{randInstance(rng, 6, 2, model.Sectors), "auto/exact"},
		{randInstance(rng, 8, 2, model.DisjointAngles), "auto/disjoint-dp"},
		{func() *model.Instance {
			in := randInstance(rng, 30, 2, model.Sectors)
			for i := range in.Customers {
				in.Customers[i].Demand = 1
				in.Customers[i].Profit = 1
			}
			return in
		}(), "auto/unitflow"},
		{randInstance(rng, 40, 3, model.Sectors), "auto/localsearch"},
	}
	for _, c := range cases {
		sol, err := SolveAuto(context.Background(), c.in, Options{Seed: 1, SkipBound: true})
		if err != nil {
			t.Fatalf("SolveAuto(context.Background(), %v): %v", c.wantPrefix, err)
		}
		if sol.Algorithm != c.wantPrefix {
			t.Errorf("algorithm = %q, want %q", sol.Algorithm, c.wantPrefix)
		}
		if err := sol.Assignment.Check(c.in); err != nil {
			t.Fatalf("%s infeasible: %v", sol.Algorithm, err)
		}
	}
}

func TestSolveAutoExactOnTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(rng, 4+rng.Intn(6), 1+rng.Intn(2), model.Sectors)
		auto, err := SolveAuto(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := exact.Solve(context.Background(), in, exact.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if auto.Profit != ex.Profit {
			t.Fatalf("auto %d != exact %d on tiny instance", auto.Profit, ex.Profit)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.roundTrials() != DefaultRoundTrials {
		t.Errorf("roundTrials default = %d", o.roundTrials())
	}
	if o.lsRounds() != DefaultLocalSearchRounds {
		t.Errorf("lsRounds default = %d", o.lsRounds())
	}
	o = Options{RoundTrials: 3, LocalSearchRounds: 5}
	if o.roundTrials() != 3 || o.lsRounds() != 5 {
		t.Error("explicit options ignored")
	}
}

func TestSolversRejectInvalidInstance(t *testing.T) {
	bad := &model.Instance{
		Variant:   model.Sectors,
		Customers: []model.Customer{{ID: 0, Theta: 0.1, R: 1, Demand: -1}},
	}
	for _, name := range []string{"greedy", "localsearch", "lpround", "anneal", "baseline", "auto", "unitflow"} {
		solver, _ := Get(name)
		if _, err := solver(context.Background(), bad, Options{}); err == nil {
			t.Errorf("%s accepted an invalid instance", name)
		}
	}
}

func TestLocalSearchCustomRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(185))
	in := randInstance(rng, 15, 2, model.Sectors)
	sol, err := SolveLocalSearch(context.Background(), in, Options{LocalSearchRounds: 1, SkipBound: true})
	if err != nil {
		t.Fatalf("localsearch: %v", err)
	}
	checkSolution(t, in, sol)
}
