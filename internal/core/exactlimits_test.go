package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"sectorpack/internal/model"
)

// TestRegistryExactHonorsLimits is the regression test for the registry's
// "exact" entry dropping Options on the floor: a caller-imposed tuple
// budget must reach the solver. With MaxTuples = 1 any non-trivial
// instance exceeds the budget, so the solve must fail with the budget
// error instead of silently running under the 5M-tuple default.
func TestRegistryExactHonorsLimits(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(11)), 6, 2, model.Sectors)
	solver, err := Get("exact")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}
	opt.ExactLimits.MaxTuples = 1
	_, err = solver(context.Background(), in, opt)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want tuple-budget error (limits were dropped)", err)
	}
	// Default limits still solve the same instance.
	if _, err := solver(context.Background(), in, Options{}); err != nil {
		t.Fatalf("default limits: %v", err)
	}
}

// TestAutoInheritsExactLimits checks the dispatch path: SolveAuto routes
// tiny instances to the exact solver and must forward Options.ExactLimits.
func TestAutoInheritsExactLimits(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(12)), 4, 2, model.Sectors)
	opt := Options{}
	opt.ExactLimits.MaxTuples = 1
	_, err := SolveAuto(context.Background(), in, opt)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want tuple-budget error forwarded through auto dispatch", err)
	}
	sol, err := SolveAuto(context.Background(), in, Options{})
	if err != nil {
		t.Fatalf("default limits: %v", err)
	}
	if !strings.HasPrefix(sol.Algorithm, "auto/exact") {
		t.Fatalf("algorithm %q: expected auto to dispatch to exact on a tiny instance", sol.Algorithm)
	}
}
