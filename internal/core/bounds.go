package core

import (
	"sectorpack/internal/angular"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// UpperBound returns a certified upper bound on the optimal profit: the
// minimum of the total profit and the sum over antennas of the best
// fractional-knapsack (Dantzig) value over all candidate orientations.
//
// Validity: an optimal solution serves disjoint customer sets S_j, and each
// S_j is contained in some candidate window of antenna j with total demand
// at most C_j, so profit(S_j) is at most the Dantzig bound of that window;
// summing over j gives the bound. Disjointness constraints only shrink the
// optimum, so the bound also holds for DisjointAngles.
func UpperBound(in *model.Instance) float64 {
	total := float64(in.TotalProfit())
	var sum float64
	for j := range in.Antennas {
		best := 0.0
		for _, alpha := range angular.Candidates(in, j) {
			items, _ := angular.WindowItems(in, j, alpha, nil)
			if len(items) == 0 {
				continue
			}
			if b := knapsack.FractionalBound(items, in.Antennas[j].Capacity); b > best {
				best = b
			}
		}
		sum += best
	}
	if sum < total {
		return sum
	}
	return total
}
