// Package core assembles the sector-packing solvers from the substrates:
// candidate-orientation enumeration (internal/angular), knapsack and
// multiple-knapsack engines (internal/knapsack, internal/mkp), the LP
// relaxation (internal/lp via internal/mkp), and max-flow (internal/flow).
//
// The solvers, in decreasing guarantee / increasing scalability order:
//
//   - SolveExact (re-exported from internal/exact by the root package):
//     ground truth for tiny instances.
//   - angular.SolveDisjoint: exact pseudo-polynomial DP for the
//     DisjointAngles variant with few antennas.
//   - SolveUnitFlow: exact for unit demands and a single antenna; optimal
//     given fixed orientations for any antenna count.
//   - SolveGreedy: the successive best-window heuristic, the workhorse.
//   - SolveLPRound: LP relaxation of the assignment at greedy-chosen
//     orientations, randomized rounding, local-search repair.
//   - SolveLocalSearch: greedy plus reassignment/reorientation polish.
//
// Every solver returns a model.Solution whose Assignment passes
// (*model.Assignment).Check against the instance; tests enforce this
// invariant on randomized inputs.
package core

import (
	"fmt"
	"math/rand"

	"sectorpack/internal/exact"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// Options tunes the approximation solvers.
type Options struct {
	// Knapsack configures the inner single-knapsack solves.
	Knapsack knapsack.Options
	// ExactLimits bounds the exhaustive exact solver when it is reached
	// through the registry or SolveAuto dispatch; the zero value keeps the
	// solver's own defaults (exact.DefaultMaxTuples etc.). Callers serving
	// untrusted instances — the sectord daemon in particular — use it to
	// cap the orientation-tuple budget per request.
	ExactLimits exact.Limits
	// Seed drives all randomized components (LP rounding); solvers are
	// deterministic functions of (instance, Options).
	Seed int64
	// RoundTrials is the number of independent LP roundings to take the
	// best of; zero means DefaultRoundTrials.
	RoundTrials int
	// LocalSearchRounds caps local-search sweeps; zero means
	// DefaultLocalSearchRounds.
	LocalSearchRounds int
	// SkipBound suppresses the upper-bound computation (which costs one
	// fractional-knapsack pass per candidate orientation) when the caller
	// does not need ratios.
	SkipBound bool
}

// DefaultRoundTrials is the LP-rounding repetition count.
const DefaultRoundTrials = 8

// DefaultLocalSearchRounds caps local-search sweeps.
const DefaultLocalSearchRounds = 60

func (o Options) roundTrials() int {
	if o.RoundTrials <= 0 {
		return DefaultRoundTrials
	}
	return o.RoundTrials
}

func (o Options) lsRounds() int {
	if o.LocalSearchRounds <= 0 {
		return DefaultLocalSearchRounds
	}
	return o.LocalSearchRounds
}

func (o Options) rng() *rand.Rand { return rand.New(rand.NewSource(o.Seed)) }

// validateForSolve runs the shared precondition checks.
func validateForSolve(in *model.Instance) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("core: invalid instance: %w", err)
	}
	return nil
}
