package core

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// rotate returns a copy of the instance with every customer angle shifted
// by delta. The problem is rotation-invariant, so every solver's PROFIT
// must be unchanged (orientations shift along; candidate enumeration is
// rotation-covariant).
func rotate(in *model.Instance, delta float64) *model.Instance {
	out := in.Clone()
	for i := range out.Customers {
		out.Customers[i].Theta = geom.NormAngle(out.Customers[i].Theta + delta)
	}
	return out
}

// reflect returns the instance mirrored through the x-axis (θ → −θ).
// Reflection maps sectors to sectors (with swapped boundary roles), so
// exact optima are invariant; greedy-family solvers are too, because every
// candidate family used is closed under the induced transformation's
// optimal-solution image — which the test verifies empirically.
func reflect(in *model.Instance) *model.Instance {
	out := in.Clone()
	for i := range out.Customers {
		out.Customers[i].Theta = geom.NormAngle(-out.Customers[i].Theta)
	}
	return out
}

func TestRotationInvarianceAllSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	solvers := []string{"greedy", "localsearch", "lpround", "anneal"}
	for trial := 0; trial < 8; trial++ {
		in := randInstance(rng, 10+rng.Intn(15), 1+rng.Intn(3), model.Sectors)
		delta := rng.Float64() * geom.TwoPi
		rot := rotate(in, delta)
		for _, name := range solvers {
			solver, _ := Get(name)
			a, err := solver(context.Background(), in, Options{Seed: 3, SkipBound: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, err := solver(context.Background(), rot, Options{Seed: 3, SkipBound: true})
			if err != nil {
				t.Fatalf("%s rotated: %v", name, err)
			}
			// Greedy-family solvers are rotation-invariant only modulo
			// tie-breaking: rotation permutes the candidate evaluation
			// order, equal-profit windows with different customer sets
			// may win, and the difference cascades. The principled
			// metamorphic assertion uses the 1/2 guarantee: both runs
			// approximate the SAME (rotation-invariant) optimum, so each
			// is at least half the other.
			lo, hi := a.Profit, b.Profit
			if lo > hi {
				lo, hi = hi, lo
			}
			if 2*lo < hi {
				t.Fatalf("%s rotation changed profit beyond the guarantee band: %d vs %d (δ=%v)",
					name, a.Profit, b.Profit, delta)
			}
		}
	}
}

func TestRotationInvarianceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(rng, 4+rng.Intn(6), 1+rng.Intn(2), model.Sectors)
		delta := rng.Float64() * geom.TwoPi
		solver, _ := Get("exact")
		a, err := solver(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := solver(context.Background(), rotate(in, delta), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Profit != b.Profit {
			t.Fatalf("exact not rotation-invariant: %d vs %d", a.Profit, b.Profit)
		}
	}
}

func TestReflectionInvarianceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(rng, 4+rng.Intn(6), 1+rng.Intn(2), model.Sectors)
		solver, _ := Get("exact")
		a, err := solver(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := solver(context.Background(), reflect(in), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Profit != b.Profit {
			t.Fatalf("exact not reflection-invariant: %d vs %d", a.Profit, b.Profit)
		}
	}
}

// TestProfitScalingInvariance: multiplying all profits by a constant
// multiplies every profit-maximizing solver's value by the same constant.
func TestProfitScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(rng, 10+rng.Intn(10), 2, model.Sectors)
		scaled := in.Clone()
		for i := range scaled.Customers {
			scaled.Customers[i].Profit = in.Customers[i].Profit * 3
		}
		for _, name := range []string{"greedy", "localsearch"} {
			solver, _ := Get(name)
			a, err := solver(context.Background(), in, Options{Seed: 5, SkipBound: true})
			if err != nil {
				t.Fatal(err)
			}
			b, err := solver(context.Background(), scaled, Options{Seed: 5, SkipBound: true})
			if err != nil {
				t.Fatal(err)
			}
			if b.Profit != 3*a.Profit {
				t.Fatalf("%s: scaling broke invariance: %d vs 3×%d", name, b.Profit, a.Profit)
			}
		}
	}
}
