package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sectorpack/internal/model"
)

// The misbehaving-solver registry: every way a buggy solver can fail the
// pipeline, as injectable Solver values. The sectord tests drive the same
// shapes through httptest; here they prove the core pipeline in isolation.

// panickingSolver panics mid-solve.
func panickingSolver(context.Context, *model.Instance, Options) (model.Solution, error) {
	panic("injected solver crash")
}

// hangingSolver parks until its context ends (a well-behaved hang).
func hangingSolver(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	<-ctx.Done()
	return model.Solution{}, ctx.Err()
}

// wedgedSolver ignores its context entirely and never returns until the
// release channel closes — the worst-behaved hang.
func wedgedSolver(release <-chan struct{}) Solver {
	return func(context.Context, *model.Instance, Options) (model.Solution, error) {
		<-release
		return model.Solution{}, errors.New("wedged solver released")
	}
}

// invalidAssignmentSolver claims to serve every customer with antenna 0 at
// orientation 0 — overloading it and leaving most customers uncovered.
func invalidAssignmentSolver(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	as := model.NewAssignment(in.N(), in.M())
	var profit int64
	for i := range as.Owner {
		as.Owner[i] = 0
		profit += in.Customers[i].Profit
	}
	return model.Solution{Assignment: as, Profit: profit, Algorithm: "invalid"}, nil
}

// wrongProfitSolver returns an empty (feasible) assignment but claims an
// absurd profit for it.
func wrongProfitSolver(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	return model.Solution{
		Assignment: model.NewAssignment(in.N(), in.M()),
		Profit:     1 << 40,
		Algorithm:  "wrong-profit",
	}, nil
}

// erroringSolver fails with a plain error.
func erroringSolver(context.Context, *model.Instance, Options) (model.Solution, error) {
	return model.Solution{}, errors.New("injected solver error")
}

func hedgeInstance(t *testing.T) *model.Instance {
	t.Helper()
	return randInstance(rand.New(rand.NewSource(99)), 12, 2, model.Sectors)
}

func TestSafeSolveConvertsPanic(t *testing.T) {
	in := hedgeInstance(t)
	sol, err := SafeSolve(context.Background(), in, Options{}, panickingSolver, "boom")
	if err == nil {
		t.Fatal("SafeSolve returned nil error for a panicking solver")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T %v, want *PanicError", err, err)
	}
	if pe.Solver != "boom" || pe.Value != "injected solver crash" {
		t.Errorf("PanicError{Solver: %q, Value: %v}, want boom / injected solver crash", pe.Solver, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panickingSolver") {
		t.Errorf("captured stack does not name the panicking frame:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q, want the solver name in it", pe.Error())
	}
	if sol.Assignment != nil {
		t.Error("panic path returned a non-zero solution")
	}
}

func TestSafeSolvePassthrough(t *testing.T) {
	in := hedgeInstance(t)
	direct, err := SolveGreedy(context.Background(), in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := SafeSolve(context.Background(), in, Options{Seed: 3}, SolveGreedy, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, direct, wrapped)
}

func TestRegistryGetIsolatesPanics(t *testing.T) {
	Register("test-core-panic", panickingSolver)
	t.Cleanup(func() { Unregister("test-core-panic") })
	s, err := Get("test-core-panic")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s(context.Background(), hedgeInstance(t), Options{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("registry-resolved panicking solver returned %T %v, want *PanicError", err, err)
	}
	if pe.Solver != "test-core-panic" {
		t.Errorf("PanicError.Solver = %q, want the registry name", pe.Solver)
	}
}

func TestSolveAutoStaysConsistentUnderSafeSolve(t *testing.T) {
	// SolveAuto's dispatch runs through SafeSolve; panic conversion itself
	// is covered by TestSafeSolveConvertsPanic, so this pins the healthy
	// path: the wrapper must not perturb a normal auto solve.
	in := hedgeInstance(t)
	sol, err := SolveAuto(context.Background(), in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySolution("auto", in, sol); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sol.Algorithm, "auto/") {
		t.Errorf("Algorithm = %q, want auto/ prefix", sol.Algorithm)
	}
}

func TestVerifySolutionGate(t *testing.T) {
	in := hedgeInstance(t)
	cases := []struct {
		name   string
		solver Solver
	}{
		{"invalid-assignment", invalidAssignmentSolver},
		{"wrong-profit", wrongProfitSolver},
	}
	for _, tc := range cases {
		sol, err := tc.solver(context.Background(), in, Options{})
		if err != nil {
			t.Fatalf("%s: unexpected solve error %v", tc.name, err)
		}
		err = VerifySolution(tc.name, in, sol)
		var ie *InvalidSolutionError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: gate returned %T %v, want *InvalidSolutionError", tc.name, err, err)
		}
		if ie.Solver != tc.name {
			t.Errorf("%s: gate named solver %q", tc.name, ie.Solver)
		}
	}
	if err := VerifySolution("nil", in, model.Solution{}); err == nil {
		t.Error("gate accepted a solution with no assignment")
	}
	good, err := SolveGreedy(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySolution("greedy", in, good); err != nil {
		t.Errorf("gate rejected a feasible greedy solution: %v", err)
	}
}

func assertSameSolution(t *testing.T, want, got model.Solution) {
	t.Helper()
	if want.Profit != got.Profit || want.Algorithm != got.Algorithm {
		t.Fatalf("solution differs: profit %d/%d algorithm %q/%q", want.Profit, got.Profit, want.Algorithm, got.Algorithm)
	}
	for j, o := range want.Assignment.Orientation {
		if math.Float64bits(got.Assignment.Orientation[j]) != math.Float64bits(o) {
			t.Fatalf("orientation[%d] = %v, want %v", j, got.Assignment.Orientation[j], o)
		}
	}
	for i, o := range want.Assignment.Owner {
		if got.Assignment.Owner[i] != o {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Assignment.Owner[i], o)
		}
	}
}

func TestSolveHedgedPrimarySuccessBitIdentical(t *testing.T) {
	in := hedgeInstance(t)
	direct, err := SolveLocalSearch(context.Background(), in, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hedged, err := SolveHedged(context.Background(), in, SolveLocalSearch, HedgeOptions{
		Options:     Options{Seed: 7},
		PrimaryName: "localsearch",
	})
	if err != nil {
		t.Fatal(err)
	}
	if hedged.Degraded {
		t.Fatal("healthy primary marked Degraded")
	}
	if hedged.SolverUsed != "localsearch" {
		t.Errorf("SolverUsed = %q, want localsearch", hedged.SolverUsed)
	}
	if hedged.FallbackReason != "" || hedged.FallbackDetail != "" {
		t.Errorf("fallback provenance set on a healthy solve: %q %q", hedged.FallbackReason, hedged.FallbackDetail)
	}
	assertSameSolution(t, direct, hedged)
}

// hedgeFailureCase drives SolveHedged with one misbehaving primary and
// asserts the degraded greedy answer plus its provenance.
func hedgeFailureCase(t *testing.T, primary Solver, ctx context.Context, wantReason string) model.Solution {
	t.Helper()
	in := hedgeInstance(t)
	sol, err := SolveHedged(ctx, in, primary, HedgeOptions{
		Options:     Options{Seed: 1},
		PrimaryName: "test-primary",
	})
	if err != nil {
		t.Fatalf("SolveHedged: %v", err)
	}
	if !sol.Degraded {
		t.Fatal("expected a degraded solution")
	}
	if sol.SolverUsed != "greedy" {
		t.Errorf("SolverUsed = %q, want greedy", sol.SolverUsed)
	}
	if sol.FallbackReason != wantReason {
		t.Errorf("FallbackReason = %q, want %q (detail: %s)", sol.FallbackReason, wantReason, sol.FallbackDetail)
	}
	if sol.FallbackDetail == "" {
		t.Error("FallbackDetail empty")
	}
	if err := VerifySolution("greedy", in, sol); err != nil {
		t.Errorf("degraded solution fails the gate: %v", err)
	}
	return sol
}

func TestSolveHedgedPanicFallsBack(t *testing.T) {
	hedgeFailureCase(t, panickingSolver, context.Background(), FallbackPanic)
}

func TestSolveHedgedErrorFallsBack(t *testing.T) {
	hedgeFailureCase(t, erroringSolver, context.Background(), FallbackError)
}

func TestSolveHedgedInvalidOutputFallsBack(t *testing.T) {
	hedgeFailureCase(t, invalidAssignmentSolver, context.Background(), FallbackInvalid)
	hedgeFailureCase(t, wrongProfitSolver, context.Background(), FallbackInvalid)
}

func TestSolveHedgedDeadlineFallsBack(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol := hedgeFailureCase(t, hangingSolver, ctx, FallbackDeadline)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("degraded answer took %v, want promptly after the 50ms deadline", elapsed)
	}
	// Greedy on this tiny instance finishes in microseconds, long before
	// the 50ms deadline: the hedge should have won.
	if !sol.HedgeWin {
		t.Error("fallback finished before the deadline but HedgeWin is false")
	}
}

func TestSolveHedgedWedgedPrimaryDoesNotBlock(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The wedged solver never observes ctx; SolveHedged must still answer.
	hedgeFailureCase(t, wedgedSolver(release), ctx, FallbackDeadline)
}

func TestSolveHedgedBothLegsFail(t *testing.T) {
	in := hedgeInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := SolveHedged(ctx, in, hangingSolver, HedgeOptions{
		PrimaryName:  "test-hang",
		Fallback:     erroringSolver,
		FallbackName: "test-error",
	})
	if err == nil {
		t.Fatal("expected an error when both legs fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("joined error %v does not surface context.DeadlineExceeded", err)
	}
	for _, frag := range []string{"test-hang", "test-error"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %s", err, frag)
		}
	}
}

func TestSolveHedgedCustomFallback(t *testing.T) {
	in := hedgeInstance(t)
	sol, err := SolveHedged(context.Background(), in, panickingSolver, HedgeOptions{
		PrimaryName:  "test-panic",
		Fallback:     SolveBaseline,
		FallbackName: "baseline",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Degraded || sol.SolverUsed != "baseline" {
		t.Errorf("Degraded=%v SolverUsed=%q, want degraded baseline", sol.Degraded, sol.SolverUsed)
	}
	if sol.Algorithm != "baseline" {
		t.Errorf("Algorithm = %q, want baseline", sol.Algorithm)
	}
}

func TestSolveHedgedInvalidInstance(t *testing.T) {
	in := &model.Instance{Customers: []model.Customer{{ID: 0, Theta: -3, R: 1, Demand: 1}}}
	_, err := SolveHedged(context.Background(), in, SolveGreedy, HedgeOptions{PrimaryName: "greedy"})
	if err == nil {
		t.Fatal("SolveHedged accepted an invalid instance")
	}
}

// TestSolveHedgedFallbackDetachedFromDeadline pins the core design point:
// the fallback leg must keep running after ctx's deadline has fired, or a
// deadline would kill both legs and the hedge could never degrade.
func TestSolveHedgedFallbackDetachedFromDeadline(t *testing.T) {
	in := hedgeInstance(t)
	// A fallback that reports which context family it observed.
	sawLiveCtx := make(chan bool, 1)
	slowFallback := func(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
		// By now the 30ms request deadline has long fired; a fallback
		// chained to it would be dead already.
		time.Sleep(80 * time.Millisecond)
		select {
		case sawLiveCtx <- ctx.Err() == nil:
		default:
		}
		return SolveGreedy(ctx, in, opt)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sol, err := SolveHedged(ctx, in, hangingSolver, HedgeOptions{
		PrimaryName:  "test-hang",
		Fallback:     slowFallback,
		FallbackName: "slow-greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Degraded || sol.HedgeWin {
		t.Errorf("Degraded=%v HedgeWin=%v, want degraded non-win (fallback outlived the deadline)", sol.Degraded, sol.HedgeWin)
	}
	if live := <-sawLiveCtx; !live {
		t.Error("fallback context was dead after the request deadline; the leg is not detached")
	}
}
