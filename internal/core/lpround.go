package core

import (
	"context"

	"sectorpack/internal/knapsack"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// SolveLPRound fixes orientations with a greedy pass, then re-optimizes the
// customer-to-antenna assignment globally: it solves the fractional
// assignment LP at those orientations, rounds randomly (best of
// Options.RoundTrials), and repairs with local search. It strictly
// dominates plain greedy at the same orientations whenever rounding finds
// a better global assignment; the returned UpperBound is the instance-wide
// bound from UpperBound (the per-orientation LP value is NOT a bound on the
// true optimum, which may orient differently).
// Cancellation: the greedy pass checks ctx per step; ctx is re-checked
// before the LP relaxation and before rounding, so a cancelled solve
// returns ctx.Err() without entering the LP machinery.
func SolveLPRound(ctx context.Context, in *model.Instance, opt Options) (model.Solution, error) {
	greedy, err := SolveGreedy(ctx, in, opt)
	if err != nil {
		return model.Solution{}, err
	}
	n, m := in.N(), in.M()
	sol := model.Solution{
		Algorithm:  "lpround",
		Assignment: greedy.Assignment.Clone(),
		Profit:     greedy.Profit,
		UpperBound: greedy.UpperBound,
	}
	if n == 0 || m == 0 {
		return sol, nil
	}
	// Build the restricted MKP at the greedy orientations.
	p := &mkp.Problem{
		Items:      make([]knapsack.Item, n),
		Capacities: make([]int64, m),
		Eligible:   make([][]bool, n),
	}
	for i, c := range in.Customers {
		p.Items[i] = knapsack.Item{Weight: c.Demand, Profit: c.Profit}
		p.Eligible[i] = make([]bool, m)
	}
	for j, a := range in.Antennas {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		p.Capacities[j] = a.Capacity
		for i, c := range in.Customers {
			covers := a.Covers(sol.Assignment.Orientation[j], c)
			if in.Variant == model.DisjointAngles {
				// Only antennas the greedy actually uses hold a cleared
				// sector; letting an idle antenna pick up customers could
				// violate disjointness.
				covers = covers && usedBy(greedy.Assignment, j)
			}
			p.Eligible[i][j] = covers
		}
	}
	if err := ctx.Err(); err != nil {
		return model.Solution{}, err
	}
	_, x, err := mkp.LPRelax(p)
	if err != nil {
		return model.Solution{}, err
	}
	if err := ctx.Err(); err != nil {
		return model.Solution{}, err
	}
	rounded, err := mkp.RoundLP(p, x, opt.rng(), opt.roundTrials())
	if err != nil {
		return model.Solution{}, err
	}
	if rounded.Profit > sol.Profit {
		for i, b := range rounded.Bin {
			if b == mkp.Unassigned {
				sol.Assignment.Owner[i] = model.Unassigned
			} else {
				sol.Assignment.Owner[i] = b
			}
		}
		sol.Profit = rounded.Profit
	}
	return sol, nil
}

// usedBy reports whether antenna j serves at least one customer.
func usedBy(as *model.Assignment, j int) bool {
	for _, owner := range as.Owner {
		if owner == j {
			return true
		}
	}
	return false
}
