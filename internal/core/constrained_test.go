package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/angular"
	"sectorpack/internal/gen"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// TestNearAngleSeam pins the candidate-dedup predicate, in particular the
// 2π seam cases: a placed-sector end just below 2π duplicates a customer
// candidate at ~0 and vice versa.
func TestNearAngleSeam(t *testing.T) {
	sorted := []float64{1e-10, 1.0, geom.TwoPi - 1e-10}
	cases := []struct {
		alpha float64
		want  bool
	}{
		{1.0 + geom.Eps/2, true},   // adjacent within Eps
		{1.0 - geom.Eps/2, true},   // adjacent from below
		{0.5, false},               // nowhere near a candidate
		{geom.TwoPi - 5e-11, true}, // seam: wraps onto sorted[0]
		{2e-10, true},              // near sorted[0] directly
		{geom.TwoPi - 2e-10, true}, // near the last entry
	}
	for _, c := range cases {
		if got := nearAngle(sorted, nil, c.alpha); got != c.want {
			t.Errorf("nearAngle(%v) = %v, want %v", c.alpha, got, c.want)
		}
	}
	// The extras slice (already-appended sector ends) is scanned with full
	// circular distance, seam included.
	if !nearAngle(nil, []float64{3.0}, 3.0+geom.Eps/2) {
		t.Error("extras within Eps not detected")
	}
	if !nearAngle(nil, []float64{geom.TwoPi - 1e-10}, 1e-10) {
		t.Error("extras across the seam not detected")
	}
	if nearAngle(nil, []float64{3.0}, 3.5) {
		t.Error("distant extra falsely matched")
	}
}

// TestBestWindowConstrainedMatchesBruteForce compares the constrained
// best-window search — cached candidates, end-angle dedup, Dantzig pruning —
// against a brute-force reference that evaluates every base candidate and
// every placed-sector end with no dedup at all. Placed sectors are anchored
// so that their ends coincide with customer angles, forcing the dedup path;
// duplicates are harmless in the reference (same window, same profit, and
// the earlier twin wins the strict fold), so results must be bit-identical.
func TestBestWindowConstrainedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	fams := gen.Families()
	for trial := 0; trial < 40; trial++ {
		in := gen.MustGenerate(gen.Config{
			Family:  fams[trial%len(fams)],
			Seed:    int64(trial + 1),
			N:       22,
			M:       3,
			Variant: model.DisjointAngles,
			Rho:     1.1,
		})
		n := in.N()
		rho := in.Antennas[0].Rho

		// Two placed sectors: one ending exactly at a random customer angle
		// (the flush-chain collision the dedup exists for), one arbitrary.
		theta := in.Customers[rng.Intn(n)].Theta
		placed := []geom.Interval{
			geom.NewInterval(geom.NormAngle(theta-rho), rho),
			geom.NewInterval(rng.Float64()*geom.TwoPi, rho),
		}
		var active []bool
		if trial%2 == 1 {
			active = make([]bool, n)
			for i := range active {
				active[i] = rng.Intn(4) != 0
			}
		}

		got, err := bestWindowConstrained(context.Background(), angular.NewEngine(in), 0, active, placed, knapsack.Options{})
		if err != nil {
			t.Fatalf("trial %d: bestWindowConstrained: %v", trial, err)
		}

		// Brute force, duplicates and all.
		cands := append([]float64{}, angular.Candidates(in, 0)...)
		for _, iv := range placed {
			cands = append(cands, iv.End())
		}
		want := angular.Window{Profit: -1, Exact: true}
		for _, alpha := range cands {
			sector := geom.NewInterval(alpha, rho)
			blocked := false
			for _, iv := range placed {
				if sector.InteriorsOverlap(iv) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			items, ids := angular.WindowItems(in, 0, alpha, active)
			if len(ids) == 0 {
				continue
			}
			res, exact, err := knapsack.Solve(items, in.Antennas[0].Capacity, knapsack.Options{})
			if err != nil {
				t.Fatalf("trial %d reference: %v", trial, err)
			}
			w := angular.Window{Alpha: alpha, Profit: res.Profit, Exact: exact}
			for k, take := range res.Take {
				if take {
					w.Customers = append(w.Customers, ids[k])
				}
			}
			if w.Profit > want.Profit {
				w.Exact = w.Exact && want.Exact
				want = w
			} else {
				want.Exact = want.Exact && w.Exact
			}
		}
		if want.Profit < 0 { // nothing evaluated: clamp as the fold does
			want.Profit = 0
			want.Customers = nil
		}

		if math.Float64bits(got.Alpha) != math.Float64bits(want.Alpha) ||
			got.Profit != want.Profit || got.Exact != want.Exact ||
			len(got.Customers) != len(want.Customers) {
			t.Fatalf("trial %d: constrained %+v != brute force %+v", trial, got, want)
		}
		for k := range got.Customers {
			if got.Customers[k] != want.Customers[k] {
				t.Fatalf("trial %d: constrained %+v != brute force %+v", trial, got, want)
			}
		}

		// The winning sector must actually keep clear of the placed ones.
		if got.Profit > 0 {
			sector := geom.NewInterval(got.Alpha, rho)
			for _, iv := range placed {
				if sector.InteriorsOverlap(iv) {
					t.Fatalf("trial %d: returned sector %v overlaps placed %v", trial, sector, iv)
				}
			}
		}
	}
}
