package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// fuzzSeedInstances mirrors the shapes exercised by examples/ (quickstart
// uniform, hotspot clusters, cellular rings, capacity-tight zipf, the
// disjoint multitower layout) plus the degenerate corners the fault
// injector cares about: zero-width rays, MinRange annuli, and unbounded
// Angles instances.
func fuzzSeedInstances() []*model.Instance {
	seeds := []*model.Instance{
		gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 1, N: 8, M: 2, Variant: model.Sectors}),
		gen.MustGenerate(gen.Config{Family: gen.Hotspot, Seed: 2, N: 10, M: 2, Variant: model.Sectors}),
		gen.MustGenerate(gen.Config{Family: gen.Rings, Seed: 3, N: 9, M: 2, Variant: model.Sectors, MinRange: 1}),
		gen.MustGenerate(gen.Config{Family: gen.Zipf, Seed: 4, N: 8, M: 2, Variant: model.Angles}),
		gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 5, N: 8, M: 2, Variant: model.DisjointAngles}),
		gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 6, N: 6, M: 1, Variant: model.Sectors, UnitDemand: true}),
	}
	ray := &model.Instance{
		Name:    "fuzz-ray",
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 1.25, R: 2, Demand: 1},
			{Theta: 1.25, R: 4, Demand: 2},
			{Theta: 2.5, R: 2, Demand: 1},
		},
		Antennas: []model.Antenna{{Rho: 0, Range: 5, Capacity: 3}},
	}
	seeds = append(seeds, ray.Normalize())
	return seeds
}

// FuzzEnvelopeSolve is the end-to-end fuzz target: arbitrary bytes →
// model.ReadJSON (the LoadFile envelope) → SolveAuto → VerifySolution.
// It fails on any solver panic (SafeSolve converts them to *PanicError, so
// the fuzzer reports the captured stack instead of a raw crash) and on any
// solve whose output fails the feasibility gate.
func FuzzEnvelopeSolve(f *testing.F) {
	for _, in := range fuzzSeedInstances() {
		var buf bytes.Buffer
		if err := model.WriteJSON(&buf, in); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := model.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // not a valid envelope; ReadJSON rejecting it is the contract
		}
		// Keep each execution cheap: the fuzzer explores shape, not scale.
		if in.N() > 24 || in.M() > 4 {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sol, err := SolveAuto(ctx, in, Options{Seed: 1})
		if err != nil {
			var pe *PanicError
			if errors.As(err, &pe) {
				t.Fatalf("SolveAuto panicked on a valid instance: %v\n%s", pe.Value, pe.Stack)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Skip("instance too slow for the fuzz budget")
			}
			t.Fatalf("SolveAuto failed on a ReadJSON-validated instance: %v", err)
		}
		if err := VerifySolution("auto", in, sol); err != nil {
			t.Fatalf("SolveAuto output failed the feasibility gate: %v", err)
		}
	})
}
