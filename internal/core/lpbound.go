package core

import (
	"fmt"

	"sectorpack/internal/angular"
	"sectorpack/internal/lp"
	"sectorpack/internal/model"
)

// MaxConfigLPVars caps the configuration LP size; beyond it the bound
// refuses rather than grinding the dense simplex.
const MaxConfigLPVars = 20_000

// ConfigLPBound returns the orientation-relaxed configuration-LP upper
// bound on the optimal profit — strictly tighter than UpperBound on
// instances where antennas compete for the same customers.
//
// Formulation: for each antenna j and candidate orientation α, a variable
// x_{jα} ∈ [0,1] ("how much of j points at α"); for each coverable triple
// (i, j, α), a variable y_{ijα} ≥ 0 ("how much of customer i antenna j
// serves at α"). Constraints: Σ_α x_{jα} ≤ 1 per antenna, Σ y_{ijα} ≤ 1
// per customer, and Σ_i d_i·y_{ijα} ≤ C_j·x_{jα} per (j, α). Maximize
// Σ p_i·y_{ijα}. Every integral solution embeds (x = the chosen
// orientations, y = the assignment), so the LP value dominates OPT; the
// LP may split antennas across orientations fractionally, which is the
// relaxation. (The y ≤ x coupling rows are deliberately dropped: that
// only loosens the bound slightly and keeps the tableau small.)
func ConfigLPBound(in *model.Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, fmt.Errorf("core: ConfigLPBound: %w", err)
	}
	n, m := in.N(), in.M()
	if n == 0 || m == 0 {
		return 0, nil
	}
	type orient struct {
		j     int
		alpha float64
		xVar  int
	}
	var orients []orient
	type triple struct {
		i, oIdx int // customer, orientation index into orients
		yVar    int
	}
	var triples []triple

	nextVar := 0
	for j := 0; j < m; j++ {
		for _, alpha := range angular.Candidates(in, j) {
			orients = append(orients, orient{j: j, alpha: alpha, xVar: nextVar})
			nextVar++
		}
	}
	for oIdx, o := range orients {
		for i, c := range in.Customers {
			if in.Antennas[o.j].Covers(o.alpha, c) {
				triples = append(triples, triple{i: i, oIdx: oIdx, yVar: nextVar})
				nextVar++
			}
		}
	}
	if nextVar > MaxConfigLPVars {
		return 0, fmt.Errorf("core: ConfigLPBound: %d variables exceeds cap %d", nextVar, MaxConfigLPVars)
	}

	c := make([]float64, nextVar)
	for _, t := range triples {
		c[t.yVar] = float64(in.Customers[t.i].Profit)
	}
	var a [][]float64
	var b []float64
	row := func() []float64 { return make([]float64, nextVar) }

	// Σ_α x_{jα} ≤ 1 per antenna.
	perAntenna := make([][]float64, m)
	for j := range perAntenna {
		perAntenna[j] = row()
	}
	for _, o := range orients {
		perAntenna[o.j][o.xVar] = 1
	}
	for j := 0; j < m; j++ {
		a = append(a, perAntenna[j])
		b = append(b, 1)
	}
	// Σ y ≤ 1 per customer.
	perCustomer := make([][]float64, n)
	for i := range perCustomer {
		perCustomer[i] = row()
	}
	for _, t := range triples {
		perCustomer[t.i][t.yVar] = 1
	}
	for i := 0; i < n; i++ {
		a = append(a, perCustomer[i])
		b = append(b, 1)
	}
	// Σ_i d_i y_{ijα} − C_j x_{jα} ≤ 0 per orientation.
	perOrient := make([][]float64, len(orients))
	for oIdx := range perOrient {
		perOrient[oIdx] = row()
		perOrient[oIdx][orients[oIdx].xVar] = -float64(in.Antennas[orients[oIdx].j].Capacity)
	}
	for _, t := range triples {
		perOrient[t.oIdx][t.yVar] = float64(in.Customers[t.i].Demand)
	}
	for oIdx := range orients {
		a = append(a, perOrient[oIdx])
		b = append(b, 0)
	}

	sol, err := lp.Maximize(c, a, b)
	if err != nil {
		return 0, fmt.Errorf("core: ConfigLPBound: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("core: ConfigLPBound: LP %v", sol.Status)
	}
	// The simple bound still applies; return the tighter of the two.
	if simple := UpperBound(in); simple < sol.Value {
		return simple, nil
	}
	return sol.Value, nil
}
