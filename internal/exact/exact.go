// Package exact provides the ground-truth solver for small sector-packing
// instances: it enumerates candidate orientation tuples (exhaustively, with
// a pooled-capacity pruning bound) and solves the remaining restricted
// multiple-knapsack exactly at each tuple. Exponential in both the antenna
// count and (through the MKP) the customer count, it exists to calibrate
// the approximation algorithms in experiments E1/E6/E7/E8, not to scale.
//
// Candidate sets: for the Sectors and Angles variants the customer angles
// suffice (candidate-orientation lemma). For DisjointAngles the optimal
// sectors may be packed flush in chains, so the candidate set per antenna
// is enlarged to all customer angles plus every sum of widths of a subset
// of the other antennas (the chain discretization).
package exact

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// Limits bounds the search so a misplaced call cannot hang a test run.
type Limits struct {
	// MaxTuples caps the number of orientation tuples examined; zero
	// means DefaultMaxTuples.
	MaxTuples int64
	// MKPNodes caps each per-tuple MKP search; zero means a generous
	// default.
	MKPNodes int64
}

// DefaultMaxTuples is the orientation-tuple budget when none is given.
const DefaultMaxTuples = 5_000_000

// Solve computes the optimal solution of the instance, or an error when a
// budget or size guard trips. The returned Solution carries
// Algorithm = "exact" and UpperBound equal to its own profit.
//
// Cancellation: ctx is checked before every orientation tuple's MKP solve;
// a cancelled search discards all partial work and returns ctx.Err()
// promptly rather than finishing the sweep.
func Solve(ctx context.Context, in *model.Instance, lim Limits) (model.Solution, error) {
	return solve(ctx, in, lim, nil)
}

// solve is Solve with an optional restriction of the first antenna's
// candidate set (used by SolveParallel to partition the search).
func solve(ctx context.Context, in *model.Instance, lim Limits, firstOverride []float64) (model.Solution, error) {
	if err := in.Validate(); err != nil {
		return model.Solution{}, fmt.Errorf("exact: %w", err)
	}
	maxTuples := lim.MaxTuples
	if maxTuples == 0 {
		maxTuples = DefaultMaxTuples
	}
	mkpNodes := lim.MKPNodes
	if mkpNodes == 0 {
		mkpNodes = 1 << 40
	}
	if in.N() > mkp.MaxExactItems {
		return model.Solution{}, fmt.Errorf("exact: %d customers exceeds limit %d", in.N(), mkp.MaxExactItems)
	}
	n, m := in.N(), in.M()
	sol := model.Solution{Algorithm: "exact", Assignment: model.NewAssignment(n, m)}
	if n == 0 || m == 0 {
		return sol, nil
	}

	cands, err := candidateSets(ctx, in)
	if err != nil {
		return model.Solution{}, err
	}
	if firstOverride != nil {
		cands[0] = firstOverride
	}
	var total int64 = 1
	for _, cs := range cands {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		total *= int64(len(cs))
		if total > maxTuples {
			return model.Solution{}, fmt.Errorf("exact: orientation tuple space exceeds budget %d", maxTuples)
		}
	}

	items := make([]knapsack.Item, n)
	for i, c := range in.Customers {
		items[i] = knapsack.Item{Weight: c.Demand, Profit: c.Profit}
	}
	capacities := make([]int64, m)
	for j, a := range in.Antennas {
		capacities[j] = a.Capacity
	}

	best := int64(-1)
	bestAssign := model.NewAssignment(n, m)
	alphas := make([]float64, m)
	eligible := make([][]bool, n)
	for i := range eligible {
		eligible[i] = make([]bool, m)
	}

	var rec func(j int) error
	rec = func(j int) error {
		if j == m {
			if err := ctx.Err(); err != nil {
				return err
			}
			if in.Variant == model.DisjointAngles && !disjointOK(in, alphas) {
				return nil
			}
			for i, c := range in.Customers {
				for k := 0; k < m; k++ {
					eligible[i][k] = in.Antennas[k].Covers(alphas[k], c)
				}
			}
			p := &mkp.Problem{Items: items, Capacities: capacities, Eligible: eligible}
			res, ok, err := mkp.Exact(p, mkpNodes)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("exact: per-tuple MKP node budget exhausted")
			}
			if res.Profit > best {
				best = res.Profit
				for k, a := range alphas {
					if math.IsNaN(a) {
						a = 0 // idle sentinel: park at 0, serves nobody
					}
					bestAssign.Orientation[k] = a
				}
				for i, b := range res.Bin {
					if b == mkp.Unassigned {
						bestAssign.Owner[i] = model.Unassigned
					} else {
						bestAssign.Owner[i] = b
					}
				}
			}
			return nil
		}
		for _, alpha := range cands[j] {
			alphas[j] = alpha
			if err := rec(j + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return model.Solution{}, err
	}
	if best < 0 {
		best = 0
	}
	sol.Assignment = bestAssign
	sol.Profit = best
	sol.UpperBound = float64(best)
	return sol, nil
}

// disjointOK checks interior-disjointness of the placed sectors, skipping
// antennas switched off via the NaN sentinel. Requiring disjointness of
// every placed sector is sound because each antenna's candidate set also
// contains the off sentinel: a solution whose idle antennas cannot be
// parked disjointly is explored with those antennas off instead.
func disjointOK(in *model.Instance, alphas []float64) bool {
	ivs := make([]geom.Interval, 0, len(alphas))
	for j := range alphas {
		if math.IsNaN(alphas[j]) {
			continue
		}
		ivs = append(ivs, geom.NewInterval(alphas[j], in.Antennas[j].Rho))
	}
	return geom.Disjoint(ivs)
}

// candidateSets builds the per-antenna orientation candidates. Outside the
// DisjointAngles variant they come from angular.CandidatesAll — one shared
// columnar view, radial pre-filter, per-antenna fan-out — instead of an
// O(n log n) scan-and-sort per antenna; ctx is consulted per antenna in
// either branch so a daemon deadline can interrupt the chain enumeration.
func candidateSets(ctx context.Context, in *model.Instance) ([][]float64, error) {
	m := in.M()
	if in.Variant != model.DisjointAngles {
		out, err := angular.CandidatesAll(ctx, in)
		if err != nil {
			return nil, err
		}
		for j := range out {
			if len(out[j]) == 0 {
				out[j] = []float64{0}
			}
		}
		return out, nil
	}
	out := make([][]float64, m)
	for j := 0; j < m; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Chain discretization. Shifting every sector of an optimal
		// solution counterclockwise (decreasing α) until blocked leaves
		// each sector either end-anchored (α + ρ = θ_x for a covered x)
		// or flush after its predecessor, so chain members start at
		// θ_x − ρ_head − (sum of intermediate widths): the candidate set
		// is θ_i minus the antenna's own width minus every subset-sum of
		// the other antennas' widths. The mirrored (clockwise) argument
		// yields the additive family θ_i + subset sums with start-anchored
		// tails; the union of both is enumerated for robustness — the
		// solver is the ground-truth oracle, so over-enumeration is
		// harmless while under-enumeration is a correctness bug (it once
		// missed optima reachable only through end-anchored heads).
		others := make([]float64, 0, m-1)
		for k := 0; k < m; k++ {
			if k != j {
				others = append(others, in.Antennas[k].Rho)
			}
		}
		sums := subsetSums(others)
		seen := make([]float64, 0, 2*in.N()*len(sums))
		for _, c := range in.Customers {
			for _, s := range sums {
				seen = append(seen, geom.NormAngle(c.Theta+s))
				seen = append(seen, geom.NormAngle(c.Theta-in.Antennas[j].Rho-s))
			}
		}
		sort.Float64s(seen)
		out[j] = dedup(seen)
		if len(out[j]) == 0 {
			out[j] = []float64{0}
		}
		// The off sentinel lets the enumeration switch this antenna off
		// entirely (an idle antenna is exempt from disjointness, so it
		// must not constrain the serving sectors' placement).
		out[j] = append(out[j], math.NaN())
	}
	return out, nil
}

// subsetSums returns all subset sums of ws (including 0).
func subsetSums(ws []float64) []float64 {
	sums := []float64{0}
	for _, w := range ws {
		cur := len(sums)
		for k := 0; k < cur; k++ {
			sums = append(sums, sums[k]+w)
		}
	}
	return sums
}

func dedup(sorted []float64) []float64 {
	if len(sorted) == 0 {
		return sorted
	}
	out := sorted[:1]
	for _, a := range sorted[1:] {
		if a-out[len(out)-1] > geom.Eps {
			out = append(out, a)
		}
	}
	return out
}
