package exact

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

func randInstance(rng *rand.Rand, n, m int, variant model.Variant) *model.Instance {
	in := &model.Instance{Variant: variant}
	for i := 0; i < n; i++ {
		in.Customers = append(in.Customers, model.Customer{
			Theta:  rng.Float64() * geom.TwoPi,
			R:      rng.Float64() * 10,
			Demand: 1 + rng.Int63n(6),
		})
	}
	for j := 0; j < m; j++ {
		a := model.Antenna{
			Rho:      0.4 + rng.Float64()*1.6,
			Capacity: 4 + rng.Int63n(15),
		}
		if variant == model.Sectors {
			a.Range = 3 + rng.Float64()*8
		}
		in.Antennas = append(in.Antennas, a)
	}
	return in.Normalize()
}

// bruteOracle enumerates all (m+1)^n ownership vectors and for each checks
// whether SOME candidate orientation tuple covers it — completely
// independent of the mkp package used inside Solve.
func bruteOracle(t *testing.T, in *model.Instance) int64 {
	t.Helper()
	n, m := in.N(), in.M()
	cands, err := candidateSets(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var best int64
	owner := make([]int, n)
	var rec func(i int, profit int64)
	rec = func(i int, profit int64) {
		if i == n {
			if profit <= best {
				return
			}
			// capacity check
			load := make([]int64, m)
			for k, o := range owner {
				if o >= 0 {
					load[o] += in.Customers[k].Demand
				}
			}
			for j := range load {
				if load[j] > in.Antennas[j].Capacity {
					return
				}
			}
			// orientation tuple search
			alphas := make([]float64, m)
			var tup func(j int) bool
			tup = func(j int) bool {
				if j == m {
					if in.Variant == model.DisjointAngles && !disjointOK(in, alphas) {
						return false
					}
					for k, o := range owner {
						if o >= 0 && !in.Antennas[o].Covers(alphas[o], in.Customers[k]) {
							return false
						}
					}
					return true
				}
				for _, a := range cands[j] {
					alphas[j] = a
					if tup(j + 1) {
						return true
					}
				}
				return false
			}
			if tup(0) {
				best = profit
			}
			return
		}
		owner[i] = model.Unassigned
		rec(i+1, profit)
		for j := 0; j < m; j++ {
			owner[i] = j
			rec(i+1, profit+in.Customers[i].Profit)
		}
		owner[i] = model.Unassigned
	}
	rec(0, 0)
	return best
}

func TestSolveMatchesBruteOracleSectors(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 1+rng.Intn(6), 1+rng.Intn(2), model.Sectors)
		sol, err := Solve(context.Background(), in, Limits{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if err := sol.Assignment.Check(in); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		if got := sol.Assignment.Profit(in); got != sol.Profit {
			t.Fatalf("profit mismatch: reported %d, assignment %d", sol.Profit, got)
		}
		want := bruteOracle(t, in)
		if sol.Profit != want {
			t.Fatalf("Solve = %d, oracle = %d", sol.Profit, want)
		}
	}
}

func TestSolveMatchesBestWindowSingleAntenna(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		in := randInstance(rng, 1+rng.Intn(10), 1, model.Sectors)
		sol, err := Solve(context.Background(), in, Limits{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		win, err := angular.BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
		if err != nil {
			t.Fatalf("BestWindow: %v", err)
		}
		if sol.Profit != win.Profit {
			t.Fatalf("Solve = %d, BestWindow = %d", sol.Profit, win.Profit)
		}
	}
}

func TestSolveMatchesDisjointDP(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		in := &model.Instance{Variant: model.DisjointAngles}
		n := 2 + rng.Intn(5)
		// m = 3 every third trial: three-link flush chains (end-anchored
		// head plus two followers) first become possible there.
		m := 2
		if trial%3 == 0 {
			m = 3
			n = 2 + rng.Intn(3) // keep the tuple space affordable
		}
		for i := 0; i < n; i++ {
			in.Customers = append(in.Customers, model.Customer{
				Theta:  rng.Float64() * geom.TwoPi,
				R:      rng.Float64() * 5,
				Demand: 1 + rng.Int63n(4),
			})
		}
		for j := 0; j < m; j++ {
			in.Antennas = append(in.Antennas, model.Antenna{
				Rho:      0.3 + rng.Float64()*0.9,
				Capacity: 3 + rng.Int63n(8),
			})
		}
		in.Normalize()
		sol, err := Solve(context.Background(), in, Limits{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if err := sol.Assignment.Check(in); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		dp, err := angular.SolveDisjoint(context.Background(), in, knapsack.Options{})
		if err != nil {
			t.Fatalf("SolveDisjoint: %v", err)
		}
		if sol.Profit != dp.Profit {
			t.Fatalf("exact = %d, disjoint DP = %d (trial %d)", sol.Profit, dp.Profit, trial)
		}
	}
}

func TestSolveGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	big := randInstance(rng, 25, 1, model.Sectors) // > mkp.MaxExactItems
	if _, err := Solve(context.Background(), big, Limits{}); err == nil {
		t.Error("oversized customer count must be rejected")
	}
	in := randInstance(rng, 10, 3, model.Sectors)
	if _, err := Solve(context.Background(), in, Limits{MaxTuples: 5}); err == nil {
		t.Error("tuple budget must be enforced")
	}
}

func TestSolveEmpty(t *testing.T) {
	in := (&model.Instance{Variant: model.Sectors}).Normalize()
	sol, err := Solve(context.Background(), in, Limits{})
	if err != nil || sol.Profit != 0 {
		t.Fatalf("empty: %d, %v", sol.Profit, err)
	}
	onlyAnt := (&model.Instance{Variant: model.Sectors, Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 3}}}).Normalize()
	sol, err = Solve(context.Background(), onlyAnt, Limits{})
	if err != nil || sol.Profit != 0 {
		t.Fatalf("no customers: %d, %v", sol.Profit, err)
	}
}

func TestSubsetSums(t *testing.T) {
	sums := subsetSums([]float64{1, 2})
	if len(sums) != 4 {
		t.Fatalf("subsetSums = %v", sums)
	}
	seen := map[float64]bool{}
	for _, s := range sums {
		seen[s] = true
	}
	for _, want := range []float64{0, 1, 2, 3} {
		if !seen[want] {
			t.Errorf("missing subset sum %v", want)
		}
	}
}

func TestSolveParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 12; trial++ {
		variant := model.Sectors
		if trial%3 == 0 {
			variant = model.Angles
		}
		in := randInstance(rng, 3+rng.Intn(8), 1+rng.Intn(2), variant)
		seq, err := Solve(context.Background(), in, Limits{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		par, err := SolveParallel(context.Background(), in, Limits{}, 4)
		if err != nil {
			t.Fatalf("SolveParallel: %v", err)
		}
		if par.Profit != seq.Profit {
			t.Fatalf("parallel %d != sequential %d", par.Profit, seq.Profit)
		}
		if err := par.Assignment.Check(in); err != nil {
			t.Fatalf("parallel result infeasible: %v", err)
		}
	}
}

func TestSolveParallelSingleAntenna(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	in := randInstance(rng, 8, 1, model.Sectors)
	seq, err := Solve(context.Background(), in, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(context.Background(), in, Limits{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if par.Profit != seq.Profit {
		t.Fatalf("m=1 fallback mismatch: %d vs %d", par.Profit, seq.Profit)
	}
}
