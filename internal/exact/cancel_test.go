package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestSolveParallelCancelled is the regression test for the hardcoded
// context.Background() bug: SolveParallel must abort promptly when the
// caller's context ends, instead of grinding through the full
// orientation-tuple space.
func TestSolveParallelCancelled(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(7)), 12, 2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: not a single tuple should be solved
	start := time.Now()
	_, err := SolveParallel(ctx, in, Limits{}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled solve took %v, want prompt return", elapsed)
	}
}

// TestSolveDeadline exercises the mid-run path: a deadline expiring while
// the tuple enumeration is in flight must surface DeadlineExceeded.
func TestSolveDeadline(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(8)), 12, 2, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Solve(ctx, in, Limits{})
	if err == nil {
		// The instance solved inside the deadline; nothing to assert.
		t.Skip("instance solved before the deadline on this machine")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline abort took %v, want prompt return", elapsed)
	}
}
