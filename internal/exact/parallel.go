package exact

import (
	"context"
	"fmt"

	"sectorpack/internal/model"
	"sectorpack/internal/sweep"
)

// SolveParallel is Solve with the outermost candidate loop (the first
// antenna's orientations) fanned out over a worker pool. The result is
// identical to Solve — ties between equal-profit tuples are broken by the
// first antenna's candidate order, which the deterministic merge below
// preserves. workers <= 0 means GOMAXPROCS.
//
// The caller's ctx governs the whole pool: cancelling it stops every
// worker at its next tuple boundary and the first ctx.Err() surfaces
// (wrapped by the sweep, so errors.Is still matches context.Canceled /
// context.DeadlineExceeded). Partial results are discarded.
func SolveParallel(ctx context.Context, in *model.Instance, lim Limits, workers int) (model.Solution, error) {
	if err := in.Validate(); err != nil {
		return model.Solution{}, fmt.Errorf("exact: %w", err)
	}
	if in.M() < 2 || in.N() == 0 {
		// Nothing to partition: a single antenna's sweep is already the
		// whole search.
		return Solve(ctx, in, lim)
	}
	cands, err := candidateSets(ctx, in)
	if err != nil {
		return model.Solution{}, err
	}
	first := cands[0]
	jobs := make([]sweep.Job[model.Solution], len(first))
	for k := range first {
		alpha := first[k]
		jobs[k] = func(jctx context.Context) (model.Solution, error) {
			return solve(jctx, in, lim, []float64{alpha})
		}
	}
	results, err := sweep.Run(ctx, jobs, sweep.Options{Workers: workers})
	if err != nil {
		return model.Solution{}, err
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Profit > best.Profit {
			best = r
		}
	}
	return best, nil
}
