// Package fsyncorder checks the durability discipline around faultfs: a
// write path either goes through a proven fsync+rename sink or carries its
// own Sync, and errors from journal/file mutations are never discarded.
//
// Invariant (DESIGN.md, "Durable sectord"): crash safety rests on exactly
// two mechanics — atomic replace (write temp, fsync file, rename, fsync
// dir: faultfs.WriteFileAtomic) and group-committed journal appends whose
// errors poison the session. PR 8's fault-injection harness exists
// because both were once violated: a snapshot written without the
// file-level fsync survived the process but not the power cut (torn
// write), and a journal append error that was dropped left the in-memory
// session ahead of its durable log, so recovery silently lost deltas.
//
// Two rules:
//
//   - Reach-sync (durable packages: cache, session, model): a function
//     that opens a writable faultfs file (Create / CreateTemp / OpenFile)
//     must reach a Sync before the handle escapes — its own body calls
//     .Sync(), it calls a function proven fsync-safe, or some function
//     reachable in the call graph syncs. "Fsync-safe" is a fact derived
//     bottom-up: a function whose body both Syncs and Renames (the atomic
//     replace shape, anchored at faultfs.WriteFileAtomic) or that calls
//     an fsync-safe function. The fact crosses packages, so cache and
//     session inherit the proof from faultfs.
//   - No discarded errors (every package except faultfs itself): a
//     statement-position call to an error-returning method of
//     session.Journal or of the faultfs File/FS seams throws the error
//     away. Journal errors must poison; file errors must propagate.
//     `defer f.Close()` on read paths is idiomatic and exempt — the rule
//     binds plain statements only.
package fsyncorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"sectorpack/internal/analysis/astx"
	"sectorpack/internal/analysis/framework"
)

// FsyncSafe marks a function whose every write path ends in fsync(+rename):
// calling it satisfies the reach-sync rule.
type FsyncSafe struct{}

// AFact marks FsyncSafe as a fact.
func (*FsyncSafe) AFact() {}

// durablePackages are the package names whose writes must be crash-safe.
var durablePackages = map[string]bool{"cache": true, "session": true, "model": true}

// writableOpens are the FS methods that hand back a writable File.
var writableOpens = map[string]bool{"Create": true, "CreateTemp": true, "OpenFile": true}

// Analyzer is the fsyncorder checker.
var Analyzer = &framework.Analyzer{
	Name: "fsyncorder",
	Doc: "durable write paths must reach fsync: a faultfs writable open in cache/session/model " +
		"must lead to .Sync() or an fsync-safe callee (faultfs.WriteFileAtomic), and " +
		"error-returning Journal/File/FS mutations must not be statement-discarded " +
		"(the PR-8 torn-write and lost-delta classes)",
	Run:            run,
	FactTypes:      []framework.Fact{(*FsyncSafe)(nil)},
	NeedsCallGraph: true,
}

func run(pass *framework.Pass) error {
	nodes := pass.Graph.NodesOf(pass.Pkg.Path())
	exportFsyncSafe(pass, nodes)
	if durablePackages[pass.Pkg.Name()] {
		checkReachSync(pass, nodes)
	}
	if pass.Pkg.Name() != "faultfs" {
		checkDiscardedErrors(pass)
	}
	return nil
}

// exportFsyncSafe derives FsyncSafe facts to a fixpoint: the base case is
// the atomic-replace shape (body Syncs and Renames); the inductive case is
// calling an already-safe function. Same-package helpers may be declared in
// any order, hence the loop.
func exportFsyncSafe(pass *framework.Pass, nodes []*framework.CallNode) {
	safe := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			if node.Fn == nil || safe[node.Key] {
				continue
			}
			if (callsMethodNamed(node.Body, "Sync") && callsMethodNamed(node.Body, "Rename")) ||
				callsFsyncSafe(pass, node) {
				safe[node.Key] = true
				pass.ExportObjectFact(node.Fn, &FsyncSafe{})
				changed = true
			}
		}
	}
}

// callsFsyncSafe reports whether node's body calls a function already
// proven fsync-safe (in this package's pending exports or an imported
// package's sealed facts).
func callsFsyncSafe(pass *framework.Pass, node *framework.CallNode) bool {
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
			var fact FsyncSafe
			if pass.ImportObjectFact(fn, &fact) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkReachSync flags writable faultfs opens in functions from which no
// Sync is reachable.
func checkReachSync(pass *framework.Pass, nodes []*framework.CallNode) {
	for _, node := range nodes {
		openPos := writableOpenPos(pass.TypesInfo, node.Body)
		if openPos == nil {
			continue
		}
		if reachesSync(pass, node) {
			continue
		}
		pass.Reportf(*openPos,
			"writable faultfs open with no reachable Sync: route the write through "+
				"faultfs.WriteFileAtomic or fsync the handle before rename/close, "+
				"or a crash here tears the durable state")
	}
}

// writableOpenPos returns the position of the first Create/CreateTemp/
// OpenFile call on a faultfs.FS value in body, or nil.
func writableOpenPos(info *types.Info, body *ast.BlockStmt) *token.Pos {
	var pos *token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !writableOpens[sel.Sel.Name] {
			return true
		}
		tv, ok := info.Types[sel.X]
		if !ok || !astx.IsNamed(tv.Type, "faultfs", "FS") {
			return true
		}
		p := call.Pos()
		pos = &p
		return false
	})
	return pos
}

// reachesSync reports whether node itself syncs, calls an fsync-safe
// function, or can reach (via the call graph) a module function that
// syncs.
func reachesSync(pass *framework.Pass, node *framework.CallNode) bool {
	if callsMethodNamed(node.Body, "Sync") || callsFsyncSafe(pass, node) {
		return true
	}
	for key := range pass.Graph.ReachableFrom(node.Key) {
		if n := pass.Graph.Node(key); n != nil && n.Body != nil && callsMethodNamed(n.Body, "Sync") {
			return true
		}
	}
	return false
}

// callsMethodNamed reports whether body contains a call x.<name>(...).
func callsMethodNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkDiscardedErrors flags statement-position calls that drop the error
// of a Journal or faultfs File/FS method.
func checkDiscardedErrors(pass *framework.Pass) {
	deferred := map[*ast.CallExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok || deferred[call] {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			if !durableSeamType(selection.Recv()) {
				return true
			}
			sig, ok := selection.Obj().Type().(*types.Signature)
			if !ok || !lastResultIsError(sig) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s error discarded: journal and file mutations must poison or propagate "+
					"(a dropped append/remove error desyncs memory from the durable log)",
				sel.Sel.Name)
			return true
		})
	}
}

// durableSeamType reports whether t is session.Journal, faultfs.File, or
// faultfs.FS (possibly behind a pointer), matching by package name so the
// minimized fixtures exercise the same code path.
func durableSeamType(t types.Type) bool {
	return astx.IsNamed(t, "session", "Journal") ||
		astx.IsNamed(t, "faultfs", "File") ||
		astx.IsNamed(t, "faultfs", "FS")
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
