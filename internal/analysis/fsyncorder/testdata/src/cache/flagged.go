// Package cache exercises both fsyncorder rules from a durable package.
package cache

import (
	"faultfs"
	"session"
)

// badSnapshot writes durable state with no fsync anywhere on the path.
func badSnapshot(fsys faultfs.FS, data []byte) error {
	f, err := fsys.Create("snapshot.bin") // want `no reachable Sync`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// badTemp opens through a helper-free CreateTemp and renames without
// syncing: the classic torn write.
func badTemp(fsys faultfs.FS, data []byte) error {
	f, err := fsys.CreateTemp(".", "snap") // want `no reachable Sync`
	if err != nil {
		return err
	}
	f.Write(data) // want `Write error discarded`
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(f.Name(), "snapshot.bin")
}

// badJournal drops append and remove errors on the floor.
func badJournal(j *session.Journal) {
	j.AppendDelta("d1") // want `AppendDelta error discarded`
	j.Remove()          // want `Remove error discarded`
}
