package cache

import "session"

// suppressedRemove documents why the dropped error is tolerable here:
// best-effort cleanup of an already-retired journal.
func suppressedRemove(j *session.Journal) {
	//sectorlint:ignore fsyncorder best-effort cleanup; the journal is already retired from the index
	j.Remove()
}
