package cache

import (
	"io"

	"faultfs"
	"session"
)

// goodAtomic routes the write through the cross-package fsync-safe sink;
// the FsyncSafe fact on faultfs.WriteFileAtomic crossed the boundary.
func goodAtomic(fsys faultfs.FS, data []byte) error {
	return faultfs.WriteFileAtomic(fsys, "snapshot.bin", func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// goodExplicit opens and syncs in the same body.
func goodExplicit(fsys faultfs.FS, data []byte) error {
	f, err := fsys.Create("snapshot.bin")
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// goodViaHelper opens here but reaches the sync through a callee found by
// the call graph.
func goodViaHelper(fsys faultfs.FS, data []byte) error {
	f, err := fsys.Create("snapshot.bin")
	if err != nil {
		return err
	}
	return finish(f, data)
}

func finish(f faultfs.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // explicit discard is a decision, not an accident
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// goodJournal propagates every journal error.
func goodJournal(j *session.Journal) error {
	if err := j.AppendDelta("d1"); err != nil {
		return err
	}
	_ = j.Path()
	return j.Sync()
}
