// Package session carries the minimized Journal for the error-discard
// rule fixtures.
package session

// Journal is the append-only delta log seam.
type Journal struct{ path string }

// AppendDelta appends one delta record.
func (j *Journal) AppendDelta(payload string) error { return nil }

// Sync group-commits buffered appends.
func (j *Journal) Sync() error { return nil }

// Remove deletes the journal file.
func (j *Journal) Remove() error { return nil }

// Path returns the journal path (no error: never flagged).
func (j *Journal) Path() string { return j.path }
