// Package faultfs is a minimized copy of the repository's filesystem seam
// for the fsyncorder fixtures: the same interface names, and a
// WriteFileAtomic with the Sync+Rename shape the analyzer anchors its
// FsyncSafe facts on.
package faultfs

import "io"

// File is the writable-handle seam.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam.
type FS interface {
	Create(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	OpenFile(name string, flag int) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// WriteFileAtomic is the atomic-replace sink: temp, write, fsync, rename.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	f, err := fsys.CreateTemp(".", path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(f.Name())
		return err
	}
	return fsys.Rename(f.Name(), path)
}
