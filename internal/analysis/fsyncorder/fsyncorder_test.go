package fsyncorder_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/fsyncorder"
)

func TestFsyncorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), fsyncorder.Analyzer,
		"faultfs", "session", "cache")
}
