// Package analysistest runs one framework.Analyzer over small fixture
// packages and checks its diagnostics against expectations written in the
// fixtures themselves, mirroring golang.org/x/tools/go/analysis/analysistest
// (which this repository does not vendor).
//
// Fixtures live under testdata/src/<importpath>/ next to the test; an
// expectation is a trailing comment on the line the diagnostic lands on:
//
//	for _, c := range in.Customers { // want `without consulting its context`
//
// Each string after `// want` is a regexp that must match the message of a
// distinct diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the test.
// Because the fixtures run through framework.Run, //sectorlint:ignore
// comments are honored, so the suppression path is testable the same way.
//
// Fixture imports of other fixtures resolve within testdata/src; imports of
// the standard library are type-checked from $GOROOT source, which keeps
// the harness free of go/build GOPATH plumbing and of any network use.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"sectorpack/internal/analysis/framework"
	"sectorpack/internal/analysis/load"
)

// TB is the slice of *testing.T the harness needs; taking the interface
// lets the harness's own tests observe failures instead of inheriting them.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// TestData returns the absolute testdata directory of the calling test's
// package.
func TestData(t TB) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return dir
}

// Run loads testdata/src/<path> for each named fixture package, runs the
// analyzer over all of them together (module analyzers see them as one
// module), and matches the resulting diagnostics against the fixtures'
// `// want` comments.
func Run(t TB, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset: fset,
		src:  filepath.Join(testdata, "src"),
		pkgs: map[string]*framework.Package{},
	}
	ld.std = importer.ForCompiler(fset, "source", nil)

	var pkgs []*framework.Package
	for _, path := range paths {
		if _, err := ld.Import(path); err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, ld.pkgs[path])
	}

	diags, err := framework.Run(fset, pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	wants, err := collectWants(fset, pkgs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !wants.match(pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
	}
}

// fixtureLoader type-checks fixture packages on demand, resolving
// fixture-to-fixture imports from testdata/src and everything else from
// standard-library source.
type fixtureLoader struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*framework.Package
	// loading guards against import cycles among fixtures, which would
	// otherwise recurse forever.
	loading []string
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p.Pkg, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return ld.std.Import(path)
	}
	for _, active := range ld.loading {
		if active == path {
			return nil, fmt.Errorf("fixture import cycle through %q", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", path)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = &framework.Package{
		ImportPath: path,
		Fset:       ld.fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}
	return tpkg, nil
}

// want is one expectation: a regexp tied to a fixture file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	byLine map[string]map[int][]*want
	all    []*want
}

// wantRe finds the expectation marker; everything after it is parsed as Go
// string literals, so both `backquoted` and "quoted" regexps work.
var wantRe = regexp.MustCompile(`// want (.*)$`)

func collectWants(fset *token.FileSet, pkgs []*framework.Package) (*wantSet, error) {
	ws := &wantSet{byLine: map[string]map[int][]*want{}}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			for i, lineText := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(lineText)
				if m == nil {
					continue
				}
				patterns, err := parsePatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", name, i+1, p, err)
					}
					w := &want{file: name, line: i + 1, re: re}
					if ws.byLine[name] == nil {
						ws.byLine[name] = map[int][]*want{}
					}
					ws.byLine[name][i+1] = append(ws.byLine[name][i+1], w)
					ws.all = append(ws.all, w)
				}
			}
		}
	}
	return ws, nil
}

// parsePatterns reads a sequence of Go string literals from the text after
// the `// want` marker.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want expectations must be quoted or backquoted strings, got %q", s)
		}
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			return nil, fmt.Errorf("unterminated want string in %q", s)
		}
		lit := s[:end+2]
		p, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want string %s: %w", lit, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want marker with no pattern")
	}
	return out, nil
}

// match consumes the first unmatched expectation on the diagnostic's line
// whose regexp matches the message.
func (ws *wantSet) match(pos token.Position, message string) bool {
	for _, w := range ws.byLine[pos.Filename][pos.Line] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.all {
		if !w.matched {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
