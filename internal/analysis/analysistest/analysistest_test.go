package analysistest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"sectorpack/internal/analysis/framework"
)

// recorder captures harness failures instead of failing the real test.
type recorder struct {
	errs   []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
	panic(r) // mirror Fatalf's control flow: stop the harness
}

func runRecorded(t *testing.T, a *framework.Analyzer, paths ...string) *recorder {
	t.Helper()
	r := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil && p != any(r) {
				panic(p)
			}
		}()
		Run(r, TestData(t), a, paths...)
	}()
	return r
}

// stubAnalyzer reports one diagnostic on every function whose name is
// listed, letting the tests steer exactly which wants get satisfied.
func stubAnalyzer(flag ...string) *framework.Analyzer {
	flagged := map[string]bool{}
	for _, f := range flag {
		flagged[f] = true
	}
	return &framework.Analyzer{
		Name: "stub",
		Doc:  "test stub",
		Run: func(p *framework.Pass) error {
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && flagged[fd.Name.Name] {
						p.Reportf(fd.Pos(), "stub finding on %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

func TestRunMatchesWants(t *testing.T) {
	r := runRecorded(t, stubAnalyzer("flagged"), "demo")
	if len(r.errs) != 0 || len(r.fatals) != 0 {
		t.Fatalf("exact match must pass; errs=%v fatals=%v", r.errs, r.fatals)
	}
}

func TestRunReportsUnexpectedDiagnostic(t *testing.T) {
	r := runRecorded(t, stubAnalyzer("flagged", "clean"), "demo")
	if len(r.errs) != 1 || !strings.Contains(r.errs[0], "unexpected diagnostic") {
		t.Fatalf("diagnostic without a want must fail the test; errs=%v", r.errs)
	}
}

func TestRunReportsUnmatchedWant(t *testing.T) {
	r := runRecorded(t, stubAnalyzer(), "demo")
	if len(r.errs) != 1 || !strings.Contains(r.errs[0], "no diagnostic matched") {
		t.Fatalf("want without a diagnostic must fail the test; errs=%v", r.errs)
	}
}

func TestRunUnknownFixture(t *testing.T) {
	r := runRecorded(t, stubAnalyzer(), "no-such-fixture")
	if len(r.fatals) != 1 {
		t.Fatalf("missing fixture must be fatal; fatals=%v", r.fatals)
	}
}

func TestParsePatterns(t *testing.T) {
	got, err := parsePatterns("`one` \"two\"")
	if err != nil || len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("parsePatterns = %v, %v", got, err)
	}
	for _, bad := range []string{"", "unquoted", "`unterminated"} {
		if _, err := parsePatterns(bad); err == nil {
			t.Errorf("parsePatterns(%q) must fail", bad)
		}
	}
}
