// Package demo is the harness's own fixture: one function the stub
// analyzer flags, one it leaves alone.
package demo

func flagged() int { return 1 } // want `stub finding on flagged`

func clean() int { return 2 }
