// Package sectorlint is the driver for the repository's invariant
// checkers: it loads type-checked packages, runs every registered
// analyzer (sharing one facts store and one module call graph), applies
// //sectorlint:ignore suppressions, and renders the surviving diagnostics
// as text, JSON, or SARIF 2.1.0. cmd/sectorlint is a thin main around
// Main.
package sectorlint

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sectorpack/internal/analysis/anglenorm"
	"sectorpack/internal/analysis/ctxloop"
	"sectorpack/internal/analysis/expvarmono"
	"sectorpack/internal/analysis/floateq"
	"sectorpack/internal/analysis/framework"
	"sectorpack/internal/analysis/fsyncorder"
	"sectorpack/internal/analysis/load"
	"sectorpack/internal/analysis/lockdiscipline"
	"sectorpack/internal/analysis/optcover"
	"sectorpack/internal/analysis/provenance"
	"sectorpack/internal/analysis/retryidem"
)

// Analyzers returns the full sectorlint suite in deterministic order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		anglenorm.Analyzer,
		ctxloop.Analyzer,
		expvarmono.Analyzer,
		floateq.Analyzer,
		fsyncorder.Analyzer,
		lockdiscipline.Analyzer,
		optcover.Analyzer,
		provenance.Analyzer,
		retryidem.Analyzer,
	}
}

// Main runs the suite and returns the process exit code: 0 clean, 1 when
// diagnostics were reported, 2 on usage or load errors.
func Main(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("sectorlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	staleIgnores := fs.Bool("stale-ignores", false,
		"report //sectorlint:ignore comments that no longer suppress anything")
	includeTests := fs.Bool("include-tests", false,
		"also analyze _test.go files (in-package tests join their package; external test packages load as <pkg>_test)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sectorlint [-list] [-only a,b] [-json|-sarif] [-stale-ignores] [-include-tests] [packages]\n\n"+
			"Runs the repository's solver-invariant analyzers over the given\n"+
			"package patterns (default ./...). Suppress a finding with\n"+
			"//sectorlint:ignore <analyzer> <reason> on or above its line.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "sectorlint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range splitComma(*only) {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "sectorlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "sectorlint: %v\n", err)
		return 2
	}
	fset, pkgs, err := load.PackagesCfg(dir, load.Config{IncludeTests: *includeTests}, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "sectorlint: %v\n", err)
		return 2
	}
	diags, err := framework.RunOpts(fset, pkgs, analyzers, framework.Options{StaleIgnores: *staleIgnores})
	if err != nil {
		fmt.Fprintf(stderr, "sectorlint: %v\n", err)
		return 2
	}

	switch {
	case *sarifOut:
		if err := renderSARIF(stdout, fset, diags, Analyzers(), dir); err != nil {
			fmt.Fprintf(stderr, "sectorlint: rendering SARIF: %v\n", err)
			return 2
		}
	case *jsonOut:
		if err := renderJSON(stdout, fset, diags, dir); err != nil {
			fmt.Fprintf(stderr, "sectorlint: rendering JSON: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sectorlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
