package sectorlint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"sectorpack/internal/analysis/framework"
)

// fakeDiags builds a FileSet with one file and diagnostics at known lines.
func fakeDiags(t *testing.T) (*token.FileSet, []framework.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/internal/x/x.go", -1, 1000)
	f.SetLines([]int{0, 100, 200, 300})
	return fset, []framework.Diagnostic{
		{Pos: f.LineStart(2), Analyzer: "ctxloop", Message: "loop ignores ctx"},
		{Pos: f.LineStart(3), Analyzer: "lockdiscipline", Message: "unlocked access"},
	}
}

func TestRenderSARIFStructure(t *testing.T) {
	fset, diags := fakeDiags(t)
	var buf bytes.Buffer
	if err := renderSARIF(&buf, fset, diags, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}

	// The log must be valid JSON with the 2.1.0 envelope.
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", log["version"])
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %v, want the 2.1.0 schema URI", log["$schema"])
	}

	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "sectorlint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	// Every suite analyzer plus the synthetic suppression-hygiene rule.
	if len(rules) != len(Analyzers())+1 {
		t.Errorf("rules = %d, want %d", len(rules), len(Analyzers())+1)
	}
	ruleIDs := map[string]int{}
	for i, r := range rules {
		ruleIDs[r.(map[string]any)["id"].(string)] = i
	}

	results := run["results"].([]any)
	if len(results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(results), len(diags))
	}
	for _, raw := range results {
		res := raw.(map[string]any)
		id := res["ruleId"].(string)
		wantIdx, ok := ruleIDs[id]
		if !ok {
			t.Errorf("result ruleId %q has no matching rule", id)
			continue
		}
		if int(res["ruleIndex"].(float64)) != wantIdx {
			t.Errorf("result %q ruleIndex = %v, want %d", id, res["ruleIndex"], wantIdx)
		}
		locs := res["locations"].([]any)
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		uri := phys["artifactLocation"].(map[string]any)["uri"].(string)
		if uri != "internal/x/x.go" {
			t.Errorf("artifact uri = %q, want repo-relative internal/x/x.go", uri)
		}
		if line := phys["region"].(map[string]any)["startLine"].(float64); line < 1 {
			t.Errorf("startLine = %v, want >= 1", line)
		}
	}
}

func TestRenderSARIFEmptyRun(t *testing.T) {
	fset := token.NewFileSet()
	var buf bytes.Buffer
	if err := renderSARIF(&buf, fset, nil, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	// SARIF requires results to be present (possibly empty), not null.
	if !bytes.Contains(buf.Bytes(), []byte(`"results": [`)) {
		t.Error("empty run must still carry a results array")
	}
}

func TestRenderJSON(t *testing.T) {
	fset, diags := fakeDiags(t)
	var buf bytes.Buffer
	if err := renderJSON(&buf, fset, diags, "/repo"); err != nil {
		t.Fatal(err)
	}
	var out []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Analyzer != "ctxloop" || out[0].File != "internal/x/x.go" || out[0].Line != 2 {
		t.Errorf("json findings = %+v", out)
	}
}
