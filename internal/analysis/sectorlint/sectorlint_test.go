package sectorlint

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestAnalyzersWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s: exactly one of Run and RunModule must be set", a.Name)
		}
	}
	for _, want := range []string{
		"anglenorm", "ctxloop", "expvarmono", "floateq", "fsyncorder",
		"lockdiscipline", "optcover", "provenance", "retryidem",
	} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

func TestMainList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, stderr.String())
	}
	for _, a := range Analyzers() {
		if !strings.Contains(stdout.String(), a.Name+": ") {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(&stdout, &stderr, []string{"-only", "nope"}); code != 2 {
		t.Fatalf("unknown -only exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestMainBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(&stdout, &stderr, []string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

// TestMainCleanPackage runs the real pipeline end to end over this package
// (which must itself be lint-clean) from the package directory.
func TestMainCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(&stdout, &stderr, []string{"-only", "floateq,provenance", "."})
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got: %s", stdout.String())
	}
}

func TestSplitComma(t *testing.T) {
	cases := map[string][]string{
		"a":     {"a"},
		"a,b":   {"a", "b"},
		"a,,b,": {"a", "b"},
		"":      nil,
	}
	for in, want := range cases {
		if got := splitComma(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitComma(%q) = %v, want %v", in, got, want)
		}
	}
}
