// Machine-readable renderers: -json for scripts, -sarif for code-scanning
// upload. The SARIF form is the minimal valid subset of SARIF 2.1.0 —
// tool.driver with one reportingDescriptor per analyzer, one result per
// diagnostic with a physicalLocation — which is everything GitHub code
// scanning and the schema validator require.
package sectorlint

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"sectorpack/internal/analysis/framework"
)

// jsonFinding is one -json output record.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// renderJSON writes the findings as a JSON array.
func renderJSON(w io.Writer, fset *token.FileSet, diags []framework.Diagnostic, root string) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonFinding{
			File:     relPath(root, pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 structures (subset).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifSchemaURI is the canonical 2.1.0 schema location; CI validates the
// emitted log against it.
const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// renderSARIF writes the findings as one SARIF 2.1.0 run. Rules cover the
// full suite (not just the analyzers that fired) so suppressible findings
// keep stable ruleIndexes across runs; the synthetic "sectorlint" rule
// carries the malformed/stale-suppression findings the driver itself
// reports.
func renderSARIF(w io.Writer, fset *token.FileSet, diags []framework.Diagnostic,
	analyzers []*framework.Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		short := doc
		if i := strings.IndexByte(doc, ':'); i > 0 {
			short = doc[:i]
		}
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: short},
			FullDescription:  sarifMessage{Text: doc},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("sectorlint", "suppression hygiene: malformed or stale //sectorlint:ignore comments")
	// A diagnostic from an analyzer outside the suite (future-proofing)
	// still needs a rule to point at.
	for _, d := range diags {
		addRule(d.Analyzer, d.Analyzer)
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(root, pos.Filename)},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].RuleID < results[j].RuleID })

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sectorlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders filename relative to root with forward slashes (SARIF
// URIs), falling back to the absolute path outside root.
func relPath(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !isDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func isDotDot(rel string) bool {
	return rel == ".." || (len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator))
}
