// Package anglenorm enforces the repository's angle-normalization
// contract: all 2π-seam arithmetic lives in internal/geom.
//
// Invariant (internal/geom package doc): angles are radians normalized to
// [0, 2π), and every wrap-around computation flows through the canonical
// helpers — geom.NormAngle, geom.AngleDist, geom.WrapGap,
// geom.AnglesClose. PR 1 and PR 2 both fixed seam bugs born of hand-rolled
// fixups (candidate dedup at the 2π seam in the sweep, end-angle dedup in
// the constrained greedy) where ad-hoc `x + 2π` spellings diverged from
// geom's treatment of the boundary.
//
// Outside internal/geom the analyzer flags:
//
//   - additive seam fixups: `x + 2π`, `2π - x`, `x -= 2π`, ... where the
//     non-2π operand is not a constant. Constant folding recognizes every
//     spelling of 2π (geom.TwoPi, 2*math.Pi, a literal). Pure constant
//     thresholds such as `geom.TwoPi + geom.Eps` stay legal: they define
//     tolerances, not seam arithmetic.
//   - hand-rolled normalization: math.Mod(x, 2π), which re-implements
//     geom.NormAngle without its negative-remainder and boundary folds.
package anglenorm

import (
	"go/ast"
	"go/token"
	"math"
	"strings"

	"sectorpack/internal/analysis/astx"
	"sectorpack/internal/analysis/framework"
)

// Analyzer is the anglenorm checker.
var Analyzer = &framework.Analyzer{
	Name: "anglenorm",
	Doc: "2π-seam arithmetic outside internal/geom must use the geom helpers " +
		"(NormAngle, AngleDist, WrapGap, AnglesClose); raw `x ± 2π` fixups and " +
		"math.Mod(x, 2π) re-derive seam handling and drift from the canonical " +
		"treatment (the sweep/greedy dedup bugs fixed in PRs 1–2)",
	Run: run,
}

// twoPiTol is the recognition tolerance for 2π constants; anything a few
// ulps off the canonical value still encodes the seam.
const twoPiTol = 1e-9

func run(pass *framework.Pass) error {
	if isGeom(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, e)
			case *ast.AssignStmt:
				checkAssign(pass, e)
			case *ast.CallExpr:
				checkMod(pass, e)
			}
			return true
		})
	}
	return nil
}

// isGeom reports whether the analyzed package is internal/geom itself (by
// path suffix, so fixture packages named like the real one match too).
func isGeom(pass *framework.Pass) bool {
	return pass.Pkg.Name() == "geom" || strings.HasSuffix(pass.Pkg.Path(), "/geom")
}

func isTwoPi(pass *framework.Pass, e ast.Expr) bool {
	return astx.ConstFloatNear(pass.TypesInfo, e, 2*math.Pi, twoPiTol)
}

func checkBinary(pass *framework.Pass, e *ast.BinaryExpr) {
	if e.Op != token.ADD && e.Op != token.SUB {
		return
	}
	var other ast.Expr
	switch {
	case isTwoPi(pass, e.X):
		other = e.Y
	case isTwoPi(pass, e.Y):
		other = e.X
	default:
		return
	}
	// A constant partner means a threshold (2π ± Eps), not seam math.
	if astx.IsConst(pass.TypesInfo, other) {
		return
	}
	pass.Reportf(e.Pos(), "raw 2π seam arithmetic; use the geom helpers (NormAngle/AngleDist/WrapGap/AnglesClose) so wrap-around handling stays canonical")
}

func checkAssign(pass *framework.Pass, s *ast.AssignStmt) {
	if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN {
		return
	}
	for _, rhs := range s.Rhs {
		if isTwoPi(pass, rhs) {
			pass.Reportf(s.Pos(), "raw 2π seam fixup; use geom.NormAngle instead of manually wrapping the angle")
		}
	}
}

func checkMod(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Mod" || len(call.Args) != 2 {
		return
	}
	pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pkg.Name != "math" {
		return
	}
	if isTwoPi(pass, call.Args[1]) {
		pass.Reportf(call.Pos(), "math.Mod(x, 2π) re-implements angle normalization; use geom.NormAngle, which also folds negative remainders and the 2π boundary")
	}
}
