package anglenorm_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/anglenorm"
)

func TestAnglenorm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), anglenorm.Analyzer, "anglenorm", "geom")
}
