package anglenorm

// Constant±constant partners are thresholds, not seam math: legal.
const (
	eps       = 1e-9
	threshold = TwoPi + eps
)

func below(d float64) bool {
	return d < threshold
}

// Arithmetic with non-2π constants is untouched.
func double(theta float64) float64 {
	return theta + 3.14
}
