package anglenorm

import "math"

const TwoPi = 2 * math.Pi

// normalize hand-rolls the additive seam fixup the geom helpers own — the
// sweep/greedy dedup bug class fixed in PRs 1–2.
func normalize(theta float64) float64 {
	if theta < 0 {
		theta += TwoPi // want `raw 2π seam fixup`
	}
	return theta
}

// wrapGap spells the seam-crossing gap with raw 2π arithmetic.
func wrapGap(from, to float64) float64 {
	return TwoPi - from + to // want `raw 2π seam arithmetic`
}

// overflow uses the literal spelling; constant folding recognizes it too.
func overflow(theta float64) float64 {
	return theta - 6.283185307179586 // want `raw 2π seam arithmetic`
}

// wrapped re-implements geom.NormAngle via math.Mod.
func wrapped(theta float64) float64 {
	return math.Mod(theta, 2*math.Pi) // want `re-implements angle normalization`
}
