// Package geom stands in for internal/geom: the one package allowed to own
// raw 2π seam arithmetic, so the analyzer must stay silent here.
package geom

import "math"

func NormAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return theta
}
