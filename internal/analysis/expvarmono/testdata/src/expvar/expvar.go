// Package expvar is a minimized stand-in for the standard expvar: the
// analyzer matches counters by the named type expvar.Int, so the fixtures
// avoid type-checking net/http (which the real expvar imports).
package expvar

// Int is a 64-bit integer variable.
type Int struct{ i int64 }

// Add deltas the variable.
func (v *Int) Add(delta int64) { v.i += delta }

// Set replaces the value.
func (v *Int) Set(value int64) { v.i = value }

// Value reads the value.
func (v *Int) Value() int64 { return v.i }
