// Package counters declares annotated counters consumed by the expvarmono
// fixture package, proving the Monotonic facts cross the boundary.
package counters

import "expvar"

// Server mirrors the daemon's counter block.
type Server struct {
	Requests expvar.Int // monotonic
	Solved   expvar.Int // monotonic
	Inflight expvar.Int // gauge: goes up and down, not annotated
}

// TotalRestarts counts process restarts observed by the supervisor file.
var TotalRestarts expvar.Int // monotonic
