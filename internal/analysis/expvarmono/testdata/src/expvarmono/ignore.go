package expvarmono

import "counters"

// suppressedReset documents the one sanctioned rewind: a test harness
// zeroing counters between scenarios.
func suppressedReset(s *counters.Server) {
	//sectorlint:ignore expvarmono harness-only counter reset between differential scenarios
	s.Requests.Set(0)
}
