package expvarmono

import "counters"

// goodCounts only ever moves annotated counters up; the in-flight gauge
// is unannotated, so Set and negative Add are its normal life.
func goodCounts(s *counters.Server, n int64) {
	s.Requests.Add(1)
	s.Solved.Add(n) // dynamic deltas are the caller's contract, not flagged
	s.Inflight.Add(-1)
	s.Inflight.Set(0)
	counters.TotalRestarts.Add(1)
	_ = s.Requests.Value()
}
