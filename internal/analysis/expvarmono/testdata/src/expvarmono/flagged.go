package expvarmono

import "counters"

// badFold decrements a monotonic counter while rebalancing.
func badFold(s *counters.Server) {
	s.Requests.Add(-1) // want `negative Add on monotonic counter Server.Requests`
}

// badRewind resets a monotonic counter wholesale.
func badRewind(s *counters.Server) {
	s.Solved.Set(0) // want `Set on monotonic counter Server.Solved`
}

// badPkgVar rewinds the package-level counter of an imported package.
func badPkgVar() {
	counters.TotalRestarts.Set(0) // want `Set on monotonic counter TotalRestarts`
}
