// Package expvarmono protects the monotonicity contract of /debug/vars
// counters.
//
// Invariant (DESIGN.md, "Observability"): counters the dashboards derive
// rates from — requests, solved, journal failures, idempotent replays —
// only ever move up. The PR-7 retired-stats incident is the motivating
// bug: a "total sessions" expvar was recomputed as live+retired and
// briefly went DOWN when a session moved between the two sets, which the
// rate() over it rendered as a giant negative spike and paged the
// on-call. The fix was to make retirement fold monotonic counters only;
// the annotation makes that property checkable.
//
// A counter declares the contract with a `// monotonic` comment on its
// declaration — an expvar.Int struct field or package-level var. The
// fact crosses packages, so a counter owned by the daemon Server struct
// is protected in every importer. Violations:
//
//   - .Add(c) with a constant negative c — the direct decrement;
//   - .Set(anything) — Set can rewind the counter, and every legitimate
//     use in this repository is on gauges, which are simply not
//     annotated.
package expvarmono

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"sectorpack/internal/analysis/astx"
	"sectorpack/internal/analysis/framework"
)

// Monotonic marks an expvar.Int counter as never-decreasing.
type Monotonic struct{}

// AFact marks Monotonic as a fact.
func (*Monotonic) AFact() {}

// Analyzer is the expvarmono checker.
var Analyzer = &framework.Analyzer{
	Name: "expvarmono",
	Doc: "expvar.Int counters annotated `// monotonic` may only receive non-negative " +
		"Adds and never Set: dashboards rate() over them, and a rewinding counter " +
		"renders as a negative-rate spike (the PR-7 retired-stats incident)",
	Run:       run,
	FactTypes: []framework.Fact{(*Monotonic)(nil)},
}

func run(pass *framework.Pass) error {
	exportMonotonic(pass)
	checkUses(pass)
	return nil
}

// isExpvarInt matches expvar.Int (possibly behind a pointer).
func isExpvarInt(t types.Type) bool {
	return astx.IsNamed(t, "expvar", "Int")
}

// hasMonotonicComment reports whether any comment in the groups is exactly
// the `monotonic` marker (with optional trailing prose).
func hasMonotonicComment(groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
			if text == "monotonic" || strings.HasPrefix(text, "monotonic ") ||
				strings.HasPrefix(text, "monotonic:") {
				return true
			}
		}
	}
	return false
}

// exportMonotonic publishes Monotonic facts for annotated expvar.Int
// struct fields and package-level vars.
func exportMonotonic(pass *framework.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch decl := n.(type) {
			case *ast.TypeSpec:
				st, ok := decl.Type.(*ast.StructType)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Defs[decl.Name]
				if obj == nil {
					return true
				}
				named, _ := obj.Type().(*types.Named)
				if named == nil {
					return true
				}
				for _, f := range st.Fields.List {
					if !hasMonotonicComment(f.Comment, f.Doc) {
						continue
					}
					tv, ok := pass.TypesInfo.Types[f.Type]
					if !ok || !isExpvarInt(tv.Type) {
						pass.Reportf(f.Pos(), "`// monotonic` annotates a non-expvar.Int field; the contract only applies to counters")
						continue
					}
					for _, name := range f.Names {
						pass.ExportFieldFact(named, name.Name, &Monotonic{})
					}
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || !hasMonotonicComment(vs.Comment, vs.Doc, decl.Doc) {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil || !isExpvarInt(obj.Type()) {
							continue
						}
						pass.ExportObjectFact(obj, &Monotonic{})
					}
				}
			}
			return true
		})
	}
}

// checkUses flags Set and negative-Add calls on monotonic counters.
func checkUses(pass *framework.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if method != "Add" && method != "Set" {
				return true
			}
			name, ok := monotonicCounter(pass, ast.Unparen(sel.X))
			if !ok {
				return true
			}
			switch method {
			case "Set":
				pass.Reportf(call.Pos(),
					"Set on monotonic counter %s: Set can rewind it and break every rate() over it; "+
						"use Add, or drop the `// monotonic` annotation if this is really a gauge", name)
			case "Add":
				if len(call.Args) == 1 && isNegativeConst(pass.TypesInfo, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"negative Add on monotonic counter %s: counters only move up "+
							"(fold removals into a second counter instead)", name)
				}
			}
			return true
		})
	}
}

// monotonicCounter reports whether expr denotes an annotated counter,
// returning its display name.
func monotonicCounter(pass *framework.Pass, expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		selection, ok := pass.TypesInfo.Selections[e]
		if !ok || selection.Kind() != types.FieldVal {
			// Qualified package var: pkg.counter.
			if obj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
				var m Monotonic
				if pass.ImportObjectFact(obj, &m) {
					return obj.Name(), true
				}
			}
			return "", false
		}
		var m Monotonic
		if pass.ImportFieldFact(selection.Recv(), e.Sel.Name, &m) {
			owner := framework.Named(selection.Recv())
			if owner != nil {
				return owner.Obj().Name() + "." + e.Sel.Name, true
			}
			return e.Sel.Name, true
		}
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			var m Monotonic
			if pass.ImportObjectFact(obj, &m) {
				return obj.Name(), true
			}
		}
	}
	return "", false
}

func isNegativeConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return false
	}
	return constant.Sign(v) < 0
}
