package expvarmono_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/expvarmono"
)

func TestExpvarmono(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), expvarmono.Analyzer,
		"expvar", "counters", "expvarmono")
}
