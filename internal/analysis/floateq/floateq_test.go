package floateq_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floateq.Analyzer, "floateq", "geom")
}
