// Package floateq enforces the repository's float-comparison discipline:
// no ==/!= between floating-point expressions outside internal/geom.
//
// Invariant: angular containment and candidate dedup use geom.Eps
// tolerances (geom.AnglesClose and friends), and exact float identity is
// reserved for two places that are explicit about it — internal/geom's
// own primitives, and the cache fingerprint, which spells floats as
// IEEE-754 bit patterns (math.Float64bits) precisely so that equality is
// total and well-defined. PR 4's fingerprint work exists because naive
// float comparisons are neither: a value that round-trips through a
// different computation order compares unequal while meaning the same
// angle.
//
// The analyzer flags ==/!= where both operands are floating point, except
// comparisons against the constant 0 — zero is an exact sentinel across
// the codebase (Rho == 0 is the degenerate-ray encoding, Range <= 0 the
// unbounded-range encoding) and arises from assignment, not arithmetic.
// Deliberate exact comparisons (canonical-order sort tie-breaks) carry a
// //sectorlint:ignore floateq comment stating why exactness is wanted.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sectorpack/internal/analysis/astx"
	"sectorpack/internal/analysis/framework"
)

// Analyzer is the floateq checker.
var Analyzer = &framework.Analyzer{
	Name: "floateq",
	Doc: "no ==/!= between floats outside internal/geom (comparisons with the " +
		"constant 0 sentinel excepted): use geom.Eps tolerance helpers, or hash " +
		"math.Float64bits when total exact identity is the point, as the cache " +
		"fingerprint does (PR 4)",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "geom" || strings.HasSuffix(pass.Pkg.Path(), "/geom") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, e.X) || !isFloat(pass.TypesInfo, e.Y) {
				return true
			}
			if astx.IsConstZero(pass.TypesInfo, e.X) || astx.IsConstZero(pass.TypesInfo, e.Y) {
				return true
			}
			pass.Reportf(e.OpPos, "exact %s between floats; compare with a geom.Eps tolerance, or make bit-level identity explicit via math.Float64bits", e.Op)
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
