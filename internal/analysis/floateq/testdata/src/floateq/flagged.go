package floateq

// sameAngle compares floats exactly — the drifting-comparison class the
// fingerprint's bit-pattern hashing (PR 4) exists to avoid.
func sameAngle(a, b float64) bool {
	return a == b // want `exact == between floats`
}

func moved(a, b float64) bool {
	return a != b // want `exact != between floats`
}

type radians float64

// Named float types are still floats underneath.
func sameRad(a, b radians) bool {
	return a == b // want `exact == between floats`
}
