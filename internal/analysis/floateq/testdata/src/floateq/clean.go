package floateq

// Zero is an exact sentinel across the codebase (Rho == 0 is the
// degenerate-ray encoding): comparisons against constant 0 are exempt.
func isRay(rho float64) bool { return rho == 0 }

func isSet(x float64) bool { return 0.0 != x }

// Integer equality is outside the rule entirely.
func sameCount(a, b int) bool { return a == b }

type customer struct{ theta float64 }

// A deliberate exact comparison carries its justification inline.
func less(x, y customer) bool {
	if x.theta != y.theta { //sectorlint:ignore floateq canonical tie-break wants exact order, as the cache fingerprint does
		return x.theta < y.theta
	}
	return false
}
