// Package geom stands in for internal/geom, whose primitives are the one
// place exact float identity is owned: the analyzer must stay silent here.
package geom

func Identical(a, b float64) bool {
	return a == b
}
