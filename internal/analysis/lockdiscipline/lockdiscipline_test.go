package lockdiscipline_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/lockdiscipline"
)

func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockdiscipline.Analyzer,
		"lockstate", "lockdiscipline")
}
