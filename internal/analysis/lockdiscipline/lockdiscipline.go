// Package lockdiscipline checks that mutex-guarded struct fields are only
// touched with their guard held.
//
// Invariant: a struct field annotated
//
//	mu   sync.Mutex
//	sess *session.Session // guarded by mu
//
// may only be read or written by a function that (a) locks <owner>.mu
// itself, (b) is annotated `//sectorlint:locked <Owner>.mu` — a declared
// contract that every caller already holds the lock — or (c) is reached
// only from functions that hold the lock, verified over the module call
// graph. Rule (c) is what makes helpers honest: annotating a helper
// `locked` shifts the proof obligation to its callers, and the analyzer
// walks the call graph to collect it.
//
// The motivating bug is the PR-7/8 daemon class: sessionStore kept
// per-entry state (the live *session.Session, its journal, the
// idempotency memo) behind sessionEntry.mu, but stats-folding helpers
// read entry.sess without the lock, racing an in-flight delta apply.
// The same shape existed transiently in the proxy's per-backend health
// state before it moved to atomics. Annotations make the discipline
// checkable: the guard relation lives next to the fields, exported as
// facts, so an access in ANY package importing the struct is checked.
//
// Exemptions, each encoding a real pattern in this repository:
//
//   - Constructor locals: a value the function itself built from a
//     composite literal (e := &sessionEntry{...}) is unpublished, so
//     pre-publication field access needs no lock.
//   - The guard field itself: e.mu.Lock() is obviously not a guarded
//     access.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"sectorpack/internal/analysis/framework"
)

// GuardedBy is the field fact: the named sibling field is the mutex
// protecting this one.
type GuardedBy struct {
	Mutex string
}

// AFact marks GuardedBy as a fact.
func (*GuardedBy) AFact() {}

// RequiresLock is the object fact exported for functions annotated
// //sectorlint:locked <Owner>.<mutex>: callers must hold the lock.
type RequiresLock struct {
	// Owner is "<pkgpath>.<TypeName>" of the struct owning the mutex.
	Owner string
	// Mutex is the guard field's name.
	Mutex string
}

// AFact marks RequiresLock as a fact.
func (*RequiresLock) AFact() {}

// lockedPrefix introduces the helper annotation.
const lockedPrefix = "//sectorlint:locked"

// Analyzer is the lockdiscipline checker.
var Analyzer = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc: "fields annotated `// guarded by mu` may only be accessed holding the guard: " +
		"the accessor locks <owner>.mu itself, is annotated //sectorlint:locked Owner.mu, " +
		"or is provably reached only from lock-holding callers (module call graph); " +
		"encodes the daemon sessionStore stats-fold race class",
	Run:            run,
	FactTypes:      []framework.Fact{(*GuardedBy)(nil), (*RequiresLock)(nil)},
	NeedsCallGraph: true,
}

func run(pass *framework.Pass) error {
	exportGuards(pass)
	exportLockedAnnotations(pass)

	checker := &checker{pass: pass, holds: map[holdQuery]bool{}}
	for _, node := range pass.Graph.NodesOf(pass.Pkg.Path()) {
		checker.checkNode(node)
	}
	return nil
}

// exportGuards publishes a GuardedBy fact for every `// guarded by <mu>`
// field comment on a named struct type, validating that the guard names a
// sibling field.
func exportGuards(pass *framework.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, _ := obj.Type().(*types.Named)
			if named == nil {
				return true
			}
			fieldNames := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu, ok := guardComment(f)
				if !ok {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(f.Pos(),
						"guard comment names %q, which is not a field of %s; the guard must be a sibling field",
						mu, ts.Name.Name)
					continue
				}
				for _, name := range f.Names {
					if name.Name == mu {
						continue // a mutex cannot guard itself
					}
					pass.ExportFieldFact(named, name.Name, &GuardedBy{Mutex: mu})
				}
			}
			return true
		})
	}
}

// guardComment extracts the mutex name from a field's `// guarded by <mu>`
// comment (trailing or doc).
func guardComment(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
			rest, ok := strings.CutPrefix(text, "guarded by ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return fields[0], true
			}
		}
	}
	return "", false
}

// exportLockedAnnotations publishes RequiresLock facts for functions
// annotated //sectorlint:locked <Owner>.<mu>.
func exportLockedAnnotations(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, lockedPrefix)
				if !ok {
					continue
				}
				spec := strings.TrimSpace(rest)
				owner, mu, ok := strings.Cut(spec, ".")
				if !ok || owner == "" || mu == "" {
					pass.Reportf(c.Pos(), "malformed annotation: %s <Owner>.<mutex>", lockedPrefix)
					continue
				}
				pass.ExportObjectFact(obj, &RequiresLock{
					Owner: pass.Pkg.Path() + "." + owner,
					Mutex: mu,
				})
			}
		}
	}
}

// guardKey identifies one (owner type, mutex field) pair module-wide.
type guardKey struct {
	owner string // "<pkgpath>.<TypeName>"
	mutex string
}

type holdQuery struct {
	node  string
	guard guardKey
}

type checker struct {
	pass  *framework.Pass
	holds map[holdQuery]bool
}

// checkNode verifies every guarded-field access in one call-graph node.
// Nested function literals are skipped — they are their own nodes.
func (c *checker) checkNode(node *framework.CallNode) {
	fresh := constructorLocals(c.pass.TypesInfo, node.Body)
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != node.Body {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkLockedCall(node, call)
			return true
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := c.pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		owner := framework.Named(selection.Recv())
		if owner == nil || owner.Obj().Pkg() == nil {
			return true
		}
		var gb GuardedBy
		if !c.pass.ImportFieldFact(selection.Recv(), sel.Sel.Name, &gb) {
			return true
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[base]; obj != nil && fresh[obj] {
				return true // unpublished constructor local
			}
		}
		guard := guardKey{
			owner: owner.Obj().Pkg().Path() + "." + owner.Obj().Name(),
			mutex: gb.Mutex,
		}
		if !c.nodeHolds(node.Key, guard) {
			ownerName := owner.Obj().Name()
			c.pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %q but %s does not hold it: lock %s.%s, or annotate the helper "+
					"//sectorlint:locked %s.%s and lock in every caller",
				ownerName, sel.Sel.Name, gb.Mutex, displayName(node),
				strings.ToLower(ownerName[:1]), gb.Mutex, ownerName, gb.Mutex)
		}
		return true
	})
}

// checkLockedCall enforces the other half of the //sectorlint:locked
// contract: the annotation promises every caller holds the lock, so a call
// to an annotated helper from a function that does not is a finding.
func (c *checker) checkLockedCall(node *framework.CallNode, call *ast.CallExpr) {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	var rl RequiresLock
	if !c.pass.ImportObjectFact(fn, &rl) {
		return
	}
	guard := guardKey{owner: rl.Owner, mutex: rl.Mutex}
	if !c.nodeHolds(node.Key, guard) {
		ownerName := rl.Owner
		if i := strings.LastIndex(rl.Owner, "."); i >= 0 {
			ownerName = rl.Owner[i+1:]
		}
		c.pass.Reportf(call.Pos(),
			"%s is annotated //sectorlint:locked %s.%s but %s calls it without holding %s.%s",
			fn.Name(), ownerName, rl.Mutex, displayName(node), ownerName, rl.Mutex)
	}
}

// calleeFunc resolves the *types.Func a call invokes, or nil for builtins,
// conversions, and dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// nodeHolds reports whether the function at key holds guard at every
// guarded access: it locks the mutex itself, declares the contract via
// //sectorlint:locked, or (recursively) is called only by holders. Cycles
// resolve optimistically — a mutually recursive pair whose every external
// entry point holds the lock passes.
func (c *checker) nodeHolds(key string, guard guardKey) bool {
	q := holdQuery{node: key, guard: guard}
	if v, ok := c.holds[q]; ok {
		return v
	}
	c.holds[q] = true // optimistic: cycles don't refute holding
	node := c.pass.Graph.Node(key)
	v := c.computeHolds(node, guard)
	c.holds[q] = v
	return v
}

func (c *checker) computeHolds(node *framework.CallNode, guard guardKey) bool {
	if node == nil {
		return false
	}
	if node.Body != nil && node.Pkg != nil && selfLocks(node.Pkg.TypesInfo, node.Body, guard) {
		return true
	}
	if node.Fn != nil {
		var rl RequiresLock
		if c.pass.ImportObjectFact(node.Fn, &rl) && rl.Owner == guard.owner && rl.Mutex == guard.mutex {
			return true
		}
	}
	callers := c.pass.Graph.Callers(node.Key)
	if len(callers) == 0 {
		return false
	}
	for _, caller := range callers {
		if !c.nodeHolds(caller.Key, guard) {
			return false
		}
	}
	return true
}

// selfLocks reports whether body contains a call of the shape
// <expr-of-owner-type>.<mutex>.Lock/RLock/TryLock/TryRLock(), outside
// nested function literals. Flow-insensitive by design: the repository
// style locks at function entry.
func selfLocks(info *types.Info, body *ast.BlockStmt, guard guardKey) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lockSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch lockSel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		muSel, ok := ast.Unparen(lockSel.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != guard.mutex {
			return true
		}
		recv, ok := info.Types[muSel.X]
		if !ok {
			return true
		}
		owner := framework.Named(recv.Type)
		if owner == nil || owner.Obj().Pkg() == nil {
			return true
		}
		if owner.Obj().Pkg().Path()+"."+owner.Obj().Name() == guard.owner {
			found = true
			return false
		}
		return true
	})
	return found
}

// constructorLocals collects the objects this body initializes from a
// composite literal (e := &T{...} / var e = T{...}): values the function
// built itself and has not yet published.
func constructorLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if !isCompositeLit(rhs) {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					} else if obj := info.Uses[id]; obj != nil && isLocalVar(obj) {
						fresh[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) && isCompositeLit(st.Values[i]) {
					if obj := info.Defs[name]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

func isCompositeLit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

// isLocalVar reports whether obj is a function-scoped variable (not a
// package var, parameter of another function, or field).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() == nil || (v.Pkg() != nil && v.Parent() != v.Pkg().Scope())
}

func displayName(node *framework.CallNode) string {
	if node.Fn != nil {
		return node.Fn.Name()
	}
	return "a function literal"
}
