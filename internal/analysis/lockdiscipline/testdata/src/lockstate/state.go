// Package lockstate is the cross-package half of the lockdiscipline
// fixtures: a store type whose guarded fields are accessed from the
// lockdiscipline fixture package, proving the GuardedBy facts survive the
// package boundary.
package lockstate

import "sync"

// Entry mirrors the daemon's sessionEntry shape.
type Entry struct {
	Mu   sync.Mutex
	Name string // guarded by Mu
	Hits int    // guarded by Mu
}

// Touch is a correctly locking accessor.
func (e *Entry) Touch() {
	e.Mu.Lock()
	defer e.Mu.Unlock()
	e.Hits++
}

//sectorlint:locked Entry.Mu
func (e *Entry) NameLocked() string { return e.Name }
