package lockdiscipline

import (
	"sync"

	"lockstate"
)

type store struct {
	mu      sync.Mutex
	entries map[string]int // guarded by mu
	retired int            // guarded by mu
	bad     int            // guarded by gone // want `guard comment names "gone"`
}

// badCount reads a guarded field with no lock anywhere in sight.
func (s *store) badCount() int {
	return len(s.entries) // want `entries is guarded by "mu"`
}

// badCross accesses an imported package's guarded field: the GuardedBy
// fact crossed the package boundary.
func badCross(e *lockstate.Entry) string {
	return e.Name // want `Name is guarded by "Mu"`
}

// badCallLocked calls a //sectorlint:locked helper without the lock.
func badCallLocked(e *lockstate.Entry) string {
	return e.NameLocked() // want `calls it without holding Entry.Mu`
}

// badHelper is reached from one locking caller and one non-locking
// caller, so "all callers hold" fails.
func (s *store) badHelper() int {
	return s.retired // want `retired is guarded by "mu"`
}

func (s *store) lockingCaller() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.badHelper()
}

func (s *store) forgetfulCaller() int {
	return s.badHelper()
}
