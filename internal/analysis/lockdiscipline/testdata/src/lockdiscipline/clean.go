package lockdiscipline

import "lockstate"

// count locks the guard itself.
func (s *store) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// totalLocked declares its contract; callers are checked instead.
//
//sectorlint:locked store.mu
func (s *store) totalLocked() int { return s.retired }

// drain holds the lock across the helper call.
func (s *store) drain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked()
}

// helperAllCallersLock has no annotation but every caller (drainAll, via
// the call graph) holds the lock, which rule (c) accepts.
func (s *store) helperAllCallersLock() int {
	return s.retired
}

func (s *store) drainAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.helperAllCallersLock()
}

// newStore touches guarded fields of a value it just built: unpublished,
// so no lock is needed.
func newStore() *store {
	s := &store{entries: map[string]int{}}
	s.entries["seed"] = 1
	s.retired = 0
	return s
}

// lockedClosure: the literal itself does not lock, but its only caller —
// the enclosing function — does, and the parent edge carries it.
func (s *store) lockedClosure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	get := func() int { return s.retired }
	return get()
}

// crossClean locks the imported type's guard before touching its field.
func crossClean(e *lockstate.Entry) string {
	e.Mu.Lock()
	defer e.Mu.Unlock()
	return e.Name + e.NameLocked()
}
