package lockdiscipline

// suppressedRead documents why the unlocked read is safe and silences the
// finding; the reason is mandatory.
func (s *store) suppressedRead() int {
	//sectorlint:ignore lockdiscipline read-only stats snapshot tolerated stale by the dashboard
	return s.retired
}
