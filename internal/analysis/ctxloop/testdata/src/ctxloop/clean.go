package ctxloop

import "context"

// SolveChecked consults ctx at every iteration boundary: compliant.
func SolveChecked(ctx context.Context, in *Instance) (Solution, error) {
	var s Solution
	for _, c := range in.Customers {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		s.Profit += work(c)
	}
	return s, nil
}

// SolveDelegated passes ctx into the work; the callee is itself held to
// the invariant, so the loop is covered.
func SolveDelegated(ctx context.Context, in *Instance) (Solution, error) {
	var s Solution
	for _, c := range in.Customers {
		s.Profit += workCtx(ctx, c)
	}
	return s, nil
}

func workCtx(ctx context.Context, c int) int64 { return int64(c) }

// tally takes no context, so it is not solver-shaped and stays exempt.
func tally(in *Instance) int64 {
	var t int64
	for _, c := range in.Customers {
		t += work(c)
	}
	return t
}

// SolveBookkeeping only initializes a slice: pure bookkeeping is not
// per-iteration work, so no check is demanded.
func SolveBookkeeping(ctx context.Context, in *Instance) (Solution, error) {
	owners := make([]int, len(in.Customers))
	for i := range owners {
		owners[i] = -1
	}
	_ = owners
	return Solution{}, ctx.Err()
}

// SolveOuterChecked consults ctx in the outer loop; inner loops under an
// already-checked boundary are covered at the solver granularity.
func SolveOuterChecked(ctx context.Context, in *Instance) (Solution, error) {
	var s Solution
	for range in.Customers {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		for _, c := range in.Customers {
			s.Profit += work(c)
			s.Profit++
		}
	}
	return s, nil
}

// SolveClosureBuild builds per-shard closures without running them; closure
// creation is not per-iteration work (the exact.SolveParallel false
// positive this rule was tuned on).
func SolveClosureBuild(ctx context.Context, in *Instance) (Solution, error) {
	jobs := make([]func(context.Context) int64, len(in.Customers))
	for k, c := range in.Customers {
		c := c
		jobs[k] = func(jctx context.Context) int64 { return work(c) }
	}
	_ = jobs
	return Solution{}, ctx.Err()
}
