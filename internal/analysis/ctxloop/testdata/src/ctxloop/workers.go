package ctxloop

import (
	"context"
	"sync"
)

// Prewarm mimics the columnar engine's worker pool with the bug the rule
// exists for: workers drain the antenna queue without ever consulting the
// context, so a deadline-exceeded solve keeps burning CPU.
func Prewarm(ctx context.Context, in *Instance) error {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range in.Customers { // want `without consulting a context`
				work(c)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// PrewarmChecked consults ctx once per claimed batch: compliant.
func PrewarmChecked(ctx context.Context, in *Instance) error {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range in.Customers {
				if ctx.Err() != nil {
					return
				}
				work(c)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// PrewarmDerived re-derives the context before the fan-out (the sweep.Run
// shape); consulting the derived child is exactly right, so the type-based
// match keeps it clean.
func PrewarmDerived(ctx context.Context, in *Instance) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range in.Customers {
				workCtx(ctx, c)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// PrewarmOwnCtx launches a goroutine that takes its own context parameter:
// exempt here, it is analyzed as a function in its own right.
func PrewarmOwnCtx(ctx context.Context, in *Instance) error {
	done := make(chan struct{})
	go func(gctx context.Context) {
		defer close(done)
		for _, c := range in.Customers {
			if gctx.Err() != nil {
				return
			}
			work(c)
		}
	}(ctx)
	<-done
	return ctx.Err()
}

// fanOut has no context parameter at all, so the worker rule does not
// apply — there is nothing the pool could consult.
func fanOut(in *Instance) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, c := range in.Customers {
			work(c)
		}
	}()
	wg.Wait()
}

// PrewarmBookkeeping workers only do per-iteration bookkeeping; demanding a
// ctx check there would be noise.
func PrewarmBookkeeping(ctx context.Context, in *Instance) error {
	owners := make([]int, len(in.Customers))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range owners {
			owners[i] = -1
		}
	}()
	<-done
	return ctx.Err()
}
