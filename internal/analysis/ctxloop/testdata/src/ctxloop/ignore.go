package ctxloop

import "context"

// SolveSuppressed demonstrates the suppression path: the finding is
// acknowledged and silenced with a mandatory reason.
func SolveSuppressed(ctx context.Context, in *Instance) (Solution, error) {
	var s Solution
	//sectorlint:ignore ctxloop fixture demonstrating the suppression path
	for _, c := range in.Customers {
		s.Profit += work(c)
	}
	return s, nil
}
