package ctxloop

import "context"

type Instance struct{ Customers []int }

type Solution struct{ Profit int64 }

func work(c int) int64 { return int64(c) }

// SolveParallel minimizes the PR-2 bug: a solver-shaped function that
// walks the instance-sized candidate space without ever consulting the
// context it accepted, so a daemon deadline cannot interrupt it.
func SolveParallel(ctx context.Context, in *Instance) (Solution, error) {
	var s Solution
	for _, c := range in.Customers { // want `without consulting its context`
		s.Profit += work(c)
	}
	return s, nil
}

// bestWindow is solver-shaped through its Solution result even though its
// name does not start with Solve.
func bestWindow(ctx context.Context, in *Instance) Solution {
	var s Solution
	for _, c := range in.Customers { // want `without consulting its context`
		s.Profit += work(c)
	}
	return s
}

// SolveNested reports only the outermost offending loop: the finding names
// the boundary where the check belongs, without cascading into children.
func SolveNested(ctx context.Context, in *Instance) (Solution, error) {
	var s Solution
	for range in.Customers { // want `without consulting its context`
		for _, c := range in.Customers {
			s.Profit += work(c)
			s.Profit++
		}
	}
	return s, nil
}
