package ctxloop_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxloop.Analyzer, "ctxloop")
}
