// Package ctxloop enforces the repository's cancellation contract on
// solver functions.
//
// Invariant (DESIGN.md, "Cancellable solving"): every core.Solver checks
// ctx at its iteration boundaries — greedy steps, local-search moves,
// orientation tuples — so a cancelled solve returns ctx.Err() promptly
// instead of running to completion. PR 2 fixed exactly this bug in
// exact.SolveParallel: the function accepted a context.Context and then
// looped over the orientation-tuple space without ever consulting it, so
// a daemon deadline could not interrupt the exponential enumeration.
//
// The analyzer flags every for/range loop that performs real per-iteration
// work inside a solver-shaped function without touching the function's
// context parameter. "Solver-shaped" means the first parameter is a
// context.Context and either the function's name starts with "Solve" or
// one of its results is a type named Solution — the shape shared by
// core.Solver implementations, the registry closures, and the package
// solver entry points (multistation, fair, cover, exact). "Real work"
// means the loop body calls a declared function or method, or contains a
// non-trivial nested loop; pure index/bookkeeping loops (initializing an
// ownership slice, appending pairs) are exempt because checking ctx there
// would be noise, not a guarantee. Touching ctx — calling ctx.Err(),
// selecting on ctx.Done(), or passing ctx into the work — satisfies the
// contract, because every callee that accepts the ctx is itself held to
// this invariant.
//
// A second rule extends the contract to parallel fan-outs (the columnar
// engine's Prewarm and CandidatesAll pools, sweep.Run, SolveBatch): inside
// ANY function whose first parameter is a context.Context — solver-shaped
// or not — a goroutine launched as `go func() { ... }()` must consult a
// context in every working loop, typically once per claimed work batch.
// A worker pool that drains its queue regardless of cancellation keeps a
// deadline-exceeded solve burning CPU for the full instance size. This
// rule matches by type, not by the parameter object: worker pools
// routinely re-derive the context (ctx, cancel := context.WithCancel(ctx)),
// and consulting the derived context is exactly right, since cancellation
// flows parent to child. Goroutine literals that take their own
// context.Context parameter are exempt here — they carry their own
// contract and are analyzed as functions in their own right.
package ctxloop

import (
	"go/ast"
	"go/types"

	"sectorpack/internal/analysis/astx"
	"sectorpack/internal/analysis/framework"
)

// Analyzer is the ctxloop checker.
var Analyzer = &framework.Analyzer{
	Name: "ctxloop",
	Doc: "solver loops must consult their context: every for loop doing real work " +
		"inside a Solve*/Solution-returning function that takes a context.Context " +
		"must check ctx.Err(), select on ctx.Done(), or pass ctx to its callees " +
		"(the exact.SolveParallel bug fixed in PR 2); worker goroutines launched " +
		"inside any context-taking function must likewise consult a context in " +
		"every working loop, once per claimed batch",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, fn := range astx.Funcs(pass.Files) {
		name := fn.Name
		if name == "" {
			name = "function literal"
		}
		if ctxObj, ok := solverShape(pass, fn); ok {
			checkLoops(pass, fn.Body, name, ctxObj, false)
		}
		if hasCtxFirstParam(pass, fn.Type) {
			checkWorkerGoroutines(pass, fn.Body, name)
		}
	}
	return nil
}

// checkWorkerGoroutines applies the worker-pool rule: every `go func() {...}()`
// launched (transitively) in the function's body must consult a context in
// each of its working loops. Nested function literals that accept their own
// context.Context are skipped — astx.Funcs enumerates them separately and
// they are held to their own contract.
func checkWorkerGoroutines(pass *framework.Pass, body *ast.BlockStmt, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && litTakesCtx(pass, lit) {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok || litTakesCtx(pass, lit) {
			return true
		}
		checkWorkerLoops(pass, lit.Body, name, false)
		return true
	})
}

// checkWorkerLoops is checkLoops for a worker goroutine body: the
// exemption is consulting ANY context-typed value (see the package comment
// on why the match is by type), and the finding message names the pool.
func checkWorkerLoops(pass *framework.Pass, n ast.Node, name string, exempt bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if c == n {
				return true
			}
			body, _ := loopBody(c)
			childExempt := exempt || mentionsContextValue(pass.TypesInfo, body)
			if !childExempt && hasWork(pass.TypesInfo, body) {
				pass.Reportf(c.Pos(),
					"worker goroutine in %s loops over work without consulting a context; check ctx.Err() once per claimed batch so cancellation stops the pool", name)
				childExempt = true
			}
			checkWorkerLoops(pass, c, name, childExempt)
			return false
		}
		return true
	})
}

// hasCtxFirstParam reports whether the function's first parameter is a
// context.Context (named or not).
func hasCtxFirstParam(pass *framework.Pass, ftype *ast.FuncType) bool {
	params := ftype.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[params.List[0].Type]
	return ok && astx.IsNamed(tv.Type, "context", "Context")
}

// litTakesCtx reports whether a function literal's first parameter is a
// context.Context.
func litTakesCtx(pass *framework.Pass, lit *ast.FuncLit) bool {
	return hasCtxFirstParam(pass, lit.Type)
}

// mentionsContextValue reports whether n uses any identifier whose type is
// context.Context — the function's own parameter, a derived child context,
// or one captured from an enclosing scope.
func mentionsContextValue(info *types.Info, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && astx.IsNamed(obj.Type(), "context", "Context") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkLoops walks stmts looking for offending loops. exempt is true when
// an enclosing loop already consults ctx on every one of its iterations —
// the granularity the solvers use (one check per greedy step, per
// orientation tuple, ...) — so nested loops under it are covered. A
// reported loop also exempts its children: the finding names the
// outermost boundary where the check belongs.
func checkLoops(pass *framework.Pass, n ast.Node, name string, ctxObj types.Object, exempt bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.FuncLit:
			// Nested literals carry their own ctx parameter (or lack
			// thereof) and are visited as their own astx.Func.
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if c == n {
				return true
			}
			body, _ := loopBody(c)
			childExempt := exempt || astx.MentionsObject(pass.TypesInfo, body, ctxObj)
			if !childExempt && hasWork(pass.TypesInfo, body) {
				pass.Reportf(c.Pos(),
					"loop in solver %s does per-iteration work without consulting its context; check ctx.Err() (or pass ctx to the work) so cancellation interrupts it", name)
				childExempt = true
			}
			checkLoops(pass, c, name, ctxObj, childExempt)
			return false
		}
		return true
	})
}

// solverShape reports whether fn is solver-shaped and returns the object
// of its context parameter. A context parameter that is unnamed (or
// blank) can never be consulted, so the nil object makes every working
// loop a finding — which is exactly right: such a function cannot honor
// cancellation at all.
func solverShape(pass *framework.Pass, fn astx.Func) (types.Object, bool) {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil, false
	}
	first := params.List[0]
	tv, ok := pass.TypesInfo.Types[first.Type]
	if !ok || !astx.IsNamed(tv.Type, "context", "Context") {
		return nil, false
	}
	if !isSolveName(fn.Name) && !returnsSolution(pass, fn.Type) {
		return nil, false
	}
	var ctxObj types.Object
	if len(first.Names) > 0 && first.Names[0].Name != "_" {
		ctxObj = pass.TypesInfo.Defs[first.Names[0]]
	}
	return ctxObj, true
}

func isSolveName(name string) bool {
	return len(name) >= 5 && name[:5] == "Solve"
}

func returnsSolution(pass *framework.Pass, ftype *ast.FuncType) bool {
	if ftype.Results == nil {
		return false
	}
	for _, res := range ftype.Results.List {
		tv, ok := pass.TypesInfo.Types[res.Type]
		if !ok {
			continue
		}
		if named := astx.NamedType(tv.Type); named != nil && named.Obj().Name() == "Solution" {
			return true
		}
	}
	return false
}

func loopBody(n ast.Node) (*ast.BlockStmt, bool) {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body, true
	case *ast.RangeStmt:
		return l.Body, true
	}
	return nil, false
}

// hasWork reports whether a loop body performs real per-iteration work: a
// call to a declared function or method (not a conversion or builtin), or
// a nested loop whose own body is more than a single bookkeeping
// statement.
func hasWork(info *types.Info, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		switch c := n.(type) {
		case *ast.FuncLit:
			// Building a closure is not per-iteration work; its body runs
			// elsewhere (and is checked as its own function if it solves).
			return false
		case *ast.CallExpr:
			if !astx.IsConversion(info, c) && !astx.IsBuiltinCall(info, c) {
				work = true
				return false
			}
		case *ast.ForStmt:
			if nontrivial(c.Body) {
				work = true
				return false
			}
		case *ast.RangeStmt:
			if nontrivial(c.Body) {
				work = true
				return false
			}
		}
		return true
	})
	return work
}

// nontrivial reports whether a nested loop body is more than one
// bookkeeping statement (so init loops like `for i := range a { a[i] = x }`
// inside an outer loop stay exempt, while DP kernels and multi-statement
// inner sweeps count as work).
func nontrivial(body *ast.BlockStmt) bool {
	return len(body.List) > 1
}
