package load_test

import (
	"os"
	"path/filepath"
	"testing"

	"sectorpack/internal/analysis/load"
)

// writeModule lays out a throwaway module with one package carrying both
// an in-package and an external test file.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmod\n\ngo 1.21\n",
		"p/p.go": `package p

func Exported() int { return 1 }

func helper() int { return 2 }
`,
		"p/p_test.go": `package p

func testOnlyHelper() int { return helper() }
`,
		"p/px_test.go": `package p_test

import "tmod/p"

var _ = p.Exported
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestPackagesExcludesTestsByDefault(t *testing.T) {
	dir := writeModule(t)
	_, pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if got := len(pkgs[0].Files); got != 1 {
		t.Errorf("default load parsed %d files, want only p.go", got)
	}
}

func TestPackagesCfgIncludeTests(t *testing.T) {
	dir := writeModule(t)
	_, pkgs, err := load.PackagesCfg(dir, load.Config{IncludeTests: true}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]int{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = len(p.Files)
	}
	if got := byPath["tmod/p"]; got != 2 {
		t.Errorf("tmod/p has %d files, want p.go plus the in-package p_test.go", got)
	}
	if got := byPath["tmod/p_test"]; got != 1 {
		t.Errorf("external test package tmod/p_test has %d files, want 1", got)
	}
	// The in-package test file must see unexported declarations: the type
	// check above would have failed otherwise, but assert the symbol is
	// really in scope to keep the property explicit.
	for _, p := range pkgs {
		if p.ImportPath == "tmod/p" && p.Pkg.Scope().Lookup("testOnlyHelper") == nil {
			t.Error("in-package test declarations missing from tmod/p's scope")
		}
	}
}
