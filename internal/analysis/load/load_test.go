package load_test

import (
	"strings"
	"testing"

	"sectorpack/internal/analysis/load"
)

// TestPackagesLoadsGeom loads one real module package through the go-list
// export-data pipeline and checks the invariants every analyzer relies on:
// the package is type-checked, only non-test files are present, and the
// types.Info maps are populated.
func TestPackagesLoadsGeom(t *testing.T) {
	fset, pkgs, err := load.Packages("../../..", "./internal/geom")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Pkg.Name() != "geom" {
		t.Errorf("package name = %q, want geom", p.Pkg.Name())
	}
	if !strings.HasSuffix(p.ImportPath, "/geom") {
		t.Errorf("import path = %q, want .../geom", p.ImportPath)
	}
	if len(p.Files) == 0 {
		t.Fatal("no files loaded")
	}
	for _, f := range p.Files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded; only production files are analyzed", name)
		}
	}
	if len(p.TypesInfo.Types) == 0 || len(p.TypesInfo.Defs) == 0 {
		t.Error("types.Info not populated")
	}
	if p.Pkg.Scope().Lookup("NormAngle") == nil {
		t.Error("geom.NormAngle not in package scope; type-checking incomplete")
	}
}

// TestPackagesDefaultsToAll loads the whole module when no pattern is
// given and must include multiple packages spanning one shared FileSet.
func TestPackagesDefaultsToAll(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module")
	}
	_, pkgs, err := load.Packages("../../..")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded %d packages; the module has far more", len(pkgs))
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].ImportPath >= pkgs[i].ImportPath {
			t.Fatalf("packages not sorted: %s before %s", pkgs[i-1].ImportPath, pkgs[i].ImportPath)
		}
	}
}

func TestPackagesBadDir(t *testing.T) {
	if _, _, err := load.Packages("/nonexistent-sectorlint-dir"); err == nil {
		t.Fatal("loading from a missing directory must fail")
	}
}
