// Package load turns `go list` patterns into type-checked
// framework.Packages without golang.org/x/tools/go/packages.
//
// The strategy is the classic vet-driver one: a single
// `go list -export -deps -json` invocation enumerates the target packages
// and produces compiler export data for every dependency (stdlib
// included), so each target is type-checked from source while all of its
// imports are resolved from export data — no per-import source
// re-checking and no network. On a warm build cache the whole repository
// loads in well under a second.
//
// Only non-test GoFiles are analyzed: the solver invariants sectorlint
// encodes (cancellation, seam normalization, epsilon discipline) are
// production-code contracts, and tests legitimately violate several of
// them on purpose (bit-identity assertions compare floats with ==, fault
// harnesses build degraded solutions by hand).
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"sectorpack/internal/analysis/framework"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Packages loads and type-checks the module packages matched by the
// patterns (e.g. "./..."), rooted at dir. Packages outside the module —
// dependencies, the standard library — are imported from export data and
// never analyzed.
func Packages(dir string, patterns ...string) (*token.FileSet, []*framework.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Module,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	modPath, err := modulePath(dir)
	if err != nil {
		return nil, nil, err
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module == nil || p.Module.Path != modPath {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			return nil, nil, fmt.Errorf("go list: %s: dependency error: %s", p.ImportPath, de.Err)
		}
		targets = append(targets, p)
	}
	// -deps emits dependencies before dependents, which is already a fine
	// order; sort anyway so diagnostics and module passes are stable
	// regardless of go tool internals.
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*framework.Package
	var errs []error
	for _, p := range targets {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			errs = append(errs, fmt.Errorf("type-checking %s: %w", p.ImportPath, err))
			continue
		}
		pkgs = append(pkgs, &framework.Package{
			ImportPath: p.ImportPath,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			TypesInfo:  info,
		})
	}
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	return fset, pkgs, nil
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// modulePath reads the module path governing dir.
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return string(bytes.TrimSpace(out)), nil
}
