// Package load turns `go list` patterns into type-checked
// framework.Packages without golang.org/x/tools/go/packages.
//
// The strategy is the classic vet-driver one: a single
// `go list -export -deps -json` invocation enumerates the target packages
// and produces compiler export data for every dependency (stdlib
// included), so each target is type-checked from source while all of its
// imports are resolved from export data — no per-import source
// re-checking and no network. On a warm build cache the whole repository
// loads in well under a second.
//
// By default only non-test GoFiles are analyzed: the solver invariants
// sectorlint encodes (cancellation, seam normalization, epsilon
// discipline) are production-code contracts, and tests legitimately
// violate several of them on purpose (bit-identity assertions compare
// floats with ==, fault harnesses build degraded solutions by hand). The
// Config.IncludeTests mode folds in-package _test.go files into their
// package and loads external _test packages as their own units — used in
// CI for the analyzers whose invariants DO bind test helpers (ctxloop,
// floateq), where a broken helper silently weakens every test using it.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"sectorpack/internal/analysis/framework"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
	DepsErrors   []struct{ Err string }
}

// Config tunes a load.
type Config struct {
	// IncludeTests folds each package's in-package _test.go files into its
	// file set and additionally loads external test packages
	// (package foo_test) as their own framework.Package with import path
	// "<pkg>_test". External test packages import the package under test
	// from its export data — compiled without test files, exactly the view
	// a real external test compilation gets.
	IncludeTests bool
}

// Packages loads and type-checks the module packages matched by the
// patterns (e.g. "./..."), rooted at dir. Packages outside the module —
// dependencies, the standard library — are imported from export data and
// never analyzed.
func Packages(dir string, patterns ...string) (*token.FileSet, []*framework.Package, error) {
	return PackagesCfg(dir, Config{}, patterns...)
}

// PackagesCfg is Packages with explicit configuration.
func PackagesCfg(dir string, cfg Config, patterns ...string) (*token.FileSet, []*framework.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Export,Module,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	modPath, err := modulePath(dir)
	if err != nil {
		return nil, nil, err
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module == nil || p.Module.Path != modPath {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			return nil, nil, fmt.Errorf("go list: %s: dependency error: %s", p.ImportPath, de.Err)
		}
		targets = append(targets, p)
	}
	// -deps emits dependencies before dependents, which is already a fine
	// order; sort anyway so diagnostics and module passes are stable
	// regardless of go tool internals.
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	if cfg.IncludeTests {
		// Test files may import packages no production file needs (httptest
		// and friends), which the base listing did not compile. A second
		// -test listing harvests export data for those; test-variant
		// pseudo-packages ("foo [foo.test]") never shadow real ones because
		// only missing keys are merged.
		if err := mergeTestExports(dir, patterns, exports); err != nil {
			return nil, nil, err
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*framework.Package
	var errs []error
	check := func(importPath, dir string, names []string) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(importPath, fset, files, info)
		if err != nil {
			errs = append(errs, fmt.Errorf("type-checking %s: %w", importPath, err))
			return
		}
		pkgs = append(pkgs, &framework.Package{
			ImportPath: importPath,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			TypesInfo:  info,
		})
	}
	for _, p := range targets {
		names := p.GoFiles
		if cfg.IncludeTests && len(p.TestGoFiles) > 0 {
			names = append(append([]string{}, p.GoFiles...), p.TestGoFiles...)
		}
		check(p.ImportPath, p.Dir, names)
		if cfg.IncludeTests && len(p.XTestGoFiles) > 0 {
			// The external test package imports the package under test
			// through its export data, which the -export -deps listing
			// already produced.
			check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
		}
	}
	if len(errs) > 0 {
		return nil, nil, errors.Join(errs...)
	}
	return fset, pkgs, nil
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// mergeTestExports runs a second `go list -test` pass and folds export data
// for test-only dependencies into exports. Keys already present win: the
// plain listing's export of a package reflects its production compilation,
// which is the view external test packages must import.
func mergeTestExports(dir string, patterns []string, exports map[string]string) error {
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Export",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -test %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list -test: decoding output: %w", err)
		}
		if p.Export == "" || strings.Contains(p.ImportPath, " ") {
			continue // test-variant pseudo-packages never shadow real ones
		}
		if _, ok := exports[p.ImportPath]; !ok {
			exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// modulePath reads the module path governing dir.
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return string(bytes.TrimSpace(out)), nil
}
