// Package optcover structurally cross-checks core.Options against its two
// consumers: the cache fingerprint and the solvers.
//
// Two historical bug classes motivate it. In PR 2 the registry's "exact"
// entry silently dropped the caller's Options — the solver ran with
// defaults no matter what was asked. In PR 4 the cache fingerprint had to
// be built to cover *every* Options field, because any field missing from
// the serialization makes two semantically different solves share a cache
// key and replays stale answers. Both are structural properties of the
// module, not of any one package, so this analyzer runs module-wide:
//
//  1. Fingerprint coverage: every exported leaf field reachable from
//     core.Options (recursing through nested option structs such as
//     knapsack.Options and exact.Limits) must be written into the cache
//     package's options serialization function.
//  2. Dropped options: every exported top-level field of core.Options
//     must be read somewhere outside that serialization — a field the
//     fingerprint hashes but no solver ever looks at is being dropped on
//     the way to the solver, exactly the PR-2 registry bug.
//
// A reflection-based runtime test (TestFingerprintSensitiveToEveryOptions-
// Field) covers property 1 dynamically; this analyzer enforces both
// properties at lint time, with positions, and without needing the cache
// to be exercised.
//
// session.Options (the delta-solve session configuration) gets the
// dropped-options check only: every exported field must be read somewhere
// outside its own construction, or the session layer is silently ignoring
// a knob callers set. It deliberately has NO fingerprint-coverage
// obligation — sessions bypass the solve cache by design (a fingerprint
// names a one-shot (instance, options, solver) triple, while a session's
// identity is its delta history), so there is no serialization for its
// fields to be missing from.
package optcover

import (
	"go/ast"
	"go/types"

	"sectorpack/internal/analysis/framework"
)

// Analyzer is the optcover checker.
var Analyzer = &framework.Analyzer{
	Name: "optcover",
	Doc: "every core.Options field must be hashed by the cache fingerprint " +
		"(else cached answers alias solves with different semantics, PR 4) and " +
		"read by some solver path (else the registry is dropping it, PR 2); " +
		"every session.Options field must be read by the session solve path " +
		"(no hash obligation: sessions bypass the cache by design)",
	RunModule: runModule,
}

// fieldKey names one struct field independently of which type-check
// instantiation produced it: the owning named type's full path plus the
// field name.
type fieldKey struct {
	owner string
	name  string
}

func keyOf(owner *types.Named, field string) fieldKey {
	obj := owner.Obj()
	path := obj.Name()
	if obj.Pkg() != nil {
		path = obj.Pkg().Path() + "." + obj.Name()
	}
	return fieldKey{owner: path, name: field}
}

func runModule(mp *framework.ModulePass) error {
	corePass, options := findOptions(mp, "core")
	sessPass, sessOptions := findOptions(mp, "session")
	if corePass == nil && sessPass == nil {
		return nil // no options structs in this module slice; nothing to check
	}
	cachePass, optsFn := findSerialization(mp)

	read := map[fieldKey]bool{}
	for _, p := range mp.Packages {
		for _, f := range p.Files {
			collectReads(p, f, optsFn, read)
		}
	}

	if corePass != nil && cachePass != nil {
		var leaves []leafField
		collectLeaves(options, nil, &leaves, map[*types.Named]bool{})

		hashed := map[fieldKey]bool{}
		collectSelections(cachePass, optsFn.Body, hashed)

		for _, leaf := range leaves {
			if !hashed[leaf.key] {
				cachePass.Reportf(optsFn.Pos(),
					"core.Options field %s is not hashed by the fingerprint serialization; solves differing only in it would share a cache key and replay stale answers", leaf.path)
			}
		}
		optionsStruct := options.Underlying().(*types.Struct)
		for i := 0; i < optionsStruct.NumFields(); i++ {
			f := optionsStruct.Field(i)
			if !f.Exported() {
				continue
			}
			if !read[keyOf(options, f.Name())] {
				corePass.Reportf(f.Pos(),
					"core.Options.%s is never read outside the cache fingerprint; a solver constructor is dropping it on the way to the solver", f.Name())
			}
		}
	}

	// session.Options: the dropped-options direction only. There is no hash
	// direction to enforce — session solves never consult the fingerprint
	// cache (the package doc explains why), so no serialization exists to
	// cover its fields.
	if sessPass != nil {
		st := sessOptions.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			if !read[keyOf(sessOptions, f.Name())] {
				sessPass.Reportf(f.Pos(),
					"session.Options.%s is never read by the session solve path; the session layer is silently ignoring it", f.Name())
			}
		}
	}
	return nil
}

// leafField is one hashable leaf reachable from core.Options.
type leafField struct {
	key  fieldKey
	path string // dotted path from the Options root, for messages
}

// collectLeaves walks the exported fields of owner, recursing through
// named struct-typed fields, and appends the non-struct leaves.
func collectLeaves(owner *types.Named, prefix []string, out *[]leafField, seen map[*types.Named]bool) {
	if seen[owner] {
		return
	}
	seen[owner] = true
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		path := append(append([]string(nil), prefix...), f.Name())
		if nested, ok := f.Type().(*types.Named); ok {
			if _, isStruct := nested.Underlying().(*types.Struct); isStruct {
				collectLeaves(nested, path, out, seen)
				continue
			}
		}
		*out = append(*out, leafField{key: keyOf(owner, f.Name()), path: dotted(path)})
	}
}

func dotted(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

// findOptions locates the Options struct of the module package with the
// given name ("core", "session").
func findOptions(mp *framework.ModulePass, pkgName string) (*framework.Pass, *types.Named) {
	for _, p := range mp.Packages {
		if p.Pkg.Name() != pkgName {
			continue
		}
		obj := p.Pkg.Scope().Lookup("Options")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); ok {
			return p, named
		}
	}
	return nil, nil
}

// findSerialization locates the cache package's options serialization
// function (the hasher method named "options").
func findSerialization(mp *framework.ModulePass) (*framework.Pass, *ast.FuncDecl) {
	for _, p := range mp.Packages {
		if p.Pkg.Name() != "cache" {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "options" && fd.Body != nil {
					return p, fd
				}
			}
		}
	}
	return nil, nil
}

// collectSelections records every field selection under n into out.
func collectSelections(p *framework.Pass, n ast.Node, out map[fieldKey]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		sel, ok := c.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recordSelection(p, sel, out)
		return true
	})
}

func recordSelection(p *framework.Pass, sel *ast.SelectorExpr, out map[fieldKey]bool) {
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	out[keyOf(named, s.Obj().Name())] = true
}

// collectReads records field selections in f that count as solver reads:
// everything except selections inside the fingerprint serialization
// function and selections that are directly assigned to (writes).
func collectReads(p *framework.Pass, f *ast.File, optsFn *ast.FuncDecl, out map[fieldKey]bool) {
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(f, func(c ast.Node) bool {
		as, ok := c.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(c ast.Node) bool {
		if optsFn != nil && c != nil && c.Pos() >= optsFn.Pos() && c.End() <= optsFn.End() {
			// Inside the serialization function: hashing is not a solver
			// read. (Pos comparison is safe: one fset spans the module.)
			return false
		}
		sel, ok := c.(*ast.SelectorExpr)
		if !ok || writes[sel] {
			return true
		}
		recordSelection(p, sel, out)
		return true
	})
}
