// Package cache stands in for internal/cache: its options serialization
// must hash every leaf field reachable from core.Options.
package cache

import "core"

type hasher struct{}

func (w *hasher) float(x float64) {}
func (w *hasher) i64(v int64)     {}
func (w *hasher) int(v int)       {}

// options forgets Knapsack.MaxBBNodes, so two solves differing only in
// their node budget would share a cache key — the PR-4 aliasing bug.
func (w *hasher) options(opt core.Options) { // want `core.Options field Knapsack.MaxBBNodes is not hashed`
	w.float(opt.Knapsack.Eps)
	w.i64(opt.Seed)
	w.int(opt.Dropped)
}
