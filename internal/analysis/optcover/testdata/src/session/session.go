// Package session stands in for internal/session: its Options configure
// the delta-solve loop directly and never enter the cache fingerprint
// (sessions bypass the solve cache by design), so only the dropped-options
// direction applies here.
package session

type Options struct {
	Solver  string
	Dropped int // want `session.Options.Dropped is never read by the session solve path`
}

// New reads Solver (the defaulting assignment below is a write, not a
// read) but never looks at Dropped — the knob is silently ignored.
func New(opt Options) string {
	if opt.Solver == "" {
		opt.Solver = "greedy"
	}
	return opt.Solver
}
