// Package core stands in for internal/core: the Options struct whose every
// field must reach both the cache fingerprint and some solver path.
package core

// Knapsack mirrors the nested option structs (knapsack.Options,
// exact.Limits) the real Options embeds by value.
type Knapsack struct {
	Eps        float64
	MaxBBNodes int64
}

type Options struct {
	Knapsack Knapsack
	Seed     int64
	Dropped  int // want `core.Options.Dropped is never read outside the cache fingerprint`
}

// NewSolver reads Seed and the knapsack fields but drops Dropped on the
// way to the solver — the PR-2 registry bug in miniature.
func NewSolver(opt Options) int64 {
	if opt.Knapsack.Eps > 0 {
		return opt.Knapsack.MaxBBNodes
	}
	return opt.Seed
}
