package optcover_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/optcover"
)

func TestOptcover(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), optcover.Analyzer, "core", "cache", "session")
}
