// Package retryidem checks that HTTP retry loops only re-send idempotent
// routes.
//
// Invariant (DESIGN.md, "Fleet mode"): sectorclient's transport retries a
// request when its `retryable` guard is true, and the proxy's forward()
// inherits the same contract. Re-sending is only sound when a duplicate
// arrival is harmless. The repository's route table:
//
//	GET/HEAD anything          safe (pure reads)
//	DELETE /session/<id>       safe (delete is naturally idempotent)
//	POST /solve                safe (pure compute, response cached by key)
//	POST /session/<id>/delta   safe only under an idempotency key, which
//	                           the daemon's replay table enforces
//	POST /session              NOT safe: each arrival creates a session,
//	                           so a retried create leaks a duplicate with
//	                           its own journal (the PR-8/9 duplicate-
//	                           session class)
//
// Mechanically: a function containing a retry loop (a for loop that
// builds and sends an http.Request) with identifiable method / URL /
// guard parameters gets a Retrier fact recording those parameter
// positions. Wrappers that thread their own parameters into a Retrier
// callee become Retriers themselves (fixpoint in-package, facts
// across packages — how cmd/sectorproxy's forward inherits the contract
// from sectorclient.Do). At every call site of a Retrier the analyzer
// evaluates what it can statically: a constant-false guard means "never
// retried" and is always fine; with a retriable guard and a constant
// method+URL, the route table decides. Non-constant routes are not
// flagged — the analyzer under-approximates rather than spray findings
// on every dynamic path.
package retryidem

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"sectorpack/internal/analysis/framework"
)

// Retrier marks a function that may re-send an HTTP request, recording
// which parameters carry the method, the URL, and the retry guard.
type Retrier struct {
	MethodParam int
	URLParam    int
	GuardParam  int
}

// AFact marks Retrier as a fact.
func (*Retrier) AFact() {}

// Analyzer is the retryidem checker.
var Analyzer = &framework.Analyzer{
	Name: "retryidem",
	Doc: "retry loops may only re-send idempotent routes: a call into sectorclient's " +
		"retrying transport (or any wrapper of it) with a retriable guard and a " +
		"constant POST /session route duplicates sessions on retry " +
		"(the PR-8/9 duplicate-session class); POST is retried only for /solve " +
		"and idempotency-keyed /delta routes",
	Run:       run,
	FactTypes: []framework.Fact{(*Retrier)(nil)},
}

func run(pass *framework.Pass) error {
	fns := declaredFuncs(pass)
	exportRetriers(pass, fns)
	checkCallSites(pass, fns)
	return nil
}

// declared is one function declaration with its object.
type declared struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func declaredFuncs(pass *framework.Pass) []declared {
	var out []declared
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			out = append(out, declared{decl: fd, obj: obj})
		}
	}
	return out
}

// exportRetriers derives Retrier facts: base case, a for loop that builds
// an http.Request from the function's own parameters; inductive case, a
// wrapper threading its parameters into a known Retrier. Fixpoint handles
// declaration order within the package.
func exportRetriers(pass *framework.Pass, fns []declared) {
	done := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if done[f.obj] {
				continue
			}
			var r *Retrier
			if r = retryLoopShape(pass, f); r == nil {
				r = wrapperShape(pass, f)
			}
			if r != nil {
				done[f.obj] = true
				pass.ExportObjectFact(f.obj, r)
				changed = true
			}
		}
	}
}

// paramIndex returns the index of obj among fn's parameters, or -1.
// Indices are signature positions (receivers excluded).
func paramIndex(sig *types.Signature, obj types.Object) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// soleParamMention returns the single parameter of sig that expr mentions,
// or nil if it mentions zero or several.
func soleParamMention(pass *framework.Pass, sig *types.Signature, expr ast.Expr) types.Object {
	var found types.Object
	multiple := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || paramIndex(sig, obj) < 0 {
			return true
		}
		if found != nil && found != obj {
			multiple = true
		}
		found = obj
		return true
	})
	if multiple {
		return nil
	}
	return found
}

// retryLoopShape recognizes the transport shape: a for/range loop whose
// body calls http.NewRequest/NewRequestWithContext with the function's own
// method and URL parameters, in a function with exactly one bool
// parameter (the retry guard).
func retryLoopShape(pass *framework.Pass, f declared) *Retrier {
	sig := f.obj.Type().(*types.Signature)
	guard := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if basic, ok := sig.Params().At(i).Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
			if guard >= 0 {
				return nil // ambiguous: two bool params
			}
			guard = i
		}
	}
	if guard < 0 {
		return nil
	}
	var out *Retrier
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		ast.Inspect(body, func(c ast.Node) bool {
			if out != nil {
				return false
			}
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			methodArg, urlArg, ok := newRequestArgs(pass, call)
			if !ok {
				return true
			}
			m := soleParamMention(pass, sig, methodArg)
			u := soleParamMention(pass, sig, urlArg)
			if m == nil || u == nil {
				return true
			}
			out = &Retrier{
				MethodParam: paramIndex(sig, m),
				URLParam:    paramIndex(sig, u),
				GuardParam:  guard,
			}
			return false
		})
		return true
	})
	return out
}

// newRequestArgs extracts the (method, url) arguments if call is
// http.NewRequest or http.NewRequestWithContext.
func newRequestArgs(pass *framework.Pass, call *ast.CallExpr) (method, url ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "http" {
		return nil, nil, false
	}
	switch fn.Name() {
	case "NewRequest":
		if len(call.Args) >= 2 {
			return call.Args[0], call.Args[1], true
		}
	case "NewRequestWithContext":
		if len(call.Args) >= 3 {
			return call.Args[1], call.Args[2], true
		}
	}
	return nil, nil, false
}

// wrapperShape recognizes a function that forwards its own method/URL/guard
// parameters into an already-known Retrier.
func wrapperShape(pass *framework.Pass, f declared) *Retrier {
	sig := f.obj.Type().(*types.Signature)
	var out *Retrier
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || callee == f.obj {
			return true
		}
		var r Retrier
		if !pass.ImportObjectFact(callee, &r) {
			return true
		}
		if len(call.Args) <= r.MethodParam || len(call.Args) <= r.URLParam || len(call.Args) <= r.GuardParam {
			return true
		}
		m := soleParamMention(pass, sig, call.Args[r.MethodParam])
		u := soleParamMention(pass, sig, call.Args[r.URLParam])
		g := soleParamMention(pass, sig, call.Args[r.GuardParam])
		if m == nil || u == nil || g == nil {
			return true
		}
		out = &Retrier{
			MethodParam: paramIndex(sig, m),
			URLParam:    paramIndex(sig, u),
			GuardParam:  paramIndex(sig, g),
		}
		return false
	})
	return out
}

// checkCallSites evaluates every Retrier invocation with whatever is
// statically known.
func checkCallSites(pass *framework.Pass, fns []declared) {
	for _, f := range fns {
		ast.Inspect(f.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			var r Retrier
			if !pass.ImportObjectFact(callee, &r) {
				return true
			}
			if len(call.Args) <= r.MethodParam || len(call.Args) <= r.URLParam || len(call.Args) <= r.GuardParam {
				return true
			}
			guardArg := call.Args[r.GuardParam]
			if isConstFalse(pass.TypesInfo, guardArg) {
				return true // never retried: any route is fine
			}
			method, okM := constString(pass.TypesInfo, call.Args[r.MethodParam])
			url, okU := constString(pass.TypesInfo, call.Args[r.URLParam])
			if !okM || !okU {
				return true // dynamic route: under-approximate
			}
			if safe, why := routeSafe(method, url); !safe {
				pass.Reportf(call.Pos(),
					"retriable %s %s is not idempotent: %s; pass retryable=false or route it "+
						"through the idempotency key", method, url, why)
			}
			return true
		})
	}
}

// routeSafe consults the repository's idempotency table.
func routeSafe(method, url string) (bool, string) {
	switch method {
	case "GET", "HEAD", "DELETE", "OPTIONS":
		return true, ""
	case "POST":
		if strings.HasSuffix(url, "/solve") {
			return true, "" // pure compute, cached by content key
		}
		if strings.HasSuffix(url, "/delta") && strings.Contains(url, "/session/") {
			return true, "" // daemon replay table dedups by idempotency key
		}
		if strings.HasSuffix(url, "/session") {
			return false, "each POST /session creates a fresh session, so a retry duplicates it"
		}
		return false, "POST routes are only retried for /solve and idempotency-keyed /delta"
	default:
		return false, "method " + method + " is not in the idempotent-route table"
	}
}

func isConstFalse(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}

func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
