// Package sectorclient is the minimized retrying transport: do carries the
// retry loop (the Retrier base case), Do is the wrapper that threads its
// parameters through (the inductive case).
package sectorclient

import (
	"context"

	"http"
)

// Client is the minimized fleet client.
type Client struct {
	base string
	hc   http.Client
}

// do is the retry loop: attempts re-send the same request while retryable.
func (c *Client) do(ctx context.Context, method, url string, body []byte, retryable bool) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, url, body)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return nil, lastErr
}

// Do resolves the path against the client base and delegates to do.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, retryable bool) (*http.Response, error) {
	return c.do(ctx, method, c.base+path, body, retryable)
}
