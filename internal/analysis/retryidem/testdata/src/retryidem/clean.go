package retryidem

import (
	"context"

	"sectorclient"
)

// goodRoutes exercises every row of the idempotency table that permits a
// retry, plus the constant-false guard that makes any route safe.
func goodRoutes(ctx context.Context, c *sectorclient.Client) {
	c.Do(ctx, "POST", "/solve", nil, true)             // pure compute
	c.Do(ctx, "POST", "/session/abc/delta", nil, true) // idempotency-keyed
	c.Do(ctx, "DELETE", "/session/abc", nil, true)     // naturally idempotent
	c.Do(ctx, "GET", "/healthz", nil, true)            // pure read
	c.Do(ctx, "POST", "/session", nil, false)          // never retried
}

// goodDynamic passes a computed route: the analyzer stays silent rather
// than guessing.
func goodDynamic(ctx context.Context, c *sectorclient.Client, path string) {
	c.Do(ctx, "POST", path, nil, true)
}
