package retryidem

import (
	"context"

	"sectorclient"
)

// suppressedCreate documents why this one retried create is tolerable.
func suppressedCreate(ctx context.Context, c *sectorclient.Client) {
	//sectorlint:ignore retryidem test-only harness client; duplicate sessions are reaped by the sweeper
	c.Do(ctx, "POST", "/session", nil, true)
}
