package retryidem

import (
	"context"

	"sectorclient"
)

// badCreate retries a session create: every retry mints a duplicate.
func badCreate(ctx context.Context, c *sectorclient.Client) {
	c.Do(ctx, "POST", "/session", nil, true) // want `retriable POST /session is not idempotent`
}

// badUnknownPost retries a POST route the idempotency table does not bless.
func badUnknownPost(ctx context.Context, c *sectorclient.Client) {
	c.Do(ctx, "POST", "/admin/flush", nil, true) // want `only retried for /solve`
}
