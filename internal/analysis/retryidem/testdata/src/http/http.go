// Package http is a minimized stand-in for net/http: the analyzer matches
// the transport shape by package name ("http") and function names, so the
// fixtures stay hermetic instead of type-checking the real net/http tree.
package http

import "context"

// Request is a built request.
type Request struct {
	Method string
	URL    string
}

// Response is a received response.
type Response struct {
	StatusCode int
}

// Client sends requests.
type Client struct{}

// Do sends one request.
func (c *Client) Do(req *Request) (*Response, error) {
	return &Response{StatusCode: 200}, nil
}

// NewRequest builds a request.
func NewRequest(method, url string, body any) (*Request, error) {
	return &Request{Method: method, URL: url}, nil
}

// NewRequestWithContext builds a request bound to ctx.
func NewRequestWithContext(ctx context.Context, method, url string, body any) (*Request, error) {
	return &Request{Method: method, URL: url}, nil
}
