package retryidem_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/retryidem"
)

func TestRetryidem(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), retryidem.Analyzer,
		"http", "sectorclient", "retryidem")
}
