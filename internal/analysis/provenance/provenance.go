// Package provenance enforces the degraded-solution provenance contract
// introduced in PR 3 and relied on by the cache in PR 4.
//
// Invariant (model.Solution doc): Degraded is never set alone — a
// degraded solution must carry its machine-readable FallbackReason so the
// serving layer, CLI exit codes, and expvar counters can classify the
// failure; and a degraded solution is an artifact of one request's
// failure, not a property of the instance, so it must never be stored in
// the solve cache.
//
// Three syntactic shapes are checked:
//
//   - model.Solution composite literals that set Degraded: true without a
//     FallbackReason key;
//   - functions that assign `sol.Degraded = true` without also assigning
//     sol's FallbackReason;
//   - calls to the cache's Put from outside the cache package in
//     functions that never consult .Degraded before the call — Put itself
//     rejects degraded solutions as defense in depth, but callers are
//     required to gate explicitly so the contract is visible at the call
//     site;
//   - functions that drive a delta session (construct a session.Session
//     or call its methods) and also touch the fingerprint cache — session
//     solves bypass the cache by design (a fingerprint names a one-shot
//     instance, a session's identity is its delta history), so mixing the
//     two in one function is the cache-isolation bug class the sectord
//     session routes are regression-tested against;
//   - raw os filesystem writes (os.Create, os.OpenFile, os.WriteFile,
//     os.Rename, os.Remove, os.MkdirAll) inside the durable-state
//     packages (cache, session) — their persistence must go through
//     internal/faultfs so the crash-consistency suite can observe and
//     fail every write, and so the atomic temp+fsync+rename discipline
//     is not silently bypassed.
package provenance

import (
	"go/ast"
	"go/token"
	"go/types"

	"sectorpack/internal/analysis/astx"
	"sectorpack/internal/analysis/framework"
)

// Analyzer is the provenance checker.
var Analyzer = &framework.Analyzer{
	Name: "provenance",
	Doc: "code constructing a degraded model.Solution must set FallbackReason, " +
		"degraded solutions must never reach the solve cache: callers of " +
		"cache Put must gate on !sol.Degraded (the PR-3 provenance / PR-4 " +
		"never-cache-degraded contract), and functions driving a delta " +
		"session must never touch the fingerprint cache (sessions bypass " +
		"it by design), and the durable-state packages (cache, session) " +
		"must not write through raw os calls — persistence goes through " +
		"faultfs so crash tests can observe and fail every write",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		checkLiterals(pass, f)
	}
	for _, fn := range astx.Funcs(pass.Files) {
		checkAssignments(pass, fn)
		checkPuts(pass, fn)
		checkSessionCacheMix(pass, fn)
	}
	checkPersistence(pass)
	return nil
}

// durablePackages are the packages that own crash-safe on-disk state. Raw
// os filesystem mutations inside them bypass the faultfs seam the
// crash-consistency suite injects into, so every one is a finding.
var durablePackages = map[string]bool{"cache": true, "session": true}

// rawPersistenceFuncs are the os package's filesystem-mutating entry
// points. Read-only calls (os.Open, os.ReadFile, os.Stat) are allowed:
// they cannot corrupt durable state, only miss it.
var rawPersistenceFuncs = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"WriteFile":  true,
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"Truncate":   true,
}

// checkPersistence flags raw os write calls in the durable-state packages.
func checkPersistence(pass *framework.Pass) {
	if !durablePackages[pass.Pkg.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !rawPersistenceFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "os" {
				return true
			}
			pass.Reportf(call.Pos(), "raw os.%s in durable-state package %s; persistence must go through faultfs (injectable, atomic-write discipline) so the crash-consistency suite can see every write", sel.Sel.Name, pass.Pkg.Name())
			return true
		})
	}
}

// isProvenanceStruct reports whether t is a struct carrying the
// Degraded/FallbackReason pair (model.Solution in the real tree; matching
// structurally keeps fixtures and future copies honest too).
func isProvenanceStruct(t types.Type) bool {
	named := astx.NamedType(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasDegraded, hasReason bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Degraded":
			hasDegraded = true
		case "FallbackReason":
			hasReason = true
		}
	}
	return hasDegraded && hasReason
}

func checkLiterals(pass *framework.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || !isProvenanceStruct(tv.Type) {
			return true
		}
		var degradedTrue ast.Expr
		var hasReason bool
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Degraded":
				if astx.IsConstTrue(pass.TypesInfo, kv.Value) {
					degradedTrue = kv.Value
				}
			case "FallbackReason":
				hasReason = true
			}
		}
		if degradedTrue != nil && !hasReason {
			pass.Reportf(degradedTrue.Pos(), "degraded Solution constructed without a FallbackReason; downstream classification (serving, exit codes, metrics) depends on it")
		}
		return true
	})
}

// fieldAssign returns the assigned provenance field name ("Degraded",
// "FallbackReason") if stmt assigns one on a provenance struct.
func fieldAssign(pass *framework.Pass, as *ast.AssignStmt) (string, *ast.SelectorExpr, ast.Expr) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return "", nil, nil
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		name := sel.Sel.Name
		if name != "Degraded" && name != "FallbackReason" {
			continue
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal || !isProvenanceStruct(s.Recv()) {
			continue
		}
		return name, sel, as.Rhs[i]
	}
	return "", nil, nil
}

func checkAssignments(pass *framework.Pass, fn astx.Func) {
	var degradedSets []*ast.SelectorExpr
	reasonSet := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != fn.Node {
			return false // inner literals are visited as their own Func
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch name, sel, rhs := fieldAssign(pass, as); name {
		case "Degraded":
			if astx.IsConstTrue(pass.TypesInfo, rhs) {
				degradedSets = append(degradedSets, sel)
			}
		case "FallbackReason":
			reasonSet = true
		}
		return true
	})
	if reasonSet {
		return
	}
	for _, sel := range degradedSets {
		pass.Reportf(sel.Pos(), "Degraded set to true but FallbackReason is never assigned in this function; degraded solutions must carry their provenance")
	}
}

// checkSessionCacheMix flags fingerprint-cache calls (Get or Put on the
// cache's Cache type) in functions that also drive a delta session — call
// session.New or any method on session.Session. Session solves bypass the
// cache by design; a handler that consults it alongside a session has
// broken the isolation the session stats and determinism contract assume.
func checkSessionCacheMix(pass *framework.Pass, fn astx.Func) {
	if pass.Pkg.Name() == "session" || pass.Pkg.Name() == "cache" {
		return // the two packages themselves are each other's no-go zones
	}
	driven := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && astx.IsNamed(tv.Type, "session", "Session") {
			driven = true
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Name() == "session" {
				driven = true
			}
		}
		return true
	})
	if !driven {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Put" && sel.Sel.Name != "Get") {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && astx.IsNamed(tv.Type, "cache", "Cache") {
			pass.Reportf(call.Pos(), "session solve path touches the fingerprint cache; sessions bypass the cache by design (their identity is their delta history, not a one-shot fingerprint)")
		}
		return true
	})
}

// checkPuts flags cache Put calls not preceded by a .Degraded consult in
// the same function.
func checkPuts(pass *framework.Pass, fn astx.Func) {
	if pass.Pkg.Name() == "cache" {
		return // the cache package owns Put's internal defense-in-depth gate
	}
	// Positions where .Degraded is consulted in this function.
	var consults []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Degraded" {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal && isProvenanceStruct(s.Recv()) {
			consults = append(consults, sel.Pos())
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Put" {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !astx.IsNamed(tv.Type, "cache", "Cache") {
			return true
		}
		guarded := false
		for _, p := range consults {
			if p < call.Pos() {
				guarded = true
				break
			}
		}
		if !guarded {
			pass.Reportf(call.Pos(), "cache Put without consulting .Degraded first; degraded solutions are one request's failure artifact and must never be cached")
		}
		return true
	})
}
