// Raw os writes in a durable-state package: every one bypasses the faultfs
// injection seam the crash-consistency suite depends on.
package cache

import "os"

func snapshotRaw(path string, b []byte) error {
	f, err := os.Create(path) // want `raw os\.Create in durable-state package cache`
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func snapshotRawShortcut(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `raw os\.WriteFile in durable-state package cache`
}

func rotate(path string) error {
	if err := os.Rename(path+".tmp", path); err != nil { // want `raw os\.Rename in durable-state package cache`
		return err
	}
	return os.Remove(path + ".old") // want `raw os\.Remove in durable-state package cache`
}

// Read-only calls are fine: they can miss durable state, not corrupt it.
func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Calls through the faultfs seam are the sanctioned path.
type injectableFS interface {
	Create(path string) (*os.File, error)
	Rename(from, to string) error
}

func snapshotInjected(fsys injectableFS, path string, b []byte) error {
	f, err := fsys.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(path+".tmp", path)
}
