// Package cache stands in for internal/cache: the analyzer recognizes its
// Cache type's Put method as the guarded call site.
package cache

type Cache struct{}

func (c *Cache) Put(key string, v any) {}

func (c *Cache) Get(key string) (any, bool) { return nil, false }
