package provenance

import "cache"

// Solution carries the Degraded/FallbackReason pair, so the analyzer
// recognizes it structurally like model.Solution.
type Solution struct {
	Profit         int64
	Degraded       bool
	FallbackReason string
}

// degradedLiteral drops the provenance the serving layer classifies by.
func degradedLiteral() Solution {
	return Solution{Degraded: true} // want `degraded Solution constructed without a FallbackReason`
}

// markDegraded sets the flag without assigning a reason anywhere in the
// function.
func markDegraded(s *Solution) {
	s.Degraded = true // want `Degraded set to true but FallbackReason is never assigned`
}

// cacheUnchecked stores a solution without gating on .Degraded first —
// a degraded artifact would be replayed to every later request.
func cacheUnchecked(c *cache.Cache, key string, s Solution) {
	c.Put(key, s) // want `cache Put without consulting .Degraded first`
}
