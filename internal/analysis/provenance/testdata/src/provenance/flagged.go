package provenance

import (
	"cache"
	"session"
)

// Solution carries the Degraded/FallbackReason pair, so the analyzer
// recognizes it structurally like model.Solution.
type Solution struct {
	Profit         int64
	Degraded       bool
	FallbackReason string
}

// degradedLiteral drops the provenance the serving layer classifies by.
func degradedLiteral() Solution {
	return Solution{Degraded: true} // want `degraded Solution constructed without a FallbackReason`
}

// markDegraded sets the flag without assigning a reason anywhere in the
// function.
func markDegraded(s *Solution) {
	s.Degraded = true // want `Degraded set to true but FallbackReason is never assigned`
}

// cacheUnchecked stores a solution without gating on .Degraded first —
// a degraded artifact would be replayed to every later request.
func cacheUnchecked(c *cache.Cache, key string, s Solution) {
	c.Put(key, s) // want `cache Put without consulting .Degraded first`
}

// sessionReadsCache drives a delta session and consults the fingerprint
// cache in the same function — sessions bypass the cache by design, so a
// lookup here would replay one-shot answers into mid-session state.
func sessionReadsCache(c *cache.Cache, s *session.Session, key string) any {
	s.Apply(key)
	v, _ := c.Get(key) // want `session solve path touches the fingerprint cache`
	return v
}
