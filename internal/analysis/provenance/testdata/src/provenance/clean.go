package provenance

import "cache"

// withReason carries its provenance: compliant.
func withReason() Solution {
	return Solution{Degraded: true, FallbackReason: "timeout"}
}

// notDegraded never sets the flag at all.
func notDegraded() Solution {
	return Solution{Profit: 7}
}

// markWithReason assigns both fields in the same function.
func markWithReason(s *Solution) {
	s.Degraded = true
	s.FallbackReason = "panic"
}

// cacheGated consults .Degraded before the Put, making the contract
// visible at the call site.
func cacheGated(c *cache.Cache, key string, s Solution) {
	if s.Degraded {
		return
	}
	c.Put(key, s)
}
