package provenance

import (
	"cache"
	"session"
)

// withReason carries its provenance: compliant.
func withReason() Solution {
	return Solution{Degraded: true, FallbackReason: "timeout"}
}

// notDegraded never sets the flag at all.
func notDegraded() Solution {
	return Solution{Profit: 7}
}

// markWithReason assigns both fields in the same function.
func markWithReason(s *Solution) {
	s.Degraded = true
	s.FallbackReason = "panic"
}

// cacheGated consults .Degraded before the Put, making the contract
// visible at the call site.
func cacheGated(c *cache.Cache, key string, s Solution) {
	if s.Degraded {
		return
	}
	c.Put(key, s)
}

// sessionOnly drives a session without ever looking at the cache: the
// isolation the session routes are regression-tested for.
func sessionOnly(key string) any {
	s := session.New()
	return s.Apply(key)
}

// cacheOnlyGet reads the cache with no session in sight; lookups alone
// are not a finding.
func cacheOnlyGet(c *cache.Cache, key string) any {
	v, _ := c.Get(key)
	return v
}
