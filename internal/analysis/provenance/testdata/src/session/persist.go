// The session package owns journals — append-only durable state — so raw
// os mutations are findings just as in the cache package.
package session

import "os"

func appendJournal(path string, frame []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) // want `raw os\.OpenFile in durable-state package session`
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dropJournal(path string) error {
	return os.Remove(path) // want `raw os\.Remove in durable-state package session`
}

func journalDir(dir string) error {
	return os.MkdirAll(dir, 0o755) // want `raw os\.MkdirAll in durable-state package session`
}

// Reading a journal back is not a finding.
func readJournal(path string) ([]byte, error) {
	return os.ReadFile(path)
}
