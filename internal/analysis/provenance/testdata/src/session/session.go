// Package session stands in for internal/session: the analyzer recognizes
// its Session type's methods (and package-level constructors) as "driving a
// delta session", which must never mix with fingerprint-cache calls.
package session

type Session struct{}

func New() *Session { return &Session{} }

func (s *Session) Apply(delta string) any { return delta }
