package provenance_test

import (
	"testing"

	"sectorpack/internal/analysis/analysistest"
	"sectorpack/internal/analysis/provenance"
)

func TestProvenance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), provenance.Analyzer, "provenance", "cache", "session")
}
