package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

const suppressSrc = `package p

//sectorlint:ignore demo standalone comment covers the next line
var a = 1
var b = 2 //sectorlint:ignore demo trailing comment covers its own line
var c = 3
//sectorlint:ignore demo
//sectorlint:ignore
//sectorlint:ignorefile demo not a suppression: no word boundary
var d = 4
`

func TestApplySuppressions(t *testing.T) {
	fset, file := parseSrc(t, suppressSrc)
	tf := fset.File(file.Pos())
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: tf.LineStart(line), Analyzer: analyzer, Message: "m"}
	}
	in := []Diagnostic{
		mk(4, "demo"),  // covered by the standalone comment on line 3
		mk(5, "demo"),  // covered by the trailing comment on line 5
		mk(4, "other"), // different analyzer: survives
		mk(10, "demo"), // no well-formed comment near line 10: survives
	}
	out := ApplySuppressions(fset, []*ast.File{file}, in)

	var sectorlint, survived []Diagnostic
	for _, d := range out {
		if d.Analyzer == "sectorlint" {
			sectorlint = append(sectorlint, d)
		} else {
			survived = append(survived, d)
		}
	}
	if len(survived) != 2 {
		t.Fatalf("survived = %v, want the other@4 and demo@12 diagnostics", survived)
	}
	if survived[0].Analyzer != "other" || fset.Position(survived[1].Pos).Line != 10 {
		t.Errorf("wrong survivors: %v", survived)
	}
	// Line 7 has a reasonless suppression, line 8 an analyzer-less one; the
	// ignorefile spelling on line 9 must be ignored entirely.
	if len(sectorlint) != 2 {
		t.Fatalf("malformed-suppression diagnostics = %v, want 2", sectorlint)
	}
	if !strings.Contains(sectorlint[0].Message, "requires a reason") {
		t.Errorf("reasonless suppression message = %q", sectorlint[0].Message)
	}
	if !strings.Contains(sectorlint[1].Message, "must name the suppressed analyzer") {
		t.Errorf("analyzer-less suppression message = %q", sectorlint[1].Message)
	}
}

func TestApplySuppressionsNoComments(t *testing.T) {
	fset, file := parseSrc(t, "package p\n\nvar a = 1\n")
	tf := fset.File(file.Pos())
	in := []Diagnostic{{Pos: tf.LineStart(3), Analyzer: "demo", Message: "m"}}
	out := ApplySuppressions(fset, []*ast.File{file}, in)
	if len(out) != 1 {
		t.Fatalf("no suppressions present, diagnostics must pass through; got %v", out)
	}
}

func TestRunValidatesAnalyzerShape(t *testing.T) {
	fset, file := parseSrc(t, "package p\n")
	pkgs := []*Package{{ImportPath: "p", Fset: fset, Files: []*ast.File{file}}}
	for _, a := range []*Analyzer{
		{Name: "neither"},
		{Name: "both", Run: func(*Pass) error { return nil }, RunModule: func(*ModulePass) error { return nil }},
	} {
		if _, err := Run(fset, pkgs, []*Analyzer{a}); err == nil {
			t.Errorf("analyzer %s: Run accepted an invalid Run/RunModule combination", a.Name)
		}
	}
}

func TestRunSortsDiagnostics(t *testing.T) {
	fset, file := parseSrc(t, "package p\n\nvar a = 1\nvar b = 2\n")
	tf := fset.File(file.Pos())
	a := &Analyzer{
		Name: "demo",
		Run: func(p *Pass) error {
			p.Reportf(tf.LineStart(4), "second")
			p.Reportf(tf.LineStart(3), "first")
			return nil
		},
	}
	pkgs := []*Package{{ImportPath: "p", Fset: fset, Files: []*ast.File{file}}}
	diags, err := Run(fset, pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Message != "first" || diags[1].Message != "second" {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

func TestRunModulePassSeesEveryPackage(t *testing.T) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range []string{"a", "b"} {
		f, err := parser.ParseFile(fset, name+".go", "package "+name+"\n", parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkgs := []*Package{
		{ImportPath: "a", Fset: fset, Files: files[:1]},
		{ImportPath: "b", Fset: fset, Files: files[1:]},
	}
	seen := 0
	a := &Analyzer{
		Name: "mod",
		RunModule: func(mp *ModulePass) error {
			seen = len(mp.Packages)
			return nil
		},
	}
	if _, err := Run(fset, pkgs, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("module pass saw %d packages, want 2", seen)
	}
}
