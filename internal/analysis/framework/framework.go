// Package framework is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: named analyzers run over type-checked
// packages and report position-tagged diagnostics. The x/tools module is
// not vendored in this repository, so sectorlint carries its own copy of
// the (tiny) subset it needs — the Analyzer/Pass/Diagnostic shape is kept
// deliberately close to the upstream API so the analyzers would port to a
// real multichecker by changing imports.
//
// Three capabilities beyond single-package AST passes exist:
//
//   - Module passes: an analyzer implementing RunModule sees every package
//     of the module at once — what lets optcover cross-check core.Options
//     against the cache fingerprint, a property no single package exhibits.
//   - Facts: per-package analyzers run in dependency order; a pass may
//     export facts about its package's objects (serialized through gob, see
//     facts.go) which passes over dependent packages import back.
//   - Call graph: analyzers setting NeedsCallGraph receive a module-wide
//     may-call graph (callgraph.go) on their Pass, for invariants like
//     "every caller of this helper holds the lock".
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// Analyzer is one named invariant checker. Exactly one of Run and
// RunModule must be set.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //sectorlint:ignore comments.
	Name string
	// Doc is the one-paragraph description printed by `sectorlint -list`,
	// stating the invariant and the historical bug class it encodes.
	Doc string
	// Run analyzes a single package. Packages are visited in dependency
	// order (imports before importers), so facts exported by a dependency
	// are importable here.
	Run func(*Pass) error
	// RunModule analyzes every package of the module together.
	RunModule func(*ModulePass) error
	// FactTypes lists the concrete fact types this analyzer exports, for
	// gob registration. Required when the analyzer uses Export*Fact.
	FactTypes []Fact
	// NeedsCallGraph requests the module call graph on the pass.
	NeedsCallGraph bool
}

// Pass carries one type-checked package into an analyzer, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Graph is the module call graph; non-nil iff the analyzer set
	// NeedsCallGraph.
	Graph *CallGraph

	diags    *[]Diagnostic
	facts    *factDB
	exported *[]wireFact
}

// ModulePass carries the whole module into a module-scope analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Graph is the module call graph; non-nil iff the analyzer set
	// NeedsCallGraph.
	Graph *CallGraph
	// Packages holds one Pass per module package, in deterministic
	// (import-path-sorted) order. Their Analyzer fields alias the module
	// analyzer so Reportf attributes diagnostics correctly.
	Packages []*Pass
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is a loaded, type-checked module package ready to be analyzed.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Options tunes a Run.
type Options struct {
	// StaleIgnores additionally reports every well-formed
	// //sectorlint:ignore comment that suppressed nothing (for analyzers
	// that actually ran), so suppressions cannot outlive their bugs.
	StaleIgnores bool
}

// Run executes the analyzers over the packages with default options.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunOpts(fset, pkgs, analyzers, Options{})
}

// RunOpts executes the analyzers over the packages and returns the
// surviving diagnostics: suppressions (//sectorlint:ignore comments) are
// applied, malformed (and, with opts.StaleIgnores, stale) suppressions are
// themselves reported, and the result is sorted by position. An analyzer
// error aborts the run.
func RunOpts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	ordered := topoOrder(pkgs)

	var graph *CallGraph
	for _, a := range analyzers {
		if a.NeedsCallGraph {
			graph = BuildCallGraph(pkgs)
			break
		}
	}

	facts := newFactDB()
	newPass := func(a *Analyzer, pkg *Package) *Pass {
		p := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
			facts:     facts,
		}
		if a.NeedsCallGraph {
			p.Graph = graph
		}
		return p
	}

	for _, a := range analyzers {
		if (a.Run == nil) == (a.RunModule == nil) {
			return nil, fmt.Errorf("analyzer %s: exactly one of Run and RunModule must be set", a.Name)
		}
		registerFactTypes(a)
		if a.RunModule != nil {
			mp := &ModulePass{Analyzer: a, Fset: fset}
			if a.NeedsCallGraph {
				mp.Graph = graph
			}
			for _, pkg := range pkgs {
				mp.Packages = append(mp.Packages, newPass(a, pkg))
			}
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range ordered {
			p := newPass(a, pkg)
			var exported []wireFact
			p.exported = &exported
			if err := a.Run(p); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, p.Pkg.Path(), err)
			}
			if err := facts.seal(a.Name, pkg.ImportPath, exported); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
		}
	}

	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = applySuppressions(fset, files, diags, ran, opts.StaleIgnores)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// topoOrder sorts the packages dependencies-first: a package appears after
// every loaded package it imports. The import relation is read from the
// files' import specs (matched against loaded import paths), so it works
// on real module loads and fixture packages alike. Ties and independent
// packages keep import-path order, making the result deterministic.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)

	deps := map[string][]string{}
	for _, path := range paths {
		p := byPath[path]
		seen := map[string]bool{}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[ip] {
					continue
				}
				seen[ip] = true
				if _, ok := byPath[ip]; ok && ip != path {
					deps[path] = append(deps[path], ip)
				}
			}
		}
		sort.Strings(deps[path])
	}

	out := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		switch state[path] {
		case 1, 2:
			return // cycle (impossible in valid Go) or already emitted
		}
		state[path] = 1
		for _, d := range deps[path] {
			visit(d)
		}
		state[path] = 2
		out = append(out, byPath[path])
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// Named returns the *types.Named behind t, unwrapping one pointer.
func Named(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
