// Package framework is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: named analyzers run over type-checked
// packages and report position-tagged diagnostics. The x/tools module is
// not vendored in this repository, so sectorlint carries its own copy of
// the (tiny) subset it needs — the Analyzer/Pass/Diagnostic shape is kept
// deliberately close to the upstream API so the analyzers would port to a
// real multichecker by changing imports.
//
// Two run modes exist. A per-package analyzer implements Run and sees one
// type-checked package at a time. A module analyzer implements RunModule
// and sees every package of the module in one pass — that is what lets
// optcover cross-check core.Options against the cache fingerprint, a
// property no single package exhibits on its own.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker. Exactly one of Run and
// RunModule must be set.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //sectorlint:ignore comments.
	Name string
	// Doc is the one-paragraph description printed by `sectorlint -list`,
	// stating the invariant and the historical bug class it encodes.
	Doc string
	// Run analyzes a single package.
	Run func(*Pass) error
	// RunModule analyzes every package of the module together.
	RunModule func(*ModulePass) error
}

// Pass carries one type-checked package into an analyzer, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// ModulePass carries the whole module into a module-scope analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Packages holds one Pass per module package, in deterministic
	// (import-path-sorted) order. Their Analyzer fields alias the module
	// analyzer so Reportf attributes diagnostics correctly.
	Packages []*Pass
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is a loaded, type-checked module package ready to be analyzed.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics: suppressions (//sectorlint:ignore comments) are applied,
// malformed suppressions are themselves reported, and the result is
// sorted by position. An analyzer error aborts the run.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	passes := make([]*Pass, 0, len(pkgs))
	for _, pkg := range pkgs {
		passes = append(passes, &Pass{
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		})
	}
	for _, a := range analyzers {
		if (a.Run == nil) == (a.RunModule == nil) {
			return nil, fmt.Errorf("analyzer %s: exactly one of Run and RunModule must be set", a.Name)
		}
		if a.RunModule != nil {
			mp := &ModulePass{Analyzer: a, Fset: fset}
			for _, p := range passes {
				mp.Packages = append(mp.Packages, &Pass{
					Analyzer: a, Fset: p.Fset, Files: p.Files,
					Pkg: p.Pkg, TypesInfo: p.TypesInfo, diags: &diags,
				})
			}
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
			continue
		}
		for _, p := range passes {
			sub := *p
			sub.Analyzer = a
			if err := a.Run(&sub); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, sub.Pkg.Path(), err)
			}
		}
	}

	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	diags = ApplySuppressions(fset, files, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
