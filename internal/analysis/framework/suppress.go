package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//sectorlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The comment suppresses matching diagnostics reported on its own line or,
// for a comment standing alone on a line, on the line directly below. The
// reason is mandatory: a bare suppression is itself reported as a
// violation, so every silenced finding carries its justification in the
// source.
const ignorePrefix = "//sectorlint:ignore"

// suppression is one parsed ignore comment.
type suppression struct {
	pos       token.Pos
	analyzers []string
	reason    string
}

// parseSuppressions extracts every ignore comment from the files. Comments
// with no reason are returned with an empty reason; the caller converts
// those into diagnostics.
func parseSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				// Require a word boundary so e.g. a hypothetical
				// //sectorlint:ignorefile is not half-parsed.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				s := suppression{pos: c.Pos()}
				if len(fields) > 0 {
					s.analyzers = strings.Split(fields[0], ",")
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// ApplySuppressions filters diags through the files' ignore comments with
// no staleness audit; every analyzer named in a suppression is assumed to
// have run.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	return applySuppressions(fset, files, diags, nil, false)
}

// applySuppressions filters diags through the files' ignore comments and
// appends a "sectorlint" diagnostic for every malformed suppression (one
// naming no analyzer, or one without a reason). Well-formed suppressions
// match diagnostics whose analyzer is listed and whose line equals the
// comment's line or the line after it (the standalone-comment case).
//
// With staleCheck set, a well-formed suppression entry that suppressed
// nothing is itself reported — but only for analyzer names present in ran
// (nil means "all ran"): a run restricted with -only must not flag
// suppressions for the analyzers it skipped, whose findings it simply
// cannot see this run.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran map[string]bool, staleCheck bool) []Diagnostic {
	sups := parseSuppressions(fset, files)
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
		name string
	}
	type cover struct {
		pos  token.Pos
		hits int
	}
	covered := map[key]*cover{}
	var out []Diagnostic
	for _, s := range sups {
		pos := fset.Position(s.pos)
		if len(s.analyzers) == 0 {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: "sectorlint",
				Message:  "sectorlint:ignore must name the suppressed analyzer(s): //sectorlint:ignore <analyzer> <reason>",
			})
			continue
		}
		if s.reason == "" {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: "sectorlint",
				Message:  "sectorlint:ignore requires a reason: //sectorlint:ignore " + strings.Join(s.analyzers, ",") + " <reason>",
			})
			continue
		}
		for _, name := range s.analyzers {
			c := &cover{pos: s.pos}
			// The same (file, line, analyzer) may be covered twice (a
			// standalone comment above a line that also has a trailing one);
			// both share hit accounting through the first registered cover.
			for _, line := range []int{pos.Line, pos.Line + 1} {
				k := key{pos.Filename, line, name}
				if covered[k] == nil {
					covered[k] = c
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if c := covered[key{pos.Filename, pos.Line, d.Analyzer}]; c != nil {
			c.hits++
			continue
		}
		out = append(out, d)
	}
	if staleCheck {
		// Re-walk the well-formed suppressions in source order; each
		// analyzer entry that ran but matched nothing is stale. A
		// suppression fully shadowed by an earlier one on the same lines
		// owns no cover at all and is stale by the same standard.
		for _, s := range sups {
			if len(s.analyzers) == 0 || s.reason == "" {
				continue
			}
			pos := fset.Position(s.pos)
			for _, name := range s.analyzers {
				if ran != nil && !ran[name] {
					continue
				}
				hits := 0
				var owned *cover
				for _, line := range []int{pos.Line, pos.Line + 1} {
					c := covered[key{pos.Filename, line, name}]
					if c != nil && c.pos == s.pos && c != owned {
						owned = c
						hits += c.hits
					}
				}
				if hits == 0 {
					out = append(out, Diagnostic{
						Pos:      s.pos,
						Analyzer: "sectorlint",
						Message: "stale suppression: //sectorlint:ignore " + name +
							" no longer suppresses anything here; delete it so the next real finding is not silenced",
					})
				}
			}
		}
	}
	return out
}
