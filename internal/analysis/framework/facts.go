// Facts: the cross-package channel between analyzer passes, mirroring
// go/analysis's ObjectFact/PackageFact machinery. An analyzer running on
// package P may export a fact about one of P's objects (a function, a
// package-level var, a struct field); when the same analyzer later runs on
// a package that imports P, it can import that fact back and act on it —
// that is how lockdiscipline knows a field of an imported struct is
// mutex-guarded, how fsyncorder knows faultfs.WriteFileAtomic is a
// complete fsync+rename sink, and how retryidem knows sectorclient's Do is
// a retry loop gated by its fifth parameter.
//
// Facts genuinely round-trip through bytes (encoding/gob), exactly as they
// would through files in a distributed go/analysis driver: the loader
// type-checks each module package from source but resolves its imports
// from compiler export data, so the types.Object for P.F seen by a
// dependent is NOT the object P's own pass saw. Identity therefore cannot
// be pointer-based; objects are keyed by a stable path — "o:<name>" for
// package-scope objects, "m:<Type>.<Method>" for methods, "f:<Type>.<Field>"
// for struct fields — scoped to the owning package's import path. After
// each per-package pass the analyzer's exported facts are serialized; a
// dependent pass decodes them on first import.
package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum one package's pass publishes for its dependents. Concrete
// fact types must be pointers to structs, must be gob-encodable, and must
// be listed in the owning Analyzer's FactTypes so they are registered with
// gob before the run.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// packageFactKey is the pseudo-object key under which package-level facts
// are stored.
const packageFactKey = "pkg:"

// ObjectFactKey returns the stable cross-package key for obj, or "" when
// obj is not addressable by facts (locals, struct fields — use
// FieldFactKey for those, unnamed objects).
func ObjectFactKey(obj types.Object) string {
	if obj == nil || obj.Name() == "" || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "" // method on an unnamed receiver (anonymous interface)
			}
			return "m:" + named.Obj().Name() + "." + fn.Name()
		}
	}
	// Locals and parameters have a parent scope that is not the package
	// scope; facts on them would be meaningless to other packages.
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return "o:" + obj.Name()
}

// FieldFactKey returns the fact key for the named field of the named
// struct type. go/types gives struct-field Vars no back-pointer to their
// owner, so the owner is passed explicitly by both the exporting and the
// importing side (the importer recovers it from the selection's receiver).
func FieldFactKey(owner *types.Named, field string) string {
	if owner == nil || owner.Obj() == nil {
		return ""
	}
	return "f:" + owner.Obj().Name() + "." + field
}

// wireFact is the serialized form of one exported fact.
type wireFact struct {
	Key  string
	Fact Fact
}

// factBlob is what one (analyzer, package) pair serializes.
type factBlob struct {
	Facts []wireFact
}

// factDB holds every analyzer's serialized per-package facts for one Run.
type factDB struct {
	// blobs is the wire form: gob bytes per (analyzer, package path).
	blobs map[string][]byte
	// decoded caches blobs after their first import.
	decoded map[string]map[string][]Fact
}

func newFactDB() *factDB {
	return &factDB{blobs: map[string][]byte{}, decoded: map[string]map[string][]Fact{}}
}

func dbKey(analyzer, pkgPath string) string { return analyzer + "\x00" + pkgPath }

// seal serializes the facts a pass exported and files them under the
// analyzer/package pair. Keys are sorted so the encoding is deterministic.
func (db *factDB) seal(analyzer, pkgPath string, exported []wireFact) error {
	if len(exported) == 0 {
		return nil
	}
	sorted := make([]wireFact, len(exported))
	copy(sorted, exported)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	raw, err := EncodeFacts(sorted)
	if err != nil {
		return fmt.Errorf("encoding facts of %s: %w", pkgPath, err)
	}
	db.blobs[dbKey(analyzer, pkgPath)] = raw
	return nil
}

// lookup decodes (once) and returns the facts stored under key for the
// analyzer/package pair.
func (db *factDB) lookup(analyzer, pkgPath, key string) []Fact {
	k := dbKey(analyzer, pkgPath)
	byKey, ok := db.decoded[k]
	if !ok {
		byKey = map[string][]Fact{}
		if raw := db.blobs[k]; raw != nil {
			facts, err := DecodeFacts(raw)
			if err == nil {
				for _, wf := range facts {
					byKey[wf.Key] = append(byKey[wf.Key], wf.Fact)
				}
			}
		}
		db.decoded[k] = byKey
	}
	return byKey[key]
}

// EncodeFacts serializes fact entries to bytes; DecodeFacts reverses it.
// Both are exported for the round-trip tests — the Run driver itself seals
// and decodes through the same pair, so the tests exercise the real wire
// path.
func EncodeFacts(facts []wireFact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(factBlob{Facts: facts}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFacts parses bytes produced by EncodeFacts.
func DecodeFacts(raw []byte) ([]wireFact, error) {
	var blob factBlob
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&blob); err != nil {
		return nil, err
	}
	return blob.Facts, nil
}

// NewWireFact builds one serializable fact entry; exported for tests.
func NewWireFact(key string, f Fact) wireFact { return wireFact{Key: key, Fact: f} }

// WireFactParts exposes a wire entry's fields; exported for tests.
func WireFactParts(wf wireFact) (string, Fact) { return wf.Key, wf.Fact }

// registerFactTypes tells gob about an analyzer's concrete fact types.
// gob.Register is idempotent for a stable name→type mapping, so repeated
// Runs are fine.
func registerFactTypes(a *Analyzer) {
	for _, f := range a.FactTypes {
		gob.Register(f)
	}
}

// assignFact copies src into dst (both pointers to the same concrete
// struct type). Returns false on a type mismatch.
func assignFact(dst, src Fact) bool {
	dv, sv := reflect.ValueOf(dst), reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// --- Pass fact API ---

// exportFact records a fact under key on the current package.
func (p *Pass) exportFact(key string, f Fact) {
	if key == "" || p.exported == nil {
		return
	}
	*p.exported = append(*p.exported, wireFact{Key: key, Fact: f})
}

// importFact resolves a fact by package path + key: pending exports of the
// current pass first (same-package queries), then the serialized store.
func (p *Pass) importFact(pkgPath, key string, f Fact) bool {
	if key == "" {
		return false
	}
	if p.Pkg != nil && pkgPath == p.Pkg.Path() && p.exported != nil {
		for _, wf := range *p.exported {
			if wf.Key == key && assignFact(f, wf.Fact) {
				return true
			}
		}
		return false
	}
	if p.facts == nil {
		return false
	}
	for _, stored := range p.facts.lookup(p.Analyzer.Name, pkgPath, key) {
		if assignFact(f, stored) {
			return true
		}
	}
	return false
}

// ExportObjectFact publishes a fact about a package-scope object or method
// of the current package. Facts on objects of other packages, locals, or
// struct fields (use ExportFieldFact) are silently dropped.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil || p.Pkg == nil || obj.Pkg().Path() != p.Pkg.Path() {
		return
	}
	p.exportFact(ObjectFactKey(obj), f)
}

// ImportObjectFact loads the fact stored for obj (a package-scope object
// or method of any analyzed package) into f, reporting whether one was
// found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.importFact(obj.Pkg().Path(), ObjectFactKey(obj), f)
}

// ExportFieldFact publishes a fact about a field of a named struct type
// declared in the current package.
func (p *Pass) ExportFieldFact(owner *types.Named, field string, f Fact) {
	if owner == nil || owner.Obj() == nil || owner.Obj().Pkg() == nil ||
		p.Pkg == nil || owner.Obj().Pkg().Path() != p.Pkg.Path() {
		return
	}
	p.exportFact(FieldFactKey(owner, field), f)
}

// ImportFieldFact loads the fact stored for ownerType's field (ownerType
// may be a pointer; it is unwrapped) into f.
func (p *Pass) ImportFieldFact(ownerType types.Type, field string, f Fact) bool {
	if ptr, ok := ownerType.(*types.Pointer); ok {
		ownerType = ptr.Elem()
	}
	named, ok := ownerType.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return p.importFact(named.Obj().Pkg().Path(), FieldFactKey(named, field), f)
}

// ExportPackageFact publishes a fact about the current package as a whole.
func (p *Pass) ExportPackageFact(f Fact) { p.exportFact(packageFactKey, f) }

// ImportPackageFact loads the package-level fact of the package at path.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	return p.importFact(path, packageFactKey, f)
}
