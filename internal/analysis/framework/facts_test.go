package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// mapImporter resolves imports among in-test packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, &importError{path}
}

type importError struct{ path string }

func (e *importError) Error() string { return "no test package " + e.path }

type srcPkg struct{ path, src string }

// checkPkgs parses and type-checks one file per package, resolving
// cross-package imports among them.
func checkPkgs(t *testing.T, srcs ...srcPkg) (*token.FileSet, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	imp := mapImporter{}
	var pkgs []*Package
	for _, sp := range srcs {
		fname := strings.ReplaceAll(sp.path, "/", "_") + ".go"
		f, err := parser.ParseFile(fset, fname, sp.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", sp.path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(sp.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check %s: %v", sp.path, err)
		}
		imp[sp.path] = tpkg
		pkgs = append(pkgs, &Package{
			ImportPath: sp.path, Fset: fset, Files: []*ast.File{f},
			Pkg: tpkg, TypesInfo: info,
		})
	}
	return fset, pkgs
}

type testFact struct{ Payload string }

func (*testFact) AFact() {}

func TestFactsWireRoundTrip(t *testing.T) {
	registerFactTypes(&Analyzer{FactTypes: []Fact{(*testFact)(nil)}})
	in := []wireFact{
		NewWireFact("o:F", &testFact{Payload: "hello"}),
		NewWireFact("m:T.M", &testFact{Payload: "method"}),
	}
	raw, err := EncodeFacts(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeFacts(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length = %d, want %d", len(out), len(in))
	}
	for i := range in {
		wantKey, wantFact := WireFactParts(in[i])
		gotKey, gotFact := WireFactParts(out[i])
		if gotKey != wantKey {
			t.Errorf("fact %d key = %q, want %q", i, gotKey, wantKey)
		}
		g, ok := gotFact.(*testFact)
		if !ok || g.Payload != wantFact.(*testFact).Payload {
			t.Errorf("fact %d = %#v, want payload %q", i, gotFact, wantFact.(*testFact).Payload)
		}
	}
}

func TestDecodeFactsRejectsGarbage(t *testing.T) {
	if _, err := DecodeFacts([]byte("not gob")); err == nil {
		t.Fatal("DecodeFacts accepted garbage bytes")
	}
}

// TestFactsCrossPackage drives the real Run path: the pass over package a
// exports object and package facts, the pass over dependent package b
// imports them back through the serialized store.
func TestFactsCrossPackage(t *testing.T) {
	fset, loaded := checkPkgs(t,
		srcPkg{path: "a", src: `package a
func F() {}
`},
		srcPkg{path: "b", src: `package b
import "a"
var _ = a.F
`},
	)
	// Hand Run the dependent first: topoOrder must fix it.
	pkgs := []*Package{loaded[1], loaded[0]}
	var gotObj, gotPkgFact string
	a := &Analyzer{
		Name:      "factdemo",
		FactTypes: []Fact{(*testFact)(nil)},
		Run: func(p *Pass) error {
			switch p.Pkg.Path() {
			case "a":
				fobj, _ := p.Pkg.Scope().Lookup("F").(*types.Func)
				p.ExportObjectFact(fobj, &testFact{Payload: "obj-from-a"})
				p.ExportPackageFact(&testFact{Payload: "pkg-from-a"})
				// Same-package import sees the pending export.
				var pending testFact
				if !p.ImportObjectFact(fobj, &pending) || pending.Payload != "obj-from-a" {
					t.Errorf("same-package pending import failed: %#v", pending)
				}
			case "b":
				for _, obj := range p.TypesInfo.Uses {
					fn, ok := obj.(*types.Func)
					if !ok || fn.Name() != "F" {
						continue
					}
					var f testFact
					if p.ImportObjectFact(fn, &f) {
						gotObj = f.Payload
					}
				}
				var pf testFact
				if p.ImportPackageFact("a", &pf) {
					gotPkgFact = pf.Payload
				}
			}
			return nil
		},
	}
	if _, err := Run(fset, pkgs, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if gotObj != "obj-from-a" {
		t.Errorf("cross-package object fact = %q, want obj-from-a", gotObj)
	}
	if gotPkgFact != "pkg-from-a" {
		t.Errorf("cross-package package fact = %q, want pkg-from-a", gotPkgFact)
	}
}

func TestTopoOrderDependenciesFirst(t *testing.T) {
	_, pkgs := checkPkgs(t,
		srcPkg{path: "a", src: "package a\nvar A = 1\n"},
		srcPkg{path: "b", src: "package b\nimport \"a\"\nvar B = a.A\n"},
		srcPkg{path: "c", src: "package c\nimport \"b\"\nvar _ = b.B\n"},
	)
	// checkPkgs needs dependency order to type-check; shuffle the slice
	// before handing it to topoOrder.
	shuffled := []*Package{pkgs[2], pkgs[0], pkgs[1]} // c, a, b
	var got []string
	for _, p := range topoOrder(shuffled) {
		got = append(got, p.ImportPath)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topoOrder = %v, want %v", got, want)
		}
	}
}

func TestStaleSuppressionAudit(t *testing.T) {
	fset, file := parseSrc(t, `package p

//sectorlint:ignore demo this one still matches
var a = 1

//sectorlint:ignore demo this one is stale
var b = 2

//sectorlint:ignore skipped this analyzer did not run
var c = 3
`)
	tf := fset.File(file.Pos())
	in := []Diagnostic{{Pos: tf.LineStart(4), Analyzer: "demo", Message: "m"}}
	ran := map[string]bool{"demo": true}
	out := applySuppressions(fset, []*ast.File{file}, in, ran, true)
	if len(out) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the one stale-suppression finding", out)
	}
	if !strings.Contains(out[0].Message, "stale suppression") ||
		fset.Position(out[0].Pos).Line != 6 {
		t.Errorf("stale finding = %+v, want stale-suppression at line 6", out[0])
	}
	// Without the audit, the same input yields no findings at all.
	if quiet := applySuppressions(fset, []*ast.File{file}, in, ran, false); len(quiet) != 0 {
		t.Errorf("audit off: diagnostics = %v, want none", quiet)
	}
}
