// The intra-module call graph. Built once per Run (when any analyzer sets
// NeedsCallGraph) over every loaded package and shared by all passes, it
// is a deliberately over-approximate "may call" relation — the right
// polarity for lint: a lock-discipline helper is only safe if EVERY caller
// holds the lock, so missing edges would hide bugs while spurious ones
// merely demand a suppression.
//
// Edges:
//
//   - Every mention of a *types.Func in a function's body is an edge —
//     direct calls, method calls, and method VALUES (f := x.M; f())
//     alike. A function that merely receives a reference may pass it
//     anywhere, so reference = may-call.
//   - A function literal is its own node (key "parent$n" in source
//     order), with an edge from its enclosing function: the parent either
//     calls it or hands it to something that may.
//   - Interface dispatch is resolved CHA-style: for every named interface
//     declared in the module and every named module type implementing it,
//     each interface method gets an edge to the concrete method. A call
//     through the interface therefore reaches the implementations in two
//     hops via the interface method's (body-less) node, and Callers on a
//     concrete method walks back through it transparently.
//
// Node keys reuse the fact keying (package path + ObjectFactKey) so
// analyzers can move between facts and graph nodes without translation.
package framework

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// CallNode is one function-shaped unit in the graph.
type CallNode struct {
	// Key is the node's identity: "<pkgpath>.o:<name>" for functions,
	// "<pkgpath>.m:<Type>.<Method>" for methods, parent key + "$<n>" for
	// function literals.
	Key string
	// Fn is the declared *types.Func; nil for function literals and for
	// body-less interface-method nodes.
	Fn *types.Func
	// Decl is the *ast.FuncDecl or *ast.FuncLit; nil for interface-method
	// nodes.
	Decl ast.Node
	// Body is the function body; nil for interface-method nodes.
	Body *ast.BlockStmt
	// Pkg is the loaded package the body lives in; nil for
	// interface-method nodes of non-module packages.
	Pkg *Package

	callees map[string]bool
	callers map[string]bool
}

// CallGraph is the module-wide may-call relation.
type CallGraph struct {
	nodes map[string]*CallNode
}

// FuncKey returns fn's graph key, or "" when fn cannot be keyed.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	k := ObjectFactKey(fn)
	if k == "" {
		return ""
	}
	return fn.Pkg().Path() + "." + k
}

// Node returns the node for key, or nil.
func (g *CallGraph) Node(key string) *CallNode { return g.nodes[key] }

// NodesOf returns every node whose body lives in the package at path,
// sorted by key.
func (g *CallGraph) NodesOf(path string) []*CallNode {
	var out []*CallNode
	for _, n := range g.nodes {
		if n.Pkg != nil && n.Pkg.ImportPath == path && n.Body != nil {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Callees returns the sorted keys key's node may call (including keys of
// functions outside the module, which have no node).
func (g *CallGraph) Callees(key string) []string {
	n := g.nodes[key]
	if n == nil {
		return nil
	}
	out := make([]string, 0, len(n.callees))
	for k := range n.callees {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Callers returns the module nodes that may call key, walking transparently
// back through body-less interface-method nodes: a caller that dispatches
// through an interface counts as a caller of every implementation.
func (g *CallGraph) Callers(key string) []*CallNode {
	seen := map[string]bool{}
	var out []*CallNode
	var visit func(k string)
	visit = func(k string) {
		n := g.nodes[k]
		if n == nil {
			return
		}
		for ck := range n.callers {
			if seen[ck] {
				continue
			}
			seen[ck] = true
			c := g.nodes[ck]
			if c == nil {
				continue
			}
			if c.Body == nil {
				// An abstract (interface-method) caller: whoever calls IT is
				// the real caller.
				visit(ck)
				continue
			}
			out = append(out, c)
		}
	}
	visit(key)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ReachableFrom reports every node key reachable from start (excluding
// start itself unless it participates in a cycle), following callee edges
// through module nodes only.
func (g *CallGraph) ReachableFrom(start string) map[string]bool {
	seen := map[string]bool{}
	var visit func(k string)
	visit = func(k string) {
		n := g.nodes[k]
		if n == nil {
			return
		}
		for ck := range n.callees {
			if seen[ck] {
				continue
			}
			seen[ck] = true
			visit(ck)
		}
	}
	visit(start)
	return seen
}

// BuildCallGraph constructs the graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[string]*CallNode{}}

	// Pass 1: one node per declared function and per function literal.
	type litParent struct {
		node *CallNode
		n    int
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			// Stack of enclosing function nodes; literals key off the top.
			var stack []*litParent
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.TypesInfo.Defs[fn.Name].(*types.Func)
					key := FuncKey(obj)
					if key == "" || fn.Body == nil {
						return true
					}
					node := &CallNode{Key: key, Fn: obj, Decl: fn, Body: fn.Body, Pkg: pkg,
						callees: map[string]bool{}, callers: map[string]bool{}}
					g.nodes[key] = node
					stack = append(stack, &litParent{node: node})
					ast.Inspect(fn.Body, walk)
					stack = stack[:len(stack)-1]
					return false
				case *ast.FuncLit:
					if len(stack) == 0 {
						// A literal in a var initializer: key it off the file's
						// package path with a per-file counter-free position; use
						// the package-scope pseudo parent.
						key := fmt.Sprintf("%s.o:$init$%d", pkg.ImportPath, fn.Pos())
						node := &CallNode{Key: key, Decl: fn, Body: fn.Body, Pkg: pkg,
							callees: map[string]bool{}, callers: map[string]bool{}}
						g.nodes[key] = node
						stack = append(stack, &litParent{node: node})
						ast.Inspect(fn.Body, walk)
						stack = stack[:len(stack)-1]
						return false
					}
					parent := stack[len(stack)-1]
					key := fmt.Sprintf("%s$%d", parent.node.Key, parent.n)
					parent.n++
					node := &CallNode{Key: key, Decl: fn, Body: fn.Body, Pkg: pkg,
						callees: map[string]bool{}, callers: map[string]bool{}}
					g.nodes[key] = node
					// The parent may invoke (or hand off) the literal.
					parent.node.callees[key] = true
					stack = append(stack, &litParent{node: node})
					ast.Inspect(fn.Body, walk)
					stack = stack[:len(stack)-1]
					return false
				}
				return true
			}
			ast.Inspect(file, walk)
		}
	}

	// Pass 2: edges from every *types.Func mention inside each body,
	// skipping nested literal subtrees (they are their own nodes).
	for _, pkg := range pkgs {
		for _, node := range g.nodes {
			if node.Pkg != pkg || node.Body == nil {
				continue
			}
			addEdgesFromBody(g, pkg, node)
		}
	}

	// Pass 3: CHA interface-dispatch edges among module types.
	addInterfaceEdges(g, pkgs)

	// Reverse edges.
	for key, n := range g.nodes {
		for ck := range n.callees {
			if callee := g.nodes[ck]; callee != nil {
				callee.callers[key] = true
			}
		}
	}
	return g
}

// addEdgesFromBody records node → mentioned-function edges.
func addEdgesFromBody(g *CallGraph, pkg *Package, node *CallNode) {
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own node; parent already has the edge
		}
		switch e := n.(type) {
		case *ast.Ident:
			if fn, ok := pkg.TypesInfo.Uses[e].(*types.Func); ok {
				if key := FuncKey(fn); key != "" {
					node.callees[key] = true
					ensureAbstract(g, fn, key)
				}
			}
		case *ast.SelectorExpr:
			// Method calls and method values resolve through Selections;
			// qualified identifiers (pkg.F) and method expressions (T.M)
			// resolve through Uses and are handled by the Ident case on
			// e.Sel via Uses as well.
			if sel, ok := pkg.TypesInfo.Selections[e]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					if key := FuncKey(fn); key != "" {
						node.callees[key] = true
						ensureAbstract(g, fn, key)
					}
				}
				return true
			}
			if fn, ok := pkg.TypesInfo.Uses[e.Sel].(*types.Func); ok {
				if key := FuncKey(fn); key != "" {
					node.callees[key] = true
					ensureAbstract(g, fn, key)
				}
			}
		}
		return true
	})
}

// ensureAbstract materializes a body-less node for interface methods so
// CHA edges and caller walks have a place to meet.
func ensureAbstract(g *CallGraph, fn *types.Func, key string) {
	if g.nodes[key] != nil {
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			g.nodes[key] = &CallNode{Key: key, Fn: fn,
				callees: map[string]bool{}, callers: map[string]bool{}}
		}
	}
}

// addInterfaceEdges links every module interface method to every module
// implementation of it.
func addInterfaceEdges(g *CallGraph, pkgs []*Package) {
	type ifaceInfo struct {
		named *types.Named
		iface *types.Interface
	}
	var ifaces []ifaceInfo
	var concrete []*types.Named
	for _, pkg := range pkgs {
		if pkg.Pkg == nil {
			continue
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, ifaceInfo{named: named, iface: iface})
				}
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for _, ii := range ifaces {
		for _, named := range concrete {
			impl := types.Implements(named, ii.iface) || types.Implements(types.NewPointer(named), ii.iface)
			if !impl {
				continue
			}
			mset := types.NewMethodSet(types.NewPointer(named))
			for i := 0; i < ii.iface.NumMethods(); i++ {
				im := ii.iface.Method(i)
				ikey := FuncKey(im)
				if ikey == "" {
					continue
				}
				ensureAbstract(g, im, ikey)
				sel := mset.Lookup(im.Pkg(), im.Name())
				if sel == nil {
					continue
				}
				cm, ok := sel.Obj().(*types.Func)
				if !ok {
					continue
				}
				ckey := FuncKey(cm)
				if ckey == "" {
					continue
				}
				if an := g.nodes[ikey]; an != nil {
					an.callees[ckey] = true
				}
			}
		}
	}
}
