package framework

import (
	"strings"
	"testing"
)

func keys(nodes []*CallNode) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Key)
	}
	return out
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestCallGraphDirectCallsAndMethodValues(t *testing.T) {
	_, pkgs := checkPkgs(t, srcPkg{path: "p", src: `package p

type T struct{}

func (T) M() {}

func g() {}

func f() {
	g()
	var x T
	h := x.M // method value: a may-call edge even without an invocation
	_ = h
}
`})
	graph := BuildCallGraph(pkgs)

	if !contains(graph.Callees("p.o:f"), "p.o:g") {
		t.Errorf("f's callees = %v, want direct call edge to p.o:g", graph.Callees("p.o:f"))
	}
	if !contains(graph.Callees("p.o:f"), "p.m:T.M") {
		t.Errorf("f's callees = %v, want method-value edge to p.m:T.M", graph.Callees("p.o:f"))
	}
	if !contains(keys(graph.Callers("p.o:g")), "p.o:f") {
		t.Errorf("g's callers = %v, want p.o:f", keys(graph.Callers("p.o:g")))
	}
}

func TestCallGraphInterfaceDispatchCHA(t *testing.T) {
	_, pkgs := checkPkgs(t, srcPkg{path: "p", src: `package p

type Doer interface{ Do() }

type A struct{}

func (A) Do() {}

type B struct{}

func (*B) Do() {}

func drive(d Doer) { d.Do() }
`})
	graph := BuildCallGraph(pkgs)

	// The interface-method node is abstract (no body) and drive calls it.
	if !contains(graph.Callees("p.o:drive"), "p.m:Doer.Do") {
		t.Fatalf("drive's callees = %v, want p.m:Doer.Do", graph.Callees("p.o:drive"))
	}
	// Callers of both implementations walk back through the abstract node
	// to the dynamic call site.
	for _, impl := range []string{"p.m:A.Do", "p.m:B.Do"} {
		callers := keys(graph.Callers(impl))
		if !contains(callers, "p.o:drive") {
			t.Errorf("callers of %s = %v, want p.o:drive via interface dispatch", impl, callers)
		}
	}
}

func TestCallGraphFunctionLiterals(t *testing.T) {
	_, pkgs := checkPkgs(t, srcPkg{path: "p", src: `package p

func leaf() {}

func parent() {
	fn := func() { leaf() }
	fn()
}
`})
	graph := BuildCallGraph(pkgs)

	lit := "p.o:parent$0"
	if graph.Node(lit) == nil {
		t.Fatalf("no node for the literal %s; nodes of p = %v", lit, keys(graph.NodesOf("p")))
	}
	if !contains(graph.Callees("p.o:parent"), lit) {
		t.Errorf("parent's callees = %v, want the literal %s", graph.Callees("p.o:parent"), lit)
	}
	if !contains(graph.Callees(lit), "p.o:leaf") {
		t.Errorf("literal's callees = %v, want p.o:leaf", graph.Callees(lit))
	}
	reach := graph.ReachableFrom("p.o:parent")
	if !reach["p.o:leaf"] {
		t.Errorf("leaf not reachable from parent through the literal: %v", reach)
	}
}

func TestCallGraphCrossPackage(t *testing.T) {
	_, pkgs := checkPkgs(t,
		srcPkg{path: "a", src: "package a\nfunc Helper() {}\n"},
		srcPkg{path: "b", src: "package b\nimport \"a\"\nfunc Use() { a.Helper() }\n"},
	)
	graph := BuildCallGraph(pkgs)
	if !contains(keys(graph.Callers("a.o:Helper")), "b.o:Use") {
		t.Errorf("Helper's callers = %v, want b.o:Use across the package boundary",
			keys(graph.Callers("a.o:Helper")))
	}
}

func TestNodesOfSortedAndScoped(t *testing.T) {
	_, pkgs := checkPkgs(t,
		srcPkg{path: "a", src: "package a\nfunc Z() {}\nfunc A() {}\n"},
		srcPkg{path: "b", src: "package b\nfunc Only() {}\n"},
	)
	graph := BuildCallGraph(pkgs)
	got := keys(graph.NodesOf("a"))
	if len(got) != 2 || got[0] != "a.o:A" || got[1] != "a.o:Z" {
		t.Errorf("NodesOf(a) = %v, want [a.o:A a.o:Z]", got)
	}
	for _, k := range got {
		if strings.HasPrefix(k, "b.") {
			t.Errorf("NodesOf(a) leaked node %s from b", k)
		}
	}
}
