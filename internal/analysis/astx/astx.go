// Package astx holds the small AST/types queries shared by the sectorlint
// analyzers: function iteration, constant classification, and call
// classification. Everything here is pure and stateless.
package astx

import (
	"go/ast"
	"go/constant"
	"go/types"
	"math"
)

// Func is one function-shaped node: a declaration or a literal.
type Func struct {
	// Name is the declared name, or "" for a function literal.
	Name string
	Type *ast.FuncType
	Body *ast.BlockStmt
	// Node is the original *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
}

// Funcs yields every function declaration and literal in the files, outer
// before inner.
func Funcs(files []*ast.File) []Func {
	var out []Func
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, Func{Name: fn.Name.Name, Type: fn.Type, Body: fn.Body, Node: fn})
				}
			case *ast.FuncLit:
				out = append(out, Func{Type: fn.Type, Body: fn.Body, Node: fn})
			}
			return true
		})
	}
	return out
}

// IsConstTrue reports whether expr is the constant true.
func IsConstTrue(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value)
}

// IsConst reports whether expr evaluates to any compile-time constant.
func IsConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// IsConstZero reports whether expr is a constant numerically equal to 0.
func IsConstZero(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}

// ConstFloatNear reports whether expr is a constant within tol of want.
// It is how the 2π constant is recognized across its spellings
// (geom.TwoPi, 2*math.Pi, a literal 6.28318...).
func ConstFloatNear(info *types.Info, expr ast.Expr, want, tol float64) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return math.Abs(f-want) <= tol
}

// IsConversion reports whether call is a type conversion rather than a
// function call.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// IsBuiltinCall reports whether call invokes a language builtin
// (append, len, make, ...).
func IsBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, ok := info.Uses[fun].(*types.Builtin)
		return ok
	}
	return false
}

// MentionsObject reports whether any identifier under n resolves to obj.
func MentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// NamedType unwraps pointers and returns the *types.Named behind t, or nil.
func NamedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamed reports whether t (possibly behind a pointer) is the named type
// pkgName.typeName, matching by package name rather than full path so the
// check works identically on the real tree and on minimized test fixtures.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	named := NamedType(t)
	if named == nil || named.Obj() == nil {
		return false
	}
	if named.Obj().Name() != typeName {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == pkgName
}
