package astx

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math"
	"testing"
)

const src = `package p

import "math"

const TwoPi = 2 * math.Pi

type Named struct{ F float64 }

var sink float64

func top(x float64) float64 {
	lit := func(y float64) float64 { return y }
	sink = TwoPi
	sink = 0.0
	sink = float64(1)
	_ = len("s")
	_ = lit(x)
	var n *Named
	_ = n
	return x
}
`

func check(t *testing.T) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

func TestFuncs(t *testing.T) {
	_, f, _, _ := check(t)
	fns := Funcs([]*ast.File{f})
	if len(fns) != 2 {
		t.Fatalf("Funcs found %d functions, want decl+literal", len(fns))
	}
	if fns[0].Name != "top" || fns[1].Name != "" {
		t.Errorf("Funcs order/names = %q, %q; want outer decl before inner literal", fns[0].Name, fns[1].Name)
	}
}

// exprs collects interesting expressions from the checked file by shape.
func exprs(f *ast.File) (twoPi, zero ast.Expr, conv, builtin, call *ast.CallExpr) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			// Keep the last occurrence: a use site, not the const decl name.
			if e.Name == "TwoPi" {
				twoPi = e
			}
		case *ast.BasicLit:
			if e.Value == "0.0" {
				zero = e
			}
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "float64":
					conv = e
				case "len":
					builtin = e
				case "lit":
					call = e
				}
			}
		}
		return true
	})
	return
}

func TestConstClassification(t *testing.T) {
	_, f, _, info := check(t)
	twoPi, zero, conv, builtin, call := exprs(f)
	if twoPi == nil || zero == nil || conv == nil || builtin == nil || call == nil {
		t.Fatal("fixture expressions not found")
	}
	if !IsConst(info, twoPi) || !ConstFloatNear(info, twoPi, 2*math.Pi, 1e-9) {
		t.Error("TwoPi must classify as a 2π constant")
	}
	if ConstFloatNear(info, twoPi, math.Pi, 1e-9) {
		t.Error("TwoPi is not π")
	}
	if !IsConstZero(info, zero) || IsConstZero(info, twoPi) {
		t.Error("IsConstZero must accept 0.0 and reject TwoPi")
	}
	if IsConstTrue(info, twoPi) {
		t.Error("a float constant is not the constant true")
	}
	if !IsConversion(info, conv) || IsConversion(info, call) {
		t.Error("IsConversion must accept float64(1) and reject lit(x)")
	}
	if !IsBuiltinCall(info, builtin) || IsBuiltinCall(info, call) {
		t.Error("IsBuiltinCall must accept len and reject lit")
	}
}

func TestMentionsObject(t *testing.T) {
	_, f, pkg, info := check(t)
	var topBody *ast.BlockStmt
	var param types.Object
	for _, fn := range Funcs([]*ast.File{f}) {
		if fn.Name == "top" {
			topBody = fn.Body
			param = info.Defs[fn.Node.(*ast.FuncDecl).Type.Params.List[0].Names[0]]
		}
	}
	if !MentionsObject(info, topBody, param) {
		t.Error("top's body mentions its parameter x")
	}
	other := pkg.Scope().Lookup("sink")
	if MentionsObject(info, nil, other) || MentionsObject(info, topBody, nil) {
		t.Error("nil node or nil object can never match")
	}
}

func TestNamedType(t *testing.T) {
	_, _, pkg, _ := check(t)
	named := pkg.Scope().Lookup("Named").Type()
	ptr := types.NewPointer(named)
	if NamedType(ptr) == nil || NamedType(named) == nil {
		t.Error("NamedType must unwrap pointers and accept named types")
	}
	if NamedType(types.Typ[types.Float64]) != nil {
		t.Error("a basic type is not named")
	}
	if !IsNamed(ptr, "p", "Named") {
		t.Error("IsNamed must match through a pointer by package name and type name")
	}
	if IsNamed(ptr, "q", "Named") || IsNamed(ptr, "p", "Other") || IsNamed(types.Typ[types.Float64], "p", "Named") {
		t.Error("IsNamed must reject mismatched package, name, or unnamed types")
	}
}
