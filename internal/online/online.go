// Package online implements the online-arrival variant of sector packing:
// antenna orientations are fixed up front (from a uniform layout or from a
// predicted sample of the demand), then customers arrive one at a time in
// an adversary-chosen order and each must be irrevocably admitted to a
// covering antenna with spare capacity — or rejected — before the next
// arrives.
//
// This is the natural online extension of the paper's offline problem
// [reconstruction: the offline model implicitly assumes the demand is
// known; operators deploy before demand materializes]. Admission control
// under fixed orientations is online multiple knapsack, so no policy is
// constant-competitive in general; the experiment harness (E15) measures
// how far the simple policies actually fall behind the offline optimum on
// the workload families.
package online

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sectorpack/internal/cols"
	"sectorpack/internal/core"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// Policy decides the fate of one arriving customer.
type Policy interface {
	// Name identifies the policy in tables.
	Name() string
	// Admit returns the antenna index to serve the customer, or
	// model.Unassigned to reject. feasible lists the antennas that cover
	// the customer and still have room (possibly empty); remaining is the
	// spare capacity per antenna.
	Admit(c model.Customer, feasible []int, remaining []int64) int
}

// Run plays the arrival sequence through the policy and returns the final
// assignment. order lists customer indices in arrival order (nil means
// instance order); orientations fixes each antenna's start angle.
func Run(in *model.Instance, orientations []float64, order []int, p Policy) (*model.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if len(orientations) != in.M() {
		return nil, fmt.Errorf("online: %d orientations for %d antennas", len(orientations), in.M())
	}
	n := in.N()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("online: order covers %d of %d customers", len(order), n)
	}
	seen := make([]bool, n)
	as := model.NewAssignment(n, in.M())
	copy(as.Orientation, orientations)
	remaining := make([]int64, in.M())
	for j, a := range in.Antennas {
		remaining[j] = a.Capacity
	}
	// Orientations are fixed before the first arrival, so which antennas
	// cover a customer is a static predicate — compute it once instead of
	// re-testing all m antennas per arrival. The columnar view's radial
	// pre-filter narrows each antenna to its reachable radius run (when that
	// wins over a scan) before the exact Covers test; building candidate
	// lists antenna-by-antenna in ascending j keeps each list ascending,
	// exactly the order the per-arrival scan produced, so FirstFit/BestFit
	// tie-breaking is unchanged.
	view := cols.New(in)
	cand := make([][]int32, n)
	var elig []int32
	for j, a := range in.Antennas {
		elig = view.AppendEligible(a, elig[:0])
		for _, pos := range elig {
			i := view.ID[pos]
			if a.Covers(orientations[j], in.Customers[i]) {
				cand[i] = append(cand[i], int32(j))
			}
		}
	}
	// feasible is scratch reused across arrivals; only remaining-capacity
	// checks are left per arrival. Policies may not retain it past Admit.
	feasible := make([]int, 0, in.M())
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return nil, fmt.Errorf("online: order is not a permutation (index %d)", i)
		}
		seen[i] = true
		c := in.Customers[i]
		feasible = feasible[:0]
		for _, j := range cand[i] {
			if remaining[j] >= c.Demand {
				feasible = append(feasible, int(j))
			}
		}
		pick := p.Admit(c, feasible, remaining)
		if pick == model.Unassigned {
			continue
		}
		ok := false
		for _, j := range feasible {
			if j == pick {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("online: policy %s picked infeasible antenna %d for customer %d", p.Name(), pick, i)
		}
		as.Owner[i] = pick
		remaining[pick] -= c.Demand
	}
	return as, nil
}

// FirstFit admits every customer to the lowest-indexed feasible antenna.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Admit implements Policy.
func (FirstFit) Admit(_ model.Customer, feasible []int, _ []int64) int {
	if len(feasible) == 0 {
		return model.Unassigned
	}
	return feasible[0]
}

// BestFit admits to the feasible antenna with the least remaining capacity
// (tightest fit), preserving flexibility elsewhere.
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Admit implements Policy.
func (BestFit) Admit(c model.Customer, feasible []int, remaining []int64) int {
	best := model.Unassigned
	for _, j := range feasible {
		if best == model.Unassigned || remaining[j] < remaining[best] {
			best = j
		}
	}
	return best
}

// Threshold admits only customers whose profit density (profit/demand)
// meets a threshold, placed best-fit; the classical defense against
// low-value demand exhausting capacity early.
type Threshold struct {
	// MinDensity is the admission bar in profit per unit demand.
	MinDensity float64
}

// Name implements Policy.
func (t Threshold) Name() string { return fmt.Sprintf("threshold(%.2g)", t.MinDensity) }

// Admit implements Policy.
func (t Threshold) Admit(c model.Customer, feasible []int, remaining []int64) int {
	if c.Demand > 0 && float64(c.Profit)/float64(c.Demand) < t.MinDensity {
		return model.Unassigned
	}
	return BestFit{}.Admit(c, feasible, remaining)
}

// OrientUniform spreads the antennas' start angles evenly around the
// circle — the no-information baseline layout.
func OrientUniform(in *model.Instance) []float64 {
	m := in.M()
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		out[j] = geom.TwoPi * float64(j) / float64(m)
	}
	return out
}

// OrientFromSample orients antennas by running the offline greedy on a
// random sample of the customers (a demand forecast): the layout the
// operator would deploy given historical data. frac is the sample
// fraction in (0, 1]; the sample is drawn with the given seed.
func OrientFromSample(ctx context.Context, in *model.Instance, frac float64, seed int64) ([]float64, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("online: sample fraction %v outside (0, 1]", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(in.N())
	chosen := idx[:sampleSize(in.N(), frac)]
	sort.Ints(chosen)
	sample := &model.Instance{Variant: in.Variant, Name: in.Name + "-sample"}
	for _, i := range chosen {
		sample.Customers = append(sample.Customers, in.Customers[i])
	}
	sample.Antennas = append(sample.Antennas, in.Antennas...)
	sample.Normalize()
	sol, err := core.SolveGreedy(ctx, sample, core.Options{SkipBound: true})
	if err != nil {
		return nil, err
	}
	return sol.Assignment.Orientation, nil
}

// sampleSize is the number of customers a fraction frac of n selects,
// rounded to nearest (half away from zero) and clamped to [1, n].
// Truncation here systematically under-sampled: n=10, frac=0.3 must sample
// 3 customers, not whatever int(n*frac) happens to produce after the
// product lands just below an integer.
func sampleSize(n int, frac float64) int {
	k := int(math.Round(float64(n) * frac))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}
