package online

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func onlineInstance(rng *rand.Rand, n, m int) *model.Instance {
	return gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors,
		Seed: rng.Int63(), N: n, M: m,
	})
}

func TestRunFeasibilityAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	policies := []Policy{FirstFit{}, BestFit{}, Threshold{MinDensity: 0.5}}
	for trial := 0; trial < 20; trial++ {
		in := onlineInstance(rng, 10+rng.Intn(30), 1+rng.Intn(4))
		orientations := OrientUniform(in)
		order := rng.Perm(in.N())
		for _, p := range policies {
			as, err := Run(in, orientations, order, p)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if err := as.Check(in); err != nil {
				t.Fatalf("%s produced infeasible assignment: %v", p.Name(), err)
			}
		}
	}
}

func TestFirstFitAdmitsWhenPossible(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2},
			{Theta: 0.2, R: 1, Demand: 2},
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 4}},
	}
	in.Normalize()
	as, err := Run(in, []float64{0}, nil, FirstFit{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if as.ServedCount() != 2 {
		t.Fatalf("first-fit should admit both, served %d", as.ServedCount())
	}
}

func TestThresholdRejectsLowDensity(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 10, Profit: 1}, // density 0.1
			{Theta: 0.2, R: 1, Demand: 2, Profit: 8},  // density 4
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 10}},
	}
	in.Normalize()
	as, err := Run(in, []float64{0}, nil, Threshold{MinDensity: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if as.Owner[0] != model.Unassigned {
		t.Error("low-density customer should be rejected")
	}
	if as.Owner[1] == model.Unassigned {
		t.Error("high-density customer should be admitted")
	}
	// Without the threshold, the whale fills the antenna first.
	ff, err := Run(in, []float64{0}, nil, FirstFit{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ff.Profit(in) >= as.Profit(in) {
		t.Errorf("threshold should beat first-fit here: %d vs %d", as.Profit(in), ff.Profit(in))
	}
}

func TestBestFitPrefersTighter(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2},
		},
		Antennas: []model.Antenna{
			{Rho: 1, Capacity: 10},
			{Rho: 1, Capacity: 3},
		},
	}
	in.Normalize()
	as, err := Run(in, []float64{0, 0}, nil, BestFit{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if as.Owner[0] != 1 {
		t.Errorf("best-fit should pick the tighter antenna, got %d", as.Owner[0])
	}
}

func TestRunErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	in := onlineInstance(rng, 5, 2)
	if _, err := Run(in, []float64{0}, nil, FirstFit{}); err == nil {
		t.Error("orientation shape mismatch must error")
	}
	if _, err := Run(in, OrientUniform(in), []int{0, 0, 1, 2, 3}, FirstFit{}); err == nil {
		t.Error("non-permutation order must error")
	}
	if _, err := Run(in, OrientUniform(in), []int{0, 1}, FirstFit{}); err == nil {
		t.Error("short order must error")
	}
}

func TestOrientUniformSpacing(t *testing.T) {
	in := onlineInstance(rand.New(rand.NewSource(123)), 5, 4)
	got := OrientUniform(in)
	for j := 1; j < len(got); j++ {
		if d := geom.AngleDist(got[j-1], got[j]); d < geom.TwoPi/4-1e-9 || d > geom.TwoPi/4+1e-9 {
			t.Fatalf("uneven spacing: %v", got)
		}
	}
}

func TestOrientFromSample(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	in := onlineInstance(rng, 40, 3)
	or, err := OrientFromSample(context.Background(), in, 0.5, 7)
	if err != nil {
		t.Fatalf("OrientFromSample: %v", err)
	}
	if len(or) != in.M() {
		t.Fatalf("orientation count %d", len(or))
	}
	or2, err := OrientFromSample(context.Background(), in, 0.5, 7)
	if err != nil {
		t.Fatalf("OrientFromSample: %v", err)
	}
	for j := range or {
		if math.Float64bits(or[j]) != math.Float64bits(or2[j]) {
			t.Fatal("sampling must be deterministic in the seed")
		}
	}
	if _, err := OrientFromSample(context.Background(), in, 0, 1); err == nil {
		t.Error("zero fraction must error")
	}
	if _, err := OrientFromSample(context.Background(), in, 1.5, 1); err == nil {
		t.Error("fraction above 1 must error")
	}
}

// TestSampleOrientationHelps checks the prediction pipeline end to end:
// sample-informed orientations should (on hotspot workloads, on average)
// beat the uniform layout.
func TestSampleOrientationHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	winsSample, winsUniform := 0, 0
	for trial := 0; trial < 20; trial++ {
		in := gen.MustGenerate(gen.Config{
			Family: gen.Hotspot, Variant: model.Sectors,
			Seed: rng.Int63(), N: 50, M: 2,
		})
		order := rng.Perm(in.N())
		su, err := Run(in, OrientUniform(in), order, BestFit{})
		if err != nil {
			t.Fatal(err)
		}
		orient, err := OrientFromSample(context.Background(), in, 0.3, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Run(in, orient, order, BestFit{})
		if err != nil {
			t.Fatal(err)
		}
		if ss.Profit(in) > su.Profit(in) {
			winsSample++
		} else if su.Profit(in) > ss.Profit(in) {
			winsUniform++
		}
	}
	if winsSample <= winsUniform {
		t.Errorf("sample-informed layout should usually win on hotspots: %d vs %d", winsSample, winsUniform)
	}
}

// TestSampleSizeRounding pins the round-to-nearest contract over fractions
// whose float products land just below an integer — truncation used to
// under-sample these (10 × 0.29 ≈ 2.8999... must sample 3, not 2).
func TestSampleSizeRounding(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{10, 0.3, 3},
		{10, 0.29, 3}, // 2.9 rounds up; int() truncated to 2
		{10, 0.24, 2}, // 2.4 rounds down
		{10, 0.25, 3}, // half rounds away from zero
		{7, 0.5, 4},   // 3.5 rounds away from zero
		{9, 1.0 / 3.0, 3},
		{1000, 0.0149, 15}, // 14.9 rounds up
		{10, 0.04, 1},      // 0.4 rounds to 0, clamped to the 1 minimum
		{3, 1, 3},
		{1, 0.99, 1}, // never above n
	}
	for _, tc := range cases {
		if got := sampleSize(tc.n, tc.frac); got != tc.want {
			t.Errorf("sampleSize(%d, %v) = %d, want %d", tc.n, tc.frac, got, tc.want)
		}
	}
	// End to end: a 0.29 fraction of 10 customers must solve a 3-customer
	// sample, which a seed-stable run can only show indirectly — the call
	// succeeds and stays deterministic.
	in := onlineInstance(rand.New(rand.NewSource(127)), 10, 2)
	a, err := OrientFromSample(context.Background(), in, 0.29, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OrientFromSample(context.Background(), in, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			t.Fatalf("0.29 and 0.3 fractions of n=10 must pick the same 3-customer sample: %v vs %v", a, b)
		}
	}
}

// runNaive is the pre-optimization admission loop, kept as the reference:
// per arrival, scan every antenna and collect the feasible ones into a
// fresh slice. The production Run precomputes candidate lists through the
// columnar radial pre-filter; this differential test proves the two make
// bit-identical admit decisions.
func runNaive(in *model.Instance, orientations []float64, order []int, p Policy) (*model.Assignment, error) {
	n := in.N()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	as := model.NewAssignment(n, in.M())
	copy(as.Orientation, orientations)
	remaining := make([]int64, in.M())
	for j, a := range in.Antennas {
		remaining[j] = a.Capacity
	}
	for _, i := range order {
		c := in.Customers[i]
		var feasible []int
		for j, a := range in.Antennas {
			if remaining[j] >= c.Demand && a.Covers(orientations[j], c) {
				feasible = append(feasible, j)
			}
		}
		pick := p.Admit(c, feasible, remaining)
		if pick == model.Unassigned {
			continue
		}
		as.Owner[i] = pick
		remaining[pick] -= c.Demand
	}
	return as, nil
}

// TestRunMatchesNaiveReference: identical admit decisions on every trial,
// both on small instances (where the candidate builder takes the full-scan
// path) and on a large banded one (where the radial pre-filter path wins).
func TestRunMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(128))
	policies := []Policy{FirstFit{}, BestFit{}, Threshold{MinDensity: 0.5}}
	check := func(name string, in *model.Instance) {
		t.Helper()
		orientations := OrientUniform(in)
		order := rng.Perm(in.N())
		for _, p := range policies {
			got, err := Run(in, orientations, order, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p.Name(), err)
			}
			want, err := runNaive(in, orientations, order, p)
			if err != nil {
				t.Fatalf("%s/%s: naive: %v", name, p.Name(), err)
			}
			for i := range want.Owner {
				if got.Owner[i] != want.Owner[i] {
					t.Fatalf("%s/%s: customer %d admitted to %d, reference says %d",
						name, p.Name(), i, got.Owner[i], want.Owner[i])
				}
			}
		}
	}
	for trial := 0; trial < 15; trial++ {
		check("small", onlineInstance(rng, 10+rng.Intn(40), 1+rng.Intn(4)))
	}
	// Banded antennas make per-antenna eligibility ~n/Bands, selective
	// enough that AppendEligible's pre-filter path wins over the scan.
	check("banded", gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors,
		Seed: 77, N: 2000, M: 20, Bands: 20, Tightness: 3,
	}))
}

// TestOnlineNeverBeatsOffline sanity-checks against the offline greedy at
// the same orientations (which re-optimizes the assignment globally).
func TestOnlineNeverBeatsOfflineExact(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	for trial := 0; trial < 10; trial++ {
		in := onlineInstance(rng, 8, 2)
		sol, err := core.SolveGreedy(context.Background(), in, core.Options{SkipBound: true})
		if err != nil {
			t.Fatal(err)
		}
		as, err := Run(in, sol.Assignment.Orientation, rng.Perm(in.N()), BestFit{})
		if err != nil {
			t.Fatal(err)
		}
		// The offline optimum at ANY orientation dominates an online run
		// at the same orientations only in expectation, but the global
		// upper bound always holds:
		if float64(as.Profit(in)) > core.UpperBound(in)+1e-6 {
			t.Fatalf("online profit %d above certified bound", as.Profit(in))
		}
	}
}
