package online

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func onlineInstance(rng *rand.Rand, n, m int) *model.Instance {
	return gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors,
		Seed: rng.Int63(), N: n, M: m,
	})
}

func TestRunFeasibilityAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	policies := []Policy{FirstFit{}, BestFit{}, Threshold{MinDensity: 0.5}}
	for trial := 0; trial < 20; trial++ {
		in := onlineInstance(rng, 10+rng.Intn(30), 1+rng.Intn(4))
		orientations := OrientUniform(in)
		order := rng.Perm(in.N())
		for _, p := range policies {
			as, err := Run(in, orientations, order, p)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if err := as.Check(in); err != nil {
				t.Fatalf("%s produced infeasible assignment: %v", p.Name(), err)
			}
		}
	}
}

func TestFirstFitAdmitsWhenPossible(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2},
			{Theta: 0.2, R: 1, Demand: 2},
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 4}},
	}
	in.Normalize()
	as, err := Run(in, []float64{0}, nil, FirstFit{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if as.ServedCount() != 2 {
		t.Fatalf("first-fit should admit both, served %d", as.ServedCount())
	}
}

func TestThresholdRejectsLowDensity(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 10, Profit: 1}, // density 0.1
			{Theta: 0.2, R: 1, Demand: 2, Profit: 8},  // density 4
		},
		Antennas: []model.Antenna{{Rho: 1, Capacity: 10}},
	}
	in.Normalize()
	as, err := Run(in, []float64{0}, nil, Threshold{MinDensity: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if as.Owner[0] != model.Unassigned {
		t.Error("low-density customer should be rejected")
	}
	if as.Owner[1] == model.Unassigned {
		t.Error("high-density customer should be admitted")
	}
	// Without the threshold, the whale fills the antenna first.
	ff, err := Run(in, []float64{0}, nil, FirstFit{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ff.Profit(in) >= as.Profit(in) {
		t.Errorf("threshold should beat first-fit here: %d vs %d", as.Profit(in), ff.Profit(in))
	}
}

func TestBestFitPrefersTighter(t *testing.T) {
	in := &model.Instance{
		Variant: model.Angles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 2},
		},
		Antennas: []model.Antenna{
			{Rho: 1, Capacity: 10},
			{Rho: 1, Capacity: 3},
		},
	}
	in.Normalize()
	as, err := Run(in, []float64{0, 0}, nil, BestFit{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if as.Owner[0] != 1 {
		t.Errorf("best-fit should pick the tighter antenna, got %d", as.Owner[0])
	}
}

func TestRunErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	in := onlineInstance(rng, 5, 2)
	if _, err := Run(in, []float64{0}, nil, FirstFit{}); err == nil {
		t.Error("orientation shape mismatch must error")
	}
	if _, err := Run(in, OrientUniform(in), []int{0, 0, 1, 2, 3}, FirstFit{}); err == nil {
		t.Error("non-permutation order must error")
	}
	if _, err := Run(in, OrientUniform(in), []int{0, 1}, FirstFit{}); err == nil {
		t.Error("short order must error")
	}
}

func TestOrientUniformSpacing(t *testing.T) {
	in := onlineInstance(rand.New(rand.NewSource(123)), 5, 4)
	got := OrientUniform(in)
	for j := 1; j < len(got); j++ {
		if d := geom.AngleDist(got[j-1], got[j]); d < geom.TwoPi/4-1e-9 || d > geom.TwoPi/4+1e-9 {
			t.Fatalf("uneven spacing: %v", got)
		}
	}
}

func TestOrientFromSample(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	in := onlineInstance(rng, 40, 3)
	or, err := OrientFromSample(context.Background(), in, 0.5, 7)
	if err != nil {
		t.Fatalf("OrientFromSample: %v", err)
	}
	if len(or) != in.M() {
		t.Fatalf("orientation count %d", len(or))
	}
	or2, err := OrientFromSample(context.Background(), in, 0.5, 7)
	if err != nil {
		t.Fatalf("OrientFromSample: %v", err)
	}
	for j := range or {
		if or[j] != or2[j] {
			t.Fatal("sampling must be deterministic in the seed")
		}
	}
	if _, err := OrientFromSample(context.Background(), in, 0, 1); err == nil {
		t.Error("zero fraction must error")
	}
	if _, err := OrientFromSample(context.Background(), in, 1.5, 1); err == nil {
		t.Error("fraction above 1 must error")
	}
}

// TestSampleOrientationHelps checks the prediction pipeline end to end:
// sample-informed orientations should (on hotspot workloads, on average)
// beat the uniform layout.
func TestSampleOrientationHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	winsSample, winsUniform := 0, 0
	for trial := 0; trial < 20; trial++ {
		in := gen.MustGenerate(gen.Config{
			Family: gen.Hotspot, Variant: model.Sectors,
			Seed: rng.Int63(), N: 50, M: 2,
		})
		order := rng.Perm(in.N())
		su, err := Run(in, OrientUniform(in), order, BestFit{})
		if err != nil {
			t.Fatal(err)
		}
		orient, err := OrientFromSample(context.Background(), in, 0.3, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Run(in, orient, order, BestFit{})
		if err != nil {
			t.Fatal(err)
		}
		if ss.Profit(in) > su.Profit(in) {
			winsSample++
		} else if su.Profit(in) > ss.Profit(in) {
			winsUniform++
		}
	}
	if winsSample <= winsUniform {
		t.Errorf("sample-informed layout should usually win on hotspots: %d vs %d", winsSample, winsUniform)
	}
}

// TestOnlineNeverBeatsOffline sanity-checks against the offline greedy at
// the same orientations (which re-optimizes the assignment globally).
func TestOnlineNeverBeatsOfflineExact(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	for trial := 0; trial < 10; trial++ {
		in := onlineInstance(rng, 8, 2)
		sol, err := core.SolveGreedy(context.Background(), in, core.Options{SkipBound: true})
		if err != nil {
			t.Fatal(err)
		}
		as, err := Run(in, sol.Assignment.Orientation, rng.Perm(in.N()), BestFit{})
		if err != nil {
			t.Fatal(err)
		}
		// The offline optimum at ANY orientation dominates an online run
		// at the same orientations only in expectation, but the global
		// upper bound always holds:
		if float64(as.Profit(in)) > core.UpperBound(in)+1e-6 {
			t.Fatalf("online profit %d above certified bound", as.Profit(in))
		}
	}
}
