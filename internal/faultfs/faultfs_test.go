package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(OS, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "hello" {
		t.Fatalf("content %q, want %q", got, "hello")
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("leftover files: %v", names)
	}
}

// TestWriteFileAtomicSyncsParentDirectory pins the durability discipline
// through the injection hooks: the helper must fsync the staged file before
// the rename and fsync the parent directory after it — without the
// directory fsync the rename is not durable across power loss.
func TestWriteFileAtomicSyncsParentDirectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	inj := NewInjector(OS)
	if err := WriteFileAtomic(inj, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for _, r := range inj.Log() {
		ops = append(ops, r.Op)
	}
	want := []Op{OpCreateTemp, OpWrite, OpSync, OpClose, OpRename, OpSyncDir}
	if len(ops) != len(want) {
		t.Fatalf("op sequence %v, want %v", ops, want)
	}
	for k := range want {
		if ops[k] != want[k] {
			t.Fatalf("op %d = %s, want %s (full: %s)", k+1, ops[k], want[k], inj)
		}
	}
	// The directory fsync must be on the destination's parent, after the
	// rename that installed it.
	last := inj.Log()[len(ops)-1]
	if last.Path != dir {
		t.Fatalf("final SyncDir on %q, want parent %q", last.Path, dir)
	}
}

// TestWriteFileAtomicFaults checks that a failure at every individual
// operation leaves the destination untouched (old content preserved) and no
// temp litter behind — except a failed final SyncDir, after which the new
// content is already installed and only durability reporting is at stake.
func TestWriteFileAtomicFaults(t *testing.T) {
	for _, op := range []Op{OpCreateTemp, OpWrite, OpSync, OpClose, OpRename, OpSyncDir} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			inj := NewInjector(OS, Fault{Op: op, Mode: Fail})
			err := WriteFileAtomic(inj, path, func(w io.Writer) error {
				_, werr := io.WriteString(w, "new-content")
				return werr
			})
			if err == nil {
				t.Fatalf("fault at %s: want error", op)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("fault at %s: error %v, want ErrInjected", op, err)
			}
			got := readFile(t, path)
			switch op {
			case OpSyncDir:
				// The rename already happened; the caller is told the write
				// may not be durable, but the file is complete, not torn.
				if got != "new-content" {
					t.Fatalf("after failed SyncDir: content %q", got)
				}
			default:
				if got != "old" {
					t.Fatalf("fault at %s: destination replaced with %q, want old content", op, got)
				}
			}
			for _, name := range listDir(t, dir) {
				if strings.Contains(name, ".tmp") {
					t.Fatalf("fault at %s: temp litter %q", op, name)
				}
			}
		})
	}
}

// TestWriteFileAtomicCrashMatrix kills the writer at every operation and
// checks the atomicity invariant on the surviving directory state: the
// destination holds the old content or the complete new content, never a
// torn mix. (Temp litter is allowed after a crash — a real kill cannot
// clean up either — but the destination must be intact.)
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	// Count pass.
	countDir := t.TempDir()
	counter := NewInjector(OS)
	if err := WriteFileAtomic(counter, filepath.Join(countDir, "out.json"), func(w io.Writer) error {
		_, err := io.WriteString(w, "new-content")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 5 {
		t.Fatalf("suspiciously few ops: %d", total)
	}
	for k := int64(1); k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "out.json")
		if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		inj := NewInjector(OS, Fault{N: k, Mode: Crash})
		err := WriteFileAtomic(inj, path, func(w io.Writer) error {
			_, werr := io.WriteString(w, "new-content")
			return werr
		})
		if !inj.Crashed() {
			t.Fatalf("crash at op %d did not fire (ops=%d)", k, inj.Ops())
		}
		got := readFile(t, path)
		if got != "old" && got != "new-content" {
			t.Fatalf("crash at op %d: torn destination %q (ops: %s)", k, got, inj)
		}
		// Crash on the final SyncDir (or later bookkeeping) may still
		// succeed from the caller's view only if no error was returned;
		// WriteFileAtomic always returns the crash error.
		if err == nil {
			t.Fatalf("crash at op %d: writer reported success", k)
		}
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	inj := NewInjector(OS, Fault{Op: OpWrite, Mode: ShortWrite})
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error %v", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	// The injector is not crashed: later operations proceed.
	if inj.Crashed() {
		t.Fatal("ShortWrite must not crash the FS")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "01234" {
		t.Fatalf("on-disk prefix %q, want %q", got, "01234")
	}
}

func TestInjectorCrashKillsEverything(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Fault{Op: OpCreate, Mode: Crash})
	if _, err := inj.Create(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create error %v, want ErrCrashed", err)
	}
	if _, err := inj.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create error %v, want ErrCrashed", err)
	}
	if err := inj.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename error %v, want ErrCrashed", err)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Fatalf("crashed FS still created files: %v", names)
	}
}

func TestInjectorNthMatchAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Fault{Op: OpCreate, Path: "target", N: 2, Mode: Fail})
	if _, err := inj.Create(filepath.Join(dir, "target-1")); err != nil {
		t.Fatalf("first matching op must pass: %v", err)
	}
	if _, err := inj.Create(filepath.Join(dir, "other")); err != nil {
		t.Fatalf("non-matching op must pass: %v", err)
	}
	if _, err := inj.Create(filepath.Join(dir, "target-2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second matching op error %v, want ErrInjected", err)
	}
}

func TestReadOnlyHandlesAreNotFaultPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS, Fault{Mode: Fail}) // would fire on the first mutating op
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil || string(b) != "data" {
		t.Fatalf("read through injector: %q, %v", b, err)
	}
	if inj.Ops() != 0 {
		t.Fatalf("read-only ops were counted: %d (%s)", inj.Ops(), inj)
	}
}
