package faultfs

import (
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"
)

// Op names one FS operation class for fault matching and the operation log.
type Op string

const (
	OpAny        Op = ""            // matches every mutating operation
	OpCreate     Op = "create"      // Create
	OpCreateTemp Op = "create-temp" // CreateTemp
	OpOpenFile   Op = "open-file"   // OpenFile
	OpWrite      Op = "write"       // File.Write on a mutable handle
	OpSync       Op = "sync"        // File.Sync
	OpClose      Op = "close"       // File.Close on a mutable handle
	OpTruncate   Op = "truncate"    // File.Truncate
	OpRename     Op = "rename"      // Rename
	OpRemove     Op = "remove"      // Remove
	OpSyncDir    Op = "sync-dir"    // SyncDir
	OpMkdirAll   Op = "mkdir-all"   // MkdirAll
)

// Mode selects what an injected fault does at its operation.
type Mode int

const (
	// Fail returns an error without performing the operation. The process
	// keeps running (the caller sees an IO error and must handle it).
	Fail Mode = iota
	// ShortWrite performs half the write, then returns an error. Only
	// meaningful on OpWrite; other operations treat it as Fail.
	ShortWrite
	// Crash simulates kill -9 at this operation: a write lands a torn
	// prefix, any other operation has no effect, and every subsequent
	// operation on this Injector returns ErrCrashed. The on-disk state is
	// exactly what a real kill would leave behind.
	Crash
)

// Fault is one scripted fault: it fires on the N-th mutating operation
// matching (Op, Path).
type Fault struct {
	// Op restricts the fault to one operation class; OpAny matches all.
	Op Op
	// Path, when non-empty, restricts the fault to operations whose path
	// contains it as a substring.
	Path string
	// N fires the fault on the N-th matching operation (1-based). Zero
	// means 1.
	N int64
	// Mode is what happens when the fault fires.
	Mode Mode
	// Err overrides the returned error; nil means ErrInjected (Fail and
	// ShortWrite) or ErrCrashed (Crash).
	Err error
}

// OpRecord is one logged mutating operation.
type OpRecord struct {
	Op   Op
	Path string
}

// Injector wraps an FS and applies scripted faults to mutating operations.
// It also counts and logs every mutating operation, which is how the
// crash-consistency matrix enumerates its kill points and how fsync
// discipline is asserted. Safe for concurrent use.
type Injector struct {
	inner FS

	mu      sync.Mutex
	faults  []Fault
	matched []int64 // per-fault count of matching ops seen
	ops     int64
	log     []OpRecord
	crashed bool
}

// NewInjector wraps inner with the given scripted faults.
func NewInjector(inner FS, faults ...Fault) *Injector {
	return &Injector{inner: inner, faults: faults, matched: make([]int64, len(faults))}
}

// Ops returns the number of mutating operations attempted so far
// (including the one that crashed, excluding post-crash attempts).
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Log returns a copy of the mutating-operation log.
func (i *Injector) Log() []OpRecord {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]OpRecord(nil), i.log...)
}

// Crashed reports whether a Crash fault has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// String renders the op log compactly for test failure messages.
func (i *Injector) String() string {
	var b strings.Builder
	for k, r := range i.Log() {
		if k > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%s(%s)", k+1, r.Op, r.Path)
	}
	return b.String()
}

// check records one mutating operation and decides its fate: nil (proceed),
// or a non-nil error with mode describing the partial effect to apply.
func (i *Injector) check(op Op, path string) (mode Mode, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return Fail, ErrCrashed
	}
	i.ops++
	i.log = append(i.log, OpRecord{Op: op, Path: path})
	for f := range i.faults {
		ft := &i.faults[f]
		if ft.Op != OpAny && ft.Op != op {
			continue
		}
		if ft.Path != "" && !strings.Contains(path, ft.Path) {
			continue
		}
		i.matched[f]++
		n := ft.N
		if n <= 0 {
			n = 1
		}
		if i.matched[f] != n {
			continue
		}
		err := ft.Err
		if err == nil {
			if ft.Mode == Crash {
				err = ErrCrashed
			} else {
				err = ErrInjected
			}
		}
		if ft.Mode == Crash {
			i.crashed = true
		}
		return ft.Mode, fmt.Errorf("%s %s: %w", op, path, err)
	}
	return Fail, nil
}

func (i *Injector) Create(name string) (File, error) {
	if _, err := i.check(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, mutable: true}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := i.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, mutable: true}, nil
}

// writeFlags are the open flags that make a handle mutable (its Write,
// Sync, Close, Truncate become injection points).
const writeFlags = os.O_WRONLY | os.O_RDWR | os.O_CREATE | os.O_APPEND | os.O_TRUNC

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	mutable := flag&writeFlags != 0
	if mutable {
		if _, err := i.check(OpOpenFile, name); err != nil {
			return nil, err
		}
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, mutable: mutable}, nil
}

func (i *Injector) Open(name string) (File, error) {
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if _, err := i.check(OpRename, newpath); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if _, err := i.check(OpRemove, name); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

func (i *Injector) SyncDir(dir string) error {
	if _, err := i.check(OpSyncDir, dir); err != nil {
		return err
	}
	return i.inner.SyncDir(dir)
}

func (i *Injector) MkdirAll(dir string, perm fs.FileMode) error {
	if _, err := i.check(OpMkdirAll, dir); err != nil {
		return err
	}
	return i.inner.MkdirAll(dir, perm)
}

func (i *Injector) ReadDir(dir string) ([]fs.DirEntry, error) { return i.inner.ReadDir(dir) }

func (i *Injector) Stat(name string) (fs.FileInfo, error) { return i.inner.Stat(name) }

// injFile routes a file handle's mutating calls through the injector.
// Read-only handles pass through untouched (reads are not fault points).
type injFile struct {
	inj     *Injector
	f       File
	mutable bool
}

func (f *injFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *injFile) Write(p []byte) (int, error) {
	if !f.mutable {
		return f.f.Write(p)
	}
	mode, err := f.inj.check(OpWrite, f.f.Name())
	if err != nil {
		if mode == ShortWrite || mode == Crash {
			// A torn write: a prefix of the buffer reaches the file before
			// the failure, exactly what an interrupted write(2) leaves.
			n, werr := f.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if f.mutable {
		if _, err := f.inj.check(OpSync, f.f.Name()); err != nil {
			return err
		}
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if f.mutable {
		if _, err := f.inj.check(OpTruncate, f.f.Name()); err != nil {
			return err
		}
	}
	return f.f.Truncate(size)
}

func (f *injFile) Close() error {
	if f.mutable {
		if _, err := f.inj.check(OpClose, f.f.Name()); err != nil {
			f.f.Close() // release the real handle; the simulated process is gone
			return err
		}
	}
	return f.f.Close()
}

func (f *injFile) Name() string { return f.f.Name() }
