// Package faultfs is the filesystem seam under every persistence path in
// the repository: the atomic-write helper (model.SaveFile and friends), the
// solve-cache snapshot (internal/cache), and the session delta journal
// (internal/session) all perform their file operations through the FS
// interface instead of calling package os directly. In production the seam
// is invisible — OS is a zero-cost passthrough — but tests swap in an
// Injector that fails, tears, or "crashes" any scripted operation, which is
// what drives the crash-consistency matrix: run a workload once to count
// its filesystem operations, then re-run it once per operation with a
// simulated kill at exactly that point and assert the recovery invariants
// on whatever the directory was left holding.
//
// The sectorlint provenance analyzer enforces the seam: raw os.Create /
// os.OpenFile / os.WriteFile / os.Rename calls inside internal/cache and
// internal/session are findings, so no persistence write can bypass the
// injection hooks (or the durability discipline they pin down).
//
// What the injector can and cannot simulate: torn writes (a prefix of the
// buffer reaches the file), failed syncs/renames/creates, and a process
// kill at any operation boundary are all covered. Loss of page-cache data
// that was written but never fsynced is NOT simulated — faultfs writes
// through the real filesystem — so the fsync *discipline* (file sync before
// rename, directory sync after rename, journal sync cadence) is pinned by
// asserting on the recorded operation log instead.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the persistence paths use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size; the journal recovery path uses it
	// to drop a torn tail.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface persistence code is written against. Every
// mutating method is an injection point; read-only operations pass through.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// semantics); the atomic-write helper stages content in one.
	CreateTemp(dir, pattern string) (File, error)
	// OpenFile is the generalized open; the journal uses it for append and
	// for read-write recovery opens.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making preceding renames and
	// creates in it durable across power loss.
	SyncDir(dir string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// ReadDir lists dir, sorted by filename.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the production FS: direct passthrough to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// fsync on a directory commits its entries (the rename just performed)
	// to stable storage; without it a power loss can roll the rename back
	// even though the file's own data was synced.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// WriteFileAtomic writes a file at path through fsys with full crash
// atomicity and durability: the content is staged in a temp file in path's
// directory, fsynced, closed, renamed over the destination, and the parent
// directory is fsynced so the rename itself survives power loss. Any
// failure removes the temp file; the destination either keeps its previous
// content or holds the complete new content, never a torn mix.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// A rename is only durable once the directory entry is on disk; fsync
	// the parent so a post-rename power loss cannot resurrect the old file.
	return fsys.SyncDir(dir)
}

// ErrInjected is the error injected faults return (wrapped per-operation).
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a simulated crash: the
// "process" is dead, so no further filesystem effect happens.
var ErrCrashed = errors.New("faultfs: simulated crash")
