// Package cols provides the columnar (struct-of-arrays) read-only view of
// a problem instance that the angular hot path runs on.
//
// A View lays the customer fields out as parallel columns sorted by angle
// once per instance, so every per-antenna sweep gathers its in-range subset
// with a sequential pass over flat arrays instead of re-sorting and
// pointer-chasing []model.Customer structs per antenna. On top of the
// angular order it carries a radius-sorted permutation — the spatial radial
// pre-filter: an antenna's eligible customers occupy one contiguous run of
// that index (eligibility is a closed radius interval, model.RadialBounds),
// so selective antennas locate their candidates with two binary searches
// plus an O(k log k) position sort instead of scanning all n customers.
//
// A View is immutable after New and safe for concurrent readers; the
// parallel sweep builders in internal/angular share one View across
// GOMAXPROCS workers.
package cols

import (
	"sort"

	"sectorpack/internal/model"
)

// View is the columnar instance core. Position p (0 ≤ p < Len) describes
// the p-th customer in ascending-angle order; ID[p] maps the position back
// to the customer's index in Instance.Customers. Angle ties keep ascending
// customer-index order (the sort is stable over the index-ordered input),
// so the layout is a deterministic function of the instance.
type View struct {
	Theta  []float64 // ascending angles
	R      []float64 // radius per position
	Demand []int64   // demand per position
	Profit []int64   // profit per position
	ID     []int32   // customer index per position

	// Radial pre-filter index: byR lists positions in ascending-radius
	// order (ties by position), sortedR the radii in that order for
	// binary searching.
	byR     []int32
	sortedR []float64
}

// New builds the view: one O(n log n) angular sort and one O(n log n)
// radial sort per instance, amortized over every antenna's sweep.
func New(in *model.Instance) *View {
	n := len(in.Customers)
	v := &View{
		Theta:   make([]float64, n),
		R:       make([]float64, n),
		Demand:  make([]int64, n),
		Profit:  make([]int64, n),
		ID:      make([]int32, n),
		byR:     make([]int32, n),
		sortedR: make([]float64, n),
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return in.Customers[perm[x]].Theta < in.Customers[perm[y]].Theta
	})
	for p, i := range perm {
		c := &in.Customers[i]
		v.Theta[p] = c.Theta
		v.R[p] = c.R
		v.Demand[p] = c.Demand
		v.Profit[p] = c.Profit
		v.ID[p] = i
	}
	for p := range v.byR {
		v.byR[p] = int32(p)
	}
	sort.SliceStable(v.byR, func(x, y int) bool {
		return v.R[v.byR[x]] < v.R[v.byR[y]]
	})
	for k, p := range v.byR {
		v.sortedR[k] = v.R[p]
	}
	return v
}

// Len returns the number of customers in the view.
func (v *View) Len() int { return len(v.Theta) }

// RadialRun returns the half-open run [lo, hi) of the radius-sorted index
// holding exactly the customers the antenna can reach. Exposed for the
// boundary tests and for callers that only need the eligible count.
func (v *View) RadialRun(a model.Antenna) (lo, hi int) {
	loR, hiR := a.RadialBounds()
	n := len(v.sortedR)
	lo = sort.Search(n, func(i int) bool { return v.sortedR[i] >= loR })
	hi = sort.Search(n, func(i int) bool { return v.sortedR[i] > hiR })
	return lo, hi
}

// AppendEligible appends to out the positions (ascending) of every customer
// the antenna can radially reach, and returns the extended slice. Two paths
// produce the identical set — eligibility is the pure radius predicate
// model.Antenna.InRange, which both express through RadialBounds:
//
//   - pre-filter: when the eligible count k is small relative to n, the
//     positions are read off the radius-sorted run and sorted back into
//     angular order, O(log n + k log k);
//   - scan: otherwise a single sequential pass over the radius column,
//     O(n) with no sort (positions come out already ordered).
//
// The path choice therefore never affects results, only cost.
func (v *View) AppendEligible(a model.Antenna, out []int32) []int32 {
	n := len(v.R)
	if n == 0 {
		return out
	}
	rlo, rhi := v.RadialRun(a)
	k := rhi - rlo
	if k == 0 {
		return out
	}
	if prefilterWins(k, n) {
		base := len(out)
		out = append(out, v.byR[rlo:rhi]...)
		seg := out[base:]
		sort.Slice(seg, func(x, y int) bool { return seg[x] < seg[y] })
		return out
	}
	loR, hiR := a.RadialBounds()
	for p := 0; p < n; p++ {
		if r := v.R[p]; loR <= r && r <= hiR {
			out = append(out, int32(p))
		}
	}
	return out
}

// prefilterWins decides whether the binary-search path (k log₂ k work) is
// cheaper than the full scan (n work), with a bias toward the scan near the
// break-even point since its sequential pass is friendlier to the cache.
func prefilterWins(k, n int) bool {
	bits := 0
	for v := k; v > 0; v >>= 1 {
		bits++
	}
	return k*bits*2 < n
}
