// Package cols provides the columnar (struct-of-arrays) read-only view of
// a problem instance that the angular hot path runs on.
//
// A View lays the customer fields out as parallel columns sorted by angle
// once per instance, so every per-antenna sweep gathers its in-range subset
// with a sequential pass over flat arrays instead of re-sorting and
// pointer-chasing []model.Customer structs per antenna. On top of the
// angular order it carries a radius-sorted permutation — the spatial radial
// pre-filter: an antenna's eligible customers occupy one contiguous run of
// that index (eligibility is a closed radius interval, model.RadialBounds),
// so selective antennas locate their candidates with two binary searches
// plus an O(k log k) position sort instead of scanning all n customers.
//
// A View is immutable after New and safe for concurrent readers; the
// parallel sweep builders in internal/angular share one View across
// GOMAXPROCS workers.
package cols

import (
	"sort"

	"sectorpack/internal/model"
)

// View is the columnar instance core. Position p (0 ≤ p < Len) describes
// the p-th customer in ascending-angle order; ID[p] maps the position back
// to the customer's index in Instance.Customers. Angle ties keep ascending
// customer-index order (the sort is stable over the index-ordered input),
// so the layout is a deterministic function of the instance.
type View struct {
	Theta  []float64 // ascending angles
	R      []float64 // radius per position
	Demand []int64   // demand per position
	Profit []int64   // profit per position
	ID     []int32   // customer index per position

	// Radial pre-filter index: byR lists positions in ascending-radius
	// order (ties by position), sortedR the radii in that order for
	// binary searching.
	byR     []int32
	sortedR []float64
}

// New builds the view: one O(n log n) angular sort and one O(n log n)
// radial sort per instance, amortized over every antenna's sweep.
func New(in *model.Instance) *View {
	n := len(in.Customers)
	v := &View{
		Theta:   make([]float64, n),
		R:       make([]float64, n),
		Demand:  make([]int64, n),
		Profit:  make([]int64, n),
		ID:      make([]int32, n),
		byR:     make([]int32, n),
		sortedR: make([]float64, n),
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return in.Customers[perm[x]].Theta < in.Customers[perm[y]].Theta
	})
	for p, i := range perm {
		c := &in.Customers[i]
		v.Theta[p] = c.Theta
		v.R[p] = c.R
		v.Demand[p] = c.Demand
		v.Profit[p] = c.Profit
		v.ID[p] = i
	}
	for p := range v.byR {
		v.byR[p] = int32(p)
	}
	sort.SliceStable(v.byR, func(x, y int) bool {
		return v.R[v.byR[x]] < v.R[v.byR[y]]
	})
	for k, p := range v.byR {
		v.sortedR[k] = v.R[p]
	}
	return v
}

// Len returns the number of customers in the view.
func (v *View) Len() int { return len(v.Theta) }

// Rebase builds the view of next — the instance produced by applying a
// delta to old's instance — in O(n + k log k) for k churned customers,
// reusing old's two sort orders instead of re-sorting all n customers.
// removed lists the pre-delta ids the delta removed (any order), added how
// many customers it appended. The result is identical to New(next); a
// differential test enforces this bit for bit.
//
// The construction leans on model.ApplyDelta's layout contract:
//
//   - survivors keep their relative order and are renumbered down by the
//     count of removed ids below them, so filtering old's angular order and
//     remapping ids yields the survivors already sorted by (theta, new id);
//   - added customers occupy ids nSurv..n-1, above every survivor id, so
//     sorting just the k additions and merging (survivor first on theta
//     ties) reproduces New's stable (theta, id) order;
//   - the radial order is rebuilt the same way: survivors filtered from
//     old's byR stay sorted by (radius, position) because the merge
//     preserves their relative positions, and the k additions are sorted
//     and merged in.
//
// Every column value is gathered from next, so demand/profit re-pricing
// needs no special handling. Old is not modified.
func Rebase(old *View, next *model.Instance, removed []int, added int) *View {
	n := len(next.Customers)
	nSurv := n - added
	oldN := old.Len()

	// shiftOf[id] counts removed ids below id: survivor oldID → oldID−shift.
	gone := make([]bool, oldN)
	for _, id := range removed {
		gone[id] = true
	}
	shiftOf := make([]int32, oldN)
	cum := int32(0)
	for id := 0; id < oldN; id++ {
		shiftOf[id] = cum
		if gone[id] {
			cum++
		}
	}

	v := &View{
		Theta:   make([]float64, n),
		R:       make([]float64, n),
		Demand:  make([]int64, n),
		Profit:  make([]int64, n),
		ID:      make([]int32, n),
		byR:     make([]int32, n),
		sortedR: make([]float64, n),
	}

	// Angular order: survivors (filtered from old, ids remapped) merged
	// with the sorted additions; on theta ties the survivor goes first,
	// which is (theta, id) order since every added id exceeds every
	// survivor id.
	survIDs := make([]int32, 0, nSurv)
	for _, id := range old.ID {
		if gone[id] {
			continue
		}
		survIDs = append(survIDs, id-shiftOf[id])
	}
	addIDs := make([]int32, added)
	for i := range addIDs {
		addIDs[i] = int32(nSurv + i)
	}
	sort.SliceStable(addIDs, func(x, y int) bool {
		return next.Customers[addIDs[x]].Theta < next.Customers[addIDs[y]].Theta
	})
	i, j := 0, 0
	for p := 0; p < n; p++ {
		switch {
		case i == len(survIDs):
			v.ID[p] = addIDs[j]
			j++
		case j == len(addIDs) || next.Customers[survIDs[i]].Theta <= next.Customers[addIDs[j]].Theta:
			v.ID[p] = survIDs[i]
			i++
		default:
			v.ID[p] = addIDs[j]
			j++
		}
	}
	pos := make([]int32, n) // inverse of v.ID: new id → position
	for p, id := range v.ID {
		c := &next.Customers[id]
		v.Theta[p] = c.Theta
		v.R[p] = c.R
		v.Demand[p] = c.Demand
		v.Profit[p] = c.Profit
		pos[id] = int32(p)
	}

	// Radial order: same filter-and-merge on (radius, position). Survivor
	// radii are untouched by any delta, and the merge above preserves
	// survivors' relative positions, so mapping old.byR through pos keeps
	// it sorted.
	survR := make([]int32, 0, nSurv)
	for _, op := range old.byR {
		id := old.ID[op]
		if gone[id] {
			continue
		}
		survR = append(survR, pos[id-shiftOf[id]])
	}
	addR := make([]int32, added)
	for t := range addR {
		addR[t] = pos[nSurv+t]
	}
	sort.Slice(addR, func(x, y int) bool {
		rx, ry := v.R[addR[x]], v.R[addR[y]]
		if rx < ry {
			return true
		}
		if ry < rx {
			return false
		}
		return addR[x] < addR[y]
	})
	i, j = 0, 0
	for p := 0; p < n; p++ {
		switch {
		case i == len(survR):
			v.byR[p] = addR[j]
			j++
		case j == len(addR) || radposLess(v.R[survR[i]], survR[i], v.R[addR[j]], addR[j]):
			v.byR[p] = survR[i]
			i++
		default:
			v.byR[p] = addR[j]
			j++
		}
	}
	for p, q := range v.byR {
		v.sortedR[p] = v.R[q]
	}
	return v
}

// radposLess is the (radius, position) lexicographic order of the byR
// index, written with < only: equal radii fall through both comparisons to
// the position tie-break, so no exact float equality is needed.
func radposLess(ra float64, pa int32, rb float64, pb int32) bool {
	if ra < rb {
		return true
	}
	if rb < ra {
		return false
	}
	return pa < pb
}

// RadialRun returns the half-open run [lo, hi) of the radius-sorted index
// holding exactly the customers the antenna can reach. Exposed for the
// boundary tests and for callers that only need the eligible count.
func (v *View) RadialRun(a model.Antenna) (lo, hi int) {
	loR, hiR := a.RadialBounds()
	n := len(v.sortedR)
	lo = sort.Search(n, func(i int) bool { return v.sortedR[i] >= loR })
	hi = sort.Search(n, func(i int) bool { return v.sortedR[i] > hiR })
	return lo, hi
}

// AppendEligible appends to out the positions (ascending) of every customer
// the antenna can radially reach, and returns the extended slice. Two paths
// produce the identical set — eligibility is the pure radius predicate
// model.Antenna.InRange, which both express through RadialBounds:
//
//   - pre-filter: when the eligible count k is small relative to n, the
//     positions are read off the radius-sorted run and sorted back into
//     angular order, O(log n + k log k);
//   - scan: otherwise a single sequential pass over the radius column,
//     O(n) with no sort (positions come out already ordered).
//
// The path choice therefore never affects results, only cost.
func (v *View) AppendEligible(a model.Antenna, out []int32) []int32 {
	n := len(v.R)
	if n == 0 {
		return out
	}
	rlo, rhi := v.RadialRun(a)
	k := rhi - rlo
	if k == 0 {
		return out
	}
	if prefilterWins(k, n) {
		base := len(out)
		out = append(out, v.byR[rlo:rhi]...)
		seg := out[base:]
		sort.Slice(seg, func(x, y int) bool { return seg[x] < seg[y] })
		return out
	}
	loR, hiR := a.RadialBounds()
	for p := 0; p < n; p++ {
		if r := v.R[p]; loR <= r && r <= hiR {
			out = append(out, int32(p))
		}
	}
	return out
}

// InRadialRange reports whether radius r lies in the antenna's closed
// radial eligibility interval — the per-customer form of the pre-filter
// predicate RadialRun binary-searches. For any customer c with a non-NaN
// radius, InRadialRange(a, c.R) == a.InRange(c) (RadialBounds' documented
// contract). The delta-session invalidation logic and the online admission
// path use this as the single source of truth for "can this antenna reach
// this radius".
func InRadialRange(a model.Antenna, r float64) bool {
	lo, hi := a.RadialBounds()
	return lo <= r && r <= hi
}

// TouchesRadially reports whether any of the radii (which must be sorted
// ascending) falls inside the antenna's radial eligibility interval. This
// is the pre-filter applied to a delta's touched radii instead of an
// instance's customers: a warm per-antenna sweep survives a delta iff
// TouchesRadially(antenna, delta radii) is false, because sweep membership
// is exactly the radial predicate above.
func TouchesRadially(a model.Antenna, sortedR []float64) bool {
	lo, hi := a.RadialBounds()
	i := sort.SearchFloat64s(sortedR, lo)
	return i < len(sortedR) && sortedR[i] <= hi
}

// prefilterWins decides whether the binary-search path (k log₂ k work) is
// cheaper than the full scan (n work), with a bias toward the scan near the
// break-even point since its sequential pass is friendlier to the cache.
func prefilterWins(k, n int) bool {
	bits := 0
	for v := k; v > 0; v >>= 1 {
		bits++
	}
	return k*bits*2 < n
}
