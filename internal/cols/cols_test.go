package cols

import (
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// bruteEligible is the reference the pre-filter must match exactly: the
// naive scan applying model.Antenna.InRange per customer, in view position
// order.
func bruteEligible(v *View, in *model.Instance, a model.Antenna) []int32 {
	var out []int32
	for p := 0; p < v.Len(); p++ {
		if a.InRange(in.Customers[v.ID[p]]) {
			out = append(out, int32(p))
		}
	}
	return out
}

func assertEligibleMatches(t *testing.T, in *model.Instance, a model.Antenna, label string) {
	t.Helper()
	v := New(in)
	got := v.AppendEligible(a, nil)
	want := bruteEligible(v, in, a)
	if len(got) != len(want) {
		t.Fatalf("%s: eligible count %d, brute force %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: position %d: got %d want %d", label, i, got[i], want[i])
		}
	}
}

// instanceWithRadii builds a validated instance whose customers sit at the
// given radii (angles spread to keep them distinct).
func instanceWithRadii(radii []float64) *model.Instance {
	in := &model.Instance{Variant: model.Sectors}
	for i, r := range radii {
		in.Customers = append(in.Customers, model.Customer{
			ID:     i,
			Theta:  float64(i) * 0.1,
			R:      r,
			Demand: 1,
		})
	}
	in.Antennas = []model.Antenna{{Rho: 1, Range: 4, Capacity: 100}}
	return in.Normalize()
}

// TestEligibleBoundaryExactRange pins the EffRange boundary: a customer
// exactly on the antenna's radius, one just inside the tolerance band, and
// one just past it must classify identically to the brute-force InRange
// scan on both selection paths.
func TestEligibleBoundaryExactRange(t *testing.T) {
	const rng = 4.0
	_, hi := model.Antenna{Range: rng}.RadialBounds()
	radii := []float64{
		0, rng / 2,
		rng,                             // exactly on the radius: eligible
		hi,                              // exactly on the tolerance bound: eligible
		math.Nextafter(hi, math.Inf(1)), // one ulp past: ineligible
		rng * 2,
	}
	in := instanceWithRadii(radii)
	a := model.Antenna{Rho: 1, Range: rng, Capacity: 100}
	assertEligibleMatches(t, in, a, "exact-range")

	v := New(in)
	got := v.AppendEligible(a, nil)
	if len(got) != 4 {
		t.Fatalf("want the 4 radii at or below the tolerance bound, got %d positions", len(got))
	}
}

// TestEligibleBoundaryMinRange pins the annulus lower boundary the same
// way: exactly on MinRange (eligible under the 1e-12/Eps slack), exactly on
// the slackened bound, and one ulp below it.
func TestEligibleBoundaryMinRange(t *testing.T) {
	const minR, rng = 2.0, 6.0
	lo, _ := model.Antenna{MinRange: minR, Range: rng}.RadialBounds()
	radii := []float64{
		0, minR / 2,
		math.Nextafter(lo, math.Inf(-1)), // one ulp below the bound: ineligible
		lo,                               // exactly on the bound: eligible
		minR,                             // exactly on MinRange: eligible
		(minR + rng) / 2, rng,
	}
	in := instanceWithRadii(radii)
	a := model.Antenna{Rho: 1, Range: rng, MinRange: minR, Capacity: 100}
	assertEligibleMatches(t, in, a, "min-range")

	v := New(in)
	got := v.AppendEligible(a, nil)
	if len(got) != 4 {
		t.Fatalf("want the 4 radii inside the annulus tolerance band, got %d", len(got))
	}
}

// TestEligibleZeroWidthRay checks that a degenerate ray antenna (Rho == 0)
// filters radially exactly like a wide one — angular width plays no part in
// eligibility — including with an annulus and with unbounded reach.
func TestEligibleZeroWidthRay(t *testing.T) {
	in := instanceWithRadii([]float64{0, 1, 2, 3, 4, 5, 6})
	for _, a := range []model.Antenna{
		{Rho: 0, Range: 3, Capacity: 10},
		{Rho: 0, Range: 3, MinRange: 1.5, Capacity: 10},
		{Rho: 0, Capacity: 10}, // Range 0 encodes unbounded
	} {
		assertEligibleMatches(t, in, a, "zero-width-ray")
	}
}

// TestEligibleMatchesBruteForceRandom sweeps generated families and random
// antenna shapes — unbounded, bounded, annulus, tight annulus (forcing the
// pre-filter path), and full-disk (forcing the scan path) — against the
// brute-force reference.
func TestEligibleMatchesBruteForceRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for _, fam := range gen.Families() {
		in := gen.MustGenerate(gen.Config{Family: fam, Seed: 11, N: 300, M: 2, Variant: model.Sectors})
		for trial := 0; trial < 20; trial++ {
			a := model.Antenna{Rho: rnd.Float64() * 2, Capacity: 50}
			switch trial % 4 {
			case 0: // unbounded
			case 1:
				a.Range = rnd.Float64() * 12
			case 2:
				a.Range = 2 + rnd.Float64()*10
				a.MinRange = rnd.Float64() * a.Range
			case 3: // tight annulus: few eligible, exercises the pre-filter
				a.Range = 1 + rnd.Float64()*10
				a.MinRange = a.Range * 0.98
			}
			assertEligibleMatches(t, in, a, string(fam))
		}
	}
}

// TestRadialBoundsMatchInRange enforces the contract RadialBounds
// documents: for non-NaN radii the closed-interval test is InRange.
func TestRadialBoundsMatchInRange(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		a := model.Antenna{}
		if trial%2 == 0 {
			a.Range = rnd.Float64() * 10
		}
		if trial%3 == 0 {
			a.MinRange = rnd.Float64() * 5
		}
		lo, hi := a.RadialBounds()
		r := rnd.Float64() * 14
		if trial%5 == 0 {
			// Hit the bounds exactly and one ulp around them.
			switch trial % 3 {
			case 0:
				r = lo
			case 1:
				r = math.Nextafter(hi, math.Inf(-1))
			case 2:
				r = hi
			}
			if math.IsInf(r, 0) {
				r = rnd.Float64()
			}
		}
		c := model.Customer{R: r}
		if got, want := lo <= c.R && c.R <= hi, a.InRange(c); got != want {
			t.Fatalf("antenna %+v radius %v: interval test %v, InRange %v", a, r, got, want)
		}
	}
}

// TestViewLayoutDeterministic checks the documented layout: ascending
// angles with ties in ascending customer order, columns matching the
// source customers, and a radius index that really is sorted.
func TestViewLayoutDeterministic(t *testing.T) {
	in := &model.Instance{Variant: model.Sectors}
	// Duplicate angles on purpose: positions 2,3,4 share theta.
	thetas := []float64{3, 1, 2, 2, 2, 0.5}
	for i, th := range thetas {
		in.Customers = append(in.Customers, model.Customer{
			ID: i, Theta: th, R: float64(len(thetas) - i), Demand: int64(i + 1), Profit: int64(10 * (i + 1)),
		})
	}
	in.Antennas = []model.Antenna{{Rho: 1, Range: 100, Capacity: 10}}
	in.Normalize()
	v := New(in)
	wantIDs := []int32{5, 1, 2, 3, 4, 0} // sorted by (theta, id)
	for p, want := range wantIDs {
		if v.ID[p] != want {
			t.Fatalf("position %d: ID %d, want %d", p, v.ID[p], want)
		}
		c := in.Customers[want]
		// Columns must copy the customer values verbatim: compare by bits.
		if math.Float64bits(v.Theta[p]) != math.Float64bits(c.Theta) ||
			math.Float64bits(v.R[p]) != math.Float64bits(c.R) ||
			v.Demand[p] != c.Demand || v.Profit[p] != c.Profit {
			t.Fatalf("position %d: columns diverge from customer %d", p, want)
		}
	}
	for k := 1; k < len(v.sortedR); k++ {
		if v.sortedR[k] < v.sortedR[k-1] {
			t.Fatalf("radius index not sorted at %d", k)
		}
	}
}

// viewsIdentical compares every column of two views bit for bit (floats via
// Float64bits, so the check is exact identity, not tolerance).
func viewsIdentical(t *testing.T, label string, got, want *View) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d, want %d", label, got.Len(), want.Len())
	}
	for p := 0; p < want.Len(); p++ {
		if got.ID[p] != want.ID[p] || got.byR[p] != want.byR[p] ||
			got.Demand[p] != want.Demand[p] || got.Profit[p] != want.Profit[p] ||
			math.Float64bits(got.Theta[p]) != math.Float64bits(want.Theta[p]) ||
			math.Float64bits(got.R[p]) != math.Float64bits(want.R[p]) ||
			math.Float64bits(got.sortedR[p]) != math.Float64bits(want.sortedR[p]) {
			t.Fatalf("%s: position %d diverges:\n got  ID=%d byR=%d theta=%v r=%v d=%d pr=%d sortedR=%v\n want ID=%d byR=%d theta=%v r=%v d=%d pr=%d sortedR=%v",
				label, p,
				got.ID[p], got.byR[p], got.Theta[p], got.R[p], got.Demand[p], got.Profit[p], got.sortedR[p],
				want.ID[p], want.byR[p], want.Theta[p], want.R[p], want.Demand[p], want.Profit[p], want.sortedR[p])
		}
	}
}

// TestRebaseMatchesFreshBuild is the incremental-view differential: across
// generated churn traces, chained Rebase calls (each building on the
// previous rebased view, as a live session does) must reproduce New(next)
// bit for bit after every delta.
func TestRebaseMatchesFreshBuild(t *testing.T) {
	cfgs := []gen.ChurnConfig{
		{Base: gen.Config{Family: gen.Uniform, Seed: 5, N: 120, M: 4}, Steps: 6, Rate: 0.1},
		{Base: gen.Config{Family: gen.Uniform, Seed: 6, N: 200, M: 8, Bands: 8, Tightness: 5}, Steps: 6, Rate: 0.05, Localized: true},
		{Base: gen.Config{Family: gen.Hotspot, Seed: 7, N: 80, M: 3, UnitDemand: true}, Steps: 5, Rate: 0.2},
		{Base: gen.Config{Family: gen.Rings, Seed: 8, N: 150, M: 5}, Steps: 4, Rate: 0.5},
	}
	for _, cfg := range cfgs {
		tr, err := gen.GenerateTrace(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		cur := tr.Instance
		view := New(cur)
		for k, d := range tr.Deltas {
			next, err := model.ApplyDelta(cur, d)
			if err != nil {
				t.Fatalf("%s delta %d: %v", tr.Name, k, err)
			}
			view = Rebase(view, next, d.Remove, len(d.Add))
			viewsIdentical(t, tr.Name+" after delta "+string(rune('0'+k)), view, New(next))
			cur = next
		}
	}
}

// TestRebaseTies pins the tie-breaking: removals and arrivals that share
// theta and radius values with survivors must land exactly where New's
// stable (theta, id) and (radius, position) orders put them.
func TestRebaseTies(t *testing.T) {
	in := &model.Instance{Variant: model.Sectors}
	// Three customers at theta=2, duplicated radii across the population.
	thetas := []float64{3, 1, 2, 2, 2, 0.5}
	radii := []float64{4, 2, 2, 4, 1, 2}
	for i := range thetas {
		in.Customers = append(in.Customers, model.Customer{
			ID: i, Theta: thetas[i], R: radii[i], Demand: int64(i + 1),
		})
	}
	in.Antennas = []model.Antenna{{Rho: 1, Range: 100, Capacity: 10}}
	in.Normalize()
	d := model.Delta{
		Remove: []int{3, 0}, // one of the theta=2 triple, plus an r=4 holder
		Add: []model.Customer{
			{Theta: 2, R: 2, Demand: 7},   // re-joins both tie groups
			{Theta: 0.5, R: 2, Demand: 9}, // ties the surviving head
		},
		SetDemand: []model.DemandChange{{Customer: 4, Demand: 50}},
	}
	next, err := model.ApplyDelta(in, d)
	if err != nil {
		t.Fatal(err)
	}
	viewsIdentical(t, "ties", Rebase(New(in), next, d.Remove, len(d.Add)), New(next))
}

// TestRebaseDegenerate covers the empty extremes: a delta removing every
// customer, and one repopulating an empty instance.
func TestRebaseDegenerate(t *testing.T) {
	in := instanceWithRadii([]float64{1, 2, 3})
	all := model.Delta{Remove: []int{0, 1, 2}}
	empty, err := model.ApplyDelta(in, all)
	if err != nil {
		t.Fatal(err)
	}
	ev := Rebase(New(in), empty, all.Remove, 0)
	viewsIdentical(t, "drain", ev, New(empty))
	refill := model.Delta{Add: []model.Customer{{Theta: 1, R: 2, Demand: 3}, {Theta: 0.5, R: 1, Demand: 1}}}
	next, err := model.ApplyDelta(empty, refill)
	if err != nil {
		t.Fatal(err)
	}
	viewsIdentical(t, "refill", Rebase(ev, next, nil, len(refill.Add)), New(next))
}
