package gen

import (
	"fmt"
	"math"
	"math/rand"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// ChurnConfig describes a churn trace: a generated base instance plus a
// deterministic stream of deltas (arrivals, departures, demand changes,
// capacity changes). Like every generator here, GenerateTrace is a
// deterministic function of the config, so traces are reproducible bit for
// bit.
type ChurnConfig struct {
	// Base is the instance the trace starts from.
	Base Config
	// Steps is the number of deltas; zero means 8.
	Steps int
	// Rate is the fraction of customers churned per step — each step
	// removes ⌈Rate·n⌉ customers and adds the same number, keeping the
	// population roughly stable, plus a quarter as many demand changes.
	// Zero means 0.01 (the canonical 1% churn step).
	Rate float64
	// Localized concentrates each step's churn in one radial pocket
	// (customers move in and out of a contested annulus) instead of
	// sampling uniformly. Localized churn is what delta sessions exploit:
	// only the sweeps whose radial interval meets the pocket invalidate.
	Localized bool
	// PocketFrac is the fraction of the disk's area a localized pocket
	// covers; zero means 0.1. Ignored unless Localized.
	PocketFrac float64
	// CapacityEvery adds one antenna capacity change (±20%) to every k-th
	// step (steps 0, k, 2k, …); zero means never.
	CapacityEvery int
	// Seed drives the churn stream; zero means Base.Seed+1 so a default
	// trace does not replay the base instance's random stream.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Steps == 0 {
		c.Steps = 8
	}
	if c.Rate == 0 {
		c.Rate = 0.01
	}
	if c.PocketFrac == 0 {
		c.PocketFrac = 0.1
	}
	if c.Seed == 0 {
		c.Seed = c.Base.Seed + 1
	}
	return c
}

// GenerateTrace builds the base instance and the delta stream. Every delta
// is validated by actually applying it (model.ApplyDelta) as it is
// generated, so a returned trace always replays cleanly.
func GenerateTrace(cfg ChurnConfig) (*model.Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("gen: negative Steps")
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("gen: Rate %v outside [0, 1]", cfg.Rate)
	}
	if cfg.PocketFrac < 0 || cfg.PocketFrac > 1 {
		return nil, fmt.Errorf("gen: PocketFrac %v outside [0, 1]", cfg.PocketFrac)
	}
	base, err := Generate(cfg.Base)
	if err != nil {
		return nil, err
	}
	bcfg := cfg.Base.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &model.Trace{
		Name:     fmt.Sprintf("churn-%s-steps%d-rate%g", base.Name, cfg.Steps, cfg.Rate),
		Instance: base,
	}
	cur := base.Clone()
	for s := 0; s < cfg.Steps; s++ {
		d := churnStep(cur, cfg, bcfg, s, rng)
		next, err := model.ApplyDelta(cur, d)
		if err != nil {
			return nil, fmt.Errorf("gen: step %d produced invalid delta: %w", s, err)
		}
		tr.Deltas = append(tr.Deltas, d)
		cur = next
	}
	return tr, nil
}

// MustGenerateTrace is GenerateTrace for static configs; it panics on
// error.
func MustGenerateTrace(cfg ChurnConfig) *model.Trace {
	tr, err := GenerateTrace(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

// churnStep builds one delta against the current instance state.
func churnStep(cur *model.Instance, cfg ChurnConfig, bcfg Config, step int, rng *rand.Rand) model.Delta {
	n := cur.N()
	k := int(math.Ceil(cfg.Rate * float64(n)))
	if k > n {
		k = n
	}

	// The pocket: a radial interval, chosen in equal-area coordinates so
	// it holds ~PocketFrac of a uniform population regardless of where it
	// lands. Global churn uses the whole disk.
	rlo, rhi := 0.0, bcfg.Range*1.25
	if cfg.Localized {
		u0 := rng.Float64() * (1 - cfg.PocketFrac)
		rlo = bcfg.Range * math.Sqrt(u0)
		rhi = bcfg.Range * math.Sqrt(u0+cfg.PocketFrac)
	}

	// Departure and re-pricing candidates come from the pocket.
	var pool []int
	for i, c := range cur.Customers {
		if c.R >= rlo && c.R <= rhi {
			pool = append(pool, i)
		}
	}
	rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })

	var d model.Delta
	nRemove := k
	if nRemove > len(pool) {
		nRemove = len(pool)
	}
	d.Remove = append(d.Remove, pool[:nRemove]...)
	nChange := k / 4
	if nChange < 1 {
		nChange = 1
	}
	if nChange > len(pool)-nRemove {
		nChange = len(pool) - nRemove
	}
	if bcfg.UnitDemand {
		nChange = 0 // demand changes would break the unit-demand invariant
	}
	for _, i := range pool[nRemove : nRemove+nChange] {
		ch := model.DemandChange{Customer: i, Demand: 1 + rng.Int63n(bcfg.MaxDemand)}
		if bcfg.ProfitSpread > 0 {
			p := int64(float64(ch.Demand) * (1 + rng.Float64()*bcfg.ProfitSpread))
			if p < 1 {
				p = 1
			}
			ch.Profit = p
		}
		d.SetDemand = append(d.SetDemand, ch)
	}

	// Arrivals land in the same pocket (equal-area radial sampling, like
	// the uniform family).
	lo2, hi2 := rlo*rlo, rhi*rhi
	for a := 0; a < k; a++ {
		c := model.Customer{
			Theta:  rng.Float64() * geom.TwoPi,
			R:      math.Sqrt(lo2 + rng.Float64()*(hi2-lo2)),
			Demand: 1 + rng.Int63n(bcfg.MaxDemand),
		}
		if bcfg.UnitDemand {
			c.Demand = 1
		} else if bcfg.ProfitSpread > 0 {
			p := int64(float64(c.Demand) * (1 + rng.Float64()*bcfg.ProfitSpread))
			if p < 1 {
				p = 1
			}
			c.Profit = p
		}
		d.Add = append(d.Add, c)
	}

	if cfg.CapacityEvery > 0 && step%cfg.CapacityEvery == 0 && cur.M() > 0 {
		j := rng.Intn(cur.M())
		old := cur.Antennas[j].Capacity
		delta := int64(float64(old) * (rng.Float64()*0.4 - 0.2))
		nc := old + delta
		if nc < 0 {
			nc = 0
		}
		d.SetCapacity = append(d.SetCapacity, model.CapacityChange{Antenna: j, Capacity: nc})
	}
	return d
}
