package gen

import (
	"bytes"
	"math"
	"testing"

	"sectorpack/internal/model"
)

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := ChurnConfig{
		Base:          Config{Family: Uniform, Seed: 5, N: 300, M: 6, Bands: 3, Tightness: 2, ProfitSpread: 0.4},
		Steps:         5,
		Rate:          0.02,
		Localized:     true,
		CapacityEvery: 2,
	}
	a := MustGenerateTrace(cfg)
	b := MustGenerateTrace(cfg)
	var ab, bb bytes.Buffer
	if err := model.WriteTraceJSON(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := model.WriteTraceJSON(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("same config produced different traces")
	}
}

func TestGenerateTraceReplaysAndKeepsPopulation(t *testing.T) {
	cfg := ChurnConfig{
		Base:  Config{Family: Uniform, Seed: 7, N: 400, M: 4, Tightness: 2},
		Steps: 6,
		Rate:  0.05,
	}
	tr := MustGenerateTrace(cfg)
	if len(tr.Deltas) != 6 {
		t.Fatalf("got %d deltas, want 6", len(tr.Deltas))
	}
	fin, err := tr.Materialize(len(tr.Deltas))
	if err != nil {
		t.Fatal(err)
	}
	// Each step removes and adds the same count, so the population is
	// stable.
	if fin.N() != 400 {
		t.Errorf("final population %d, want 400", fin.N())
	}
	if err := fin.Validate(); err != nil {
		t.Errorf("final instance invalid: %v", err)
	}
	for s, d := range tr.Deltas {
		if d.Empty() {
			t.Errorf("step %d is empty", s)
		}
		if len(d.Remove) == 0 || len(d.Add) == 0 || len(d.SetDemand) == 0 {
			t.Errorf("step %d missing churn kinds: %d removes, %d adds, %d demand changes",
				s, len(d.Remove), len(d.Add), len(d.SetDemand))
		}
	}
}

func TestGenerateTraceLocalizedPocket(t *testing.T) {
	cfg := ChurnConfig{
		Base:      Config{Family: Uniform, Seed: 9, N: 500, M: 8, Bands: 8, Tightness: 2},
		Steps:     4,
		Rate:      0.02,
		Localized: true,
	}
	tr := MustGenerateTrace(cfg)
	// A pocket covering PocketFrac of the area has radial width at most
	// Range·√PocketFrac; all of one step's arrivals land inside it.
	maxSpan := 8.0 * math.Sqrt(0.1) * 1.0001
	for s, d := range tr.Deltas {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range d.Add {
			lo, hi = math.Min(lo, c.R), math.Max(hi, c.R)
		}
		if hi-lo > maxSpan {
			t.Errorf("step %d arrivals span %v > pocket bound %v", s, hi-lo, maxSpan)
		}
	}
}

func TestGenerateTraceUnitDemand(t *testing.T) {
	cfg := ChurnConfig{
		Base:  Config{Family: Uniform, Seed: 3, N: 120, M: 3, UnitDemand: true, Tightness: 2},
		Steps: 3,
	}
	tr := MustGenerateTrace(cfg)
	fin, err := tr.Materialize(len(tr.Deltas))
	if err != nil {
		t.Fatal(err)
	}
	if !fin.UnitDemand() {
		t.Error("churn broke the unit-demand invariant")
	}
}

func TestBandsPartitionAntennas(t *testing.T) {
	in := MustGenerate(Config{Family: Uniform, Seed: 2, N: 100, M: 8, Bands: 4, Tightness: 2})
	for j, a := range in.Antennas {
		b := j % 4
		wantLo := 8.0 * math.Sqrt(float64(b)/4)
		wantHi := 8.0 * math.Sqrt(float64(b+1)/4)
		if math.Abs(a.MinRange-wantLo) > 1e-12 || math.Abs(a.Range-wantHi) > 1e-12 {
			t.Errorf("antenna %d: annulus [%v, %v], want [%v, %v]", j, a.MinRange, a.Range, wantLo, wantHi)
		}
	}
	if _, err := Generate(Config{Family: Uniform, N: 10, M: 2, Bands: 2, Variant: model.Angles}); err == nil {
		t.Error("Bands with the angles variant should be rejected")
	}
}
