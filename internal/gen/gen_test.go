package gen

import (
	"math"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func TestAllFamiliesGenerateValidInstances(t *testing.T) {
	for _, fam := range Families() {
		for _, variant := range []model.Variant{model.Sectors, model.Angles, model.DisjointAngles} {
			cfg := Config{Family: fam, Seed: 1, N: 40, M: 3, Variant: variant}
			in, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", fam, variant, err)
			}
			if in.N() != 40 || in.M() != 3 {
				t.Fatalf("%s/%v: shape %dx%d", fam, variant, in.N(), in.M())
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%s/%v: invalid: %v", fam, variant, err)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Family: Hotspot, Seed: 42, N: 30, M: 2, Variant: model.Sectors}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i := range a.Customers {
		if a.Customers[i] != b.Customers[i] {
			t.Fatalf("customer %d differs across identical configs", i)
		}
	}
	for j := range a.Antennas {
		if a.Antennas[j] != b.Antennas[j] {
			t.Fatalf("antenna %d differs across identical configs", j)
		}
	}
	c := MustGenerate(Config{Family: Hotspot, Seed: 43, N: 30, M: 2, Variant: model.Sectors})
	same := true
	for i := range a.Customers {
		if a.Customers[i] != c.Customers[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different instances")
	}
}

func TestTightnessControl(t *testing.T) {
	for _, tight := range []float64{0.5, 1.0, 2.0} {
		in := MustGenerate(Config{Family: Uniform, Seed: 7, N: 200, M: 4, Tightness: tight, Variant: model.Angles})
		got := in.Tightness()
		// per-antenna integer truncation skews it slightly upward
		if got < tight*0.95 || got > tight*1.3 {
			t.Errorf("tightness %v: got %v", tight, got)
		}
	}
}

func TestUnitDemandFlag(t *testing.T) {
	in := MustGenerate(Config{Family: Zipf, Seed: 3, N: 50, M: 2, UnitDemand: true, Variant: model.Angles})
	if !in.UnitDemand() {
		t.Fatal("UnitDemand flag must force unit demands")
	}
	if in.Customers[0].Demand != 1 {
		t.Fatal("unit demand should be 1")
	}
}

func TestVariantAntennaShapes(t *testing.T) {
	angles := MustGenerate(Config{Family: Uniform, Seed: 5, N: 10, M: 2, Variant: model.Angles})
	for _, a := range angles.Antennas {
		if !a.Unbounded() {
			t.Error("Angles antennas must be unbounded")
		}
	}
	sectors := MustGenerate(Config{Family: Uniform, Seed: 5, N: 10, M: 2, Variant: model.Sectors})
	for _, a := range sectors.Antennas {
		if a.Unbounded() {
			t.Error("Sectors antennas must be bounded")
		}
	}
	dis := MustGenerate(Config{Family: Uniform, Seed: 5, N: 10, M: 5, Variant: model.DisjointAngles, Rho: 3.0})
	var total float64
	for _, a := range dis.Antennas {
		total += a.Rho
	}
	if total > geom.TwoPi {
		t.Errorf("DisjointAngles widths %v exceed 2π", total)
	}
}

func TestZipfDemandsHeavyTailed(t *testing.T) {
	in := MustGenerate(Config{Family: Zipf, Seed: 11, N: 2000, M: 1, MaxDemand: 50, Variant: model.Angles})
	ones, max := 0, int64(0)
	for _, c := range in.Customers {
		if c.Demand == 1 {
			ones++
		}
		if c.Demand > max {
			max = c.Demand
		}
	}
	if ones < in.N()/3 {
		t.Errorf("Zipf should concentrate at 1: only %d/%d", ones, in.N())
	}
	if max < 10 {
		t.Errorf("Zipf tail too short: max %d", max)
	}
}

func TestHotspotConcentration(t *testing.T) {
	cfg := Config{Family: Hotspot, Seed: 13, N: 500, M: 1, Hotspots: 2, Variant: model.Angles}
	in := MustGenerate(cfg)
	// With 2 clusters of σ=ρ/3, a window of width ρ around the best angle
	// should capture far more than the uniform share.
	rho := math.Pi / 3
	best := 0
	for _, c := range in.Customers {
		count := 0
		for _, d := range in.Customers {
			if geom.AngleDist(c.Theta, d.Theta) <= rho {
				count++
			}
		}
		if count > best {
			best = count
		}
	}
	uniformShare := float64(in.N()) * rho / geom.TwoPi
	if float64(best) < 1.5*uniformShare {
		t.Errorf("hotspot concentration too weak: best window %d vs uniform share %.0f", best, uniformShare)
	}
}

func TestAdversarialStructure(t *testing.T) {
	in := MustGenerate(Config{Family: Adversarial, Seed: 17, N: 25, M: 1, Variant: model.Sectors})
	small, large := 0, 0
	for _, c := range in.Customers {
		if c.Demand == 1 {
			small++
		} else {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("adversarial family needs both item types: %d small, %d large", small, large)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Generate(Config{Family: "bogus", N: 5, M: 1}); err == nil {
		t.Error("unknown family must error")
	}
	if _, err := Generate(Config{Family: Uniform, N: -1, M: 1}); err == nil {
		t.Error("negative N must error")
	}
}

func TestZeroCustomersOrAntennas(t *testing.T) {
	in := MustGenerate(Config{Family: Uniform, Seed: 1, N: 0, M: 2, Variant: model.Angles})
	if in.N() != 0 || in.M() != 2 {
		t.Fatalf("shape %dx%d", in.N(), in.M())
	}
	in = MustGenerate(Config{Family: Uniform, Seed: 1, N: 5, M: 0, Variant: model.Angles})
	if in.M() != 0 {
		t.Fatalf("M = %d", in.M())
	}
}

func TestProfitSpread(t *testing.T) {
	in := MustGenerate(Config{Family: Uniform, Seed: 19, N: 200, M: 1, ProfitSpread: 1.5, Variant: model.Angles})
	diverged := 0
	for _, c := range in.Customers {
		if c.Profit < c.Demand {
			t.Fatalf("profit %d below demand %d", c.Profit, c.Demand)
		}
		if c.Profit > c.Demand {
			diverged++
		}
	}
	if diverged < in.N()/4 {
		t.Errorf("profit spread had no effect: only %d/%d diverged", diverged, in.N())
	}
	plain := MustGenerate(Config{Family: Uniform, Seed: 19, N: 50, M: 1, Variant: model.Angles})
	for _, c := range plain.Customers {
		if c.Profit != c.Demand {
			t.Fatal("zero spread must keep profit = demand")
		}
	}
}

func TestTierPresets(t *testing.T) {
	for _, name := range TierNames() {
		cfg, err := Tier(name)
		if err != nil {
			t.Fatalf("Tier(%s): %v", name, err)
		}
		if cfg.N == 0 || cfg.M == 0 || cfg.Family == "" {
			t.Errorf("Tier(%s) preset underspecified: %+v", name, cfg)
		}
		// Tiers must generate valid instances; shrink N so the test stays
		// cheap — the preset's shape fields are what's under test, and
		// Generate validates the result regardless of N.
		cfg.N = 500
		in, err := Generate(cfg)
		if err != nil {
			t.Errorf("Tier(%s) does not generate: %v", name, err)
			continue
		}
		if in.N() != 500 || in.M() != cfg.M {
			t.Errorf("Tier(%s) shape %dx%d, want 500x%d", name, in.N(), in.M(), cfg.M)
		}
	}
	if _, err := Tier("bogus"); err == nil {
		t.Error("unknown tier must error")
	}
}
