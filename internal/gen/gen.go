// Package gen produces the synthetic workload families used by the
// experiments. The paper is a theory paper with no published datasets
// (soundness band: "theory-only, no systems evaluation"), so these
// generators are the substitute for an evaluation testbed: each family
// stresses a different structural regime of the problem — uniform spatial
// spread, angular hotspots, concentric rings, heavy-tailed demands, and an
// adversarial family that embeds hard knapsack instances into a sector.
//
// All generators are deterministic functions of their Config (including
// the Seed); experiments are therefore reproducible bit for bit.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// Family names a workload family.
type Family string

const (
	// Uniform scatters customers uniformly on a disk with uniform demands.
	Uniform Family = "uniform"
	// Hotspot concentrates customers in a few Gaussian angular clusters
	// (the "event crowd" regime that motivates directional antennas).
	Hotspot Family = "hotspot"
	// Rings places customers on concentric rings (dense urban blocks),
	// stressing the radial constraint of the Sectors variant.
	Rings Family = "rings"
	// Zipf scatters uniformly but draws demands from a Zipf-like heavy
	// tail, stressing the knapsack layer.
	Zipf Family = "zipf"
	// Adversarial embeds a two-value knapsack gadget in a narrow arc so
	// density-greedy heuristics are maximally misled.
	Adversarial Family = "adversarial"
)

// Families lists all generator families.
func Families() []Family {
	return []Family{Uniform, Hotspot, Rings, Zipf, Adversarial}
}

// Tier returns the named large-scale benchmark preset. Tiers pin the
// workload shape used by sectorbench's big entries and the README
// quickstart, so results are comparable across machines and sessions:
//
//   - "100k": n=100_000, m=16, tightly capacitated (Tightness 40) with
//     decoupled profits so Dantzig pruning has traction — the standard
//     large tier, solved by every engine-backed heuristic in seconds.
//   - "1m": n=1_000_000, m=8, Tightness 400 — the stress tier for the
//     columnar layout itself (sweep construction, radial pre-filter);
//     intended for engine prewarm and the baseline solver, not for
//     candidate-enumerating heuristics.
//   - "100k-churn": n=100_000, m=40 antennas partitioned over 40
//     equal-area annuli (Bands) — the delta-session tier. Banding bounds
//     each antenna's eligible count at ~n/40, so the greedy runs at full
//     scale, and it gives localized churn a radial footprint for the
//     sweep invalidation pre-filter to exploit.
//
// Callers may override Seed, Variant, or any other field after the call;
// the preset only fixes the workload shape.
func Tier(name string) (Config, error) {
	switch name {
	case "100k":
		return Config{Family: Uniform, Seed: 1, N: 100_000, M: 16, Tightness: 40, ProfitSpread: 0.4}, nil
	case "1m":
		return Config{Family: Uniform, Seed: 1, N: 1_000_000, M: 8, Tightness: 400, ProfitSpread: 0.4}, nil
	case "100k-churn":
		return Config{Family: Uniform, Seed: 1, N: 100_000, M: 40, Bands: 40, Tightness: 40, ProfitSpread: 0.4}, nil
	}
	return Config{}, fmt.Errorf("gen: unknown tier %q (have %v)", name, TierNames())
}

// TierNames lists the benchmark tier presets accepted by Tier.
func TierNames() []string {
	return []string{"100k", "100k-churn", "1m"}
}

// Config fully determines a generated instance.
type Config struct {
	Family  Family
	Seed    int64
	N       int           // number of customers
	M       int           // number of antennas
	Variant model.Variant // problem variant to stamp on the instance

	// Rho is the angular width of every antenna (radians). Zero means a
	// family default of π/3.
	Rho float64
	// RhoSpread, when positive, perturbs each antenna's width uniformly
	// within ±RhoSpread (clamped to stay positive and within the
	// DisjointAngles feasibility budget).
	RhoSpread float64
	// Range is the radial reach for the Sectors variant; ignored (forced
	// unbounded) for Angles and DisjointAngles. Zero means 8.
	Range float64
	// MinRange is the antennas' near-field exclusion radius (annulus
	// extension); zero disables it.
	MinRange float64
	// Tightness is total demand / total capacity; capacities are scaled
	// to hit it. Zero means 1.5 (meaningfully contended).
	Tightness float64
	// MaxDemand bounds individual demands. Zero means 10.
	MaxDemand int64
	// ProfitSpread decouples profit from demand: each customer's profit
	// becomes demand × U(1, 1+ProfitSpread), rounded. Zero keeps the
	// default profit = demand.
	ProfitSpread float64
	// Hotspots is the cluster count for the Hotspot family. Zero means 3.
	Hotspots int
	// ZipfS is the Zipf exponent for the Zipf family. Zero means 1.5.
	ZipfS float64
	// UnitDemand forces every demand (and profit) to the same value
	// (MaxDemand is ignored; demand is 1).
	UnitDemand bool
	// Bands, when positive, partitions the antennas over that many
	// equal-area concentric annuli of [0, Range]: antenna j serves band
	// j mod Bands, its [MinRange, Range) interval set to the band's edges.
	// This is the heterogeneous-range regime where the radial pre-filter
	// (and delta-session sweep invalidation) has traction — every antenna
	// sees only its annulus's customers — and it keeps the
	// candidate-enumerating solvers usable at the large tiers by bounding
	// the per-antenna eligible count at roughly N/Bands. Requires the
	// Sectors variant (the angle variants force unbounded ranges).
	Bands int
}

func (c Config) withDefaults() Config {
	if c.Rho == 0 {
		c.Rho = math.Pi / 3
	}
	if c.Range == 0 {
		c.Range = 8
	}
	if c.Tightness == 0 {
		c.Tightness = 1.5
	}
	if c.MaxDemand == 0 {
		c.MaxDemand = 10
	}
	if c.Hotspots == 0 {
		c.Hotspots = 3
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.5
	}
	return c
}

// Generate builds the instance described by the config.
func Generate(cfg Config) (*model.Instance, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 || cfg.M < 0 {
		return nil, fmt.Errorf("gen: negative N or M")
	}
	if cfg.Bands < 0 {
		return nil, fmt.Errorf("gen: negative Bands")
	}
	if cfg.Bands > 0 && cfg.Variant != model.Sectors {
		return nil, fmt.Errorf("gen: Bands requires the sectors variant (got %v)", cfg.Variant)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &model.Instance{
		Name:    fmt.Sprintf("%s-n%d-m%d-seed%d", cfg.Family, cfg.N, cfg.M, cfg.Seed),
		Variant: cfg.Variant,
	}
	switch cfg.Family {
	case Uniform:
		genUniformPositions(in, cfg, rng)
		genUniformDemands(in, cfg, rng)
	case Hotspot:
		genHotspotPositions(in, cfg, rng)
		genUniformDemands(in, cfg, rng)
	case Rings:
		genRingPositions(in, cfg, rng)
		genUniformDemands(in, cfg, rng)
	case Zipf:
		genUniformPositions(in, cfg, rng)
		genZipfDemands(in, cfg, rng)
	case Adversarial:
		genAdversarial(in, cfg, rng)
	default:
		return nil, fmt.Errorf("gen: unknown family %q", cfg.Family)
	}
	if cfg.UnitDemand {
		for i := range in.Customers {
			in.Customers[i].Demand = 1
			in.Customers[i].Profit = 1
		}
	} else if cfg.ProfitSpread > 0 {
		for i := range in.Customers {
			factor := 1 + rng.Float64()*cfg.ProfitSpread
			p := int64(float64(in.Customers[i].Demand) * factor)
			if p < 1 {
				p = 1
			}
			in.Customers[i].Profit = p
		}
	}
	genAntennas(in, cfg, rng)
	in.Normalize()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated invalid instance: %w", err)
	}
	return in, nil
}

// MustGenerate is Generate for callers with static configs (tests,
// examples); it panics on error.
func MustGenerate(cfg Config) *model.Instance {
	in, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

func genUniformPositions(in *model.Instance, cfg Config, rng *rand.Rand) {
	maxR := cfg.Range * 1.25 // some customers are out of reach by design
	for i := 0; i < cfg.N; i++ {
		in.Customers = append(in.Customers, model.Customer{
			Theta: rng.Float64() * geom.TwoPi,
			R:     math.Sqrt(rng.Float64()) * maxR, // uniform on the disk
		})
	}
}

func genHotspotPositions(in *model.Instance, cfg Config, rng *rand.Rand) {
	centers := make([]float64, cfg.Hotspots)
	for k := range centers {
		centers[k] = rng.Float64() * geom.TwoPi
	}
	sigma := cfg.Rho / 3 // clusters comparable to a sector width
	for i := 0; i < cfg.N; i++ {
		c := centers[rng.Intn(len(centers))]
		in.Customers = append(in.Customers, model.Customer{
			Theta: geom.NormAngle(c + rng.NormFloat64()*sigma),
			R:     math.Sqrt(rng.Float64()) * cfg.Range,
		})
	}
}

func genRingPositions(in *model.Instance, cfg Config, rng *rand.Rand) {
	rings := []float64{cfg.Range * 0.3, cfg.Range * 0.7, cfg.Range * 1.1}
	for i := 0; i < cfg.N; i++ {
		r := rings[rng.Intn(len(rings))] * (1 + rng.NormFloat64()*0.03)
		if r < 0 {
			r = 0
		}
		in.Customers = append(in.Customers, model.Customer{
			Theta: rng.Float64() * geom.TwoPi,
			R:     r,
		})
	}
}

func genUniformDemands(in *model.Instance, cfg Config, rng *rand.Rand) {
	for i := range in.Customers {
		in.Customers[i].Demand = 1 + rng.Int63n(cfg.MaxDemand)
	}
}

func genZipfDemands(in *model.Instance, cfg Config, rng *rand.Rand) {
	z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.MaxDemand-1))
	for i := range in.Customers {
		in.Customers[i].Demand = 1 + int64(z.Uint64())
	}
}

// genAdversarial embeds the classic greedy-killer knapsack gadget in a
// narrow arc: one small high-density item and many large items whose total
// value exceeds it, all inside a single sector width, so the density greedy
// fills with the small item first and strands capacity.
func genAdversarial(in *model.Instance, cfg Config, rng *rand.Rand) {
	arc := cfg.Rho * 0.8
	base := rng.Float64() * geom.TwoPi
	for i := 0; i < cfg.N; i++ {
		theta := geom.NormAngle(base + rng.Float64()*arc)
		r := math.Sqrt(rng.Float64()) * cfg.Range * 0.9
		var demand, profit int64
		if i%5 == 0 {
			demand, profit = 1, 3 // density 3: greedy grabs these first
		} else {
			demand, profit = cfg.MaxDemand, 2*cfg.MaxDemand-1 // density just below 2
		}
		in.Customers = append(in.Customers, model.Customer{
			Theta: theta, R: r, Demand: demand, Profit: profit,
		})
	}
}

func genAntennas(in *model.Instance, cfg Config, rng *rand.Rand) {
	if cfg.M == 0 {
		return
	}
	var totalDemand int64
	for _, c := range in.Customers {
		totalDemand += c.Demand
	}
	totalCap := float64(totalDemand) / cfg.Tightness
	if totalCap < 1 {
		totalCap = 1
	}
	perCap := int64(totalCap / float64(cfg.M))
	if perCap < 1 {
		perCap = 1
	}
	// Width budget keeps DisjointAngles instances feasible.
	budget := geom.TwoPi * 0.95
	for j := 0; j < cfg.M; j++ {
		w := cfg.Rho
		if cfg.RhoSpread > 0 {
			w += (rng.Float64()*2 - 1) * cfg.RhoSpread
		}
		if w < 0.05 {
			w = 0.05
		}
		if cfg.Variant == model.DisjointAngles && w > budget/float64(cfg.M) {
			w = budget / float64(cfg.M)
		}
		a := model.Antenna{Rho: w, Capacity: perCap, MinRange: cfg.MinRange}
		if cfg.Variant == model.Sectors {
			a.Range = cfg.Range
			if cfg.Bands > 0 {
				// Equal-area annulus edges: band b covers
				// [R·√(b/Bands), R·√((b+1)/Bands)), so each band holds
				// roughly the same customer mass under uniform spread.
				b := j % cfg.Bands
				a.MinRange = cfg.Range * math.Sqrt(float64(b)/float64(cfg.Bands))
				a.Range = cfg.Range * math.Sqrt(float64(b+1)/float64(cfg.Bands))
			}
		}
		in.Antennas = append(in.Antennas, a)
	}
}
