package model

import (
	"strings"
	"testing"
)

// These tests pin the Check edge cases the fault-injection harness leans
// on: a buggy solver's output must be rejected for exactly these reasons,
// never served. Each case builds the smallest instance that isolates one
// rule.

// rayInstance: one zero-width antenna, one aligned and one off-axis
// customer.
func rayInstance() *Instance {
	in := &Instance{
		Variant: Sectors,
		Customers: []Customer{
			{Theta: 1.25, R: 2, Demand: 1},
			{Theta: 2.5, R: 2, Demand: 1},
		},
		Antennas: []Antenna{{Rho: 0, Range: 5, Capacity: 5}},
	}
	return in.Normalize()
}

func TestCheckZeroWidthRay(t *testing.T) {
	in := rayInstance()

	as := NewAssignment(2, 1)
	as.Orientation[0] = 1.25
	as.Owner[0] = 0
	if err := as.Check(in); err != nil {
		t.Errorf("aligned customer on a ray rejected: %v", err)
	}

	// The off-axis customer is not coverable by the degenerate ray at this
	// orientation, no matter the capacity headroom.
	as.Owner[1] = 0
	err := as.Check(in)
	if err == nil {
		t.Fatal("off-axis customer accepted on a zero-width ray")
	}
	if !strings.Contains(err.Error(), "not covered") {
		t.Errorf("error %q, want a coverage violation", err)
	}

	// Reorienting to the off-axis customer flips which assignment is legal.
	as.Owner[0] = Unassigned
	as.Orientation[0] = 2.5
	if err := as.Check(in); err != nil {
		t.Errorf("ray reoriented to the second customer rejected: %v", err)
	}
}

func TestCheckMinRangeAnnulus(t *testing.T) {
	in := &Instance{
		Variant: Sectors,
		Customers: []Customer{
			{Theta: 0.5, R: 0.5, Demand: 1}, // inside the exclusion disk
			{Theta: 0.5, R: 1.0, Demand: 1}, // exactly on the inner boundary
			{Theta: 0.5, R: 3.0, Demand: 1}, // inside the annulus
		},
		Antennas: []Antenna{{Rho: 1, Range: 5, MinRange: 1, Capacity: 5}},
	}
	in.Normalize()

	as := NewAssignment(3, 1)
	as.Orientation[0] = 0.2
	as.Owner[1] = 0
	as.Owner[2] = 0
	if err := as.Check(in); err != nil {
		t.Errorf("boundary and interior annulus customers rejected: %v", err)
	}

	as.Owner[0] = 0
	err := as.Check(in)
	if err == nil {
		t.Fatal("customer inside the MinRange exclusion accepted")
	}
	if !strings.Contains(err.Error(), "not covered") {
		t.Errorf("error %q, want a coverage violation", err)
	}
}

func TestCheckOverCapacityByOneUnit(t *testing.T) {
	in := &Instance{
		Variant: Sectors,
		Customers: []Customer{
			{Theta: 0.1, R: 1, Demand: 4},
			{Theta: 0.2, R: 1, Demand: 3},
		},
		Antennas: []Antenna{{Rho: 1, Range: 5, Capacity: 7}},
	}
	in.Normalize()

	as := NewAssignment(2, 1)
	as.Owner[0], as.Owner[1] = 0, 0
	if err := as.Check(in); err != nil {
		t.Errorf("load exactly at capacity rejected: %v", err)
	}

	// One extra demand unit must tip it over: 4+4 = 8 > 7.
	in.Customers[0].Demand = 5
	err := as.Check(in)
	if err == nil {
		t.Fatal("load one unit over capacity accepted")
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Errorf("error %q, want an overload violation", err)
	}
}

// TestCheckDuplicateOwnerEntries covers the fault injector's
// duplicate-assignment shape: an Owner slice padded with repeated entries
// no longer matches the customer count and must be rejected before any
// per-customer check runs (a duplicated owner row would otherwise
// double-count demand silently).
func TestCheckDuplicateOwnerEntries(t *testing.T) {
	in := rayInstance()
	as := NewAssignment(2, 1)
	as.Orientation[0] = 1.25
	as.Owner[0] = 0
	as.Owner = append(as.Owner, 0) // duplicate row for customer 0
	err := as.Check(in)
	if err == nil {
		t.Fatal("Owner slice with a duplicated entry accepted")
	}
	if !strings.Contains(err.Error(), "owners for") {
		t.Errorf("error %q, want the shape-mismatch violation", err)
	}
}

// TestCheckSameCustomerCountedOnce pins the complementary rule: a single
// customer can only be owned once (Owner is indexed by customer), so
// serving it "twice" is unrepresentable — but two distinct co-located
// customers do stack demand on the shared antenna.
func TestCheckSameCustomerCountedOnce(t *testing.T) {
	in := &Instance{
		Variant: Sectors,
		Customers: []Customer{
			{Theta: 0.3, R: 1, Demand: 3},
			{Theta: 0.3, R: 1, Demand: 3}, // co-located twin
		},
		Antennas: []Antenna{{Rho: 1, Range: 5, Capacity: 5}},
	}
	in.Normalize()
	as := NewAssignment(2, 1)
	as.Orientation[0] = 0.1
	as.Owner[0] = 0
	if err := as.Check(in); err != nil {
		t.Errorf("single twin rejected: %v", err)
	}
	as.Owner[1] = 0
	if err := as.Check(in); err == nil {
		t.Error("both co-located twins accepted at 6 > capacity 5")
	}
}

func TestCheckOwnerOutOfRange(t *testing.T) {
	in := rayInstance()
	as := NewAssignment(2, 1)
	for _, bad := range []int{1, -2, 99} {
		as.Owner[0] = bad
		if err := as.Check(in); err == nil {
			t.Errorf("owner %d accepted for a 1-antenna instance", bad)
		}
	}
}
