package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"sectorpack/internal/geom"
)

// Delta is one incremental change to an instance, the unit a solve session
// (internal/session) applies between re-solves. The delta vocabulary is
// deliberately limited to changes that preserve antenna geometry — customer
// arrivals, departures, demand changes, and antenna capacity changes — so
// warm per-antenna sweep state whose membership is a pure radial predicate
// can survive a delta untouched. Antenna position/width/range changes are
// not deltas; they are a new instance.
//
// Apply order is fixed and part of the wire contract:
//
//  1. SetDemand — demand/profit updates, addressed by pre-delta customer ID;
//  2. SetCapacity — antenna capacity updates;
//  3. Remove — customer departures, addressed by pre-delta customer ID;
//     surviving customers are renumbered to slice positions (the Validate
//     invariant), so later IDs shift down;
//  4. Add — arrivals, appended after the survivors and numbered from
//     len(survivors); any ID on an added customer is overwritten.
type Delta struct {
	SetDemand   []DemandChange   `json:"set_demand,omitempty"`
	SetCapacity []CapacityChange `json:"set_capacity,omitempty"`
	Remove      []int            `json:"remove,omitempty"`
	Add         []Customer       `json:"add,omitempty"`
}

// DemandChange updates one customer's demand (and profit). A zero Profit
// follows the Normalize convention: it defaults to the new demand.
type DemandChange struct {
	Customer int   `json:"customer"` // pre-delta customer ID
	Demand   int64 `json:"demand"`   // new demand, must be positive
	Profit   int64 `json:"profit,omitempty"`
}

// CapacityChange updates one antenna's capacity.
type CapacityChange struct {
	Antenna  int   `json:"antenna"`  // antenna ID
	Capacity int64 `json:"capacity"` // new capacity, must be non-negative
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.SetDemand) == 0 && len(d.SetCapacity) == 0 &&
		len(d.Remove) == 0 && len(d.Add) == 0
}

// Validate checks the delta against the instance it would apply to:
// referenced IDs must exist, no ID may be targeted twice within one
// operation list (duplicate targets are almost always a trace-generation
// bug, so they are rejected rather than resolved last-wins), and added
// customers must satisfy the same field constraints Instance.Validate
// enforces. It does not modify in.
func (d Delta) Validate(in *Instance) error {
	var errs []error
	seenC := make(map[int]bool, len(d.SetDemand))
	for k, ch := range d.SetDemand {
		if ch.Customer < 0 || ch.Customer >= in.N() {
			errs = append(errs, fmt.Errorf("set_demand[%d]: customer %d out of range [0,%d)", k, ch.Customer, in.N()))
			continue
		}
		if seenC[ch.Customer] {
			errs = append(errs, fmt.Errorf("set_demand[%d]: customer %d targeted twice", k, ch.Customer))
		}
		seenC[ch.Customer] = true
		if ch.Demand <= 0 {
			errs = append(errs, fmt.Errorf("set_demand[%d]: demand %d must be positive", k, ch.Demand))
		}
		if ch.Profit < 0 {
			errs = append(errs, fmt.Errorf("set_demand[%d]: profit %d must be non-negative", k, ch.Profit))
		}
	}
	seenA := make(map[int]bool, len(d.SetCapacity))
	for k, ch := range d.SetCapacity {
		if ch.Antenna < 0 || ch.Antenna >= in.M() {
			errs = append(errs, fmt.Errorf("set_capacity[%d]: antenna %d out of range [0,%d)", k, ch.Antenna, in.M()))
			continue
		}
		if seenA[ch.Antenna] {
			errs = append(errs, fmt.Errorf("set_capacity[%d]: antenna %d targeted twice", k, ch.Antenna))
		}
		seenA[ch.Antenna] = true
		if ch.Capacity < 0 {
			errs = append(errs, fmt.Errorf("set_capacity[%d]: capacity %d must be non-negative", k, ch.Capacity))
		}
	}
	seenR := make(map[int]bool, len(d.Remove))
	for k, id := range d.Remove {
		if id < 0 || id >= in.N() {
			errs = append(errs, fmt.Errorf("remove[%d]: customer %d out of range [0,%d)", k, id, in.N()))
			continue
		}
		if seenR[id] {
			errs = append(errs, fmt.Errorf("remove[%d]: customer %d removed twice", k, id))
		}
		seenR[id] = true
	}
	for k, c := range d.Add {
		if math.IsNaN(c.Theta) || math.IsInf(c.Theta, 0) {
			errs = append(errs, fmt.Errorf("add[%d]: invalid theta %v", k, c.Theta))
		}
		if c.R < 0 || math.IsNaN(c.R) || math.IsInf(c.R, 0) {
			errs = append(errs, fmt.Errorf("add[%d]: invalid radius %v", k, c.R))
		}
		if c.Demand <= 0 {
			errs = append(errs, fmt.Errorf("add[%d]: demand %d must be positive", k, c.Demand))
		}
		if c.Profit < 0 {
			errs = append(errs, fmt.Errorf("add[%d]: profit %d must be non-negative", k, c.Profit))
		}
	}
	return errors.Join(errs...)
}

// ApplyDelta materializes the instance that results from applying d to in.
// It is THE definition of what a delta means: the session package, the
// differential suites, and the fuzz target all compare against it. The
// input is not modified; the result is Normalize()d and satisfies Validate
// whenever in did and d.Validate(in) == nil.
func ApplyDelta(in *Instance, d Delta) (*Instance, error) {
	if err := d.Validate(in); err != nil {
		return nil, fmt.Errorf("invalid delta: %w", err)
	}
	out := in.Clone()
	for _, ch := range d.SetDemand {
		c := &out.Customers[ch.Customer]
		c.Demand = ch.Demand
		c.Profit = ch.Profit
		if c.Profit == 0 {
			c.Profit = c.Demand
		}
	}
	for _, ch := range d.SetCapacity {
		out.Antennas[ch.Antenna].Capacity = ch.Capacity
	}
	if len(d.Remove) > 0 {
		gone := make(map[int]bool, len(d.Remove))
		for _, id := range d.Remove {
			gone[id] = true
		}
		kept := out.Customers[:0]
		for _, c := range out.Customers {
			if !gone[c.ID] {
				kept = append(kept, c)
			}
		}
		out.Customers = kept
	}
	for _, c := range d.Add {
		c.Theta = geom.NormAngle(c.Theta)
		if c.Profit == 0 {
			c.Profit = c.Demand
		}
		out.Customers = append(out.Customers, c)
	}
	out.Normalize()
	return out, nil
}

// Trace is a churn scenario: a base instance plus an ordered list of deltas.
// Delta k's customer IDs refer to the instance state after deltas 0..k-1
// (post-renumbering), so replay order matters. sectorgen -churn emits
// traces; the session differential suite replays them.
type Trace struct {
	Name     string    `json:"name,omitempty"`
	Instance *Instance `json:"instance"`
	Deltas   []Delta   `json:"deltas"`
}

// Materialize returns the instance after the first k deltas (k = 0 returns
// a clone of the base). It is the from-scratch reference the session's
// incremental state is differential-tested against.
func (t *Trace) Materialize(k int) (*Instance, error) {
	if k < 0 || k > len(t.Deltas) {
		return nil, fmt.Errorf("materialize step %d out of range [0,%d]", k, len(t.Deltas))
	}
	cur := t.Instance.Clone()
	for i := 0; i < k; i++ {
		next, err := ApplyDelta(cur, t.Deltas[i])
		if err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// traceJSON is the versioned wire envelope for churn traces, mirroring the
// instance and batch envelopes in io.go.
type traceJSON struct {
	FormatVersion int    `json:"format_version"`
	Trace         *Trace `json:"trace"`
}

// WriteTraceJSON serializes a churn trace to w with indentation, wrapped in
// the versioned envelope.
func WriteTraceJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceJSON{FormatVersion: formatVersion, Trace: t})
}

// ReadTraceJSON parses a trace written by WriteTraceJSON and validates it
// end to end: the base instance must validate, and every delta must apply
// cleanly in sequence (a delta's IDs are only meaningful against the state
// its predecessors produced, so validation IS replay).
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var env traceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("decode trace: %w", err)
	}
	if env.FormatVersion != formatVersion {
		return nil, fmt.Errorf("unsupported trace format version %d (want %d)", env.FormatVersion, formatVersion)
	}
	if env.Trace == nil || env.Trace.Instance == nil {
		return nil, fmt.Errorf("trace envelope missing instance")
	}
	env.Trace.Instance.Normalize()
	if err := env.Trace.Instance.Validate(); err != nil {
		return nil, fmt.Errorf("invalid trace instance: %w", err)
	}
	if _, err := env.Trace.Materialize(len(env.Trace.Deltas)); err != nil {
		return nil, fmt.Errorf("invalid trace: %w", err)
	}
	return env.Trace, nil
}

// SaveTraceFile writes the trace to path with the same atomicity guarantee
// as SaveFile.
func SaveTraceFile(path string, t *Trace) error {
	return writeFileAtomic(path, func(w io.Writer) error { return WriteTraceJSON(w, t) })
}

// LoadTraceFile reads a churn trace from path.
func LoadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTraceJSON(f)
}
