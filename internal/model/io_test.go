package model

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	in := testInstance()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if out.N() != in.N() || out.M() != in.M() || out.Name != in.Name || out.Variant != in.Variant {
		t.Fatalf("round trip changed shape: %+v", out)
	}
	for i := range in.Customers {
		if out.Customers[i] != in.Customers[i] {
			t.Errorf("customer %d changed: %+v vs %+v", i, out.Customers[i], in.Customers[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format_version": 99, "instance": {"variant":0}}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format_version": 1}`)); err == nil {
		t.Error("missing body should fail")
	}
	// invalid instance content
	bad := `{"format_version":1,"instance":{"variant":0,"customers":[{"id":0,"theta":0,"r":1,"demand":-5}],"antennas":[]}}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid instance should fail validation")
	}
	// unknown fields rejected
	unk := `{"format_version":1,"bogus":3,"instance":{"variant":0,"customers":[],"antennas":[]}}`
	if _, err := ReadJSON(strings.NewReader(unk)); err == nil {
		t.Error("unknown fields should fail")
	}
}

func TestBatchJSONRoundTrip(t *testing.T) {
	ins := []*Instance{testInstance(), testInstance(), testInstance()}
	ins[1].Name = "second"
	var buf bytes.Buffer
	if err := WriteBatchJSON(&buf, ins); err != nil {
		t.Fatalf("WriteBatchJSON: %v", err)
	}
	out, err := ReadBatchJSON(&buf)
	if err != nil {
		t.Fatalf("ReadBatchJSON: %v", err)
	}
	if len(out) != len(ins) {
		t.Fatalf("round trip changed batch size: %d vs %d", len(out), len(ins))
	}
	for k, in := range ins {
		if out[k].N() != in.N() || out[k].M() != in.M() || out[k].Name != in.Name {
			t.Errorf("batch item %d changed shape: %+v", k, out[k])
		}
		for i := range in.Customers {
			if out[k].Customers[i] != in.Customers[i] {
				t.Errorf("item %d customer %d changed: %+v vs %+v", k, i, out[k].Customers[i], in.Customers[i])
			}
		}
	}
}

func TestReadBatchJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"format_version": 99, "instances": [{"variant":0,"customers":[],"antennas":[]}]}`,
		"no instances":  `{"format_version": 1, "instances": []}`,
		"null item":     `{"format_version": 1, "instances": [null]}`,
		"unknown field": `{"format_version":1,"bogus":3,"instances":[{"variant":0,"customers":[],"antennas":[]}]}`,
		"invalid item":  `{"format_version":1,"instances":[{"variant":0,"customers":[],"antennas":[]},{"variant":0,"customers":[{"id":0,"theta":0,"r":1,"demand":-5}],"antennas":[]}]}`,
	}
	for name, body := range cases {
		if _, err := ReadBatchJSON(strings.NewReader(body)); err == nil {
			t.Errorf("%s: ReadBatchJSON accepted it", name)
		}
	}
	// An item error names the failing index so a 200-instance envelope is
	// debuggable.
	_, err := ReadBatchJSON(strings.NewReader(cases["invalid item"]))
	if err == nil || !strings.Contains(err.Error(), "instance 1") {
		t.Errorf("item error %v does not name the failing index", err)
	}
}

func TestSaveLoadBatchFile(t *testing.T) {
	ins := []*Instance{testInstance(), testInstance()}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := SaveBatchFile(path, ins); err != nil {
		t.Fatalf("SaveBatchFile: %v", err)
	}
	out, err := LoadBatchFile(path)
	if err != nil {
		t.Fatalf("LoadBatchFile: %v", err)
	}
	if len(out) != 2 || out[0].N() != ins[0].N() {
		t.Fatalf("batch file round trip changed shape")
	}
	if _, err := LoadBatchFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	in := testInstance()
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := SaveFile(path, in); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	out, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if out.N() != in.N() || out.M() != in.M() {
		t.Fatalf("file round trip changed shape")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}
