package model

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	in := testInstance()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if out.N() != in.N() || out.M() != in.M() || out.Name != in.Name || out.Variant != in.Variant {
		t.Fatalf("round trip changed shape: %+v", out)
	}
	for i := range in.Customers {
		if out.Customers[i] != in.Customers[i] {
			t.Errorf("customer %d changed: %+v vs %+v", i, out.Customers[i], in.Customers[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format_version": 99, "instance": {"variant":0}}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format_version": 1}`)); err == nil {
		t.Error("missing body should fail")
	}
	// invalid instance content
	bad := `{"format_version":1,"instance":{"variant":0,"customers":[{"id":0,"theta":0,"r":1,"demand":-5}],"antennas":[]}}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid instance should fail validation")
	}
	// unknown fields rejected
	unk := `{"format_version":1,"bogus":3,"instance":{"variant":0,"customers":[],"antennas":[]}}`
	if _, err := ReadJSON(strings.NewReader(unk)); err == nil {
		t.Error("unknown fields should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	in := testInstance()
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := SaveFile(path, in); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	out, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if out.N() != in.N() || out.M() != in.M() {
		t.Fatalf("file round trip changed shape")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}
