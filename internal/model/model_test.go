package model

import (
	"math"
	"strings"
	"testing"

	"sectorpack/internal/geom"
)

// testInstance builds a small valid instance used across the tests.
func testInstance() *Instance {
	in := &Instance{
		Name:    "test",
		Variant: Sectors,
		Customers: []Customer{
			{Theta: 0.1, R: 1, Demand: 3},
			{Theta: 1.0, R: 2, Demand: 5},
			{Theta: 2.0, R: 6, Demand: 2},
			{Theta: 4.0, R: 1, Demand: 4},
		},
		Antennas: []Antenna{
			{Rho: 1.5, Range: 5, Capacity: 8},
			{Rho: 1.0, Range: 10, Capacity: 4},
		},
	}
	return in.Normalize()
}

func TestNormalizeDefaults(t *testing.T) {
	in := testInstance()
	for i, c := range in.Customers {
		if c.ID != i {
			t.Errorf("customer %d: ID = %d", i, c.ID)
		}
		if c.Profit != c.Demand {
			t.Errorf("customer %d: profit %d should default to demand %d", i, c.Profit, c.Demand)
		}
	}
	for j, a := range in.Antennas {
		if a.ID != j {
			t.Errorf("antenna %d: ID = %d", j, a.ID)
		}
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := testInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mut := []struct {
		name string
		f    func(*Instance)
		want string
	}{
		{"bad theta", func(in *Instance) { in.Customers[0].Theta = 7 }, "theta"},
		{"negative radius", func(in *Instance) { in.Customers[0].R = -1 }, "radius"},
		{"zero demand", func(in *Instance) { in.Customers[0].Demand = 0 }, "demand"},
		{"negative profit", func(in *Instance) { in.Customers[0].Profit = -2 }, "profit"},
		{"bad id", func(in *Instance) { in.Customers[1].ID = 9 }, "ID"},
		{"bad width", func(in *Instance) { in.Antennas[0].Rho = 7 }, "width"},
		{"negative capacity", func(in *Instance) { in.Antennas[0].Capacity = -1 }, "capacity"},
		{"nan range", func(in *Instance) { in.Antennas[0].Range = math.NaN() }, "NaN"},
	}
	for _, m := range mut {
		in := testInstance()
		m.f(in)
		err := in.Validate()
		if err == nil {
			t.Errorf("%s: expected validation error", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestValidateVariantConstraints(t *testing.T) {
	in := testInstance()
	in.Variant = Angles
	if err := in.Validate(); err == nil {
		t.Error("Angles variant with bounded ranges should be rejected")
	}
	for j := range in.Antennas {
		in.Antennas[j].Range = 0 // unbounded encoding
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Angles variant with unbounded ranges rejected: %v", err)
	}
	in.Variant = DisjointAngles
	in.Antennas[0].Rho = 4
	in.Antennas[1].Rho = 3 // total 7 > 2π
	if err := in.Validate(); err == nil {
		t.Error("DisjointAngles with total width > 2π should be rejected")
	}
}

func TestAggregates(t *testing.T) {
	in := testInstance()
	if got := in.TotalDemand(); got != 14 {
		t.Errorf("TotalDemand = %d, want 14", got)
	}
	if got := in.TotalProfit(); got != 14 {
		t.Errorf("TotalProfit = %d, want 14", got)
	}
	if got := in.TotalCapacity(); got != 12 {
		t.Errorf("TotalCapacity = %d, want 12", got)
	}
	if got := in.Tightness(); math.Abs(got-14.0/12.0) > 1e-12 {
		t.Errorf("Tightness = %v", got)
	}
	in.Antennas = nil
	if !math.IsInf(in.Tightness(), 1) {
		t.Error("Tightness with zero capacity should be +Inf")
	}
}

func TestUnitDemand(t *testing.T) {
	in := testInstance()
	if in.UnitDemand() {
		t.Error("mixed demands are not unit")
	}
	for i := range in.Customers {
		in.Customers[i].Demand = 2
		in.Customers[i].Profit = 2
	}
	if !in.UnitDemand() {
		t.Error("uniform demands are unit")
	}
	empty := &Instance{}
	if !empty.UnitDemand() {
		t.Error("empty instance is vacuously unit")
	}
}

func TestAntennaCoverage(t *testing.T) {
	a := Antenna{Rho: 1, Range: 5, Capacity: 10}
	c := Customer{Theta: 0.5, R: 3, Demand: 1}
	if !a.Covers(0, c) {
		t.Error("antenna at 0 should cover θ=0.5")
	}
	if a.Covers(2, c) {
		t.Error("antenna at 2 should not cover θ=0.5")
	}
	far := Customer{Theta: 0.5, R: 6, Demand: 1}
	if a.Covers(0, far) {
		t.Error("customer beyond range should not be covered")
	}
	if !a.InRange(c) || a.InRange(far) {
		t.Error("InRange disagrees with radial reach")
	}
	ub := Antenna{Rho: 1, Range: 0, Capacity: 10}
	if !ub.Unbounded() || !ub.InRange(far) {
		t.Error("range<=0 encodes unbounded")
	}
	if !math.IsInf(ub.EffRange(), 1) {
		t.Error("EffRange of unbounded antenna should be +Inf")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := testInstance()
	cp := in.Clone()
	cp.Customers[0].Demand = 99
	cp.Antennas[0].Capacity = 99
	if in.Customers[0].Demand == 99 || in.Antennas[0].Capacity == 99 {
		t.Error("Clone must not share backing arrays")
	}
}

func TestVariantString(t *testing.T) {
	for _, v := range []Variant{Sectors, Angles, DisjointAngles, Variant(9)} {
		if v.String() == "" {
			t.Errorf("Variant(%d).String() empty", int(v))
		}
	}
}

func TestCustomerPos(t *testing.T) {
	c := Customer{Theta: 1.25, R: 4}
	p := c.Pos()
	//sectorlint:ignore floateq Pos copies the exact literals the customer was built with
	if p.Theta != 1.25 || p.R != 4 {
		t.Errorf("Pos = %v", p)
	}
	_ = geom.Polar(p) // Pos returns the geom type directly
}
