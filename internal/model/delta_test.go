package model

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func deltaBase() *Instance {
	in := &Instance{
		Name:    "delta-base",
		Variant: Sectors,
		Customers: []Customer{
			{Theta: 0.1, R: 1, Demand: 2},
			{Theta: 0.5, R: 2, Demand: 3, Profit: 7},
			{Theta: 1.0, R: 3, Demand: 1},
			{Theta: 2.0, R: 4, Demand: 5},
		},
		Antennas: []Antenna{
			{Rho: 1, Range: 5, Capacity: 10},
			{Rho: 1, Range: 3, Capacity: 4},
		},
	}
	in.Normalize()
	if err := in.Validate(); err != nil {
		panic(err)
	}
	return in
}

func TestApplyDeltaOrderAndRenumber(t *testing.T) {
	in := deltaBase()
	d := Delta{
		SetDemand:   []DemandChange{{Customer: 1, Demand: 9}}, // profit defaults to 9
		SetCapacity: []CapacityChange{{Antenna: 1, Capacity: 6}},
		Remove:      []int{0, 2},
		Add:         []Customer{{Theta: -0.5, R: 1.5, Demand: 4}}, // theta normalized
	}
	out, err := ApplyDelta(in, d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.N(), 3; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	// Survivors keep order and are renumbered: old 1 -> new 0, old 3 -> new 1.
	if out.Customers[0].Demand != 9 || out.Customers[0].Profit != 9 {
		t.Errorf("survivor 0 = %+v, want demand/profit 9 (SetDemand applied before Remove)", out.Customers[0])
	}
	if out.Customers[1].Demand != 5 {
		t.Errorf("survivor 1 = %+v, want old customer 3", out.Customers[1])
	}
	// The added customer is appended last with a normalized angle.
	add := out.Customers[2]
	if add.ID != 2 || add.Profit != 4 {
		t.Errorf("added customer = %+v, want ID 2 and defaulted profit", add)
	}
	if add.Theta < 0 || add.Theta >= 2*math.Pi {
		t.Errorf("added theta %v not normalized", add.Theta)
	}
	if out.Antennas[1].Capacity != 6 {
		t.Errorf("antenna 1 capacity = %d, want 6", out.Antennas[1].Capacity)
	}
	for i, c := range out.Customers {
		if c.ID != i {
			t.Errorf("customer %d has ID %d after renumbering", i, c.ID)
		}
	}
	if err := out.Validate(); err != nil {
		t.Errorf("materialized instance invalid: %v", err)
	}
	// The input must be untouched.
	if in.N() != 4 || in.Customers[1].Demand != 3 || in.Antennas[1].Capacity != 4 {
		t.Error("ApplyDelta modified its input")
	}
}

func TestApplyDeltaEmpty(t *testing.T) {
	in := deltaBase()
	if !(Delta{}).Empty() {
		t.Error("zero delta not Empty")
	}
	out, err := ApplyDelta(in, Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != in.N() || out.M() != in.M() {
		t.Errorf("empty delta changed shape: %d/%d -> %d/%d", in.N(), in.M(), out.N(), out.M())
	}
}

func TestDeltaValidateRejects(t *testing.T) {
	in := deltaBase()
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"customer out of range", Delta{SetDemand: []DemandChange{{Customer: 9, Demand: 1}}}, "out of range"},
		{"duplicate demand target", Delta{SetDemand: []DemandChange{{Customer: 1, Demand: 1}, {Customer: 1, Demand: 2}}}, "targeted twice"},
		{"non-positive demand", Delta{SetDemand: []DemandChange{{Customer: 0, Demand: 0}}}, "must be positive"},
		{"antenna out of range", Delta{SetCapacity: []CapacityChange{{Antenna: 2, Capacity: 1}}}, "out of range"},
		{"negative capacity", Delta{SetCapacity: []CapacityChange{{Antenna: 0, Capacity: -1}}}, "non-negative"},
		{"duplicate remove", Delta{Remove: []int{1, 1}}, "removed twice"},
		{"remove out of range", Delta{Remove: []int{-1}}, "out of range"},
		{"bad added radius", Delta{Add: []Customer{{Theta: 0, R: math.Inf(1), Demand: 1}}}, "invalid radius"},
		{"bad added theta", Delta{Add: []Customer{{Theta: math.NaN(), R: 1, Demand: 1}}}, "invalid theta"},
		{"bad added demand", Delta{Add: []Customer{{Theta: 0, R: 1, Demand: 0}}}, "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ApplyDelta(in, tc.d); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ApplyDelta err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestTraceRoundTripAndMaterialize(t *testing.T) {
	tr := &Trace{
		Name:     "rt",
		Instance: deltaBase(),
		Deltas: []Delta{
			{Remove: []int{0}},
			// After delta 0 the old customer 1 is ID 0.
			{SetDemand: []DemandChange{{Customer: 0, Demand: 11}}, Add: []Customer{{Theta: 1, R: 2, Demand: 2}}},
		},
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || len(got.Deltas) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	fin, err := got.Materialize(len(got.Deltas))
	if err != nil {
		t.Fatal(err)
	}
	if fin.N() != 4 || fin.Customers[0].Demand != 11 {
		t.Errorf("materialized final = n=%d customers[0]=%+v", fin.N(), fin.Customers[0])
	}
	base, err := got.Materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	if base.N() != 4 || base.Customers[0].Demand != 2 {
		t.Errorf("materialize(0) should clone the base, got customers[0]=%+v", base.Customers[0])
	}
	if _, err := got.Materialize(3); err == nil {
		t.Error("materialize past the end should fail")
	}
}

func TestReadTraceJSONRejectsBrokenReplay(t *testing.T) {
	tr := &Trace{
		Instance: deltaBase(),
		// Delta 0 shrinks to 3 customers, so delta 1's target 3 is stale.
		Deltas: []Delta{{Remove: []int{0}}, {SetDemand: []DemandChange{{Customer: 3, Demand: 1}}}},
	}
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceJSON(&buf); err == nil || !strings.Contains(err.Error(), "delta 1") {
		t.Fatalf("ReadTraceJSON err = %v, want replay failure naming delta 1", err)
	}
}
