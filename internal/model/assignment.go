package model

import (
	"fmt"

	"sectorpack/internal/geom"
)

// Unassigned marks a customer not served by any antenna.
const Unassigned = -1

// Assignment is a complete solution candidate: an orientation per antenna
// and an owner antenna (or Unassigned) per customer. Indices are positions
// into the instance slices.
type Assignment struct {
	Orientation []float64 // len = M
	Owner       []int     // len = N; antenna index or Unassigned
}

// NewAssignment returns an empty assignment (every customer unassigned,
// every antenna oriented at 0) for the given instance shape.
func NewAssignment(n, m int) *Assignment {
	as := &Assignment{
		Orientation: make([]float64, m),
		Owner:       make([]int, n),
	}
	for i := range as.Owner {
		as.Owner[i] = Unassigned
	}
	return as
}

// Clone deep-copies the assignment.
func (as *Assignment) Clone() *Assignment {
	return &Assignment{
		Orientation: append([]float64(nil), as.Orientation...),
		Owner:       append([]int(nil), as.Owner...),
	}
}

// Profit returns the total profit of the served customers.
func (as *Assignment) Profit(in *Instance) int64 {
	var p int64
	for i, owner := range as.Owner {
		if owner != Unassigned {
			p += in.Customers[i].Profit
		}
	}
	return p
}

// ServedDemand returns the total demand of the served customers.
func (as *Assignment) ServedDemand(in *Instance) int64 {
	var d int64
	for i, owner := range as.Owner {
		if owner != Unassigned {
			d += in.Customers[i].Demand
		}
	}
	return d
}

// Load returns the demand assigned to each antenna.
func (as *Assignment) Load(in *Instance) []int64 {
	load := make([]int64, in.M())
	for i, owner := range as.Owner {
		if owner != Unassigned {
			load[owner] += in.Customers[i].Demand
		}
	}
	return load
}

// ServedCount returns the number of served customers.
func (as *Assignment) ServedCount() int {
	n := 0
	for _, owner := range as.Owner {
		if owner != Unassigned {
			n++
		}
	}
	return n
}

// Sectors returns the oriented sector of each antenna.
func (as *Assignment) Sectors(in *Instance) []geom.Sector {
	out := make([]geom.Sector, in.M())
	for j, a := range in.Antennas {
		out[j] = a.Sector(as.Orientation[j])
	}
	return out
}

// Check verifies feasibility of the assignment against the instance and its
// variant: shape agreement, geometric coverage, capacities, and (for
// DisjointAngles) pairwise sector disjointness. It returns nil when the
// assignment is feasible.
func (as *Assignment) Check(in *Instance) error {
	if len(as.Owner) != in.N() {
		return fmt.Errorf("assignment has %d owners for %d customers", len(as.Owner), in.N())
	}
	if len(as.Orientation) != in.M() {
		return fmt.Errorf("assignment has %d orientations for %d antennas", len(as.Orientation), in.M())
	}
	load := make([]int64, in.M())
	for i, owner := range as.Owner {
		if owner == Unassigned {
			continue
		}
		if owner < 0 || owner >= in.M() {
			return fmt.Errorf("customer %d assigned to nonexistent antenna %d", i, owner)
		}
		a := in.Antennas[owner]
		if !a.Covers(as.Orientation[owner], in.Customers[i]) {
			return fmt.Errorf("customer %d (θ=%.6f r=%.3f) not covered by antenna %d oriented at %.6f (ρ=%.6f R=%v)",
				i, in.Customers[i].Theta, in.Customers[i].R, owner, as.Orientation[owner], a.Rho, a.EffRange())
		}
		load[owner] += in.Customers[i].Demand
	}
	for j, l := range load {
		if l > in.Antennas[j].Capacity {
			return fmt.Errorf("antenna %d overloaded: %d > capacity %d", j, l, in.Antennas[j].Capacity)
		}
	}
	if in.Variant == DisjointAngles {
		// Disjointness binds only for antennas that actually serve
		// customers: an antenna serving nobody is effectively switched
		// off, so its nominal orientation occupies no spectrum. Sector
		// interiors must be disjoint; flush boundaries are allowed.
		serving := make([]bool, in.M())
		for _, owner := range as.Owner {
			if owner != Unassigned {
				serving[owner] = true
			}
		}
		var ivs []geom.Interval
		for j, a := range in.Antennas {
			if serving[j] {
				ivs = append(ivs, geom.NewInterval(as.Orientation[j], a.Rho))
			}
		}
		if !geom.Disjoint(ivs) {
			return fmt.Errorf("variant %v: serving sectors overlap", in.Variant)
		}
	}
	return nil
}

// Solution pairs an assignment with its objective value and provenance.
type Solution struct {
	Assignment *Assignment
	Profit     int64
	Algorithm  string
	// UpperBound, when positive, is a certified upper bound on the optimum
	// produced alongside the solution (e.g. an LP relaxation value).
	UpperBound float64

	// Degraded reports that the requested solver did not produce this
	// solution: it timed out, panicked, errored, or returned an invalid
	// assignment, and a hedged fallback answered instead (core.SolveHedged).
	Degraded bool
	// SolverUsed names the registry solver that actually produced the
	// assignment when the solve went through a hedged pipeline; empty for
	// plain solves.
	SolverUsed string
	// FallbackReason is the machine-readable cause of degradation when
	// Degraded is set: one of core.FallbackDeadline, core.FallbackPanic,
	// core.FallbackError, core.FallbackInvalid.
	FallbackReason string
	// FallbackDetail is the primary solver's error text when Degraded is
	// set, for logs and diagnostics.
	FallbackDetail string
	// HedgeWin reports that the fallback leg had already finished when the
	// primary failed, so the degraded answer added no latency.
	HedgeWin bool
}

// Ratio returns Profit / UpperBound when an upper bound is available, else 0.
func (s Solution) Ratio() float64 {
	if s.UpperBound <= 0 {
		return 0
	}
	return float64(s.Profit) / s.UpperBound
}

func (s Solution) String() string {
	if s.UpperBound > 0 {
		return fmt.Sprintf("%s: profit=%d (≥ %.3f of bound %.1f)", s.Algorithm, s.Profit, s.Ratio(), s.UpperBound)
	}
	return fmt.Sprintf("%s: profit=%d", s.Algorithm, s.Profit)
}
