package model

import (
	"strings"
	"testing"
)

func TestNewAssignmentEmpty(t *testing.T) {
	as := NewAssignment(3, 2)
	if len(as.Owner) != 3 || len(as.Orientation) != 2 {
		t.Fatalf("shape = %d owners, %d orientations", len(as.Owner), len(as.Orientation))
	}
	for _, o := range as.Owner {
		if o != Unassigned {
			t.Error("new assignment must leave customers unassigned")
		}
	}
	if as.ServedCount() != 0 {
		t.Error("ServedCount of empty assignment must be 0")
	}
}

func TestAssignmentAccounting(t *testing.T) {
	in := testInstance()
	as := NewAssignment(in.N(), in.M())
	as.Orientation[0] = 0.0 // covers customers 0 (θ=0.1,r=1) and 1 (θ=1.0,r=2)
	as.Owner[0] = 0
	as.Owner[1] = 0
	if got := as.Profit(in); got != 8 {
		t.Errorf("Profit = %d, want 8", got)
	}
	if got := as.ServedDemand(in); got != 8 {
		t.Errorf("ServedDemand = %d, want 8", got)
	}
	load := as.Load(in)
	if load[0] != 8 || load[1] != 0 {
		t.Errorf("Load = %v", load)
	}
	if as.ServedCount() != 2 {
		t.Errorf("ServedCount = %d, want 2", as.ServedCount())
	}
	if err := as.Check(in); err != nil {
		t.Errorf("feasible assignment rejected: %v", err)
	}
}

func TestCheckDetectsCoverageViolation(t *testing.T) {
	in := testInstance()
	as := NewAssignment(in.N(), in.M())
	as.Orientation[0] = 3.0 // does not cover customer 0 at θ=0.1
	as.Owner[0] = 0
	err := as.Check(in)
	if err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Errorf("expected coverage violation, got %v", err)
	}
}

func TestCheckDetectsRangeViolation(t *testing.T) {
	in := testInstance()
	as := NewAssignment(in.N(), in.M())
	// customer 2 is at r=6, antenna 0 has range 5
	as.Orientation[0] = 1.8
	as.Owner[2] = 0
	if err := as.Check(in); err == nil {
		t.Error("expected radial violation")
	}
	// antenna 1 has range 10: fine
	as.Owner[2] = 1
	as.Orientation[1] = 1.8
	if err := as.Check(in); err != nil {
		t.Errorf("radially feasible assignment rejected: %v", err)
	}
}

func TestCheckDetectsOverload(t *testing.T) {
	in := testInstance()
	in.Antennas[0].Capacity = 7 // customers 0+1 demand 8
	as := NewAssignment(in.N(), in.M())
	as.Owner[0] = 0
	as.Owner[1] = 0
	err := as.Check(in)
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Errorf("expected overload, got %v", err)
	}
}

func TestCheckDetectsBadShapesAndIndices(t *testing.T) {
	in := testInstance()
	as := NewAssignment(in.N()-1, in.M())
	if err := as.Check(in); err == nil {
		t.Error("short owner slice must be rejected")
	}
	as = NewAssignment(in.N(), in.M()+1)
	if err := as.Check(in); err == nil {
		t.Error("long orientation slice must be rejected")
	}
	as = NewAssignment(in.N(), in.M())
	as.Owner[0] = 5
	if err := as.Check(in); err == nil {
		t.Error("out-of-range owner must be rejected")
	}
}

func TestCheckDisjointVariant(t *testing.T) {
	in := testInstance()
	in.Variant = DisjointAngles
	for j := range in.Antennas {
		in.Antennas[j].Range = 0 // unbounded
	}
	as := NewAssignment(in.N(), in.M())
	as.Orientation[0] = 0
	as.Owner[0] = 0 // θ=0.1 in [0, 1.5]
	as.Orientation[1] = 0.5
	as.Owner[1] = 1 // θ=1.0 in [0.5, 1.5] — sector interiors overlap
	if err := as.Check(in); err == nil {
		t.Error("overlapping serving sectors must be rejected under DisjointAngles")
	}
	as.Orientation[1] = 1.8
	as.Owner[1] = Unassigned
	as.Owner[2] = 1 // θ=2.0 in [1.8, 2.8]
	if err := as.Check(in); err != nil {
		t.Errorf("disjoint serving sectors rejected: %v", err)
	}
	// An overlapping but idle antenna does not violate disjointness.
	as.Owner[2] = Unassigned
	as.Orientation[1] = 0.5
	if err := as.Check(in); err != nil {
		t.Errorf("idle antenna should not trigger disjointness: %v", err)
	}
	// Flush sectors are allowed.
	as.Orientation[1] = 1.5
	as.Owner[2] = 1 // θ=2.0 in [1.5, 2.5]
	if err := as.Check(in); err != nil {
		t.Errorf("flush serving sectors rejected: %v", err)
	}
}

func TestAssignmentClone(t *testing.T) {
	as := NewAssignment(2, 1)
	cp := as.Clone()
	cp.Owner[0] = 0
	cp.Orientation[0] = 1
	if as.Owner[0] != Unassigned || as.Orientation[0] != 0 {
		t.Error("Clone must not share backing arrays")
	}
}

func TestSolutionRatioAndString(t *testing.T) {
	s := Solution{Profit: 50, UpperBound: 100, Algorithm: "greedy"}
	//sectorlint:ignore floateq 50/100 divides to exactly 0.5; Ratio must not perturb it
	if s.Ratio() != 0.5 {
		t.Errorf("Ratio = %v", s.Ratio())
	}
	if !strings.Contains(s.String(), "greedy") {
		t.Error("String should include algorithm name")
	}
	s2 := Solution{Profit: 50, Algorithm: "exact"}
	if s2.Ratio() != 0 {
		t.Error("Ratio without bound should be 0")
	}
	if !strings.Contains(s2.String(), "50") {
		t.Error("String should include profit")
	}
}

func TestSectorsView(t *testing.T) {
	in := testInstance()
	as := NewAssignment(in.N(), in.M())
	as.Orientation[1] = 2.5
	secs := as.Sectors(in)
	if len(secs) != in.M() {
		t.Fatalf("Sectors length = %d", len(secs))
	}
	//sectorlint:ignore floateq sector fields are copied verbatim from the exact input literals
	if secs[1].Alpha != 2.5 || secs[1].Rho != in.Antennas[1].Rho {
		t.Errorf("sector 1 = %v", secs[1])
	}
}
