package model

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveFileAtomicOnEncodeFailure is the regression test for the torn-
// write bug: a SaveFile whose serialization fails mid-stream must leave
// the destination untouched and no temp litter behind. A NaN angle makes
// the JSON encoder fail after the file is already open.
func TestSaveFileAtomicOnEncodeFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	good := testInstance()
	if err := SaveFile(path, good); err != nil {
		t.Fatalf("initial SaveFile: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad := good.Clone()
	bad.Customers[0].Theta = math.NaN() // unmarshalable: encoder must fail
	if err := SaveFile(path, bad); err == nil {
		t.Fatal("SaveFile of an unencodable instance must fail")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination vanished after failed save: %v", err)
	}
	if string(after) != string(before) {
		t.Error("failed save corrupted the destination file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "inst.json" {
			t.Errorf("failed save left stray file %q", e.Name())
		}
	}
	// The destination must still load.
	if _, err := LoadFile(path); err != nil {
		t.Errorf("destination unreadable after failed save: %v", err)
	}
}

// TestSaveFileOverwrites checks the success path over an existing file:
// the rename replaces the old content completely.
func TestSaveFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	a := testInstance()
	if err := SaveFile(path, a); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	b.Name = "second-version"
	if err := SaveFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "second-version" {
		t.Errorf("loaded name %q, want the overwritten content", got.Name)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after two saves, want 1", len(entries))
	}
}

// TestSaveFileBadDirectory checks the error path before any temp file is
// created.
func TestSaveFileBadDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "inst.json")
	if err := SaveFile(path, testInstance()); err == nil {
		t.Error("SaveFile into a missing directory must fail")
	}
}
