package model

import (
	"bytes"
	"testing"
)

// FuzzReadJSON hammers the instance envelope decoder with arbitrary
// bytes: it must never panic, and anything it accepts must Validate,
// survive a Write/Read round trip unchanged, and keep its feasibility
// machinery (Check on an empty assignment, the aggregate accessors) total.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"format_version":1,"instance":{"variant":0,"customers":[{"id":0,"theta":0.5,"r":2,"demand":3}],"antennas":[{"id":0,"rho":1,"range":5,"capacity":4}]}}`))
	f.Add([]byte(`{"format_version":1,"instance":{"variant":2,"customers":[],"antennas":[{"id":0,"rho":0,"capacity":1}]}}`))
	f.Add([]byte(`{"format_version":1,"instance":{"variant":0,"customers":[{"id":0,"theta":1.25,"r":3,"demand":1}],"antennas":[{"id":0,"rho":0,"range":5,"min_range":1,"capacity":1}]}}`))
	f.Add([]byte(`{"format_version":9,"instance":null}`))
	f.Add([]byte(`{not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an instance that fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, in); err != nil {
			t.Fatalf("WriteJSON on a just-decoded instance: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed to decode: %v", err)
		}
		if back.N() != in.N() || back.M() != in.M() || back.Variant != in.Variant {
			t.Fatalf("round trip changed shape: n %d→%d m %d→%d variant %v→%v",
				in.N(), back.N(), in.M(), back.M(), in.Variant, back.Variant)
		}
		// The aggregate accessors and an empty-assignment Check must be
		// total on any accepted instance.
		_ = in.TotalDemand()
		_ = in.TotalProfit()
		_ = in.Tightness()
		if err := NewAssignment(in.N(), in.M()).Check(in); err != nil {
			t.Fatalf("empty assignment rejected: %v", err)
		}
	})
}
