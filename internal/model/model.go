// Package model defines the sector-packing problem data types: customers,
// antennas, problem instances, and (partial) assignments, together with
// validation, feasibility checking, and JSON serialization.
//
// Demands, capacities, and profits are int64: every pseudo-polynomial
// algorithm in the repository (knapsack DPs, the disjoint-window DP)
// requires integer demands, and integer profits make optimality comparisons
// exact. Generators that draw real-valued demands scale and round them.
package model

import (
	"errors"
	"fmt"
	"math"

	"sectorpack/internal/geom"
)

// Customer is a demand point on the plane.
type Customer struct {
	ID     int     `json:"id"`
	Theta  float64 `json:"theta"`  // angular coordinate, radians in [0, 2π)
	R      float64 `json:"r"`      // distance from the base station
	Demand int64   `json:"demand"` // capacity consumed when served
	Profit int64   `json:"profit"` // objective value when served (defaults to Demand)
}

// Pos returns the customer's polar position.
func (c Customer) Pos() geom.Polar { return geom.Polar{Theta: c.Theta, R: c.R} }

// Antenna is a directional antenna the solver may orient freely.
//
// A zero angular width (Rho == 0) is legal and means a degenerate ray: the
// antenna serves only customers exactly aligned with its orientation
// (within geom.Eps tolerance, like every other containment test). All
// registered solvers honor this semantics — in the DisjointAngles variant a
// ray's empty-interior sector is exempt from disjointness.
type Antenna struct {
	ID       int     `json:"id"`
	Rho      float64 `json:"rho"`      // angular width, radians in [0, 2π]; 0 = degenerate ray
	Range    float64 `json:"range"`    // radial reach; +Inf (encoded as <= 0) means unbounded
	Capacity int64   `json:"capacity"` // total demand it can serve
	// MinRange is the near-field exclusion radius (annulus-sector
	// extension): customers closer than it cannot be served by this
	// antenna. Zero, the default, recovers the paper's plain sector.
	MinRange float64 `json:"min_range,omitempty"`
}

// Unbounded reports whether the antenna has unlimited radial reach.
func (a Antenna) Unbounded() bool { return math.IsInf(a.Range, 1) || a.Range <= 0 }

// EffRange returns the radial reach with the unbounded encoding resolved to
// +Inf.
func (a Antenna) EffRange() float64 {
	if a.Unbounded() {
		return math.Inf(1)
	}
	return a.Range
}

// Sector returns the antenna's footprint when oriented at alpha.
func (a Antenna) Sector(alpha float64) geom.Sector {
	s := geom.NewSector(alpha, a.Rho, a.EffRange())
	s.Inner = a.MinRange
	return s
}

// Covers reports whether the antenna, oriented at alpha, covers customer c.
func (a Antenna) Covers(alpha float64, c Customer) bool {
	return a.Sector(alpha).Contains(c.Pos())
}

// InRange reports whether the customer is radially reachable by the antenna
// under some orientation (the purely angular part is always satisfiable by
// rotating, unless Rho is zero and the customer is off-axis — orientation
// handles that too since the sector boundary can pass through the customer).
func (a Antenna) InRange(c Customer) bool {
	if a.MinRange > 0 && c.R < a.MinRange*(1-1e-12)-geom.Eps {
		return false
	}
	if a.Unbounded() {
		return true
	}
	return c.R <= a.Range*(1+1e-12)+geom.Eps
}

// RadialBounds returns the closed radius interval [lo, hi] of customers the
// antenna can reach, with exactly the tolerance slack InRange applies: for
// any customer with a non-NaN radius, InRange(c) == (lo <= c.R && c.R <= hi).
// An unbounded antenna yields hi = +Inf; a zero MinRange yields lo = -Inf.
// The columnar radial pre-filter (internal/cols) binary-searches its
// radius-sorted index against these bounds, so they MUST stay the literal
// mirror of InRange's comparisons — a test enforces the equivalence.
func (a Antenna) RadialBounds() (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if a.MinRange > 0 {
		lo = a.MinRange*(1-1e-12) - geom.Eps
	}
	if !a.Unbounded() {
		hi = a.Range*(1+1e-12) + geom.Eps
	}
	return lo, hi
}

// Variant labels the problem variants from the paper.
type Variant int

const (
	// Sectors is the general problem: angular width and radial range both
	// constrain coverage.
	Sectors Variant = iota
	// Angles is the pure angular problem (all ranges unbounded).
	Angles
	// DisjointAngles additionally requires the chosen sectors to be
	// pairwise angularly disjoint.
	DisjointAngles
)

func (v Variant) String() string {
	switch v {
	case Sectors:
		return "sectors"
	case Angles:
		return "angles"
	case DisjointAngles:
		return "disjoint-angles"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Instance is a complete problem instance.
type Instance struct {
	Name      string     `json:"name,omitempty"`
	Variant   Variant    `json:"variant"`
	Customers []Customer `json:"customers"`
	Antennas  []Antenna  `json:"antennas"`
}

// N returns the number of customers.
func (in *Instance) N() int { return len(in.Customers) }

// M returns the number of antennas.
func (in *Instance) M() int { return len(in.Antennas) }

// TotalDemand sums all customer demands.
func (in *Instance) TotalDemand() int64 {
	var s int64
	for _, c := range in.Customers {
		s += c.Demand
	}
	return s
}

// TotalProfit sums all customer profits (an upper bound on any objective).
func (in *Instance) TotalProfit() int64 {
	var s int64
	for _, c := range in.Customers {
		s += c.Profit
	}
	return s
}

// TotalCapacity sums all antenna capacities.
func (in *Instance) TotalCapacity() int64 {
	var s int64
	for _, a := range in.Antennas {
		s += a.Capacity
	}
	return s
}

// Tightness is the ratio of total demand to total capacity: > 1 means the
// antennas cannot possibly serve everyone.
func (in *Instance) Tightness() float64 {
	cap := in.TotalCapacity()
	if cap == 0 {
		return math.Inf(1)
	}
	return float64(in.TotalDemand()) / float64(cap)
}

// UnitDemand reports whether every customer has the same demand and profit
// (the UNIT variant precondition for the flow-based exact solver).
func (in *Instance) UnitDemand() bool {
	if len(in.Customers) == 0 {
		return true
	}
	d, p := in.Customers[0].Demand, in.Customers[0].Profit
	for _, c := range in.Customers {
		if c.Demand != d || c.Profit != p {
			return false
		}
	}
	return true
}

// Validate checks structural well-formedness: normalized angles,
// non-negative radii, positive demands, IDs equal to slice positions (the
// solvers index by position and report by ID; keeping them equal removes a
// whole class of bookkeeping bugs), and widths within [0, 2π].
func (in *Instance) Validate() error {
	var errs []error
	for i, c := range in.Customers {
		if c.ID != i {
			errs = append(errs, fmt.Errorf("customer %d: ID %d must equal slice index", i, c.ID))
		}
		if c.Theta < 0 || c.Theta >= geom.TwoPi || math.IsNaN(c.Theta) {
			errs = append(errs, fmt.Errorf("customer %d: theta %v outside [0, 2π)", i, c.Theta))
		}
		if c.R < 0 || math.IsNaN(c.R) || math.IsInf(c.R, 0) {
			errs = append(errs, fmt.Errorf("customer %d: invalid radius %v", i, c.R))
		}
		if c.Demand <= 0 {
			errs = append(errs, fmt.Errorf("customer %d: demand %d must be positive", i, c.Demand))
		}
		if c.Profit < 0 {
			errs = append(errs, fmt.Errorf("customer %d: profit %d must be non-negative", i, c.Profit))
		}
	}
	for j, a := range in.Antennas {
		if a.ID != j {
			errs = append(errs, fmt.Errorf("antenna %d: ID %d must equal slice index", j, a.ID))
		}
		if a.Rho < 0 || a.Rho > geom.TwoPi || math.IsNaN(a.Rho) {
			errs = append(errs, fmt.Errorf("antenna %d: width %v outside [0, 2π]", j, a.Rho))
		}
		if a.Capacity < 0 {
			errs = append(errs, fmt.Errorf("antenna %d: capacity %d must be non-negative", j, a.Capacity))
		}
		if math.IsNaN(a.Range) {
			errs = append(errs, fmt.Errorf("antenna %d: range is NaN", j))
		}
		if a.MinRange < 0 || math.IsNaN(a.MinRange) {
			errs = append(errs, fmt.Errorf("antenna %d: invalid min range %v", j, a.MinRange))
		}
		if a.MinRange > 0 && !a.Unbounded() && a.MinRange > a.Range {
			errs = append(errs, fmt.Errorf("antenna %d: min range %v exceeds range %v", j, a.MinRange, a.Range))
		}
	}
	if in.Variant == Angles || in.Variant == DisjointAngles {
		for j, a := range in.Antennas {
			if !a.Unbounded() {
				errs = append(errs, fmt.Errorf("antenna %d: variant %v requires unbounded range, got %v", j, in.Variant, a.Range))
			}
		}
	}
	if in.Variant == DisjointAngles {
		var w float64
		for _, a := range in.Antennas {
			w += a.Rho
		}
		if w > geom.TwoPi+geom.Eps {
			errs = append(errs, fmt.Errorf("variant %v: total width %v exceeds 2π, no disjoint orientation exists", in.Variant, w))
		}
	}
	return errors.Join(errs...)
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, Variant: in.Variant}
	out.Customers = append([]Customer(nil), in.Customers...)
	out.Antennas = append([]Antenna(nil), in.Antennas...)
	return out
}

// Normalize fills default profits (Profit = Demand where Profit is zero)
// and renumbers IDs to slice positions. It returns the receiver for
// chaining.
func (in *Instance) Normalize() *Instance {
	for i := range in.Customers {
		in.Customers[i].ID = i
		in.Customers[i].Theta = geom.NormAngle(in.Customers[i].Theta)
		if in.Customers[i].Profit == 0 {
			in.Customers[i].Profit = in.Customers[i].Demand
		}
	}
	for j := range in.Antennas {
		in.Antennas[j].ID = j
	}
	return in
}
