package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sectorpack/internal/faultfs"
)

// instanceJSON is the wire form: Range uses 0 to encode "unbounded" so the
// JSON stays valid (math.Inf cannot be marshalled).
//
// The Go structs already use the <=0 ⇒ unbounded convention, so the wire
// form is the struct itself; this indirection exists to keep a stable,
// versioned envelope around it.
type instanceJSON struct {
	FormatVersion int       `json:"format_version"`
	Instance      *Instance `json:"instance"`
}

const formatVersion = 1

// WriteJSON serializes the instance to w with indentation, wrapped in a
// versioned envelope.
func WriteJSON(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(instanceJSON{FormatVersion: formatVersion, Instance: in})
}

// ReadJSON parses an instance previously written by WriteJSON and validates
// it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var env instanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("decode instance: %w", err)
	}
	if env.FormatVersion != formatVersion {
		return nil, fmt.Errorf("unsupported instance format version %d (want %d)", env.FormatVersion, formatVersion)
	}
	if env.Instance == nil {
		return nil, fmt.Errorf("instance envelope missing body")
	}
	env.Instance.Normalize()
	if err := env.Instance.Validate(); err != nil {
		return nil, fmt.Errorf("invalid instance: %w", err)
	}
	return env.Instance, nil
}

// SaveFile writes the instance to path atomically and durably: the JSON is
// written to a temporary file in the same directory, fsynced, renamed over
// the destination, and the parent directory is fsynced (a rename is not
// durable across power loss until the directory entry itself is on disk).
// A crash, a full disk, or an encoding error mid-write can therefore never
// leave a torn, unparseable file at path — the destination either keeps its
// previous content or holds the complete new instance.
func SaveFile(path string, in *Instance) error {
	return writeFileAtomic(path, func(w io.Writer) error { return WriteJSON(w, in) })
}

// writeFileAtomic is faultfs.WriteFileAtomic on the real filesystem — the
// temp+fsync+rename+dir-fsync discipline every persistence path in the
// repository shares (the cache snapshot and session journal call the
// faultfs helper directly so tests can inject faults into their writes).
func writeFileAtomic(path string, write func(io.Writer) error) error {
	return faultfs.WriteFileAtomic(faultfs.OS, path, write)
}

// LoadFile reads an instance from path.
func LoadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// batchJSON is the multi-instance wire form used by `sectorpack -batch`,
// `sectorgen -count`, and the sectord /solve/batch endpoint.
type batchJSON struct {
	FormatVersion int         `json:"format_version"`
	Instances     []*Instance `json:"instances"`
}

// WriteBatchJSON serializes a batch of instances to w with indentation,
// wrapped in the versioned envelope.
func WriteBatchJSON(w io.Writer, ins []*Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(batchJSON{FormatVersion: formatVersion, Instances: ins})
}

// ReadBatchJSON parses a batch envelope written by WriteBatchJSON,
// normalizing and validating every instance. Item errors name the failing
// index.
func ReadBatchJSON(r io.Reader) ([]*Instance, error) {
	var env batchJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("decode batch: %w", err)
	}
	if env.FormatVersion != formatVersion {
		return nil, fmt.Errorf("unsupported batch format version %d (want %d)", env.FormatVersion, formatVersion)
	}
	if len(env.Instances) == 0 {
		return nil, fmt.Errorf("batch envelope has no instances")
	}
	for i, in := range env.Instances {
		if in == nil {
			return nil, fmt.Errorf("batch instance %d is null", i)
		}
		in.Normalize()
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("invalid batch instance %d: %w", i, err)
		}
	}
	return env.Instances, nil
}

// SaveBatchFile writes a batch of instances to path with the same
// atomicity guarantee as SaveFile.
func SaveBatchFile(path string, ins []*Instance) error {
	return writeFileAtomic(path, func(w io.Writer) error { return WriteBatchJSON(w, ins) })
}

// LoadBatchFile reads a batch of instances from path.
func LoadBatchFile(path string) ([]*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBatchJSON(f)
}
