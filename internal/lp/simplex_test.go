package lp

import (
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/knapsack"
)

func solveOrDie(t *testing.T, c []float64, a [][]float64, b []float64) Solution {
	t.Helper()
	sol, err := Maximize(c, a, b)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	return sol
}

// checkFeasible verifies the returned point satisfies Ax <= b, x >= 0.
func checkFeasible(t *testing.T, a [][]float64, b []float64, x []float64) {
	t.Helper()
	for j, v := range x {
		if v < -1e-6 {
			t.Fatalf("x[%d] = %v < 0", j, v)
		}
	}
	for i, row := range a {
		var lhs float64
		for j := range row {
			lhs += row[j] * x[j]
		}
		if lhs > b[i]+1e-6*(1+math.Abs(b[i])) {
			t.Fatalf("constraint %d violated: %v > %v", i, lhs, b[i])
		}
	}
}

func TestSimpleLP(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, value 12.
	sol := solveOrDie(t, []float64{3, 2}, [][]float64{{1, 1}, {1, 3}}, []float64{4, 6})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Value-12) > 1e-7 {
		t.Errorf("value = %v, want 12", sol.Value)
	}
	if math.Abs(sol.X[0]-4) > 1e-7 || math.Abs(sol.X[1]) > 1e-7 {
		t.Errorf("x = %v, want [4 0]", sol.X)
	}
}

func TestInteriorOptimumLP(t *testing.T) {
	// max x + y s.t. 2x + y <= 4, x + 2y <= 4 → x = y = 4/3, value 8/3.
	sol := solveOrDie(t, []float64{1, 1}, [][]float64{{2, 1}, {1, 2}}, []float64{4, 4})
	if sol.Status != Optimal || math.Abs(sol.Value-8.0/3) > 1e-7 {
		t.Fatalf("got %v value=%v, want 8/3", sol.Status, sol.Value)
	}
}

func TestUnboundedLP(t *testing.T) {
	// max x with only y constrained.
	sol := solveOrDie(t, []float64{1, 0}, [][]float64{{0, 1}}, []float64{5})
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible (negative rhs forces phase 1).
	sol := solveOrDie(t, []float64{1}, [][]float64{{1}}, []float64{-1})
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// -x <= -2 (i.e. x >= 2) and x <= 5: max -x → x = 2, value -2.
	sol := solveOrDie(t, []float64{-1}, [][]float64{{-1}, {1}}, []float64{-2, 5})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestEqualityViaInequalityPair(t *testing.T) {
	// x + y = 3 encoded as <= and >=; max 2x + y → x=3, y=0, value 6.
	a := [][]float64{{1, 1}, {-1, -1}}
	b := []float64{3, -3}
	sol := solveOrDie(t, []float64{2, 1}, a, b)
	if sol.Status != Optimal || math.Abs(sol.Value-6) > 1e-7 {
		t.Fatalf("status=%v value=%v, want optimal 6", sol.Status, sol.Value)
	}
	checkFeasible(t, a, b, sol.X)
}

func TestDegenerateLPTerminates(t *testing.T) {
	// Classic Beale-style degeneracy; Bland's rule must terminate.
	c := []float64{0.75, -150, 0.02, -6}
	a := [][]float64{
		{0.25, -60, -0.04, 9},
		{0.5, -90, -0.02, 3},
		{0, 0, 1, 0},
	}
	b := []float64{0, 0, 1}
	sol := solveOrDie(t, c, a, b)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Value-0.05) > 1e-6 {
		t.Errorf("value = %v, want 0.05", sol.Value)
	}
}

func TestZeroConstraintLP(t *testing.T) {
	// No constraints: max 0 over x >= 0 is optimal at 0; max x is unbounded.
	sol := solveOrDie(t, []float64{0, 0}, nil, nil)
	if sol.Status != Optimal || sol.Value != 0 {
		t.Fatalf("zero objective: %v value=%v", sol.Status, sol.Value)
	}
	sol = solveOrDie(t, []float64{1}, nil, nil)
	if sol.Status != Unbounded {
		t.Fatalf("unconstrained positive objective should be unbounded, got %v", sol.Status)
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("row width mismatch must error")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs length mismatch must error")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{math.NaN()}); err == nil {
		t.Error("NaN rhs must error")
	}
}

// Fractional knapsack LP cross-check: max Σ p_i x_i, Σ w_i x_i ≤ C,
// 0 ≤ x ≤ 1 has the closed-form Dantzig solution that
// knapsack.FractionalBound computes independently.
func TestFractionalKnapsackCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		items := make([]knapsack.Item, n)
		c := make([]float64, n)
		weightRow := make([]float64, n)
		a := make([][]float64, 0, n+1)
		b := make([]float64, 0, n+1)
		for i := range items {
			items[i] = knapsack.Item{Weight: 1 + rng.Int63n(20), Profit: 1 + rng.Int63n(30)}
			c[i] = float64(items[i].Profit)
			weightRow[i] = float64(items[i].Weight)
		}
		capacity := rng.Int63n(80)
		a = append(a, weightRow)
		b = append(b, float64(capacity))
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			a = append(a, row)
			b = append(b, 1)
		}
		sol := solveOrDie(t, c, a, b)
		if sol.Status != Optimal {
			t.Fatalf("status = %v", sol.Status)
		}
		checkFeasible(t, a, b, sol.X)
		want := knapsack.FractionalBound(items, capacity)
		if math.Abs(sol.Value-want) > 1e-6*(1+want) {
			t.Fatalf("LP value %v != Dantzig bound %v (items=%v cap=%d)", sol.Value, want, items, capacity)
		}
	}
}

// Random LPs: the simplex optimum must dominate a large sample of random
// feasible points (a necessary condition for optimality that catches sign
// and pivot bugs without a second solver).
func TestRandomLPDominatesFeasibleSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 1
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() // non-negative ⇒ bounded, feasible at 0
			}
			b[i] = rng.Float64()*10 + 1
		}
		// ensure every variable is bounded: add x_j <= 10
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 10)
		}
		sol := solveOrDie(t, c, a, b)
		if sol.Status != Optimal {
			t.Fatalf("status = %v", sol.Status)
		}
		checkFeasible(t, a, b, sol.X)
		for s := 0; s < 200; s++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			feasible := true
			for i := range a {
				var lhs float64
				for j := range x {
					lhs += a[i][j] * x[j]
				}
				if lhs > b[i] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			var val float64
			for j := range x {
				val += c[j] * x[j]
			}
			if val > sol.Value+1e-6 {
				t.Fatalf("random feasible point beats simplex: %v > %v", val, sol.Value)
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, Status(7)} {
		if s.String() == "" {
			t.Errorf("Status(%d).String() empty", int(s))
		}
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality constraints exercise the redundant-row drop in
	// phase 1: x = 2 stated twice, maximize x.
	a := [][]float64{{1}, {-1}, {1}, {-1}}
	b := []float64{2, -2, 2, -2}
	sol := solveOrDie(t, []float64{1}, a, b)
	if sol.Status != Optimal || math.Abs(sol.X[0]-2) > 1e-7 {
		t.Fatalf("status=%v x=%v, want optimal x=2", sol.Status, sol.X)
	}
}
