// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the inequality form
//
//	maximize    cᵀx
//	subject to  Ax ≤ b,  x ≥ 0
//
// which is exactly the shape of the fractional assignment relaxations used
// by the sector-packing LP-rounding pipeline and by the exact solver's
// bounding step. Negative right-hand sides are handled by a phase-1 search
// with artificial variables, so equality and ≥ constraints can be encoded
// by the caller in the usual ways (a pair of inequalities, or negation).
//
// The implementation is the textbook full-tableau method with Bland's rule
// for both the entering and leaving variable, which guarantees termination
// (no cycling) at the price of speed on degenerate problems — an acceptable
// trade for a solver whose inputs are a few hundred variables.
package lp

import (
	"fmt"
	"math"
)

// Status reports how a solve terminated.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system admits no x ≥ 0.
	Infeasible
	// Unbounded means the objective can be increased without limit.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the outcome of a solve.
type Solution struct {
	Status     Status
	X          []float64 // primal values of the original variables
	Value      float64   // objective cᵀx (meaningful only when Optimal)
	Iterations int       // total simplex pivots across both phases
}

// eps is the numerical tolerance separating "zero" from signal in pivoting
// and feasibility decisions.
const eps = 1e-9

// maxIterations guards against runaway pivoting on pathological input; with
// Bland's rule this should never trigger, but a substrate must not hang.
const maxIterations = 200_000

// Maximize solves max cᵀx subject to Ax ≤ b, x ≥ 0. A is row-major with
// len(A) constraints over len(c) variables; len(b) must equal len(A).
func Maximize(c []float64, a [][]float64, b []float64) (Solution, error) {
	n := len(c)
	m := len(a)
	if len(b) != m {
		return Solution{}, fmt.Errorf("lp: %d constraint rows but %d right-hand sides", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	for i := range b {
		if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
			return Solution{}, fmt.Errorf("lp: b[%d] = %v", i, b[i])
		}
	}

	t := newTableau(c, a, b)
	iters1, feasible := t.phase1()
	if !feasible {
		return Solution{Status: Infeasible, Iterations: iters1}, nil
	}
	iters2, bounded := t.phase2()
	sol := Solution{Iterations: iters1 + iters2}
	if !bounded {
		sol.Status = Unbounded
		return sol, nil
	}
	sol.Status = Optimal
	sol.X = t.extract(n)
	for j := 0; j < n; j++ {
		sol.Value += c[j] * sol.X[j]
	}
	return sol, nil
}

// tableau is the dense simplex state: rows of [variables | rhs], the basis,
// and the column bookkeeping that distinguishes structural, slack, and
// artificial variables.
type tableau struct {
	rows    [][]float64 // m rows, each ncols+1 wide (last entry is the rhs)
	basis   []int       // basis[i] = column basic in row i
	ncols   int         // columns excluding rhs
	nStruct int         // structural (original) variables: columns [0, nStruct)
	nSlack  int         // slack variables: columns [nStruct, nStruct+nSlack)
	artCols []int       // artificial columns (subset of [nStruct+nSlack, ncols))
	objC    []float64   // phase-2 minimization costs per column (−c for structurals)
}

func newTableau(c []float64, a [][]float64, b []float64) *tableau {
	n := len(c)
	m := len(a)
	// Count rows needing an artificial variable (negative rhs after adding
	// the slack).
	var nArt int
	for _, bi := range b {
		if bi < 0 {
			nArt++
		}
	}
	ncols := n + m + nArt
	t := &tableau{
		rows:    make([][]float64, m),
		basis:   make([]int, m),
		ncols:   ncols,
		nStruct: n,
		nSlack:  m,
		objC:    make([]float64, ncols),
	}
	for j := 0; j < n; j++ {
		t.objC[j] = -c[j] // maximize c'x == minimize -c'x
	}
	art := n + m
	for i := 0; i < m; i++ {
		row := make([]float64, ncols+1)
		sign := 1.0
		if b[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * a[i][j]
		}
		row[n+i] = sign // slack (negated when the row was flipped)
		row[ncols] = sign * b[i]
		if b[i] < 0 {
			row[art] = 1
			t.basis[i] = art
			t.artCols = append(t.artCols, art)
			art++
		} else {
			t.basis[i] = n + i
		}
		t.rows[i] = row
	}
	return t
}

// phase1 drives all artificial variables to zero. Returns feasibility.
func (t *tableau) phase1() (iters int, feasible bool) {
	if len(t.artCols) == 0 {
		return 0, true
	}
	cost := make([]float64, t.ncols)
	for _, j := range t.artCols {
		cost[j] = 1
	}
	iters, _ = t.simplex(cost) // phase-1 objective is bounded below by 0
	if t.objValue(cost) > eps {
		return iters, false
	}
	t.evictArtificials()
	return iters, true
}

// phase2 optimizes the real objective after artificials are gone.
func (t *tableau) phase2() (iters int, bounded bool) {
	return t.simplex(t.objC)
}

// isArtificial reports whether column j is artificial.
func (t *tableau) isArtificial(j int) bool {
	return j >= t.nStruct+t.nSlack
}

// evictArtificials pivots basic artificial variables (all at value ~0 after
// a feasible phase 1) out of the basis, dropping redundant rows when no
// pivot column exists.
func (t *tableau) evictArtificials() {
	keep := t.rows[:0]
	keptBasis := t.basis[:0]
	for i := 0; i < len(t.rows); i++ {
		if !t.isArtificial(t.basis[i]) {
			keep = append(keep, t.rows[i])
			keptBasis = append(keptBasis, t.basis[i])
			continue
		}
		// Find a non-artificial column to pivot in.
		pivotCol := -1
		for j := 0; j < t.nStruct+t.nSlack; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				pivotCol = j
				break
			}
		}
		if pivotCol < 0 {
			continue // redundant row: drop it
		}
		t.pivotRowOnly(i, pivotCol)
		t.basis[i] = pivotCol
		keep = append(keep, t.rows[i])
		keptBasis = append(keptBasis, t.basis[i])
	}
	t.rows = keep
	t.basis = keptBasis
	// Zero out artificial columns so they can never re-enter.
	for _, r := range t.rows {
		for _, j := range t.artCols {
			r[j] = 0
		}
	}
}

// pivotRowOnly performs the elimination for a pivot at (r, c) across all
// rows (the caller updates the basis).
func (t *tableau) pivotRowOnly(r, c int) {
	prow := t.rows[r]
	pv := prow[c]
	for j := range prow {
		prow[j] /= pv
	}
	for i, row := range t.rows {
		if i == r {
			continue
		}
		f := row[c]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[c] = 0 // crush rounding residue in the pivot column
	}
}

// objValue returns the current objective Σ cost[basis[i]]·rhs_i.
func (t *tableau) objValue(cost []float64) float64 {
	var v float64
	for i, bi := range t.basis {
		v += cost[bi] * t.rows[i][t.ncols]
	}
	return v
}

// reducedCosts computes c̄ = cost − costᵀ_B·T for every column, from
// scratch. O(m·n) per call — the same order as a pivot — in exchange for
// numerical robustness (errors do not accumulate across pivots).
func (t *tableau) reducedCosts(cost []float64, red []float64) {
	copy(red, cost[:t.ncols])
	for i, bi := range t.basis {
		cb := cost[bi]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.ncols; j++ {
			red[j] -= cb * row[j]
		}
	}
}

// simplex runs Bland-rule pivoting to minimize costᵀx over the current
// tableau. Returns bounded=false when an entering column has no positive
// row entry.
func (t *tableau) simplex(cost []float64) (iters int, bounded bool) {
	red := make([]float64, t.ncols)
	for iters = 0; iters < maxIterations; iters++ {
		t.reducedCosts(cost, red)
		// Bland: entering column = smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.ncols; j++ {
			if red[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return iters, true // optimal
		}
		// Ratio test with Bland tie-break on the basis index.
		leave := -1
		var bestRatio float64
		for i, row := range t.rows {
			if row[enter] > eps {
				ratio := row[t.ncols] / row[enter]
				if leave < 0 || ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && t.basis[i] < t.basis[leave]) {
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			return iters, false // unbounded
		}
		t.pivotRowOnly(leave, enter)
		t.basis[leave] = enter
	}
	// Iteration guard tripped; treat as bounded with the incumbent, which
	// is feasible. This is unreachable with Bland's rule on finite input.
	return iters, true
}

// extract reads the values of the first n (structural) variables.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			v := t.rows[i][t.ncols]
			if v < 0 && v > -1e-7 {
				v = 0 // clip pivot dust
			}
			x[bi] = v
		}
	}
	return x
}
