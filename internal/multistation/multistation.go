// Package multistation extends sector packing to several base stations at
// distinct planar positions, each carrying its own directional antennas.
// Customers live in Cartesian coordinates; a station's antenna covers a
// customer according to the customer's polar position *relative to that
// station*. Each customer may be served by at most one antenna across all
// stations.
//
// This is the deployment-scale generalization the paper's single-tower
// model points at [reconstruction: multi-tower planning is the obvious
// next question and exercises the same machinery]. The solver reduces each
// (station, antenna) pair to a single-station best-window search on the
// station-relative view of the remaining customers, processed greedily in
// decreasing capacity order — the direct analogue of core.SolveGreedy with
// the same successive-knapsack flavor.
package multistation

import (
	"context"
	"fmt"
	"sort"

	"sectorpack/internal/angular"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// Customer is a demand point in Cartesian coordinates.
type Customer struct {
	ID     int
	Pos    geom.XY
	Demand int64
	Profit int64
}

// Station is a base station somewhere on the plane with its antennas.
type Station struct {
	Pos      geom.XY
	Antennas []model.Antenna
}

// Instance is a multi-station problem.
type Instance struct {
	Name      string
	Customers []Customer
	Stations  []Station
}

// Normalize fills defaults (profit = demand) and renumbers IDs.
func (in *Instance) Normalize() *Instance {
	for i := range in.Customers {
		in.Customers[i].ID = i
		if in.Customers[i].Profit == 0 {
			in.Customers[i].Profit = in.Customers[i].Demand
		}
	}
	return in
}

// Validate checks structural well-formedness.
func (in *Instance) Validate() error {
	for i, c := range in.Customers {
		if c.ID != i {
			return fmt.Errorf("multistation: customer %d has ID %d", i, c.ID)
		}
		if c.Demand <= 0 {
			return fmt.Errorf("multistation: customer %d demand %d", i, c.Demand)
		}
		if c.Profit < 0 {
			return fmt.Errorf("multistation: customer %d profit %d", i, c.Profit)
		}
	}
	for s, st := range in.Stations {
		for j, a := range st.Antennas {
			if a.Rho < 0 || a.Rho > geom.TwoPi {
				return fmt.Errorf("multistation: station %d antenna %d width %v", s, j, a.Rho)
			}
			if a.Capacity < 0 {
				return fmt.Errorf("multistation: station %d antenna %d capacity %d", s, j, a.Capacity)
			}
		}
	}
	return nil
}

// N returns the customer count.
func (in *Instance) N() int { return len(in.Customers) }

// TotalProfit sums all customer profits.
func (in *Instance) TotalProfit() int64 {
	var p int64
	for _, c := range in.Customers {
		p += c.Profit
	}
	return p
}

// relativeView builds the single-station model.Instance of one station:
// customers re-expressed in that station's polar frame. keep[i] maps the
// view's customer index back to the multi-station index.
func (in *Instance) relativeView(s int) (*model.Instance, []int) {
	st := in.Stations[s]
	view := &model.Instance{Variant: model.Sectors, Name: fmt.Sprintf("%s-station%d", in.Name, s)}
	keep := make([]int, 0, len(in.Customers))
	for i, c := range in.Customers {
		p := geom.FromXY(geom.XY{X: c.Pos.X - st.Pos.X, Y: c.Pos.Y - st.Pos.Y})
		view.Customers = append(view.Customers, model.Customer{
			Theta: p.Theta, R: p.R, Demand: c.Demand, Profit: c.Profit,
		})
		keep = append(keep, i)
	}
	view.Antennas = append(view.Antennas, st.Antennas...)
	view.Normalize()
	return view, keep
}

// Assignment is a multi-station solution.
type Assignment struct {
	// Orientation[s][j] is the start angle of station s's antenna j.
	Orientation [][]float64
	// OwnerStation[i] / OwnerAntenna[i] identify the serving pair, or -1.
	OwnerStation []int
	OwnerAntenna []int
}

// Profit returns the served profit.
func (as *Assignment) Profit(in *Instance) int64 {
	var p int64
	for i, s := range as.OwnerStation {
		if s >= 0 {
			p += in.Customers[i].Profit
		}
	}
	return p
}

// Check verifies feasibility: coverage in the serving station's frame and
// per-antenna capacity.
func (as *Assignment) Check(in *Instance) error {
	if len(as.OwnerStation) != in.N() || len(as.OwnerAntenna) != in.N() {
		return fmt.Errorf("multistation: owner slices cover %d/%d customers", len(as.OwnerStation), in.N())
	}
	if len(as.Orientation) != len(in.Stations) {
		return fmt.Errorf("multistation: %d orientation rows for %d stations", len(as.Orientation), len(in.Stations))
	}
	type key struct{ s, j int }
	load := map[key]int64{}
	for i := range in.Customers {
		s, j := as.OwnerStation[i], as.OwnerAntenna[i]
		if s == -1 && j == -1 {
			continue
		}
		if s < 0 || s >= len(in.Stations) || j < 0 || j >= len(in.Stations[s].Antennas) {
			return fmt.Errorf("multistation: customer %d assigned to unknown pair (%d,%d)", i, s, j)
		}
		st := in.Stations[s]
		rel := geom.FromXY(geom.XY{X: in.Customers[i].Pos.X - st.Pos.X, Y: in.Customers[i].Pos.Y - st.Pos.Y})
		cust := model.Customer{Theta: rel.Theta, R: rel.R, Demand: in.Customers[i].Demand}
		if !st.Antennas[j].Covers(as.Orientation[s][j], cust) {
			return fmt.Errorf("multistation: customer %d not covered by station %d antenna %d", i, s, j)
		}
		load[key{s, j}] += in.Customers[i].Demand
	}
	for k, l := range load {
		if l > in.Stations[k.s].Antennas[k.j].Capacity {
			return fmt.Errorf("multistation: station %d antenna %d overloaded %d", k.s, k.j, l)
		}
	}
	return nil
}

// SolveGreedy runs the successive best-window greedy over all
// (station, antenna) pairs in decreasing capacity order.
func SolveGreedy(ctx context.Context, in *Instance, kopt knapsack.Options) (*Assignment, int64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	n := in.N()
	as := &Assignment{
		Orientation:  make([][]float64, len(in.Stations)),
		OwnerStation: make([]int, n),
		OwnerAntenna: make([]int, n),
	}
	for i := 0; i < n; i++ {
		as.OwnerStation[i] = -1
		as.OwnerAntenna[i] = -1
	}
	type pair struct{ s, j int }
	var pairs []pair
	for s, st := range in.Stations {
		as.Orientation[s] = make([]float64, len(st.Antennas))
		for j := range st.Antennas {
			pairs = append(pairs, pair{s, j})
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		return in.Stations[pairs[a].s].Antennas[pairs[a].j].Capacity >
			in.Stations[pairs[b].s].Antennas[pairs[b].j].Capacity
	})

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	var total int64
	for _, pr := range pairs {
		view, keep := in.relativeView(pr.s)
		// Mask the view to the still-unserved customers.
		viewActive := make([]bool, len(keep))
		for v, i := range keep {
			viewActive[v] = active[i]
		}
		win, err := angular.BestWindow(ctx, view, pr.j, viewActive, kopt)
		if err != nil {
			return nil, 0, err
		}
		if len(win.Customers) == 0 {
			continue
		}
		as.Orientation[pr.s][pr.j] = win.Alpha
		for _, v := range win.Customers {
			i := keep[v]
			as.OwnerStation[i] = pr.s
			as.OwnerAntenna[i] = pr.j
			active[i] = false
		}
		total += win.Profit
	}
	return as, total, nil
}
