package multistation

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

func randMulti(rng *rand.Rand, n, stations, antennasPer int, spread float64) *Instance {
	in := &Instance{Name: "multi"}
	centers := make([]geom.XY, stations)
	for s := range centers {
		centers[s] = geom.XY{X: rng.Float64() * spread, Y: rng.Float64() * spread}
		st := Station{Pos: centers[s]}
		for j := 0; j < antennasPer; j++ {
			st.Antennas = append(st.Antennas, model.Antenna{
				Rho: 0.5 + rng.Float64(), Range: 6, Capacity: 5 + rng.Int63n(15),
			})
		}
		in.Stations = append(in.Stations, st)
	}
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(stations)]
		in.Customers = append(in.Customers, Customer{
			Pos:    geom.XY{X: c.X + rng.NormFloat64()*3, Y: c.Y + rng.NormFloat64()*3},
			Demand: 1 + rng.Int63n(5),
		})
	}
	return in.Normalize()
}

func TestGreedyFeasibleOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 15; trial++ {
		in := randMulti(rng, 10+rng.Intn(30), 1+rng.Intn(3), 1+rng.Intn(2), 20)
		as, profit, err := SolveGreedy(context.Background(), in, knapsack.Options{})
		if err != nil {
			t.Fatalf("SolveGreedy: %v", err)
		}
		if err := as.Check(in); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		if got := as.Profit(in); got != profit {
			t.Fatalf("reported profit %d != assignment profit %d", profit, got)
		}
		if profit > in.TotalProfit() {
			t.Fatalf("profit %d exceeds total %d", profit, in.TotalProfit())
		}
	}
}

// TestSingleStationMatchesCore checks that one station at the origin
// reproduces the single-station greedy exactly.
func TestSingleStationMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(15)
		single := &model.Instance{Variant: model.Sectors}
		multi := &Instance{Name: "single"}
		st := Station{Pos: geom.XY{}}
		for j := 0; j < 2; j++ {
			a := model.Antenna{Rho: 0.5 + rng.Float64(), Range: 7, Capacity: 8 + rng.Int63n(10)}
			single.Antennas = append(single.Antennas, a)
			st.Antennas = append(st.Antennas, a)
		}
		multi.Stations = []Station{st}
		for i := 0; i < n; i++ {
			p := geom.Polar{Theta: rng.Float64() * geom.TwoPi, R: rng.Float64() * 8}
			d := 1 + rng.Int63n(5)
			single.Customers = append(single.Customers, model.Customer{Theta: p.Theta, R: p.R, Demand: d})
			multi.Customers = append(multi.Customers, Customer{Pos: p.ToXY(), Demand: d})
		}
		single.Normalize()
		multi.Normalize()
		want, err := core.SolveGreedy(context.Background(), single, core.Options{SkipBound: true})
		if err != nil {
			t.Fatalf("core greedy: %v", err)
		}
		_, got, err := SolveGreedy(context.Background(), multi, knapsack.Options{})
		if err != nil {
			t.Fatalf("multi greedy: %v", err)
		}
		if got != want.Profit {
			t.Fatalf("multi %d != single %d", got, want.Profit)
		}
	}
}

// TestFarApartStationsDecompose checks that two clusters far beyond any
// antenna range are solved independently and the profits add up.
func TestFarApartStationsDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	mk := func(center geom.XY, seed int64) (*Instance, *model.Instance) {
		r := rand.New(rand.NewSource(seed))
		multi := &Instance{Name: "part"}
		single := &model.Instance{Variant: model.Sectors}
		st := Station{Pos: center}
		a := model.Antenna{Rho: 1.2, Range: 6, Capacity: 12}
		st.Antennas = []model.Antenna{a}
		single.Antennas = []model.Antenna{a}
		multi.Stations = []Station{st}
		for i := 0; i < 12; i++ {
			p := geom.Polar{Theta: r.Float64() * geom.TwoPi, R: r.Float64() * 5}
			d := 1 + r.Int63n(4)
			xy := p.ToXY()
			multi.Customers = append(multi.Customers, Customer{
				Pos: geom.XY{X: xy.X + center.X, Y: xy.Y + center.Y}, Demand: d,
			})
			single.Customers = append(single.Customers, model.Customer{Theta: p.Theta, R: p.R, Demand: d})
		}
		return multi.Normalize(), single.Normalize()
	}
	mA, sA := mk(geom.XY{}, rng.Int63())
	mB, sB := mk(geom.XY{X: 1000, Y: 1000}, rng.Int63())

	merged := &Instance{Name: "merged", Stations: append(mA.Stations, mB.Stations...)}
	merged.Customers = append(merged.Customers, mA.Customers...)
	merged.Customers = append(merged.Customers, mB.Customers...)
	merged.Normalize()

	_, got, err := SolveGreedy(context.Background(), merged, knapsack.Options{})
	if err != nil {
		t.Fatalf("merged: %v", err)
	}
	pa, err := core.SolveGreedy(context.Background(), sA, core.Options{SkipBound: true})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.SolveGreedy(context.Background(), sB, core.Options{SkipBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != pa.Profit+pb.Profit {
		t.Fatalf("merged %d != %d + %d (independent parts)", got, pa.Profit, pb.Profit)
	}
}

func TestValidateAndCheckErrors(t *testing.T) {
	in := &Instance{
		Customers: []Customer{{ID: 0, Pos: geom.XY{X: 1}, Demand: 0}},
		Stations:  []Station{{Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 5}}}},
	}
	if err := in.Validate(); err == nil {
		t.Error("zero demand must fail")
	}
	in.Customers[0].Demand = 2
	in.Normalize()
	as, _, err := SolveGreedy(context.Background(), in, knapsack.Options{})
	if err != nil {
		t.Fatalf("SolveGreedy: %v", err)
	}
	// corrupt the assignment in various ways
	bad := &Assignment{
		Orientation:  as.Orientation,
		OwnerStation: []int{5},
		OwnerAntenna: []int{0},
	}
	if err := bad.Check(in); err == nil {
		t.Error("unknown station must fail check")
	}
	bad2 := &Assignment{Orientation: nil, OwnerStation: []int{-1}, OwnerAntenna: []int{-1}}
	if err := bad2.Check(in); err == nil {
		t.Error("missing orientation rows must fail check")
	}
	short := &Assignment{Orientation: as.Orientation, OwnerStation: nil, OwnerAntenna: nil}
	if err := short.Check(in); err == nil {
		t.Error("short owners must fail check")
	}
}

func TestOverloadDetected(t *testing.T) {
	in := &Instance{
		Customers: []Customer{
			{Pos: geom.XY{X: 2}, Demand: 4},
			{Pos: geom.XY{X: 3}, Demand: 4},
		},
		Stations: []Station{{Antennas: []model.Antenna{{Rho: 1, Range: 5, Capacity: 5}}}},
	}
	in.Normalize()
	as := &Assignment{
		Orientation:  [][]float64{{6.0}},
		OwnerStation: []int{0, 0},
		OwnerAntenna: []int{0, 0},
	}
	if err := as.Check(in); err == nil {
		t.Error("overload must fail check")
	}
}
