package experiments

import (
	"fmt"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "DisjointDP exactness on the DisjointAngles variant",
		Claim: "the chain DP matches exhaustive search exactly on every instance",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "UnitFlow exactness and speed on unit-demand instances",
		Claim: "flow-based assignment is exact for one antenna and much faster than exhaustive search",
		Run:   runE8,
	})
}

func runE7(opt Options) (Report, error) {
	rep := Report{ID: "E7", Title: "disjoint DP exactness", Findings: map[string]float64{}}
	trials := pick(opt, 12, 4)
	shapes := pick(opt, []shape{{6, 2}, {8, 2}, {10, 2}}, []shape{{6, 2}})

	tb := stats.NewTable("Table E7: disjoint-dp profit / exact profit (DisjointAngles)",
		"n", "m", "trials", "min-ratio", "max-ratio", "exact matches")
	minOverall := 1.0
	for _, sh := range shapes {
		cfgs := mkConfigs(opt, gen.Uniform, model.DisjointAngles, sh.n, sh.m, trials, func(c *gen.Config) {
			c.Rho = 1.0
			c.RhoSpread = 0.4
		})
		// Matches are counted on the integer profits rather than on the float
		// ratio, which can round to exactly 1.0 for near-equal huge profits.
		type out struct {
			ratio float64
			match bool
		}
		outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (out, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return out{}, err
			}
			dp, err := runSolver("disjoint-dp", in, core.Options{})
			if err != nil {
				return out{}, err
			}
			ex, err := runSolver("exact", in, core.Options{})
			if err != nil {
				return out{}, err
			}
			return out{ratio: ratioOf(dp.Profit, ex.Profit), match: dp.Profit == ex.Profit}, nil
		})
		if err != nil {
			return rep, err
		}
		ratios := make([]float64, 0, len(outs))
		matches := 0
		for _, o := range outs {
			ratios = append(ratios, o.ratio)
			if o.match {
				matches++
			}
		}
		s := stats.Summarize(ratios)
		tb.AddRow(sh.n, sh.m, trials, s.Min, s.Max, fmt.Sprintf("%d/%d", matches, trials))
		if s.Min < minOverall {
			minOverall = s.Min
		}
	}
	tb.Caption = "every ratio must be exactly 1.000: both solvers are exact"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["min_ratio"] = minOverall
	return rep, nil
}

func runE8(opt Options) (Report, error) {
	rep := Report{ID: "E8", Title: "unit-flow exactness and speed", Findings: map[string]float64{}}
	trials := pick(opt, 10, 3)
	ns := pick(opt, []int{10, 14}, []int{8})

	tb := stats.NewTable("Table E8: unitflow vs exact on unit-demand instances (m=1)",
		"n", "trials", "min-ratio", "geo-speedup")
	minOverall := 1.0
	for _, n := range ns {
		cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, 1, trials, func(c *gen.Config) {
			c.UnitDemand = true
		})
		type out struct {
			ratio   float64
			speedup float64
		}
		outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (out, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return out{}, err
			}
			uf, err := runSolver("unitflow", in, core.Options{SkipBound: true})
			if err != nil {
				return out{}, err
			}
			ex, err := runSolver("exact", in, core.Options{})
			if err != nil {
				return out{}, err
			}
			sp := float64(ex.Elapsed) / float64(maxDur(uf.Elapsed, time.Microsecond))
			return out{ratio: ratioOf(uf.Profit, ex.Profit), speedup: sp}, nil
		})
		if err != nil {
			return rep, err
		}
		var ratios, speedups []float64
		for _, o := range outs {
			ratios = append(ratios, o.ratio)
			speedups = append(speedups, o.speedup)
		}
		s := stats.Summarize(ratios)
		tb.AddRow(n, trials, s.Min, stats.GeoMean(speedups))
		if s.Min < minOverall {
			minOverall = s.Min
		}
	}
	tb.Caption = "ratio must be exactly 1.000 (both exact for m=1); speedup = exact time / flow time"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["min_ratio"] = minOverall
	return rep, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
