package experiments

import (
	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Upper-bound tightness: simple per-antenna bound vs configuration LP",
		Claim: "the configuration LP dominates the per-antenna Dantzig bound, and greedy measured against it looks markedly better",
		Run:   runE16,
	})
}

func runE16(opt Options) (Report, error) {
	rep := Report{ID: "E16", Title: "bound tightness", Findings: map[string]float64{}}
	trials := pick(opt, 8, 3)
	nsSmall := pick(opt, []int{8, 11}, []int{7})
	nMed := pick(opt, 50, 20)

	// Part 1: small instances, both bounds vs exact OPT.
	tb1 := stats.NewTable("Table E16a: bound / OPT on small instances (uniform, m=2)",
		"n", "simple/OPT (geo)", "configLP/OPT (geo)")
	for _, n := range nsSmall {
		cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, 2, trials, nil)
		type pair struct{ simple, cfg float64 }
		outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (pair, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return pair{}, err
			}
			ex, err := runSolver("exact", in, core.Options{})
			if err != nil {
				return pair{}, err
			}
			if ex.Profit == 0 {
				return pair{simple: 1, cfg: 1}, nil
			}
			simple := core.UpperBound(in)
			cfgBound, err := core.ConfigLPBound(in)
			if err != nil {
				return pair{}, err
			}
			return pair{
				simple: simple / float64(ex.Profit),
				cfg:    cfgBound / float64(ex.Profit),
			}, nil
		})
		if err != nil {
			return rep, err
		}
		var simples, cfgsR []float64
		for _, o := range outs {
			simples = append(simples, o.simple)
			cfgsR = append(cfgsR, o.cfg)
		}
		tb1.AddRow(n, stats.GeoMean(simples), stats.GeoMean(cfgsR))
		rep.Findings["simple_over_opt"] = stats.GeoMean(simples)
		rep.Findings["cfg_over_opt"] = stats.GeoMean(cfgsR)
	}
	tb1.Caption = "both columns are ≥ 1 by validity; closer to 1 is tighter"
	rep.Tables = append(rep.Tables, tb1)

	// Part 2: medium instances, greedy ratio against each bound.
	tb2 := stats.NewTable("Table E16b: greedy profit / bound at medium scale (hotspot, m=3)",
		"bound", "geo-ratio", "min-ratio")
	cfgs := mkConfigs(opt, gen.Hotspot, model.Sectors, nMed, 3, trials, nil)
	type pair struct{ simple, cfg float64 }
	outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (pair, error) {
		in, err := gen.Generate(cfg)
		if err != nil {
			return pair{}, err
		}
		g, err := runSolver("greedy", in, core.Options{SkipBound: true})
		if err != nil {
			return pair{}, err
		}
		simple := core.UpperBound(in)
		cfgBound, err := core.ConfigLPBound(in)
		if err != nil {
			return pair{}, err
		}
		return pair{
			simple: float64(g.Profit) / simple,
			cfg:    float64(g.Profit) / cfgBound,
		}, nil
	})
	if err != nil {
		return rep, err
	}
	var vsSimple, vsCfg []float64
	for _, o := range outs {
		vsSimple = append(vsSimple, o.simple)
		vsCfg = append(vsCfg, o.cfg)
	}
	s1, s2 := stats.Summarize(vsSimple), stats.Summarize(vsCfg)
	tb2.AddRow("simple", stats.GeoMean(vsSimple), s1.Min)
	tb2.AddRow("configLP", stats.GeoMean(vsCfg), s2.Min)
	tb2.Caption = "same greedy solutions; the tighter denominator reveals how much of E2's apparent gap was bound looseness"
	rep.Tables = append(rep.Tables, tb2)
	rep.Findings["greedy_vs_simple"] = stats.GeoMean(vsSimple)
	rep.Findings["greedy_vs_cfg"] = stats.GeoMean(vsCfg)
	return rep, nil
}
