package experiments

import (
	"fmt"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Empirical approximation ratio of greedy vs exact optimum",
		Claim: "successive best-window greedy achieves at least 1/2 of the optimum, and far more on non-adversarial inputs",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Greedy and LP-rounding against the certified upper bound",
		Claim: "on instances beyond exact reach, profit stays a constant fraction of the per-antenna Dantzig bound",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Identical vs heterogeneous antennas: greedy ratio",
		Claim: "identical antennas enjoy the 1-(1-1/m)^m >= 1-1/e successive-knapsack factor; heterogeneous keep 1/2",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Adversarial knapsack family: FPTAS epsilon sweep",
		Claim: "with a forced (1-eps) inner FPTAS and one antenna, total profit is at least (1-eps) x OPT",
		Run:   runE10,
	})
}

type shape struct{ n, m int }

func runE1(opt Options) (Report, error) {
	rep := Report{ID: "E1", Title: "greedy vs exact", Findings: map[string]float64{}}
	families := []gen.Family{gen.Uniform, gen.Hotspot}
	shapes := pick(opt, []shape{{12, 1}, {10, 2}, {12, 2}}, []shape{{8, 1}, {8, 2}})
	trials := pick(opt, 10, 3)

	tb := stats.NewTable("Table E1: empirical ratio greedy/OPT (exact baseline)",
		"family", "n", "m", "trials", "geo-ratio", "min-ratio")
	overallMin := 1.0
	var allRatios []float64
	for _, fam := range families {
		for _, sh := range shapes {
			cfgs := mkConfigs(opt, fam, model.Sectors, sh.n, sh.m, trials, nil)
			ratios, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
				in, err := gen.Generate(cfg)
				if err != nil {
					return 0, err
				}
				g, err := runSolver("greedy", in, core.Options{SkipBound: true})
				if err != nil {
					return 0, err
				}
				ex, err := runSolver("exact", in, core.Options{})
				if err != nil {
					return 0, err
				}
				return ratioOf(g.Profit, ex.Profit), nil
			})
			if err != nil {
				return rep, err
			}
			s := stats.Summarize(ratios)
			tb.AddRow(string(fam), sh.n, sh.m, trials, stats.GeoMean(ratios), s.Min)
			if s.Min < overallMin {
				overallMin = s.Min
			}
			allRatios = append(allRatios, ratios...)
		}
	}
	tb.Caption = "ratio = greedy profit / exact optimum; the 1/2 guarantee is the floor, typical ratios are far higher"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["min_ratio"] = overallMin
	rep.Findings["geo_ratio"] = stats.GeoMean(allRatios)
	return rep, nil
}

func runE2(opt Options) (Report, error) {
	rep := Report{ID: "E2", Title: "profit vs certified bound", Findings: map[string]float64{}}
	ns := pick(opt, []int{40, 80, 160}, []int{25})
	trials := pick(opt, 6, 2)
	m := 3

	tb := stats.NewTable("Table E2: profit / certified upper bound (uniform, m=3)",
		"n", "solver", "geo-ratio", "min-ratio")
	minOverall := 1.0
	for _, n := range ns {
		for _, name := range []string{"greedy", "lpround"} {
			cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, m, trials, nil)
			ratios, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
				in, err := gen.Generate(cfg)
				if err != nil {
					return 0, err
				}
				out, err := runSolver(name, in, core.Options{Seed: cfg.Seed})
				if err != nil {
					return 0, err
				}
				if out.Bound <= 0 {
					return 0, fmt.Errorf("E2: %s produced no bound", name)
				}
				return float64(out.Profit) / out.Bound, nil
			})
			if err != nil {
				return rep, err
			}
			s := stats.Summarize(ratios)
			tb.AddRow(n, name, stats.GeoMean(ratios), s.Min)
			if s.Min < minOverall {
				minOverall = s.Min
			}
		}
	}
	tb.Caption = "bound = min(total profit, sum of per-antenna Dantzig window bounds); it over-counts shared customers, so ratios below 1 reflect bound looseness as well as heuristic loss"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["min_ratio_vs_bound"] = minOverall
	return rep, nil
}

func runE6(opt Options) (Report, error) {
	rep := Report{ID: "E6", Title: "identical vs heterogeneous antennas", Findings: map[string]float64{}}
	trials := pick(opt, 10, 3)
	n := pick(opt, 11, 8)
	ms := pick(opt, []int{2, 3}, []int{2})

	tb := stats.NewTable("Table E6: greedy/OPT by antenna class (uniform)",
		"class", "m", "geo-ratio", "min-ratio")
	for _, m := range ms {
		for _, hetero := range []bool{false, true} {
			cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, m, trials, func(c *gen.Config) {
				if hetero {
					c.RhoSpread = 0.3
				}
			})
			ratios, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
				in, err := gen.Generate(cfg)
				if err != nil {
					return 0, err
				}
				if hetero {
					// Capacity heterogeneity on top of width spread.
					for j := range in.Antennas {
						if j%2 == 0 {
							in.Antennas[j].Capacity = in.Antennas[j].Capacity / 2
						} else {
							in.Antennas[j].Capacity = in.Antennas[j].Capacity * 3 / 2
						}
						if in.Antennas[j].Capacity < 1 {
							in.Antennas[j].Capacity = 1
						}
					}
				}
				g, err := runSolver("greedy", in, core.Options{SkipBound: true})
				if err != nil {
					return 0, err
				}
				ex, err := runSolver("exact", in, core.Options{})
				if err != nil {
					return 0, err
				}
				return ratioOf(g.Profit, ex.Profit), nil
			})
			if err != nil {
				return rep, err
			}
			class := "identical"
			key := fmt.Sprintf("identical_m%d_min", m)
			if hetero {
				class = "heterogeneous"
				key = fmt.Sprintf("hetero_m%d_min", m)
			}
			s := stats.Summarize(ratios)
			tb.AddRow(class, m, stats.GeoMean(ratios), s.Min)
			rep.Findings[key] = s.Min
		}
	}
	tb.Caption = "identical antennas: successive-knapsack factor 1-(1-1/m)^m; heterogeneous: 1/2"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}

func runE10(opt Options) (Report, error) {
	rep := Report{ID: "E10", Title: "FPTAS epsilon sweep on adversarial instances", Findings: map[string]float64{}}
	trials := pick(opt, 8, 3)
	n := pick(opt, 15, 10)
	epss := pick(opt, []float64{0.5, 0.2, 0.1, 0.05}, []float64{0.5, 0.1})

	tb := stats.NewTable("Table E10: greedy(FPTAS eps)/OPT on the adversarial family (m=1)",
		"eps", "floor 1-eps", "geo-ratio", "min-ratio", "floor held")
	for _, eps := range epss {
		cfgs := mkConfigs(opt, gen.Adversarial, model.Sectors, n, 1, trials, nil)
		ratios, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return 0, err
			}
			g, err := runSolver("greedy", in, core.Options{
				SkipBound: true,
				Knapsack:  knapsack.Options{ForceApprox: true, Eps: eps},
			})
			if err != nil {
				return 0, err
			}
			ex, err := runSolver("exact", in, core.Options{})
			if err != nil {
				return 0, err
			}
			return ratioOf(g.Profit, ex.Profit), nil
		})
		if err != nil {
			return rep, err
		}
		s := stats.Summarize(ratios)
		held := "yes"
		if s.Min < 1-eps-1e-9 {
			held = "NO"
		}
		tb.AddRow(eps, 1-eps, stats.GeoMean(ratios), s.Min, held)
		rep.Findings[fmt.Sprintf("min_ratio_eps_%g", eps)] = s.Min
		rep.Findings[fmt.Sprintf("floor_eps_%g", eps)] = 1 - eps
	}
	tb.Caption = "with one antenna the orientation sweep preserves the FPTAS guarantee end to end"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}
