package experiments

import "testing"

func TestE11CandidatesAlwaysExact(t *testing.T) {
	rep, err := Run("E11", quickOpt())
	if err != nil {
		t.Fatalf("E11: %v", err)
	}
	//sectorlint:ignore floateq ratioOf rounds Eps-close ratios to exactly 1.0 by contract
	if rep.Findings["cand_min_ratio"] != 1.0 {
		t.Errorf("candidate method must be exact, min ratio %v", rep.Findings["cand_min_ratio"])
	}
	//sectorlint:ignore floateq both findings are integer counts stored in the float64 findings map
	if rep.Findings["cand_matches"] != rep.Findings["trials"] {
		t.Errorf("candidate method matched %v/%v", rep.Findings["cand_matches"], rep.Findings["trials"])
	}
	if rep.Findings["grid_min_ratio"] > 1.0 {
		t.Errorf("grid ratio %v above 1 is impossible", rep.Findings["grid_min_ratio"])
	}
}

func TestE12OrderAblation(t *testing.T) {
	rep, err := Run("E12", quickOpt())
	if err != nil {
		t.Fatalf("E12: %v", err)
	}
	v := rep.Findings["asc_geo_vs_desc"]
	if v <= 0 || v > 1.5 {
		t.Errorf("ascending-vs-descending geo ratio %v implausible", v)
	}
}

func TestE13CoverNeverUndershoots(t *testing.T) {
	rep, err := Run("E13", quickOpt())
	if err != nil {
		t.Fatalf("E13: %v", err)
	}
	if rep.Findings["max_overshoot"] < 0 {
		t.Errorf("greedy covering cannot use fewer antennas than exact: %v", rep.Findings["max_overshoot"])
	}
}

func TestE14ShootoutDominatesGreedy(t *testing.T) {
	rep, err := Run("E14", quickOpt())
	if err != nil {
		t.Fatalf("E14: %v", err)
	}
	g := rep.Findings["geo_greedy"]
	for _, name := range []string{"geo_localsearch", "geo_anneal", "geo_lpround"} {
		if rep.Findings[name] < g-1e-9 {
			t.Errorf("%s = %v below greedy %v (these solvers start from greedy)", name, rep.Findings[name], g)
		}
	}
}

func TestE15OnlineRatiosSane(t *testing.T) {
	rep, err := Run("E15", quickOpt())
	if err != nil {
		t.Fatalf("E15: %v", err)
	}
	for _, key := range []string{"geo_uniform+first-fit", "geo_sample+best-fit"} {
		v, ok := rep.Findings[key]
		if !ok {
			t.Fatalf("missing finding %s", key)
		}
		if v <= 0 || v > 1.5 {
			t.Errorf("%s = %v implausible", key, v)
		}
	}
}

func TestExtensionIDsRegistered(t *testing.T) {
	ids := IDs()
	want := map[string]bool{"E11": true, "E12": true, "E13": true, "E14": true, "E15": true, "E16": true, "E17": true, "E18": true}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("missing extension experiments: %v (have %v)", want, ids)
	}
}

func TestE16BoundDominance(t *testing.T) {
	rep, err := Run("E16", quickOpt())
	if err != nil {
		t.Fatalf("E16: %v", err)
	}
	if rep.Findings["simple_over_opt"] < 1-1e-9 || rep.Findings["cfg_over_opt"] < 1-1e-9 {
		t.Errorf("bounds must dominate OPT: simple %v, cfg %v",
			rep.Findings["simple_over_opt"], rep.Findings["cfg_over_opt"])
	}
	if rep.Findings["cfg_over_opt"] > rep.Findings["simple_over_opt"]+1e-9 {
		t.Errorf("config LP bound looser than simple: %v vs %v",
			rep.Findings["cfg_over_opt"], rep.Findings["simple_over_opt"])
	}
	if rep.Findings["greedy_vs_cfg"] < rep.Findings["greedy_vs_simple"]-1e-9 {
		t.Errorf("ratio vs tighter bound must not be smaller: %v vs %v",
			rep.Findings["greedy_vs_cfg"], rep.Findings["greedy_vs_simple"])
	}
}

func TestE17IntegralityGap(t *testing.T) {
	rep, err := Run("E17", quickOpt())
	if err != nil {
		t.Fatalf("E17: %v", err)
	}
	for _, g := range []string{"coarse", "medium", "fine"} {
		v, ok := rep.Findings["geo_gap_"+g]
		if !ok {
			t.Fatalf("missing gap for %s", g)
		}
		if v < 1-1e-9 {
			t.Errorf("%s gap %v below 1 — splittable cannot lose to integral", g, v)
		}
	}
	// Finer granularity should not have a LARGER gap than coarse.
	if rep.Findings["geo_gap_fine"] > rep.Findings["geo_gap_coarse"]+0.05 {
		t.Errorf("fine gap %v exceeds coarse gap %v", rep.Findings["geo_gap_fine"], rep.Findings["geo_gap_coarse"])
	}
}

func TestE18FairnessFloor(t *testing.T) {
	rep, err := Run("E18", quickOpt())
	if err != nil {
		t.Fatalf("E18: %v", err)
	}
	if rep.Findings["floor_fair"] < rep.Findings["floor_eff"]-1e-6 {
		t.Errorf("fairness must not lower the worst-class floor: %v vs %v",
			rep.Findings["floor_fair"], rep.Findings["floor_eff"])
	}
	er := rep.Findings["efficiency_retained"]
	// Fair runs at class-aware orientations, efficiency at greedy ones, so
	// the ratio may exceed 1 slightly; it must stay a sane fraction.
	if er <= 0.2 || er > 1.5 {
		t.Errorf("efficiency retained %v outside (0.2, 1.5]", er)
	}
}
