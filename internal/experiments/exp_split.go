package experiments

import (
	"context"
	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Price of unsplittability: splittable vs integral optimum",
		Claim: "allowing fractional service lifts the optimum by at most one customer's profit per antenna, so the gap shrinks as demands shrink relative to capacity",
		Run:   runE17,
	})
}

func runE17(opt Options) (Report, error) {
	rep := Report{ID: "E17", Title: "price of unsplittability", Findings: map[string]float64{}}
	trials := pick(opt, 10, 3)
	// Sweep demand granularity: coarse demands (large relative to
	// capacity) should show a bigger integrality gap than fine demands.
	type cell struct {
		label     string
		maxDemand int64
		tightness float64
	}
	cells := []cell{
		{"coarse (demand ~ capacity/3)", 9, 2.0},
		{"medium (demand ~ capacity/6)", 5, 1.2},
		{"fine (demand ~ capacity/15)", 2, 0.8},
	}
	n := pick(opt, 9, 6)
	m := 2

	tb := stats.NewTable("Table E17: splittable optimum / integral optimum (uniform, m=2)",
		"granularity", "geo-gap", "max-gap")
	prevGeo := 0.0
	for idx, c := range cells {
		cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, m, trials, func(g *gen.Config) {
			g.MaxDemand = c.maxDemand
			g.Tightness = c.tightness
		})
		gaps, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return 0, err
			}
			integral, err := runSolver("exact", in, core.Options{})
			if err != nil {
				return 0, err
			}
			split, err := core.SolveSplittableExact(context.Background(), in)
			if err != nil {
				return 0, err
			}
			if integral.Profit == 0 {
				return 1, nil
			}
			return split.Value / float64(integral.Profit), nil
		})
		if err != nil {
			return rep, err
		}
		s := stats.Summarize(gaps)
		geo := stats.GeoMean(gaps)
		tb.AddRow(c.label, geo, s.Max)
		rep.Findings["geo_gap_"+[]string{"coarse", "medium", "fine"}[idx]] = geo
		rep.Findings["max_gap_"+[]string{"coarse", "medium", "fine"}[idx]] = s.Max
		_ = prevGeo
		prevGeo = geo
	}
	tb.Caption = "gap = splittable OPT / integral OPT ≥ 1; finer demand granularity shrinks it toward 1"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}
