package experiments

import (
	"context"
	"fmt"

	"sectorpack/internal/angular"
	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Ablation: candidate-orientation lemma vs uniform angle grid",
		Claim: "customer-angle candidates are exactly optimal for one antenna; an equal-size uniform grid is not",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Ablation: greedy antenna processing order",
		Claim: "capacity-descending order dominates ascending order on heterogeneous antennas",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Heuristic shoot-out at medium scale",
		Claim: "localsearch/anneal/lpround close part of greedy's gap to the certified bound",
		Run:   runE14,
	})
}

// gridBestWindow is the ablated single-antenna solver: k orientations on a
// uniform grid instead of the candidate set.
func gridBestWindow(in *model.Instance, k int) (int64, error) {
	var best int64
	for g := 0; g < k; g++ {
		alpha := geom.TwoPi * float64(g) / float64(k)
		items, _ := angular.WindowItems(in, 0, alpha, nil)
		if len(items) == 0 {
			continue
		}
		res, _, err := knapsack.Solve(items, in.Antennas[0].Capacity, knapsack.Options{})
		if err != nil {
			return 0, err
		}
		if res.Profit > best {
			best = res.Profit
		}
	}
	return best, nil
}

func runE11(opt Options) (Report, error) {
	rep := Report{ID: "E11", Title: "candidate discretization ablation", Findings: map[string]float64{}}
	trials := pick(opt, 20, 5)
	n := pick(opt, 12, 8)

	tb := stats.NewTable("Table E11: single-antenna profit vs exact — candidates vs uniform grid",
		"method", "geo-ratio", "min-ratio", "exact matches")
	cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, 1, trials, func(c *gen.Config) {
		c.Rho = 0.7 // narrow sectors punish grid misses
	})
	// Exact matches are counted on the integer profits, not on the float
	// ratio: ratioOf can round to exactly 1.0 for near-equal huge profits,
	// so `ratio == 1.0` overcounts (and trips the floateq analyzer).
	type pair struct {
		cand, grid           float64
		candMatch, gridMatch bool
	}
	outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (pair, error) {
		in, err := gen.Generate(cfg)
		if err != nil {
			return pair{}, err
		}
		ex, err := runSolver("exact", in, core.Options{})
		if err != nil {
			return pair{}, err
		}
		win, err := angular.BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
		if err != nil {
			return pair{}, err
		}
		gridProfit, err := gridBestWindow(in, len(angular.Candidates(in, 0)))
		if err != nil {
			return pair{}, err
		}
		return pair{
			cand:      ratioOf(win.Profit, ex.Profit),
			grid:      ratioOf(gridProfit, ex.Profit),
			candMatch: win.Profit == ex.Profit,
			gridMatch: gridProfit == ex.Profit,
		}, nil
	})
	if err != nil {
		return rep, err
	}
	var cands, grids []float64
	candMatches, gridMatches := 0, 0
	for _, o := range outs {
		cands = append(cands, o.cand)
		grids = append(grids, o.grid)
		if o.candMatch {
			candMatches++
		}
		if o.gridMatch {
			gridMatches++
		}
	}
	sc, sg := stats.Summarize(cands), stats.Summarize(grids)
	tb.AddRow("candidates", stats.GeoMean(cands), sc.Min, fmt.Sprintf("%d/%d", candMatches, trials))
	tb.AddRow("uniform-grid", stats.GeoMean(grids), sg.Min, fmt.Sprintf("%d/%d", gridMatches, trials))
	tb.Caption = "same orientation budget for both methods; only the lemma's candidates are always exact"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["cand_min_ratio"] = sc.Min
	rep.Findings["grid_min_ratio"] = sg.Min
	rep.Findings["cand_matches"] = float64(candMatches)
	rep.Findings["trials"] = float64(trials)
	return rep, nil
}

func runE12(opt Options) (Report, error) {
	rep := Report{ID: "E12", Title: "greedy order ablation", Findings: map[string]float64{}}
	trials := pick(opt, 15, 4)
	n := pick(opt, 60, 25)
	m := 3

	// The generator gives equal capacities; the mutation below makes
	// antenna 0 the smallest and antenna 2 the largest, so the explicit
	// order {0,1,2} is capacity-ascending.
	tb := stats.NewTable("Table E12: greedy profit by antenna order (heterogeneous capacities)",
		"order", "geo-profit-vs-desc", "min", "max")
	results := map[string][]float64{}
	cfgs := mkConfigs(opt, gen.Hotspot, model.Sectors, n, m, trials, nil)
	type pair struct{ desc, asc int64 }
	outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (pair, error) {
		in, err := gen.Generate(cfg)
		if err != nil {
			return pair{}, err
		}
		// capacities 1:2:4
		base := in.Antennas[0].Capacity
		in.Antennas[0].Capacity = base / 2
		in.Antennas[1].Capacity = base
		in.Antennas[2].Capacity = base * 2
		if in.Antennas[0].Capacity < 1 {
			in.Antennas[0].Capacity = 1
		}
		desc, err := runSolver("greedy", in, core.Options{SkipBound: true})
		if err != nil {
			return pair{}, err
		}
		ascSol, err := core.SolveGreedyOrdered(context.Background(), in, core.Options{SkipBound: true}, []int{0, 1, 2})
		if err != nil {
			return pair{}, err
		}
		return pair{desc: desc.Profit, asc: ascSol.Profit}, nil
	})
	if err != nil {
		return rep, err
	}
	for _, o := range outs {
		results["capacity-desc"] = append(results["capacity-desc"], 1.0)
		results["capacity-asc"] = append(results["capacity-asc"], ratioOf(o.asc, o.desc))
	}
	for _, name := range []string{"capacity-desc", "capacity-asc"} {
		s := stats.Summarize(results[name])
		tb.AddRow(name, stats.GeoMean(results[name]), s.Min, s.Max)
	}
	tb.Caption = "values normalized by the capacity-descending default; ascending order wastes the big antenna's flexibility"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["asc_geo_vs_desc"] = stats.GeoMean(results["capacity-asc"])
	return rep, nil
}

func runE14(opt Options) (Report, error) {
	rep := Report{ID: "E14", Title: "heuristic shoot-out", Findings: map[string]float64{}}
	trials := pick(opt, 6, 2)
	n := pick(opt, 120, 30)
	m := 3
	solvers := []string{"baseline", "greedy", "localsearch", "anneal", "lpround"}

	tb := stats.NewTable("Table E14: profit / certified bound by solver (hotspot, m=3)",
		"solver", "geo-ratio", "min-ratio")
	for _, name := range solvers {
		cfgs := mkConfigs(opt, gen.Hotspot, model.Sectors, n, m, trials, nil)
		ratios, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return 0, err
			}
			out, err := runSolver(name, in, core.Options{Seed: cfg.Seed})
			if err != nil {
				return 0, err
			}
			if out.Bound <= 0 {
				return 0, fmt.Errorf("E14: %s produced no bound", name)
			}
			return float64(out.Profit) / out.Bound, nil
		})
		if err != nil {
			return rep, err
		}
		s := stats.Summarize(ratios)
		tb.AddRow(name, stats.GeoMean(ratios), s.Min)
		rep.Findings["geo_"+name] = stats.GeoMean(ratios)
	}
	tb.Caption = "all solvers share the same certified bound, so the column is comparable across rows"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}
