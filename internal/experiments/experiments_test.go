package experiments

import (
	"math"
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Quick: true, Seed: 1} }

// ratioOf of two distinct huge profits can round to exactly 1.0: the match
// counters in E7/E11/E13 therefore compare the integer quantities directly
// instead of testing ratio == 1.0. This pins the pitfall those counters avoid.
func TestRatioOfRoundsToOneForHugeProfits(t *testing.T) {
	num, den := int64(1)<<60, int64(1)<<60+1
	if num == den {
		t.Fatal("the integer comparison the experiments rely on must distinguish the profits")
	}
	//sectorlint:ignore floateq the test pins the documented rounding of Eps-close ratios to exactly 1.0
	if r := ratioOf(num, den); r != 1.0 {
		t.Fatalf("ratioOf(%d, %d) = %v; expected the documented rounding to exactly 1.0", num, den, r)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	if _, err := Get("E99"); err == nil {
		t.Error("unknown id must error")
	}
	if len(All()) != len(want) {
		t.Error("All() must return every experiment")
	}
}

func TestE1GreedyRatioFloor(t *testing.T) {
	rep, err := Run("E1", quickOpt())
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	if rep.Findings["min_ratio"] < 0.5 {
		t.Errorf("E1 min ratio %v below the 1/2 guarantee", rep.Findings["min_ratio"])
	}
	if rep.Findings["geo_ratio"] < 0.8 {
		t.Errorf("E1 geo ratio %v implausibly low", rep.Findings["geo_ratio"])
	}
	if !strings.Contains(rep.Render(), "Table E1") {
		t.Error("report should render its table")
	}
}

func TestE2BoundRatioSane(t *testing.T) {
	rep, err := Run("E2", quickOpt())
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	r := rep.Findings["min_ratio_vs_bound"]
	if r <= 0 || r > 1+1e-9 {
		t.Errorf("E2 ratio vs bound %v outside (0, 1]", r)
	}
}

func TestE3ProducesSlopes(t *testing.T) {
	rep, err := Run("E3", quickOpt())
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	for _, solver := range []string{"greedy", "localsearch", "lpround", "unitflow"} {
		if _, ok := rep.Findings["slope_"+solver]; !ok {
			t.Errorf("E3 missing slope for %s", solver)
		}
	}
}

func TestE4WidthMonotone(t *testing.T) {
	rep, err := Run("E4", quickOpt())
	if err != nil {
		t.Fatalf("E4: %v", err)
	}
	if rep.Findings["frac_at_max_rho"] < rep.Findings["frac_at_min_rho"] {
		t.Errorf("wider sectors should not serve less: %v vs %v",
			rep.Findings["frac_at_max_rho"], rep.Findings["frac_at_min_rho"])
	}
	if len(rep.Figures) == 0 {
		t.Error("E4 must render a figure")
	}
}

func TestE5TightnessShape(t *testing.T) {
	rep, err := Run("E5", quickOpt())
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	if rep.Findings["served_loose"] < rep.Findings["served_tight"] {
		t.Errorf("loose capacity should serve a larger fraction: %v vs %v",
			rep.Findings["served_loose"], rep.Findings["served_tight"])
	}
}

func TestE6ClassFloors(t *testing.T) {
	rep, err := Run("E6", quickOpt())
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	for key, floor := range map[string]float64{
		"identical_m2_min": 0.5,
		"hetero_m2_min":    0.5,
	} {
		if v, ok := rep.Findings[key]; ok && v < floor {
			t.Errorf("E6 %s = %v below floor %v", key, v, floor)
		}
	}
}

func TestE7DisjointDPExact(t *testing.T) {
	rep, err := Run("E7", quickOpt())
	if err != nil {
		t.Fatalf("E7: %v", err)
	}
	//sectorlint:ignore floateq ratioOf rounds Eps-close ratios to exactly 1.0 by contract
	if rep.Findings["min_ratio"] != 1.0 {
		t.Errorf("E7 min ratio %v, want exactly 1.0", rep.Findings["min_ratio"])
	}
}

func TestE8UnitFlowExact(t *testing.T) {
	rep, err := Run("E8", quickOpt())
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	//sectorlint:ignore floateq ratioOf rounds Eps-close ratios to exactly 1.0 by contract
	if rep.Findings["min_ratio"] != 1.0 {
		t.Errorf("E8 min ratio %v, want exactly 1.0", rep.Findings["min_ratio"])
	}
}

func TestE9CoverageMonotone(t *testing.T) {
	rep, err := Run("E9", quickOpt())
	if err != nil {
		t.Fatalf("E9: %v", err)
	}
	if rep.Findings["frac_m_last"] < rep.Findings["frac_m_first"]-0.02 {
		t.Errorf("more antennas should not serve less: %v vs %v",
			rep.Findings["frac_m_last"], rep.Findings["frac_m_first"])
	}
}

func TestE10FPTASFloor(t *testing.T) {
	rep, err := Run("E10", quickOpt())
	if err != nil {
		t.Fatalf("E10: %v", err)
	}
	for _, eps := range []string{"0.5", "0.1"} {
		min, ok := rep.Findings["min_ratio_eps_"+eps]
		if !ok {
			t.Fatalf("E10 missing eps %s", eps)
		}
		floor := rep.Findings["floor_eps_"+eps]
		if min < floor-1e-9 {
			t.Errorf("E10 eps=%s: min ratio %v below floor %v", eps, min, floor)
		}
	}
}

func TestReportsDeterministic(t *testing.T) {
	a, err := Run("E1", quickOpt())
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	b, err := Run("E1", quickOpt())
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	if math.Float64bits(a.Findings["geo_ratio"]) != math.Float64bits(b.Findings["geo_ratio"]) {
		t.Error("experiments must be deterministic in (Seed, Quick)")
	}
}
