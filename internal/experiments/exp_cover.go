package experiments

import (
	"context"
	"math/rand"

	"sectorpack/internal/cover"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Covering companion: minimum antennas to serve everyone",
		Claim: "greedy covering never beats exact and stays within a small factor of it",
		Run:   runE13,
	})
}

func runE13(opt Options) (Report, error) {
	rep := Report{ID: "E13", Title: "covering companion", Findings: map[string]float64{}}
	// Exact covering does iterative deepening over the antenna count k,
	// and each k costs an exhaustive n^k orientation enumeration — sizes
	// here keep k at 2–3 so the full run stays in seconds.
	trials := pick(opt, 10, 4)
	ns := pick(opt, []int{5, 7, 9}, []int{6})

	tb := stats.NewTable("Table E13: antennas used, greedy vs exact covering",
		"n", "trials", "mean greedy k", "mean exact k", "max overshoot", "exact matches")
	worstOvershoot := 0.0
	for _, n := range ns {
		type pair struct{ gk, ek int }
		seeds := make([]int64, trials)
		for k := range seeds {
			seeds[k] = cfgSeed(opt, k) + int64(n)
		}
		outs, err := parallelMap(opt, seeds, func(seed int64) (pair, error) {
			rng := rand.New(rand.NewSource(seed))
			customers := make([]model.Customer, n)
			for i := range customers {
				customers[i] = model.Customer{
					ID:     i,
					Theta:  rng.Float64() * geom.TwoPi,
					R:      rng.Float64() * 6,
					Demand: 1 + rng.Int63n(4),
				}
				customers[i].Profit = customers[i].Demand
			}
			typ := cover.AntennaType{Rho: 1.2, Range: 7, Capacity: 12}
			g, err := cover.Greedy(context.Background(), customers, typ)
			if err != nil {
				return pair{}, err
			}
			if err := cover.Check(customers, typ, g); err != nil {
				return pair{}, err
			}
			e, err := cover.Exact(context.Background(), customers, typ, 0)
			if err != nil {
				return pair{}, err
			}
			if err := cover.Check(customers, typ, e); err != nil {
				return pair{}, err
			}
			return pair{gk: g.K(), ek: e.K()}, nil
		})
		if err != nil {
			return rep, err
		}
		var gs, es []float64
		maxOver := 0.0
		matches := 0
		for _, o := range outs {
			gs = append(gs, float64(o.gk))
			es = append(es, float64(o.ek))
			if over := float64(o.gk - o.ek); over > maxOver {
				maxOver = over
			}
			if o.gk == o.ek {
				matches++
			}
		}
		tb.AddRow(n, trials, stats.Summarize(gs).Mean, stats.Summarize(es).Mean, maxOver, matches)
		if maxOver > worstOvershoot {
			worstOvershoot = maxOver
		}
	}
	tb.Caption = "overshoot = greedy k − exact k; greedy can never be below exact"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["max_overshoot"] = worstOvershoot
	return rep, nil
}
