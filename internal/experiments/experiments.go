// Package experiments defines the reproduction harness: experiments E1–E10,
// each validating one theoretical claim of the (theory-only) paper with a
// table or an ASCII-rendered figure. DESIGN.md carries the experiment
// index; EXPERIMENTS.md records expected-vs-measured.
//
// Every experiment is a deterministic function of (Options.Seed,
// Options.Quick); trials fan out over the sweep worker pool.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
	"sectorpack/internal/sweep"
)

// Options tunes a run.
type Options struct {
	// Quick shrinks sizes and trial counts for test/bench use.
	Quick bool
	// Seed offsets all instance seeds.
	Seed int64
	// Workers caps the sweep pool; zero means GOMAXPROCS.
	Workers int
}

// Report is an experiment's rendered outcome plus machine-readable
// findings for assertions in tests.
type Report struct {
	ID       string
	Title    string
	Tables   []*stats.Table
	Figures  []string
	Findings map[string]float64
}

// Render returns the full text form of the report.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	// Claim is the theoretical statement the experiment validates.
	Claim string
	Run   func(Options) (Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment IDs in order E1..E10.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool {
		// numeric sort on the suffix
		var na, nb int
		fmt.Sscanf(out[a], "E%d", &na)
		fmt.Sscanf(out[b], "E%d", &nb)
		return na < nb
	})
	return out
}

// All returns every experiment in ID order.
func All() []Experiment {
	ids := IDs()
	out := make([]Experiment, len(ids))
	for i, id := range ids {
		out[i], _ = Get(id)
	}
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, opt Options) (Report, error) {
	e, err := Get(id)
	if err != nil {
		return Report{}, err
	}
	return e.Run(opt)
}

// --- shared helpers ---

// trial is a generated instance paired with solver outcomes.
type solveOutcome struct {
	Profit  int64
	Bound   float64
	Elapsed time.Duration
}

// runSolver times one solver on one instance and verifies feasibility.
// Experiments are batch workloads with no deadline, so the solve runs
// under context.Background().
func runSolver(name string, in *model.Instance, opt core.Options) (solveOutcome, error) {
	solver, err := core.Get(name)
	if err != nil {
		return solveOutcome{}, err
	}
	start := time.Now()
	sol, err := solver(context.Background(), in, opt)
	elapsed := time.Since(start)
	if err != nil {
		return solveOutcome{}, fmt.Errorf("%s on %s: %w", name, in.Name, err)
	}
	if err := sol.Assignment.Check(in); err != nil {
		return solveOutcome{}, fmt.Errorf("%s on %s: infeasible result: %w", name, in.Name, err)
	}
	if got := sol.Assignment.Profit(in); got != sol.Profit {
		return solveOutcome{}, fmt.Errorf("%s on %s: profit accounting mismatch", name, in.Name)
	}
	return solveOutcome{Profit: sol.Profit, Bound: sol.UpperBound, Elapsed: elapsed}, nil
}

// parallelMap fans f over the inputs with the experiment's worker pool.
func parallelMap[In, Out any](opt Options, inputs []In, f func(In) (Out, error)) ([]Out, error) {
	return sweep.Map(context.Background(), inputs,
		func(_ context.Context, in In) (Out, error) { return f(in) },
		sweep.Options{Workers: opt.Workers})
}

// pick returns quick when Options.Quick is set, full otherwise.
func pick[T any](opt Options, full, quick T) T {
	if opt.Quick {
		return quick
	}
	return full
}

// ratioOf guards division by zero: equal-zero pairs count as ratio 1.
func ratioOf(num, den int64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return 0
	}
	return float64(num) / float64(den)
}

// cfgSeed derives a per-trial seed.
func cfgSeed(opt Options, k int) int64 { return opt.Seed*1_000_003 + int64(k)*7919 }

// mkConfigs builds one config per trial for a family/shape.
func mkConfigs(opt Options, fam gen.Family, variant model.Variant, n, m, trials int, mutate func(*gen.Config)) []gen.Config {
	out := make([]gen.Config, trials)
	for k := range out {
		cfg := gen.Config{Family: fam, Seed: cfgSeed(opt, k) + int64(n)*31 + int64(m)*17, N: n, M: m, Variant: variant}
		if mutate != nil {
			mutate(&cfg)
		}
		out[k] = cfg
	}
	return out
}
