package experiments

import (
	"math"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Served demand vs sector width",
		Claim: "coverage grows concavely in the angular width and saturates once sectors span the demand hotspots",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Capacity-tightness sweep",
		Claim: "served fraction tracks 1/tightness once capacity binds; utilization peaks near tightness 1",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E9",
		Title: "Coverage vs number of antennas",
		Claim: "marginal antennas bring diminishing returns on hotspot workloads",
		Run:   runE9,
	})
}

func runE4(opt Options) (Report, error) {
	rep := Report{ID: "E4", Title: "width sweep", Findings: map[string]float64{}}
	n := pick(opt, 120, 30)
	trials := pick(opt, 5, 2)
	rhos := []float64{math.Pi / 12, math.Pi / 6, math.Pi / 3, math.Pi / 2, 2 * math.Pi / 3, math.Pi}

	var xs, ys []float64
	tb := stats.NewTable("Table E4 (figure data): served-demand fraction vs sector width ρ (uniform, m=3, greedy)",
		"rho(rad)", "served-fraction")
	for _, rho := range rhos {
		cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, 3, trials, func(c *gen.Config) { c.Rho = rho })
		fracs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return 0, err
			}
			out, err := runSolver("greedy", in, core.Options{SkipBound: true})
			if err != nil {
				return 0, err
			}
			return ratioOf(out.Profit, in.TotalProfit()), nil
		})
		if err != nil {
			return rep, err
		}
		mean := stats.Summarize(fracs).Mean
		tb.AddRow(rho, mean)
		xs = append(xs, rho)
		ys = append(ys, mean)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Figures = append(rep.Figures,
		stats.AsciiSeries("Figure E4: served fraction vs sector width", xs, ys, "ρ (rad)", "fraction", 48))
	rep.Findings["frac_at_min_rho"] = ys[0]
	rep.Findings["frac_at_max_rho"] = ys[len(ys)-1]
	monotoneViolations := 0.0
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-0.03 { // small noise tolerance
			monotoneViolations++
		}
	}
	rep.Findings["monotone_violations"] = monotoneViolations
	return rep, nil
}

func runE5(opt Options) (Report, error) {
	rep := Report{ID: "E5", Title: "tightness sweep", Findings: map[string]float64{}}
	n := pick(opt, 120, 30)
	trials := pick(opt, 5, 2)
	tights := []float64{0.25, 0.5, 1.0, 1.5, 2.0}

	tb := stats.NewTable("Table E5: served fraction and capacity utilization vs tightness (uniform, m=3, greedy)",
		"tightness", "served-fraction", "capacity-utilization")
	for _, tight := range tights {
		cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, 3, trials, func(c *gen.Config) { c.Tightness = tight })
		type pair struct{ served, util float64 }
		outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (pair, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return pair{}, err
			}
			out, err := runSolver("greedy", in, core.Options{SkipBound: true})
			if err != nil {
				return pair{}, err
			}
			// Profit defaults to demand in these workloads, so served
			// profit equals served demand.
			return pair{
				served: ratioOf(out.Profit, in.TotalProfit()),
				util:   ratioOf(out.Profit, in.TotalCapacity()),
			}, nil
		})
		if err != nil {
			return rep, err
		}
		var served, util []float64
		for _, o := range outs {
			served = append(served, o.served)
			util = append(util, o.util)
		}
		sMean, uMean := stats.Summarize(served).Mean, stats.Summarize(util).Mean
		tb.AddRow(tight, sMean, uMean)
		if tight == 0.25 { //sectorlint:ignore floateq tight ranges over exact literals; this picks out the 0.25 row
			rep.Findings["served_loose"] = sMean
		}
		if tight == 2.0 { //sectorlint:ignore floateq tight ranges over exact literals; this picks out the 2.0 row
			rep.Findings["served_tight"] = sMean
			rep.Findings["util_tight"] = uMean
		}
	}
	tb.Caption = "tightness = total demand / total capacity; utilization = served demand / total capacity"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}

func runE9(opt Options) (Report, error) {
	rep := Report{ID: "E9", Title: "coverage vs antenna count", Findings: map[string]float64{}}
	n := pick(opt, 100, 30)
	trials := pick(opt, 5, 2)
	ms := pick(opt, []int{1, 2, 3, 4, 5, 6}, []int{1, 2, 3})

	var xs, ys []float64
	tb := stats.NewTable("Table E9 (figure data): served fraction vs antenna count (hotspot, greedy)",
		"m", "served-fraction")
	for _, m := range ms {
		cfgs := mkConfigs(opt, gen.Hotspot, model.Sectors, n, m, trials, nil)
		fracs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return 0, err
			}
			out, err := runSolver("greedy", in, core.Options{SkipBound: true})
			if err != nil {
				return 0, err
			}
			return ratioOf(out.Profit, in.TotalProfit()), nil
		})
		if err != nil {
			return rep, err
		}
		mean := stats.Summarize(fracs).Mean
		tb.AddRow(m, mean)
		xs = append(xs, float64(m))
		ys = append(ys, mean)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Figures = append(rep.Figures,
		stats.AsciiSeries("Figure E9: served fraction vs antenna count", xs, ys, "m", "fraction", 48))
	rep.Findings["frac_m_first"] = ys[0]
	rep.Findings["frac_m_last"] = ys[len(ys)-1]
	// Diminishing returns: first increment at least as valuable as last.
	if len(ys) >= 3 {
		rep.Findings["gain_first"] = ys[1] - ys[0]
		rep.Findings["gain_last"] = ys[len(ys)-1] - ys[len(ys)-2]
	}
	return rep, nil
}
