package experiments

import (
	"context"
	"sectorpack/internal/angular"
	"sectorpack/internal/core"
	"sectorpack/internal/fair"
	"sectorpack/internal/gen"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Price of fairness: max-min class floors vs pure efficiency",
		Claim: "enforcing the max-min floor costs a modest fraction of total profit while lifting the worst class from near-zero",
		Run:   runE18,
	})
}

func runE18(opt Options) (Report, error) {
	rep := Report{ID: "E18", Title: "price of fairness", Findings: map[string]float64{}}
	trials := pick(opt, 8, 3)
	n := pick(opt, 60, 24)
	m := 3
	numClasses := 3

	tb := stats.NewTable("Table E18: fairness floor and efficiency cost (hotspot, m=3, 3 classes by angle tercile)",
		"quantity", "geo-mean", "min", "max")
	type out struct {
		floorFair, floorEff, cost float64
	}
	cfgs := mkConfigs(opt, gen.Hotspot, model.Sectors, n, m, trials, nil)
	outs, err := parallelMap(opt, cfgs, func(cfg gen.Config) (out, error) {
		in, err := gen.Generate(cfg)
		if err != nil {
			return out{}, err
		}
		// Classes by angle tercile: hotspot workloads concentrate demand,
		// so some tercile is naturally disadvantaged.
		classes := make([]int, in.N())
		for i, c := range in.Customers {
			classes[i] = int(c.Theta / (2 * 3.14159265358979 / float64(numClasses)))
			if classes[i] >= numClasses {
				classes[i] = numClasses - 1
			}
		}
		// Fairness-aware orientations: antenna j aims at class j's best
		// window (profit-greedy orientations can strand a whole class).
		orient := make([]float64, m)
		for j := 0; j < m; j++ {
			active := make([]bool, in.N())
			for i := range active {
				active[i] = classes[i] == j%numClasses
			}
			win, err := angular.BestWindow(context.Background(), in, j, active, knapsack.Options{})
			if err != nil {
				return out{}, err
			}
			orient[j] = win.Alpha
		}
		fairSol, err := fair.SolveAt(in, classes, orient)
		if err != nil {
			return out{}, err
		}
		// Efficiency reference: the splittable LP at the same orientations.
		eff, err := core.SolveSplittable(context.Background(), in, core.Options{SkipBound: true})
		if err != nil {
			return out{}, err
		}
		// Efficiency's own worst-class fraction.
		classTotal := make([]float64, numClasses)
		classServed := make([]float64, numClasses)
		for i, c := range in.Customers {
			classTotal[classes[i]] += float64(c.Profit)
			var got float64
			for j := range eff.Frac[i] {
				got += eff.Frac[i][j]
			}
			classServed[classes[i]] += got * float64(c.Profit)
		}
		floorEff := 1.0
		for cls := 0; cls < numClasses; cls++ {
			if classTotal[cls] > 0 {
				if f := classServed[cls] / classTotal[cls]; f < floorEff {
					floorEff = f
				}
			}
		}
		cost := 1.0
		if eff.Value > 0 {
			cost = fairSol.Value / eff.Value
		}
		return out{floorFair: fairSol.MinFraction, floorEff: floorEff, cost: cost}, nil
	})
	if err != nil {
		return rep, err
	}
	var floorsFair, floorsEff, costs []float64
	for _, o := range outs {
		floorsFair = append(floorsFair, o.floorFair+1e-9)
		floorsEff = append(floorsEff, o.floorEff+1e-9)
		costs = append(costs, o.cost)
	}
	sf, se, sc := stats.Summarize(floorsFair), stats.Summarize(floorsEff), stats.Summarize(costs)
	tb.AddRow("worst-class fraction (fair)", stats.GeoMean(floorsFair), sf.Min, sf.Max)
	tb.AddRow("worst-class fraction (efficiency)", stats.GeoMean(floorsEff), se.Min, se.Max)
	tb.AddRow("fair value / efficient value", stats.GeoMean(costs), sc.Min, sc.Max)
	tb.Caption = "fairness (class-aware orientations + max-min LP) lifts the floor; last row compares its value to the profit-greedy splittable plan"
	rep.Tables = append(rep.Tables, tb)
	rep.Findings["floor_fair"] = stats.GeoMean(floorsFair)
	rep.Findings["floor_eff"] = stats.GeoMean(floorsEff)
	rep.Findings["efficiency_retained"] = stats.GeoMean(costs)
	return rep, nil
}
