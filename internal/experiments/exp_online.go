package experiments

import (
	"context"
	"math/rand"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/online"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Online arrivals: admission policies vs offline greedy",
		Claim: "sample-informed orientations with best-fit admission recover most of the offline profit; uniform layouts and naive admission lose a constant factor",
		Run:   runE15,
	})
}

func runE15(opt Options) (Report, error) {
	rep := Report{ID: "E15", Title: "online arrivals", Findings: map[string]float64{}}
	trials := pick(opt, 10, 3)
	n := pick(opt, 120, 30)
	m := 3

	type setup struct {
		name   string
		sample bool
		policy online.Policy
	}
	setups := []setup{
		{"uniform+first-fit", false, online.FirstFit{}},
		{"uniform+best-fit", false, online.BestFit{}},
		{"sample+best-fit", true, online.BestFit{}},
		{"sample+threshold", true, online.Threshold{MinDensity: 1.6}},
	}

	tb := stats.NewTable("Table E15: online profit / offline greedy profit (hotspot, m=3, random arrival order)",
		"setup", "geo-ratio", "min-ratio")
	for _, s := range setups {
		cfgs := mkConfigs(opt, gen.Hotspot, model.Sectors, n, m, trials, func(c *gen.Config) {
			c.ProfitSpread = 1.5 // densities in [1, 2.5): thresholding has bite
		})
		ratios, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
			in, err := gen.Generate(cfg)
			if err != nil {
				return 0, err
			}
			offline, err := core.SolveGreedy(context.Background(), in, core.Options{SkipBound: true})
			if err != nil {
				return 0, err
			}
			orientations := online.OrientUniform(in)
			if s.sample {
				orientations, err = online.OrientFromSample(context.Background(), in, 0.3, cfg.Seed+1)
				if err != nil {
					return 0, err
				}
			}
			rng := rand.New(rand.NewSource(cfg.Seed + 2))
			as, err := online.Run(in, orientations, rng.Perm(in.N()), s.policy)
			if err != nil {
				return 0, err
			}
			return ratioOf(as.Profit(in), offline.Profit), nil
		})
		if err != nil {
			return rep, err
		}
		sm := stats.Summarize(ratios)
		tb.AddRow(s.name, stats.GeoMean(ratios), sm.Min)
		rep.Findings["geo_"+s.name] = stats.GeoMean(ratios)
	}
	tb.Caption = "offline greedy re-optimizes orientation and assignment with full knowledge; online must commit per arrival"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}
