package experiments

import (
	"fmt"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
	"sectorpack/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Running-time scaling of the solvers",
		Claim: "greedy scales near-quadratically in n (candidates x window scan), LP rounding polynomially but steeper",
		Run:   runE3,
	})
}

func runE3(opt Options) (Report, error) {
	rep := Report{ID: "E3", Title: "runtime scaling", Findings: map[string]float64{}}
	type plan struct {
		solver string
		ns     []int
	}
	plans := []plan{
		{"greedy", pick(opt, []int{50, 100, 200, 400}, []int{20, 40})},
		{"localsearch", pick(opt, []int{50, 100, 200}, []int{20, 40})},
		{"lpround", pick(opt, []int{30, 60, 120}, []int{15, 30})},
		{"unitflow", pick(opt, []int{50, 100, 200, 400}, []int{20, 40})},
	}
	trials := pick(opt, 3, 2)
	m := 3

	tb := stats.NewTable("Table E3: median wall time (ms) and log-log slope vs n (uniform, m=3)",
		"solver", "n", "median-ms")
	for _, p := range plans {
		var xs, ys []float64
		for _, n := range p.ns {
			cfgs := mkConfigs(opt, gen.Uniform, model.Sectors, n, m, trials, func(c *gen.Config) {
				c.UnitDemand = p.solver == "unitflow"
			})
			times, err := parallelMap(opt, cfgs, func(cfg gen.Config) (float64, error) {
				in, err := gen.Generate(cfg)
				if err != nil {
					return 0, err
				}
				out, err := runSolver(p.solver, in, core.Options{Seed: cfg.Seed, SkipBound: true})
				if err != nil {
					return 0, err
				}
				return float64(out.Elapsed.Microseconds()) / 1000.0, nil
			})
			if err != nil {
				return rep, err
			}
			med := stats.Summarize(times).Median
			tb.AddRow(p.solver, n, med)
			xs = append(xs, float64(n))
			ys = append(ys, med+1e-6)
		}
		slope, err := stats.LogLogSlope(xs, ys)
		if err != nil {
			return rep, err
		}
		rep.Findings[fmt.Sprintf("slope_%s", p.solver)] = slope
	}
	tb.Caption = "slopes (log-log fit) are recorded in the findings; timing noise dominates at small n"
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}
