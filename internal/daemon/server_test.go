package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/model"
)

// sectorsInstance is a small unit-demand Sectors instance every registered
// solver can handle (unit demands keep unitflow happy, n=5 keeps exact
// cheap).
func sectorsInstance() *model.Instance {
	in := &model.Instance{
		Name:    "srv-sectors",
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 1},
			{Theta: 0.5, R: 2, Demand: 1},
			{Theta: 1.2, R: 1, Demand: 1},
			{Theta: 3.0, R: 3, Demand: 1},
			{Theta: 5.5, R: 2, Demand: 1},
		},
		Antennas: []model.Antenna{
			{Rho: 1.0, Range: 5, Capacity: 3},
			{Rho: 1.5, Range: 5, Capacity: 3},
		},
	}
	return in.Normalize()
}

func disjointInstance() *model.Instance {
	in := &model.Instance{
		Name:    "srv-disjoint",
		Variant: model.DisjointAngles,
		Customers: []model.Customer{
			{Theta: 0.2, R: 1, Demand: 1},
			{Theta: 2.0, R: 1, Demand: 1},
			{Theta: 4.0, R: 1, Demand: 1},
		},
		Antennas: []model.Antenna{
			{Rho: 1.0, Capacity: 2},
			{Rho: 1.0, Capacity: 2},
		},
	}
	return in.Normalize()
}

func solveBody(t *testing.T, solver string, in *model.Instance, extra map[string]any) []byte {
	t.Helper()
	req := map[string]any{"solver": solver, "format_version": 1, "instance": in}
	for k, v := range extra {
		req[k] = v
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSolve(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestSolveAllRegisteredSolvers(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Timeout: 30 * time.Second}).Handler())
	defer ts.Close()
	for _, name := range core.Names() {
		if strings.HasPrefix(name, "test-") {
			continue // solvers injected by other tests in this package
		}
		in := sectorsInstance()
		if name == "disjoint-dp" {
			in = disjointInstance()
		}
		resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, name, in, nil))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, body %s", name, resp.StatusCode, body)
			continue
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Errorf("%s: bad response JSON: %v", name, err)
			continue
		}
		if sr.Solver != name || sr.Algorithm == "" {
			t.Errorf("%s: response names solver %q algorithm %q", name, sr.Solver, sr.Algorithm)
		}
		as := &model.Assignment{Orientation: sr.Orientation, Owner: sr.Owner}
		if err := as.Check(in); err != nil {
			t.Errorf("%s: returned infeasible assignment: %v", name, err)
		}
		if got := as.Profit(in); got != sr.Profit {
			t.Errorf("%s: profit %d but assignment recomputes to %d", name, sr.Profit, got)
		}
	}
}

func TestSolveBadRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid JSON", "{not json", http.StatusBadRequest},
		{"unknown solver", string(solveBody(t, "no-such-solver", sectorsInstance(), nil)), http.StatusBadRequest},
		{"missing instance", `{"solver":"greedy","format_version":1}`, http.StatusBadRequest},
		{"bad format version", string(bytes.Replace(solveBody(t, "greedy", sectorsInstance(), nil), []byte(`"format_version":1`), []byte(`"format_version":9`), 1)), http.StatusBadRequest},
		{"invalid instance", `{"solver":"greedy","format_version":1,"instance":{"variant":0,"customers":[{"id":0,"theta":0,"r":-2,"demand":1}],"antennas":[]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postSolve(t, ts.Client(), ts.URL, []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d), body %s", tc.name, resp.StatusCode, tc.want, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON with error field: %s", tc.name, body)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", resp.StatusCode)
	}
}

func TestSolveAllowlist(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Allowed: []string{"greedy"}}).Handler())
	defer ts.Close()
	resp, _ := postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("allowed solver: status %d, want 200", resp.StatusCode)
	}
	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "localsearch", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("disallowed solver: status %d (want 400), body %s", resp.StatusCode, body)
	}
}

// registerBlockingSolver installs a solver that parks until release is
// closed (or its ctx ends), reporting entry on started.
func registerBlockingSolver(name string, started chan<- struct{}, release <-chan struct{}) {
	core.Register(name, func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return model.Solution{
				Assignment: model.NewAssignment(in.N(), in.M()),
				Algorithm:  name,
			}, nil
		case <-ctx.Done():
			return model.Solution{}, ctx.Err()
		}
	})
}

func TestSolveDeadlineSurfacesContextError(t *testing.T) {
	started := make(chan struct{}, 1)
	registerBlockingSolver("test-park", started, nil)
	ts := httptest.NewServer(NewServer(Config{Timeout: time.Hour}).Handler())
	defer ts.Close()
	body := solveBody(t, "test-park", sectorsInstance(), map[string]any{"timeout_ms": 30})
	start := time.Now()
	resp, out := postSolve(t, ts.Client(), ts.URL, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (want 503), body %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), context.DeadlineExceeded.Error()) {
		t.Errorf("body %q does not surface the context error", out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline response took %v, want prompt abort", elapsed)
	}
}

func TestSolveShedsAtCapacity(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlockingSolver("test-gate", started, release)
	ts := httptest.NewServer(NewServer(Config{MaxInflight: 1}).Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json",
			bytes.NewReader(solveBody(t, "test-gate", sectorsInstance(), nil)))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the solver")
	}

	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d (want 429), body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request finished with %d, want 200", code)
	}
	// Capacity is free again.
	resp, body = postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: status %d, body %s", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := NewServer(Config{MaxInflight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", sectorsInstance(), nil))
	postSolve(t, ts.Client(), ts.URL, []byte("{bad"))
	resp, _ := postSolve(t, ts.Client(), ts.URL, solveBody(t, "no-such", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("setup: unknown solver gave %d", resp.StatusCode)
	}

	vresp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	intVar := func(name string) int64 {
		var v int64
		if err := json.Unmarshal(vars[name], &v); err != nil {
			t.Fatalf("var %s = %s: %v", name, vars[name], err)
		}
		return v
	}
	if got := intVar("sectord.requests"); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if got := intVar("sectord.solved"); got != 1 {
		t.Errorf("solved = %d, want 1", got)
	}
	if got := intVar("sectord.failures"); got != 2 {
		t.Errorf("failures = %d, want 2", got)
	}
	var hist struct {
		Count   int64            `json:"count"`
		TotalMS float64          `json:"total_ms"`
		Buckets map[string]int64 `json:"buckets"`
	}
	raw, ok := vars["sectord.latency.greedy"]
	if !ok {
		t.Fatalf("no greedy latency histogram in %v", vars)
	}
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatalf("latency histogram not JSON: %v", err)
	}
	if hist.Count != 1 || len(hist.Buckets) != 1 {
		t.Errorf("greedy histogram count=%d buckets=%v, want one observation", hist.Count, hist.Buckets)
	}

	// A second Server in the same process must not panic (the metrics are
	// not published to the global expvar registry).
	NewServer(Config{})
}

func TestServeGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlockingSolver("test-drain", started, release)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := NewServer(Config{DrainTimeout: 10 * time.Second})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()
	url := fmt.Sprintf("http://%s", ln.Addr())

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/solve", "application/json",
			bytes.NewReader(solveBody(t, "test-drain", sectorsInstance(), nil)))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the solver")
	}

	cancel() // the SIGTERM path: signal.NotifyContext cancels this ctx
	time.Sleep(50 * time.Millisecond)
	close(release)

	if code := <-first; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200 (graceful drain)", code)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}

func TestSolveZeroWidthRayOverHTTP(t *testing.T) {
	in := &model.Instance{
		Variant: model.Sectors,
		Customers: []model.Customer{
			{Theta: 1.0, R: 2, Demand: 1},
			{Theta: 2.0, R: 2, Demand: 1},
		},
		Antennas: []model.Antenna{{Rho: 0, Range: 5, Capacity: 2}},
	}
	in.Normalize()
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", in, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ray instance: status %d, body %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Profit != 1 {
		t.Errorf("ray profit = %d, want 1 (one aligned customer)", sr.Profit)
	}
}

// syncBuffer lets a test poll the daemon's log output while a daemon
// goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
