package daemon

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/model"
)

func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil))
}

// The fault-injection registry driven through httptest: each misbehaving
// solver is registered under a test- name and thrown at a live Server to
// prove the ISSUE-3 httptest acceptance criteria — panics and hangs leave
// the daemon serving, degraded mode turns a hung solver into a 200 with a
// feasible greedy answer, and invalid solver output is never served.

func registerPanickingSolver(name string) {
	core.Register(name, func(context.Context, *model.Instance, core.Options) (model.Solution, error) {
		panic("injected: " + name)
	})
}

func registerHangingSolver(name string) {
	core.Register(name, func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		<-ctx.Done()
		return model.Solution{}, ctx.Err()
	})
}

// registerInvalidSolver returns every customer piled onto antenna 0 —
// uncovered and over capacity — with a matching bogus profit claim.
func registerInvalidSolver(name string) {
	core.Register(name, func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		as := model.NewAssignment(in.N(), in.M())
		var profit int64
		for i := range as.Owner {
			as.Owner[i] = 0
			profit += in.Customers[i].Profit
		}
		return model.Solution{Assignment: as, Profit: profit, Algorithm: name}, nil
	})
}

func varsInt(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars[name]
	if !ok {
		t.Fatalf("no var %q in /debug/vars", name)
	}
	var v int64
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("var %s = %s: %v", name, raw, err)
	}
	return v
}

// assertDaemonAlive proves the server still solves after a fault.
func assertDaemonAlive(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon no longer serving after fault: status %d, body %s", resp.StatusCode, body)
	}
}

func TestPanickingSolverYields500AndLiveDaemon(t *testing.T) {
	registerPanickingSolver("test-fault-panic")
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "test-fault-panic", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solver: status %d (want 500), body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("500 body %q does not name the panic", body)
	}
	assertDaemonAlive(t, ts)
	if got := varsInt(t, ts, "sectord.panics"); got != 1 {
		t.Errorf("sectord.panics = %d, want 1", got)
	}
}

func TestHangingSolverWithoutDegradedGets503(t *testing.T) {
	registerHangingSolver("test-fault-hang")
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	body := solveBody(t, "test-fault-hang", sectorsInstance(), map[string]any{"timeout_ms": 50})
	resp, out := postSolve(t, ts.Client(), ts.URL, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hung solver without degraded mode: status %d (want 503), body %s", resp.StatusCode, out)
	}
	assertDaemonAlive(t, ts)
	if got := varsInt(t, ts, "sectord.cancellations"); got != 1 {
		t.Errorf("sectord.cancellations = %d, want 1", got)
	}
}

func TestHangingSolverWithDegradedAllowGets200Greedy(t *testing.T) {
	registerHangingSolver("test-fault-hang2")
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	in := sectorsInstance()
	body := solveBody(t, "test-fault-hang2", in, map[string]any{"timeout_ms": 50})
	resp, err := ts.Client().Post(ts.URL+"/solve?degraded=allow", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded=allow on a hung solver: status %d (want 200)", resp.StatusCode)
	}
	if !sr.Degraded {
		t.Fatal(`response missing "degraded": true`)
	}
	if sr.SolverUsed != "greedy" {
		t.Errorf("solver_used = %q, want greedy", sr.SolverUsed)
	}
	if sr.FallbackReason != core.FallbackDeadline {
		t.Errorf("fallback_reason = %q, want %q", sr.FallbackReason, core.FallbackDeadline)
	}
	as := &model.Assignment{Orientation: sr.Orientation, Owner: sr.Owner}
	if err := as.Check(in); err != nil {
		t.Errorf("degraded assignment infeasible: %v", err)
	}
	if got := as.Profit(in); got != sr.Profit {
		t.Errorf("degraded profit %d but assignment recomputes to %d", sr.Profit, got)
	}
	assertDaemonAlive(t, ts)
	if got := varsInt(t, ts, "sectord.fallbacks"); got != 1 {
		t.Errorf("sectord.fallbacks = %d, want 1", got)
	}
	if got := varsInt(t, ts, "sectord.hedge_wins"); got != 1 {
		t.Errorf("sectord.hedge_wins = %d, want 1 (greedy finished well before the deadline)", got)
	}
}

func TestPanickingSolverWithDegradedAllowFallsBack(t *testing.T) {
	registerPanickingSolver("test-fault-panic2")
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	body := solveBody(t, "test-fault-panic2", sectorsInstance(), nil)
	resp, err := ts.Client().Post(ts.URL+"/solve?degraded=allow", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !sr.Degraded || sr.FallbackReason != core.FallbackPanic {
		t.Fatalf("status %d degraded %v reason %q, want 200/true/panic", resp.StatusCode, sr.Degraded, sr.FallbackReason)
	}
	if got := varsInt(t, ts, "sectord.panics"); got != 1 {
		t.Errorf("sectord.panics = %d, want 1 (degraded panic still counted)", got)
	}
	assertDaemonAlive(t, ts)
}

func TestInvalidSolverOutputRejectedNotServed(t *testing.T) {
	registerInvalidSolver("test-fault-invalid")
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	// Without degraded mode: the post-solve Check gate turns the
	// infeasible answer into a 500.
	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "test-fault-invalid", sectorsInstance(), nil))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("invalid solver output: status %d (want 500), body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "invalid") {
		t.Errorf("500 body %q does not name the invalid output", body)
	}
	if got := varsInt(t, ts, "sectord.invalid"); got != 1 {
		t.Errorf("sectord.invalid = %d, want 1", got)
	}

	// With degraded mode: the gate failure is a fallback trigger and the
	// greedy answer is served instead.
	in := sectorsInstance()
	resp2, err := ts.Client().Post(ts.URL+"/solve?degraded=allow", "application/json",
		strings.NewReader(string(solveBody(t, "test-fault-invalid", in, nil))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sr solveResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || !sr.Degraded || sr.FallbackReason != core.FallbackInvalid {
		t.Fatalf("status %d degraded %v reason %q, want 200/true/invalid", resp2.StatusCode, sr.Degraded, sr.FallbackReason)
	}
	as := &model.Assignment{Orientation: sr.Orientation, Owner: sr.Owner}
	if err := as.Check(in); err != nil {
		t.Errorf("served degraded assignment infeasible: %v", err)
	}
	assertDaemonAlive(t, ts)
}

func TestDegradedParamValidation(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	body := solveBody(t, "greedy", sectorsInstance(), nil)
	resp, err := ts.Client().Post(ts.URL+"/solve?degraded=maybe", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("degraded=maybe: status %d, want 400", resp.StatusCode)
	}
	for _, v := range []string{"deny", ""} {
		url := ts.URL + "/solve"
		if v != "" {
			url += "?degraded=" + v
		}
		resp, err := ts.Client().Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("degraded=%q on a healthy solver: status %d, want 200", v, resp.StatusCode)
		}
	}
}

// TestDegradedModeBitIdenticalWhenHealthy pins the serving-layer half of
// the determinism guarantee: a healthy solver answers identically with and
// without ?degraded=allow (modulo elapsed time and the solver_used stamp).
func TestDegradedModeBitIdenticalWhenHealthy(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	in := sectorsInstance()
	body := solveBody(t, "localsearch", in, nil)

	_, plainBody := postSolve(t, ts.Client(), ts.URL, body)
	resp, err := ts.Client().Post(ts.URL+"/solve?degraded=allow", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plain, hedged solveResponse
	if err := json.Unmarshal(plainBody, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hedged); err != nil {
		t.Fatal(err)
	}
	if hedged.Degraded {
		t.Fatal("healthy hedged request marked degraded")
	}
	if hedged.SolverUsed != "localsearch" {
		t.Errorf("solver_used = %q, want localsearch", hedged.SolverUsed)
	}
	if plain.Profit != hedged.Profit || plain.Algorithm != hedged.Algorithm {
		t.Errorf("profit/algorithm drifted: %d/%s vs %d/%s", plain.Profit, plain.Algorithm, hedged.Profit, hedged.Algorithm)
	}
	for i := range plain.Orientation {
		if math.Float64bits(plain.Orientation[i]) != math.Float64bits(hedged.Orientation[i]) {
			t.Fatalf("orientation[%d] drifted: %v vs %v", i, plain.Orientation[i], hedged.Orientation[i])
		}
	}
	for i := range plain.Owner {
		if plain.Owner[i] != hedged.Owner[i] {
			t.Fatalf("owner[%d] drifted: %d vs %d", i, plain.Owner[i], hedged.Owner[i])
		}
	}
}

func TestStructuredRequestLogging(t *testing.T) {
	registerPanickingSolver("test-fault-logpanic")
	var buf syncBuffer
	logger := newTestLogger(&buf)
	ts := httptest.NewServer(NewServer(Config{Logger: logger}).Handler())
	defer ts.Close()

	postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", sectorsInstance(), nil))
	postSolve(t, ts.Client(), ts.URL, solveBody(t, "test-fault-logpanic", sectorsInstance(), nil))

	logs := buf.String()
	for _, want := range []string{
		"request_id=", "solver=greedy", "duration_ms=", "outcome=ok", "degraded=false", "status=200",
		"solver=test-fault-logpanic", "outcome=panic", "status=500", "stack=",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("structured log missing %q:\n%s", want, logs)
		}
	}
	// Request IDs are unique per request.
	first := strings.Index(logs, "request_id=")
	last := strings.LastIndex(logs, "request_id=")
	if first == last {
		t.Fatal("expected at least two request_id fields")
	}
	id1 := strings.Fields(logs[first:])[0]
	id2 := strings.Fields(logs[last:])[0]
	if id1 == id2 {
		t.Errorf("request IDs not unique: %s repeated", id1)
	}
}

func TestDegradedRequestLogged(t *testing.T) {
	registerHangingSolver("test-fault-hang3")
	var buf syncBuffer
	ts := httptest.NewServer(NewServer(Config{Logger: newTestLogger(&buf)}).Handler())
	defer ts.Close()

	body := solveBody(t, "test-fault-hang3", sectorsInstance(), map[string]any{"timeout_ms": 50})
	resp, err := ts.Client().Post(ts.URL+"/solve?degraded=allow", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "outcome=degraded") {
		if time.Now().After(deadline) {
			t.Fatalf("no degraded log line:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "degraded=true") {
		t.Errorf("degraded log line missing degraded=true:\n%s", buf.String())
	}
}
