// Session endpoints: a client may open a long-lived delta-solve session
// (POST /session), stream deltas into it (POST /session/{id}/delta) and get
// each incremental re-solve back, then close it (DELETE /session/{id}).
// Sessions wrap internal/session — the warm-state reuse and its
// bit-identity-to-from-scratch contract live there; this file is the HTTP
// plumbing: a mutex-mapped store, per-session locking (a session.Session is
// not concurrent-safe), lazy idle eviction, and counters.
//
// Session solves NEVER touch the fingerprint solve cache. A fingerprint
// names a one-shot (instance, options, solver) triple; a session's identity
// is its delta history, and its answers come from warm incremental state,
// not from content-addressed lookups. Session responses therefore always
// carry X-Sectord-Cache: off, and nothing on this path reads or populates
// Server.cache — the cache-isolation regression test pins that.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/model"
	"sectorpack/internal/session"
)

// DefaultSessionMax is the live-session cap when Config leaves it zero.
const DefaultSessionMax = 64

// DefaultSessionTTL is the idle-eviction deadline when Config leaves it
// zero.
const DefaultSessionTTL = 15 * time.Minute

// sessionEntry is one live session plus its lock. session.Session is not
// safe for concurrent use; every Apply/read happens under mu. lastNanos is
// atomic so the eviction sweep can read idleness without the lock.
//
// journal (nil when journaling is disabled) is this session's WAL; appends
// happen under mu, in the same critical section as the Apply they record.
// lastIdemKey/lastOK implement delta idempotency: a delta re-sent with the
// key of the last applied one is answered from current state, not applied
// twice (lastOK distinguishes "applied and solved" from "applied but the
// solve failed", which a retry must re-solve).
type sessionEntry struct {
	mu          sync.Mutex
	sess        *session.Session // guarded by mu
	solver      string           // immutable after creation
	journal     *session.Journal // guarded by mu
	lastIdemKey string           // guarded by mu
	lastOK      bool             // guarded by mu
	lastNanos   atomic.Int64

	// statsSnap is the Stats reading published by the most recent
	// snapshotStats call. It lets the store-wide sums (remove, totals) read
	// a session's counters without taking mu — an in-flight Apply can hold
	// mu for a whole solve, and /debug/vars must not block behind it.
	statsSnap atomic.Pointer[session.Stats]
}

func (e *sessionEntry) touch() { e.lastNanos.Store(time.Now().UnixNano()) }

// snapshotStats reads the session's current stats and publishes them as
// the entry's lock-free snapshot.
//
//sectorlint:locked sessionEntry.mu
func (e *sessionEntry) snapshotStats() session.Stats {
	st := e.sess.Stats()
	e.statsSnap.Store(&st)
	return st
}

// stats returns the last published snapshot without taking mu. It can lag
// the live session by at most the delta currently being applied.
func (e *sessionEntry) stats() session.Stats {
	if p := e.statsSnap.Load(); p != nil {
		return *p
	}
	return session.Stats{}
}

// sessionStore owns the id → session map. retired accumulates the Stats of
// closed and evicted sessions so the store-wide sums in /debug/vars never
// go backwards when a session dies.
type sessionStore struct {
	mu      sync.Mutex
	m       map[string]*sessionEntry // guarded by mu
	retired session.Stats            // guarded by mu
}

// evictIdle removes every session idle longer than ttl. A session whose
// lock is held is mid-request and is skipped — it will be swept once idle
// again. A journal that cannot be removed is reported through onJournalErr
// (never nil'd away silently: the file would resurrect the session at the
// next restart). Returns the number evicted.
func (st *sessionStore) evictIdle(ttl time.Duration, onJournalErr func(id string, err error)) int {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	evicted := 0
	for id, e := range st.m {
		if now.Sub(time.Unix(0, e.lastNanos.Load())) <= ttl {
			continue
		}
		if !e.mu.TryLock() {
			continue // in flight right now; not idle
		}
		st.retired = addStats(st.retired, e.sess.Stats())
		if e.journal != nil {
			// An evicted session is gone for good; its journal must not
			// resurrect it at the next restart.
			if err := e.journal.Remove(); err != nil && onJournalErr != nil {
				onJournalErr(id, err)
			}
		}
		e.mu.Unlock()
		delete(st.m, id)
		evicted++
	}
	return evicted
}

// remove deletes id, folding its last published stats snapshot into the
// retired accumulator. It reads the snapshot, not the live session — sess
// is guarded by e.mu, which remove does not (and must not) take: an
// in-flight Apply can hold it for a whole solve.
func (st *sessionStore) remove(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return nil, false
	}
	st.retired = addStats(st.retired, e.stats())
	delete(st.m, id)
	return e, true
}

func (st *sessionStore) get(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	return e, ok
}

// put inserts the entry unless the store is at cap.
func (st *sessionStore) put(id string, e *sessionEntry, max int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.m) >= max {
		return false
	}
	st.m[id] = e
	return true
}

// totals returns the store-wide Stats sums: retired sessions plus the
// published snapshot of every live one. Reading snapshots instead of the
// live sessions keeps totals lock-free per entry (an in-flight Apply would
// otherwise block the /debug/vars render) and race-free — sess is guarded
// by each entry's mu.
func (st *sessionStore) totals() session.Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	t := st.retired
	for _, e := range st.m {
		t = addStats(t, e.stats())
	}
	return t
}

func (st *sessionStore) active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

func addStats(a, b session.Stats) session.Stats {
	a.Solves += b.Solves
	a.Deltas += b.Deltas
	a.SweepsKept += b.SweepsKept
	a.SweepsDropped += b.SweepsDropped
	a.StepsReused += b.StepsReused
	a.StepsResolved += b.StepsResolved
	return a
}

// sessionCreateRequest is the POST /session body: the /solve envelope,
// minus the per-request cache knobs that do not apply to sessions.
type sessionCreateRequest struct {
	Solver        string          `json:"solver"`
	Seed          *int64          `json:"seed,omitempty"`
	TimeoutMillis int64           `json:"timeout_ms,omitempty"`
	FormatVersion int             `json:"format_version"`
	Instance      *model.Instance `json:"instance"`
}

// sessionDeltaRequest is the POST /session/{id}/delta body. The delta's
// customer ids refer to the session's current instance (the state after
// every previously applied delta).
//
// IdempotencyKey makes the request safe to retry: if it equals the key of
// the delta most recently applied to this session, the request is answered
// from the session's current state instead of applying the delta a second
// time (the X-Sectord-Idempotent: replay header marks such answers). Retry
// loops — including ones that straddle a daemon restart, since recovery
// restores the last journaled key — should send a fresh unique key per
// logical delta.
type sessionDeltaRequest struct {
	TimeoutMillis  int64       `json:"timeout_ms,omitempty"`
	FormatVersion  int         `json:"format_version"`
	IdempotencyKey string      `json:"idempotency_key,omitempty"`
	Delta          model.Delta `json:"delta"`
}

// idempotentHeader marks a delta response that was answered from current
// state because its idempotency key matched the last applied delta.
const idempotentHeader = "X-Sectord-Idempotent"

// sessionStats is the wire form of session.Stats.
type sessionStats struct {
	Solves        int64 `json:"solves"`
	Deltas        int64 `json:"deltas"`
	SweepsKept    int64 `json:"sweeps_kept"`
	SweepsDropped int64 `json:"sweeps_dropped"`
	StepsReused   int64 `json:"steps_reused"`
	StepsResolved int64 `json:"steps_resolved"`
}

func newSessionStats(st session.Stats) sessionStats {
	return sessionStats{
		Solves:        st.Solves,
		Deltas:        st.Deltas,
		SweepsKept:    st.SweepsKept,
		SweepsDropped: st.SweepsDropped,
		StepsReused:   st.StepsReused,
		StepsResolved: st.StepsResolved,
	}
}

// sessionResponse is the create/delta reply: the session handle, the solve
// the request produced, and the session's cumulative reuse stats.
type sessionResponse struct {
	SessionID string       `json:"session_id"`
	Stats     sessionStats `json:"stats"`
	// Embedded by value, not pointer: encoding/json cannot allocate an
	// embedded pointer to an unexported type when clients decode this.
	solveResponse
}

// sessionDeleteResponse is the DELETE reply.
type sessionDeleteResponse struct {
	SessionID string       `json:"session_id"`
	Stats     sessionStats `json:"stats"`
}

func (s *Server) sessionMax() int {
	if s.cfg.SessionMax > 0 {
		return s.cfg.SessionMax
	}
	return DefaultSessionMax
}

func (s *Server) sessionTTL() time.Duration {
	if s.cfg.SessionTTL > 0 {
		return s.cfg.SessionTTL
	}
	return DefaultSessionTTL
}

// sweepSessions runs the lazy idle-eviction pass; every session route calls
// it on entry, so an abandoned session outlives its TTL only until the next
// session request of any kind.
func (s *Server) sweepSessions() {
	if n := s.sessions.evictIdle(s.sessionTTL(), s.journalRemoveFailed); n > 0 {
		s.sessEvicted.Add(int64(n))
		s.logger.Info("sessions evicted", slog.Int("count", n))
	}
}

// journalRemoveFailed records a journal deletion that failed: the file is
// now an orphan that the next restart's recovery pass may replay into a
// session the client believes is gone. Counted and logged so operators can
// clean the journal directory.
func (s *Server) journalRemoveFailed(id string, err error) {
	s.journalOrphans.Add(1)
	s.logger.Warn("session journal remove failed; orphan journal left on disk",
		slog.String("session_id", id), slog.String("error", err.Error()))
}

func (s *Server) nextSessionID() string {
	return fmt.Sprintf("s-%s-%06d", s.ridPrefix, s.sessSeq.Add(1))
}

// logSession is the session routes' structured log line.
func (s *Server) logSession(action, id string, start time.Time, status int, detail string) {
	level := slog.LevelInfo
	if status >= 500 {
		level = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("session_id", id),
		slog.String("action", action),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)),
	}
	if detail != "" {
		attrs = append(attrs, slog.String("detail", detail))
	}
	s.logger.LogAttrs(context.Background(), level, "session", attrs...)
}

// sessionSolveStatus maps a session solve error onto the same status/outcome
// taxonomy as /solve and bumps the matching counter.
func (s *Server) sessionSolveStatus(rid string, err error) (int, string) {
	var pe *core.PanicError
	var ie *core.InvalidSolutionError
	switch {
	case errors.As(err, &pe):
		s.panics.Add(1)
		s.logger.Error("solver panic",
			slog.String("request_id", rid),
			slog.String("solver", pe.Solver),
			slog.String("panic", fmt.Sprint(pe.Value)),
			slog.String("stack", string(pe.Stack)))
		return http.StatusInternalServerError, "solve failed: " + pe.Error()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.cancellations.Add(1)
		return http.StatusServiceUnavailable, "solve aborted: " + err.Error()
	case errors.As(err, &ie):
		s.invalid.Add(1)
		return http.StatusInternalServerError, "solve failed: " + ie.Error()
	default:
		s.failures.Add(1)
		return http.StatusBadRequest, "solve failed: " + err.Error()
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Session answers never come from the solve cache; say so on every
	// response, including errors.
	w.Header().Set(cacheHeader, cacheOff)
	rid := s.nextRequestID()
	s.sweepSessions()

	fail := func(status int, msg string) {
		s.logSession("create", "", start, status, msg)
		writeJSON(w, status, errorResponse{Error: msg})
	}

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		s.setRetryAfter(w)
		fail(http.StatusTooManyRequests, "server at capacity")
		return
	}

	var req sessionCreateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if req.FormatVersion != 1 {
		s.failures.Add(1)
		fail(http.StatusBadRequest, fmt.Sprintf("unsupported format_version %d (want 1)", req.FormatVersion))
		return
	}
	if req.Instance == nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "request missing instance")
		return
	}
	name, _, err := s.resolveSolver(req.Solver)
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, err.Error())
		return
	}
	if s.sessions.active() >= s.sessionMax() {
		s.shed.Add(1)
		// Unlike the inflight-semaphore sheds (setRetryAfter), a full
		// session table frees on DELETE or TTL eviction, which solve
		// latency says nothing about; a fixed short hint is the honest one.
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, fmt.Sprintf("session table full (%d live)", s.sessionMax()))
		return
	}

	ctx := r.Context()
	if timeout := s.solveTimeout(req.TimeoutMillis); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	sopt := session.Options{
		Solver: name,
		Core:   s.solveOptions(req.Seed),
	}
	sess, err := session.New(ctx, req.Instance, sopt)
	if err != nil {
		status, msg := s.sessionSolveStatus(rid, err)
		fail(status, msg)
		return
	}
	// The same post-solve gate as /solve: an infeasible answer is a server
	// bug, never a served solution.
	if err := core.VerifySolution(name, sess.Instance(), sess.Solution()); err != nil {
		s.invalid.Add(1)
		fail(http.StatusInternalServerError, "solve failed: "+err.Error())
		return
	}

	id := s.nextSessionID()
	e := &sessionEntry{sess: sess, solver: name}
	if s.journalEnabled() {
		// The journal's create record must be durable before the session is
		// acknowledged — otherwise a crash right after the response would
		// lose a session the client believes exists. CreateJournal fsyncs
		// the record and the directory entry before returning.
		j, jerr := session.CreateJournal(s.fsys, s.journalPath(id), sopt, req.Instance, s.journalSyncEvery())
		if jerr != nil {
			s.journalFailures.Add(1)
			fail(http.StatusInternalServerError, "session journal create failed: "+jerr.Error())
			return
		}
		e.journal = j
	}
	e.touch()
	// Capture the response payload and publish the first stats snapshot
	// before the entry becomes visible: session IDs are predictable, so the
	// moment put succeeds a concurrent delta can lock the entry and advance
	// sess mid-read.
	stats := sess.Stats()
	sol := sess.Solution()
	e.statsSnap.Store(&stats)
	if !s.sessions.put(id, e, s.sessionMax()) {
		if e.journal != nil {
			if rerr := e.journal.Remove(); rerr != nil {
				s.journalRemoveFailed(id, rerr)
			}
		}
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, fmt.Sprintf("session table full (%d live)", s.sessionMax()))
		return
	}
	s.sessCreated.Add(1)
	elapsed := time.Since(start)
	s.solved.Add(1)
	s.observeLatency(name, elapsed)
	s.logSession("create", id, start, http.StatusOK, "solver="+name)
	writeJSON(w, http.StatusOK, sessionResponse{
		SessionID:     id,
		Stats:         newSessionStats(stats),
		solveResponse: *newSolveResponse(name, sol, elapsed),
	})
}

func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set(cacheHeader, cacheOff)
	rid := s.nextRequestID()
	id := r.PathValue("id")
	s.sweepSessions()

	fail := func(status int, msg string) {
		s.logSession("delta", id, start, status, msg)
		writeJSON(w, status, errorResponse{Error: msg})
	}

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		s.setRetryAfter(w)
		fail(http.StatusTooManyRequests, "server at capacity")
		return
	}

	var req sessionDeltaRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if req.FormatVersion != 1 {
		s.failures.Add(1)
		fail(http.StatusBadRequest, fmt.Sprintf("unsupported format_version %d (want 1)", req.FormatVersion))
		return
	}
	e, ok := s.sessions.get(id)
	if !ok {
		s.failures.Add(1)
		fail(http.StatusNotFound, fmt.Sprintf("no session %q (expired or never created)", id))
		return
	}

	ctx := r.Context()
	if timeout := s.solveTimeout(req.TimeoutMillis); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Serialize against other deltas to the same session; concurrent deltas
	// to different sessions only contend for inflight-semaphore slots.
	e.mu.Lock()
	e.touch()

	// Idempotent replay: this exact delta was the last one applied, so the
	// session's current state already reflects it. Answer from that state
	// instead of applying it twice. If its solve never committed (lastOK is
	// false — the delta advanced the instance but the re-solve failed), an
	// empty-delta Apply re-solves the current instance in place; the empty
	// delta is not journaled because journal replay re-solves anyway.
	if req.IdempotencyKey != "" && req.IdempotencyKey == e.lastIdemKey {
		s.idemReplays.Add(1)
		var sol model.Solution
		var err error
		if e.lastOK {
			sol = e.sess.Solution()
		} else {
			sol, err = e.sess.Apply(ctx, model.Delta{})
			if err == nil {
				if verr := core.VerifySolution(e.solver, e.sess.Instance(), sol); verr != nil {
					err = verr
				}
			}
			e.lastOK = err == nil
		}
		stats := e.snapshotStats()
		e.touch()
		e.mu.Unlock()
		if err != nil {
			status, msg := s.sessionSolveStatus(rid, err)
			fail(status, msg)
			return
		}
		elapsed := time.Since(start)
		w.Header().Set(idempotentHeader, "replay")
		s.logSession("delta", id, start, http.StatusOK, "idempotent replay")
		writeJSON(w, http.StatusOK, sessionResponse{
			SessionID:     id,
			Stats:         newSessionStats(stats),
			solveResponse: *newSolveResponse(e.solver, sol, elapsed),
		})
		return
	}

	sol, err := e.sess.Apply(ctx, req.Delta)
	var verr error
	if err == nil {
		verr = core.VerifySolution(e.solver, e.sess.Instance(), sol)
	}
	var status int
	var msg string
	if err != nil {
		status, msg = s.sessionSolveStatus(rid, err)
	}
	// Session.Apply installs the new instance before solving, so the state
	// advanced unless the delta itself was rejected (the 400 path). Every
	// state advance must reach the journal — including failed solves —
	// or replay would diverge from the live session.
	advanced := err == nil || status != http.StatusBadRequest
	if advanced && e.journal != nil {
		if jerr := e.journal.AppendDelta(req.Delta, req.IdempotencyKey); jerr != nil {
			// The journal no longer matches the live session and can't be
			// made to. Drop the session entirely: a clean 404-and-recreate
			// for the client beats silently serving state that a restart
			// would roll back.
			s.journalFailures.Add(1)
			if rerr := e.journal.Remove(); rerr != nil {
				s.journalRemoveFailed(id, rerr)
			}
			e.mu.Unlock()
			s.sessions.remove(id)
			s.logger.Warn("session dropped: journal append failed",
				slog.String("session_id", id), slog.String("error", jerr.Error()))
			fail(http.StatusInternalServerError, "session journal write failed; session dropped")
			return
		}
	}
	if advanced {
		e.lastIdemKey = req.IdempotencyKey
		e.lastOK = err == nil && verr == nil
	}
	stats := e.snapshotStats()
	e.touch()
	e.mu.Unlock()
	if err != nil {
		fail(status, msg)
		return
	}
	if verr != nil {
		s.invalid.Add(1)
		fail(http.StatusInternalServerError, "solve failed: "+verr.Error())
		return
	}
	s.sessDeltas.Add(1)
	elapsed := time.Since(start)
	s.solved.Add(1)
	s.observeLatency(e.solver, elapsed)
	s.logSession("delta", id, start, http.StatusOK, fmt.Sprintf("profit=%d", sol.Profit))
	writeJSON(w, http.StatusOK, sessionResponse{
		SessionID:     id,
		Stats:         newSessionStats(stats),
		solveResponse: *newSolveResponse(e.solver, sol, elapsed),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set(cacheHeader, cacheOff)
	id := r.PathValue("id")
	s.sweepSessions()

	e, ok := s.sessions.remove(id)
	if !ok {
		s.failures.Add(1)
		s.logSession("delete", id, start, http.StatusNotFound, "")
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no session %q (expired or never created)", id)})
		return
	}
	s.sessClosed.Add(1)
	// Synchronize with an in-flight delta so the stats in the reply are
	// final (remove already folded the last published snapshot into the
	// store-wide accumulator).
	e.mu.Lock()
	stats := e.sess.Stats()
	if e.journal != nil {
		// A deliberately closed session must not be resurrected by the next
		// restart's recovery pass.
		if rerr := e.journal.Remove(); rerr != nil {
			s.journalRemoveFailed(id, rerr)
		}
	}
	e.mu.Unlock()
	s.logSession("delete", id, start, http.StatusOK, "")
	writeJSON(w, http.StatusOK, sessionDeleteResponse{SessionID: id, Stats: newSessionStats(stats)})
}

// sessionVars returns the session metrics for /debug/vars.
func (s *Server) sessionVars() []struct {
	name string
	v    expvar.Var
} {
	intFunc := func(f func() int64) expvar.Var { return expvar.Func(func() any { return f() }) }
	return []struct {
		name string
		v    expvar.Var
	}{
		{"sectord.sessions.created", &s.sessCreated},
		{"sectord.sessions.closed", &s.sessClosed},
		{"sectord.sessions.evicted", &s.sessEvicted},
		{"sectord.sessions.deltas", &s.sessDeltas},
		{"sectord.sessions.active", intFunc(func() int64 { return int64(s.sessions.active()) })},
		{"sectord.sessions.solves", intFunc(func() int64 { return s.sessions.totals().Solves })},
		{"sectord.sessions.sweeps_kept", intFunc(func() int64 { return s.sessions.totals().SweepsKept })},
		{"sectord.sessions.sweeps_dropped", intFunc(func() int64 { return s.sessions.totals().SweepsDropped })},
		{"sectord.sessions.steps_reused", intFunc(func() int64 { return s.sessions.totals().StepsReused })},
		{"sectord.sessions.steps_resolved", intFunc(func() int64 { return s.sessions.totals().StepsResolved })},
	}
}
