package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/model"
)

// normalizeBody strips the per-request timing from a /solve response and
// re-renders it deterministically (json.Marshal sorts map keys), so two
// responses that differ only in elapsed_ms compare byte-equal.
func normalizeBody(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestSolveCacheHeaderLifecycle walks one instance through the cache
// states: miss populates, hit serves the identical bytes, bypass solves
// fresh but still matches, and a different seed misses again.
func TestSolveCacheHeaderLifecycle(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	in := sectorsInstance()
	body := solveBody(t, "greedy", in, nil)

	resp, first := postSolve(t, ts.Client(), ts.URL, body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "miss" {
		t.Fatalf("first solve: status %d header %q, want 200 miss", resp.StatusCode, resp.Header.Get(cacheHeader))
	}
	want := normalizeBody(t, first)

	resp, second := postSolve(t, ts.Client(), ts.URL, body)
	if resp.Header.Get(cacheHeader) != "hit" {
		t.Fatalf("second solve: header %q, want hit", resp.Header.Get(cacheHeader))
	}
	if got := normalizeBody(t, second); got != want {
		t.Fatalf("cache hit drifted from the populating solve:\n got  %s\n want %s", got, want)
	}

	resp3, err := ts.Client().Post(ts.URL+"/solve?cache=bypass", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	third, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.Header.Get(cacheHeader) != "bypass" {
		t.Fatalf("bypass solve: header %q, want bypass", resp3.Header.Get(cacheHeader))
	}
	if got := normalizeBody(t, third); got != want {
		t.Fatalf("bypass solve drifted from the cached one:\n got  %s\n want %s", got, want)
	}

	// A different seed is a different fingerprint: miss, not hit.
	resp, _ = postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", in, map[string]any{"seed": 99}))
	if resp.Header.Get(cacheHeader) != "miss" {
		t.Fatalf("new seed: header %q, want miss", resp.Header.Get(cacheHeader))
	}

	if hits := varsInt(t, ts, "sectord.cache.hits"); hits != 1 {
		t.Errorf("sectord.cache.hits = %d, want 1", hits)
	}
	if misses := varsInt(t, ts, "sectord.cache.misses"); misses != 2 {
		t.Errorf("sectord.cache.misses = %d, want 2", misses)
	}
}

func TestSolveCacheDisabled(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheBytes: -1}).Handler())
	defer ts.Close()
	body := solveBody(t, "greedy", sectorsInstance(), nil)
	for i := 0; i < 2; i++ {
		resp, _ := postSolve(t, ts.Client(), ts.URL, body)
		if resp.Header.Get(cacheHeader) != cacheOff {
			t.Fatalf("request %d on cacheless server: header %q, want %q", i, resp.Header.Get(cacheHeader), cacheOff)
		}
	}
}

func TestSolveInvalidCacheParam(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/solve?cache=nonsense", "application/json",
		bytes.NewReader(solveBody(t, "greedy", sectorsInstance(), nil)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cache=nonsense: status %d, want 400", resp.StatusCode)
	}
}

// TestSolveCacheSingleflight100Goroutines is the concurrency acceptance
// test: 100 goroutines post the identical instance while the solver is
// parked, so every request is in flight at once. Exactly one underlying
// solve may run; the 99 others must collapse onto it and all 100 responses
// must be byte-identical (modulo elapsed_ms). Run under -race this also
// exercises the cache's locking end to end.
func TestSolveCacheSingleflight100Goroutines(t *testing.T) {
	const clients = 100
	var calls atomic.Int64
	release := make(chan struct{})
	core.Register("test-count-cached", func(ctx context.Context, in *model.Instance, opt core.Options) (model.Solution, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return model.Solution{}, ctx.Err()
		}
		return model.Solution{
			Assignment: model.NewAssignment(in.N(), in.M()),
			Algorithm:  "test-count-cached",
		}, nil
	})
	defer core.Unregister("test-count-cached")

	// Every request must hold an inflight slot simultaneously — no shedding.
	ts := httptest.NewServer(NewServer(Config{MaxInflight: 2 * clients}).Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients
	body := solveBody(t, "test-count-cached", sectorsInstance(), nil)

	type reply struct {
		status int
		header string
		body   string
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("goroutine %d: read body: %v", i, err)
				return
			}
			replies[i] = reply{resp.StatusCode, resp.Header.Get(cacheHeader), string(raw)}
		}(i)
	}

	// Hold the leader until the collapsed counter shows every follower
	// parked on its flight — then the collapse is a proven fact, not a race
	// the test got lucky on.
	deadline := time.Now().Add(30 * time.Second)
	for varsInt(t, ts, "sectord.cache.collapsed") < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers collapsed before the deadline",
				varsInt(t, ts, "sectord.cache.collapsed"), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("underlying solver ran %d times for %d identical requests, want exactly 1", got, clients)
	}
	headers := map[string]int{}
	var canonical string
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("goroutine %d: status %d, body %s", i, r.status, r.body)
		}
		headers[r.header]++
		norm := normalizeBody(t, []byte(r.body))
		if canonical == "" {
			canonical = norm
		} else if norm != canonical {
			t.Fatalf("goroutine %d response differs:\n got  %s\n want %s", i, norm, canonical)
		}
	}
	if headers["miss"] != 1 || headers["collapsed"] != clients-1 {
		t.Fatalf("cache headers %v, want 1 miss and %d collapsed", headers, clients-1)
	}

	// The flight's solution was stored: a late request is a plain hit.
	resp, late := postSolve(t, client, ts.URL, body)
	if resp.Header.Get(cacheHeader) != "hit" {
		t.Fatalf("post-flight request: header %q, want hit", resp.Header.Get(cacheHeader))
	}
	if got := normalizeBody(t, late); got != canonical {
		t.Fatalf("post-flight hit drifted:\n got  %s\n want %s", got, canonical)
	}
}

func batchBody(t *testing.T, solver string, instances []any, extra map[string]any) []byte {
	t.Helper()
	req := map[string]any{"solver": solver, "format_version": 1, "instances": instances}
	for k, v := range extra {
		req[k] = v
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// batchItemReply mirrors batchItemResponse for decoding: encoding/json can
// marshal an embedded *solveResponse but cannot unmarshal into one (the
// struct type is unexported), so the test reads the solve fields through a
// value embed instead. An error item leaves them at their zero values.
type batchItemReply struct {
	Index int    `json:"index"`
	Cache string `json:"cache"`
	Error string `json:"error"`
	solveResponse
}

// batchReply mirrors batchResponse for decoding.
type batchReply struct {
	Solver    string           `json:"solver"`
	Count     int              `json:"count"`
	OK        int              `json:"ok"`
	Failed    int              `json:"failed"`
	Degraded  int              `json:"degraded"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Items     []batchItemReply `json:"items"`
}

func postBatch(t *testing.T, client *http.Client, url, query string, body []byte) (*http.Response, batchReply, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/solve/batch"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br batchReply
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("batch response not JSON: %v\n%s", err, raw)
		}
	}
	return resp, br, raw
}

// TestSolveBatchDuplicatesShareOneSolve: a batch holding the same instance
// three times plus one distinct instance costs exactly two underlying
// solves — the duplicates hit or collapse onto the first.
func TestSolveBatchDuplicatesShareOneSolve(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	dup := sectorsInstance()
	other := disjointInstance()
	other.Variant = model.Sectors // keep one solver happy with both shapes
	body := batchBody(t, "greedy", []any{dup, dup, dup, other}, nil)

	resp, br, raw := postBatch(t, ts.Client(), ts.URL, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, raw)
	}
	if br.Count != 4 || br.OK != 4 || br.Failed != 0 {
		t.Fatalf("batch counts %+v, want 4 ok", br)
	}
	cacheKinds := map[string]int{}
	var dupBodies []string
	for _, item := range br.Items {
		if item.Algorithm == "" {
			t.Fatalf("item %d has no solution: %+v", item.Index, item)
		}
		cacheKinds[item.Cache]++
		if item.Index < 3 {
			b, err := json.Marshal(struct {
				Profit      int64     `json:"profit"`
				Orientation []float64 `json:"orientation"`
				Owner       []int     `json:"owner"`
			}{item.Profit, item.Orientation, item.Owner})
			if err != nil {
				t.Fatal(err)
			}
			dupBodies = append(dupBodies, string(b))
		}
	}
	for i, b := range dupBodies {
		if b != dupBodies[0] {
			t.Fatalf("duplicate item %d got a different solution:\n %s\n vs %s", i, b, dupBodies[0])
		}
	}
	// The three duplicates resolve to one miss plus two hit/collapsed; the
	// distinct instance is its own miss.
	if cacheKinds["miss"] != 2 || cacheKinds["hit"]+cacheKinds["collapsed"] != 2 {
		t.Fatalf("cache outcomes %v, want 2 misses and 2 hit/collapsed", cacheKinds)
	}
	if got := resp.Header.Get(cacheHeader); got == "" {
		t.Error("batch response missing the cache summary header")
	}
	if misses := varsInt(t, ts, "sectord.cache.misses"); misses != 2 {
		t.Errorf("sectord.cache.misses = %d, want 2 for 4 items", misses)
	}
	if got := varsInt(t, ts, "sectord.batches"); got != 1 {
		t.Errorf("sectord.batches = %d, want 1", got)
	}
	if got := varsInt(t, ts, "sectord.batch_items"); got != 4 {
		t.Errorf("sectord.batch_items = %d, want 4", got)
	}
}

// TestSolveBatchBypass: ?cache=bypass solves every item fresh and labels
// it so; nothing lands in the cache.
func TestSolveBatchBypass(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	in := sectorsInstance()
	body := batchBody(t, "greedy", []any{in, in}, nil)
	resp, br, raw := postBatch(t, ts.Client(), ts.URL, "?cache=bypass", body)
	if resp.StatusCode != http.StatusOK || br.OK != 2 {
		t.Fatalf("bypass batch: status %d, body %s", resp.StatusCode, raw)
	}
	for _, item := range br.Items {
		if item.Cache != cacheBypass {
			t.Errorf("item %d cache %q, want %q", item.Index, item.Cache, cacheBypass)
		}
	}
	if got := resp.Header.Get(cacheHeader); got != "hits=0,misses=0,collapsed=0,bypass=2" {
		t.Errorf("summary header %q", got)
	}
	if entries := varsInt(t, ts, "sectord.cache.entries"); entries != 0 {
		t.Errorf("bypassed batch populated the cache: %d entries", entries)
	}
}

// TestSolveBatchPerItemErrors: invalid and missing instances fail in their
// own slots while the rest of the batch solves — the batch itself is 200.
func TestSolveBatchPerItemErrors(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	bad := map[string]any{
		"variant":   0,
		"customers": []any{map[string]any{"id": 0, "theta": 0, "r": -2, "demand": 1}},
		"antennas":  []any{},
	}
	body := batchBody(t, "greedy", []any{sectorsInstance(), nil, bad}, nil)
	resp, br, raw := postBatch(t, ts.Client(), ts.URL, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with bad items: status %d, body %s", resp.StatusCode, raw)
	}
	if br.OK != 1 || br.Failed != 2 {
		t.Fatalf("ok=%d failed=%d, want 1 ok and 2 failed", br.OK, br.Failed)
	}
	if br.Items[0].Error != "" || br.Items[0].Algorithm == "" {
		t.Errorf("valid item did not solve: %+v", br.Items[0])
	}
	if br.Items[1].Error == "" || br.Items[2].Error == "" {
		t.Errorf("bad items carry no error: %+v", br.Items[1:])
	}
	if br.Items[1].Algorithm != "" || br.Items[2].Algorithm != "" {
		t.Errorf("failed items carry a solution")
	}
}

func TestSolveBatchBadRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	tooMany := make([]any, maxBatchItems+1)
	for i := range tooMany {
		tooMany[i] = sectorsInstance()
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"invalid JSON", []byte("{nope")},
		{"no instances", batchBody(t, "greedy", []any{}, nil)},
		{"bad format version", batchBody(t, "greedy", []any{sectorsInstance()}, map[string]any{"format_version": 9})},
		{"unknown solver", batchBody(t, "no-such", []any{sectorsInstance()}, nil)},
		{"oversized batch", batchBody(t, "greedy", tooMany, nil)},
	}
	for _, tc := range cases {
		resp, _, raw := postBatch(t, ts.Client(), ts.URL, "", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %.200s", tc.name, resp.StatusCode, raw)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/solve/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve/batch: status %d, want 405", resp.StatusCode)
	}
}

// TestSolveBatchItemDeadline: a per-item timeout fails the slow items
// without failing the batch.
func TestSolveBatchItemDeadline(t *testing.T) {
	started := make(chan struct{}, 2)
	registerBlockingSolver("test-batch-park", started, nil)
	defer core.Unregister("test-batch-park")
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	in := sectorsInstance()
	body := batchBody(t, "test-batch-park", []any{in, in}, map[string]any{"timeout_ms": 50})
	resp, br, raw := postBatch(t, ts.Client(), ts.URL, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
	if br.Failed != 2 || br.OK != 0 {
		t.Fatalf("ok=%d failed=%d, want both items failed by deadline", br.OK, br.Failed)
	}
	for _, item := range br.Items {
		if item.Error == "" {
			t.Errorf("timed-out item %d has no error", item.Index)
		}
	}
}
