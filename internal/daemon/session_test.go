package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func sessionCreateBody(t *testing.T, solver string, in *model.Instance, seed int64) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"solver": solver, "seed": seed, "format_version": 1, "instance": in,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sessionDeltaBody(t *testing.T, d model.Delta) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"format_version": 1, "delta": d})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func doJSON(t *testing.T, client *http.Client, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestSessionLifecycleDifferential drives a full session over HTTP through
// a generated churn trace and pins the service-level determinism contract:
// every response (the create's initial solve and each delta's incremental
// re-solve) is bit-identical to a from-scratch solve of the independently
// materialized instance, and every session response says the solve cache
// was not involved.
func TestSessionLifecycleDifferential(t *testing.T) {
	tr := gen.MustGenerateTrace(gen.ChurnConfig{
		Base:          gen.Config{Family: gen.Uniform, Seed: 9, N: 80, M: 6, Bands: 3, Tightness: 2, ProfitSpread: 0.4},
		Steps:         3,
		Rate:          0.05,
		Localized:     true,
		CapacityEvery: 2,
	})
	const seed = 42
	solver, err := core.Get("greedy")
	if err != nil {
		t.Fatal(err)
	}
	fromScratch := func(step int) model.Solution {
		mat, err := tr.Materialize(step)
		if err != nil {
			t.Fatalf("materialize %d: %v", step, err)
		}
		sol, err := solver(context.Background(), mat, core.Options{Seed: seed})
		if err != nil {
			t.Fatalf("from-scratch solve at step %d: %v", step, err)
		}
		return sol
	}
	checkResponse := func(step int, resp *http.Response, body []byte) sessionResponse {
		t.Helper()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d, body %s", step, resp.StatusCode, body)
		}
		if got := resp.Header.Get(cacheHeader); got != cacheOff {
			t.Errorf("step %d: %s = %q, want %q (sessions never touch the cache)", step, cacheHeader, got, cacheOff)
		}
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("step %d: bad response JSON: %v", step, err)
		}
		want := fromScratch(step)
		if sr.Profit != want.Profit {
			t.Errorf("step %d: profit %d, want %d", step, sr.Profit, want.Profit)
		}
		for j, a := range sr.Orientation {
			if math.Float64bits(a) != math.Float64bits(want.Assignment.Orientation[j]) {
				t.Errorf("step %d: orientation[%d] = %v, want %v (bit-identity)", step, j, a, want.Assignment.Orientation[j])
			}
		}
		for i, o := range sr.Owner {
			if o != want.Assignment.Owner[i] {
				t.Errorf("step %d: owner[%d] = %d, want %d", step, i, o, want.Assignment.Owner[i])
			}
		}
		return sr
	}

	ts := httptest.NewServer(NewServer(Config{Timeout: time.Minute}).Handler())
	defer ts.Close()

	resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session",
		sessionCreateBody(t, "greedy", tr.Instance, seed))
	sr := checkResponse(0, resp, body)
	if sr.SessionID == "" {
		t.Fatal("create response has no session_id")
	}
	if sr.Stats.Solves != 1 {
		t.Errorf("create stats %+v, want 1 solve", sr.Stats)
	}
	sid := sr.SessionID

	for k, d := range tr.Deltas {
		resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session/"+sid+"/delta", sessionDeltaBody(t, d))
		sr := checkResponse(k+1, resp, body)
		if sr.SessionID != sid {
			t.Errorf("delta %d: response names session %q", k, sr.SessionID)
		}
		if got := sr.Stats.Deltas; got != int64(k+1) {
			t.Errorf("delta %d: stats count %d deltas", k, got)
		}
	}

	resp, body = doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/session/"+sid, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d, body %s", resp.StatusCode, body)
	}
	var dr sessionDeleteResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Stats.Deltas != int64(len(tr.Deltas)) || dr.Stats.Solves != int64(len(tr.Deltas))+1 {
		t.Errorf("final stats %+v, want %d deltas / %d solves", dr.Stats, len(tr.Deltas), len(tr.Deltas)+1)
	}
	// The session is gone: further deltas and a second delete both 404.
	resp, _ = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session/"+sid+"/delta", sessionDeltaBody(t, tr.Deltas[0]))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delta after delete: status %d, want 404", resp.StatusCode)
	}
	resp, _ = doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/session/"+sid, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionCacheIsolation is the cache-header audit's regression test:
// session traffic must never read or populate the fingerprint solve cache
// (its entries describe one-shot solves; a session's identity is its delta
// history), while /solve keeps caching normally on the same server.
func TestSessionCacheIsolation(t *testing.T) {
	srv := NewServer(Config{Timeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Populate the cache with a one-shot solve of the same instance the
	// session will churn: if sessions consulted the cache, this entry is
	// exactly what they would hit.
	tr := gen.MustGenerateTrace(gen.ChurnConfig{
		Base:  gen.Config{Family: gen.Uniform, Seed: 3, N: 40, M: 4, Bands: 2, Tightness: 2},
		Steps: 2, Rate: 0.05,
	})
	resp, body := postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", tr.Instance, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("seed solve: %s = %q, want miss", cacheHeader, got)
	}
	before := srv.cache.Stats()
	if before.Entries != 1 {
		t.Fatalf("setup: cache holds %d entries, want 1", before.Entries)
	}

	resp, body = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session",
		sessionCreateBody(t, "greedy", tr.Instance, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d, body %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for k, d := range tr.Deltas {
		resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session/"+sr.SessionID+"/delta", sessionDeltaBody(t, d))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: status %d, body %s", k, resp.StatusCode, body)
		}
		if got := resp.Header.Get(cacheHeader); got != cacheOff {
			t.Errorf("delta %d: %s = %q, want %q", k, cacheHeader, got, cacheOff)
		}
	}
	if resp, _ := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/session/"+sr.SessionID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	// The cache is exactly as the one-shot solve left it: same entry count,
	// no new stores, and — decisively — no hits: nothing on the session
	// path even consulted it.
	after := srv.cache.Stats()
	if after != before {
		t.Errorf("session traffic perturbed the cache:\n before %+v\n after  %+v", before, after)
	}

	// /solve still caches on this server: the seeded entry hits.
	resp, _ = postSolve(t, ts.Client(), ts.URL, solveBody(t, "greedy", tr.Instance, nil))
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("follow-up /solve: %s = %q, want hit", cacheHeader, got)
	}
}

func TestSessionBadRequests(t *testing.T) {
	in := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 2, N: 20, M: 2, Tightness: 2})
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid JSON", "{not json", http.StatusBadRequest},
		{"bad format version", `{"solver":"greedy","format_version":9,"instance":{}}`, http.StatusBadRequest},
		{"missing instance", `{"solver":"greedy","format_version":1}`, http.StatusBadRequest},
		{"unknown solver", string(sessionCreateBody(t, "no-such-solver", in, 1)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d), body %s", tc.name, resp.StatusCode, tc.want, body)
		}
		if got := resp.Header.Get(cacheHeader); got != cacheOff {
			t.Errorf("%s: %s = %q, want %q even on errors", tc.name, cacheHeader, got, cacheOff)
		}
	}

	// A rejected delta leaves the session usable.
	resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", in, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d, body %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	resp, body = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session/"+sr.SessionID+"/delta",
		sessionDeltaBody(t, model.Delta{Remove: []int{999}}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range delta: status %d (want 400), body %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session/"+sr.SessionID+"/delta",
		sessionDeltaBody(t, model.Delta{Remove: []int{0}}))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("session unusable after rejected delta: status %d, body %s", resp.StatusCode, body)
	}

	// Wrong methods 405 via the method-scoped mux patterns.
	resp, _ = doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/session", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /session: status %d, want 405", resp.StatusCode)
	}
}

// TestSessionCapAndEviction: the live-session cap sheds creates with 429,
// and idle sessions are lazily reaped after SessionTTL so the table drains
// without explicit deletes.
func TestSessionCapAndEviction(t *testing.T) {
	in := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 6, N: 15, M: 2, Tightness: 2})
	srv := NewServer(Config{SessionMax: 1, SessionTTL: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", in, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first create: status %d, body %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	resp, body = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", in, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap: status %d (want 429), body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Let the first session go idle past the TTL; the next session request
	// sweeps it out, freeing the slot.
	time.Sleep(60 * time.Millisecond)
	resp, body = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", in, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create after TTL: status %d (want 200 via eviction), body %s", resp.StatusCode, body)
	}
	resp, _ = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session/"+sr.SessionID+"/delta",
		sessionDeltaBody(t, model.Delta{Remove: []int{0}}))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delta to evicted session: status %d, want 404", resp.StatusCode)
	}

	// The counters saw all of it.
	vresp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	intVar := func(name string) int64 {
		var v int64
		if err := json.Unmarshal(vars[name], &v); err != nil {
			t.Fatalf("var %s = %s: %v", name, vars[name], err)
		}
		return v
	}
	if got := intVar("sectord.sessions.created"); got != 2 {
		t.Errorf("sessions.created = %d, want 2", got)
	}
	if got := intVar("sectord.sessions.evicted"); got != 1 {
		t.Errorf("sessions.evicted = %d, want 1", got)
	}
	if got := intVar("sectord.sessions.active"); got != 1 {
		t.Errorf("sessions.active = %d, want 1", got)
	}
	if got := intVar("sectord.sessions.solves"); got < 2 {
		t.Errorf("sessions.solves = %d, want >= 2 (retired + live)", got)
	}
}

// TestSessionAllowlist: the solver allowlist covers session creates too.
func TestSessionAllowlist(t *testing.T) {
	in := gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 8, N: 10, M: 2, Tightness: 2})
	ts := httptest.NewServer(NewServer(Config{Allowed: []string{"localsearch"}}).Handler())
	defer ts.Close()
	resp, body := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", in, 1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("disallowed solver: status %d (want 400), body %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "localsearch", in, 1))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("allowed solver: status %d, body %s", resp.StatusCode, body)
	}
}
