// Regression tests for the honest Retry-After shed hint (ISSUE 9): the
// 429 paths on /solve and /solve/batch must derive the hint from current
// inflight saturation — mean observed solve latency over the slot count —
// instead of the old hardcoded "1", so sectorclient backoff floors and
// sectorproxy's retry budget see a value that tracks reality.
package daemon

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// shedResponse saturates the server's inflight semaphore directly (the
// tests own the Server value) and returns the 429 response for the path.
func shedResponse(t *testing.T, s *Server, path string, body []byte) *http.Response {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("%s on a saturated server: status %d, want 429", path, resp.StatusCode)
	}
	return resp
}

func TestRetryAfterDerivedFromSaturation(t *testing.T) {
	for _, tc := range []struct {
		name string
		path string
		body func(*testing.T) []byte
	}{
		{"solve", "/solve", func(t *testing.T) []byte { return solveBody(t, "greedy", sectorsInstance(), nil) }},
		{"batch", "/solve/batch", func(t *testing.T) []byte { return batchBody(t, "greedy", []any{sectorsInstance()}, nil) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewServer(Config{MaxInflight: 2})
			// No latency history yet: the hint falls back to 1s.
			resp := shedResponse(t, s, tc.path, tc.body(t))
			if got := resp.Header.Get("Retry-After"); got != "1" {
				t.Errorf("cold shed Retry-After = %q, want \"1\"", got)
			}
			// Mean solve latency 10s over 2 slots: a slot frees in ~5s, and
			// the hint must say so instead of inviting an immediate retry.
			s.observeLatency("greedy", 10*time.Second)
			resp = shedResponse(t, s, tc.path, tc.body(t))
			if got := resp.Header.Get("Retry-After"); got != "5" {
				t.Errorf("saturated shed Retry-After = %q, want \"5\" (10s mean / 2 slots)", got)
			}
		})
	}
}

func TestRetryAfterBoundsAndMean(t *testing.T) {
	s := NewServer(Config{MaxInflight: 4})
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no history: hint %d, want 1", got)
	}
	// Fast solves: 100ms mean over 4 slots rounds up to the 1s floor.
	s.observeLatency("greedy", 100*time.Millisecond)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("fast solves: hint %d, want 1", got)
	}
	// The mean spans solvers: (0.1s + 59.9s)/2 = 30s mean, /4 slots = 8s.
	s.observeLatency("exact", 59900*time.Millisecond)
	if got := s.retryAfterSeconds(); got != 8 {
		t.Errorf("mixed solvers: hint %d, want 8", got)
	}
	// A pathological mean is clamped so clients are never told to vanish.
	for i := 0; i < 50; i++ {
		s.observeLatency("exact", 10*time.Minute)
	}
	if got := s.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Errorf("pathological mean: hint %d, want clamp %d", got, maxRetryAfterSeconds)
	}
}
