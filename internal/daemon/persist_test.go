package daemon

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/faultfs"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// durableConfig is a server config with both persistence artifacts rooted
// in dir. The snapshot interval is long so tests control flush timing via
// FlushState / shutdown, not a racing ticker.
func durableConfig(dir string) Config {
	return Config{
		Timeout:          30 * time.Second,
		Seed:             1,
		SnapshotPath:     filepath.Join(dir, "cache.snap"),
		SnapshotInterval: time.Hour,
		JournalDir:       filepath.Join(dir, "journals"),
		Logger:           slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// sessResp is the subset of a session response the persistence tests
// compare.
type sessResp struct {
	SessionID   string    `json:"session_id"`
	Profit      int64     `json:"profit"`
	Orientation []float64 `json:"orientation"`
	Owner       []int     `json:"owner"`
	Stats       struct {
		Deltas int64 `json:"deltas"`
	} `json:"stats"`
}

func decodeSessResp(t *testing.T, raw []byte) sessResp {
	t.Helper()
	var r sessResp
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("decode session response: %v (%s)", err, raw)
	}
	return r
}

// solKey renders the comparable part of a solve answer.
func solKey(profit int64, orientation []float64, owner []int) string {
	return fmt.Sprintf("profit=%d orient=%v owner=%v", profit, fmt.Sprintf("%.17g", orientation), owner)
}

func persistTrace() *model.Trace {
	return gen.MustGenerateTrace(gen.ChurnConfig{
		Base:          gen.Config{Family: gen.Uniform, Seed: 51, N: 24, M: 3, Bands: 3, Tightness: 2, ProfitSpread: 0.4},
		Steps:         3,
		Rate:          0.1,
		Localized:     true,
		CapacityEvery: 2,
	})
}

// fromScratchKey solves the trace's step-k materialization with the solver
// options sectord uses for seed 1.
func fromScratchKey(t *testing.T, tr *model.Trace, k int) string {
	t.Helper()
	mat, err := tr.Materialize(k)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.Get("greedy")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver(context.Background(), mat, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return solKey(sol.Profit, sol.Assignment.Orientation, sol.Assignment.Owner)
}

func deltaBodyWithKey(t *testing.T, d model.Delta, idemKey string) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"format_version": 1, "idempotency_key": idemKey, "delta": d,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func varsMap(t *testing.T, client *http.Client, base string) map[string]any {
	t.Helper()
	resp, body := doJSON(t, client, http.MethodGet, base+"/debug/vars", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode vars: %v", err)
	}
	return m
}

// TestRestartRestoresCacheAndSessions is the durability round trip: a
// daemon populates its cache and a journaled session, flushes, and dies; a
// second daemon over the same state directory serves the cached solve as a
// hit and continues the session — with answers bit-identical to
// from-scratch solves.
func TestRestartRestoresCacheAndSessions(t *testing.T) {
	dir := t.TempDir()
	tr := persistTrace()
	client := &http.Client{}

	// First life.
	a := NewServer(durableConfig(dir))
	if err := a.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	body := solveBody(t, "greedy", sectorsInstance(), map[string]any{"seed": int64(1)})
	resp, raw := postSolve(t, client, tsA.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var first struct {
		Profit      int64     `json:"profit"`
		Orientation []float64 `json:"orientation"`
		Owner       []int     `json:"owner"`
	}
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}

	resp, raw = doJSON(t, client, http.MethodPost, tsA.URL+"/session", sessionCreateBody(t, "greedy", tr.Instance, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, raw)
	}
	id := decodeSessResp(t, raw).SessionID
	for k := 0; k < 2; k++ {
		resp, raw = doJSON(t, client, http.MethodPost, tsA.URL+"/session/"+id+"/delta",
			deltaBodyWithKey(t, tr.Deltas[k], fmt.Sprintf("key-%d", k)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: %d %s", k, resp.StatusCode, raw)
		}
	}
	a.FlushState()
	tsA.Close()

	// Second life.
	b := NewServer(durableConfig(dir))
	if err := b.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.sessRecovered.Value(); got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	// The cached solve survives as a hit, bit-identical.
	resp, raw = postSolve(t, client, tsB.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored solve: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Fatalf("restored solve cache header %q, want hit", got)
	}
	var second struct {
		Profit      int64     `json:"profit"`
		Orientation []float64 `json:"orientation"`
		Owner       []int     `json:"owner"`
	}
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if solKey(first.Profit, first.Orientation, first.Owner) != solKey(second.Profit, second.Orientation, second.Owner) {
		t.Fatal("restored cache entry drifted from the original solve")
	}

	// The session survives under its old ID and keeps applying deltas; the
	// answer matches a from-scratch solve of the full delta history.
	resp, raw = doJSON(t, client, http.MethodPost, tsB.URL+"/session/"+id+"/delta",
		deltaBodyWithKey(t, tr.Deltas[2], "key-2"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart delta: %d %s", resp.StatusCode, raw)
	}
	sr := decodeSessResp(t, raw)
	if got, want := solKey(sr.Profit, sr.Orientation, sr.Owner), fromScratchKey(t, tr, 3); got != want {
		t.Fatalf("post-restart session answer drifted:\n got  %s\n want %s", got, want)
	}
}

// TestServeShutdownFlushesDurableState pins the drain contract (the SIGTERM
// path runs exactly this: signal.NotifyContext cancels the ctx handed to
// Serve): after Serve returns, the cache snapshot is on disk and the
// session journal is recoverable by a fresh daemon.
func TestServeShutdownFlushesDurableState(t *testing.T) {
	dir := t.TempDir()
	tr := persistTrace()
	cfg := durableConfig(dir)
	srv := NewServer(cfg)
	if err := srv.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	resp, raw := postSolve(t, client, base, solveBody(t, "greedy", sectorsInstance(), map[string]any{"seed": int64(1)}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	resp, raw = doJSON(t, client, http.MethodPost, base+"/session", sessionCreateBody(t, "greedy", tr.Instance, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, raw)
	}
	id := decodeSessResp(t, raw).SessionID
	resp, raw = doJSON(t, client, http.MethodPost, base+"/session/"+id+"/delta", deltaBodyWithKey(t, tr.Deltas[0], "k0"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d %s", resp.StatusCode, raw)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, err := os.Stat(cfg.SnapshotPath); err != nil {
		t.Fatalf("no cache snapshot after drain: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cfg.JournalDir, id+journalExt)); err != nil {
		t.Fatalf("no session journal after drain: %v", err)
	}

	fresh := NewServer(durableConfig(dir))
	if err := fresh.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fresh.sessRecovered.Value(); got != 1 {
		t.Fatalf("recovered %d sessions after drain, want 1", got)
	}
	if st := fresh.cache.Stats(); st.Restored == 0 {
		t.Fatalf("no cache entries restored after drain: %+v", st)
	}
}

// TestRestoredSnapshotEntryIsRegated poisons the snapshot between two
// daemon lives: one entry's claimed profit is bumped (with its CRC fixed so
// the structural load accepts it). The restored entry must fail the serving
// layer's re-verification gate and be dropped — the client gets a fresh,
// correct solve, never the tampered answer.
func TestRestoredSnapshotEntryIsRegated(t *testing.T) {
	dir := t.TempDir()
	client := &http.Client{}
	cfg := durableConfig(dir)
	cfg.JournalDir = "" // cache-only test

	a := NewServer(cfg)
	tsA := httptest.NewServer(a.Handler())
	body := solveBody(t, "greedy", sectorsInstance(), map[string]any{"seed": int64(1)})
	resp, raw := postSolve(t, client, tsA.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var first struct {
		Profit int64 `json:"profit"`
	}
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	a.FlushState()
	tsA.Close()

	// Tamper: profit sits after the length-prefixed key (64 hex chars) and
	// algorithm string in the first entry's payload. Recompute the CRC so
	// only the semantic gate can catch it.
	snap, err := os.ReadFile(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(snapshotHeader(t, snap)) // magic + 3×u64
	plen := binary.LittleEndian.Uint32(snap[frame:])
	payload := snap[frame+8 : frame+8+int(plen)]
	keyLen := binary.LittleEndian.Uint32(payload)
	algLen := binary.LittleEndian.Uint32(payload[4+keyLen:])
	profitOff := 4 + int(keyLen) + 4 + int(algLen)
	profit := binary.LittleEndian.Uint64(payload[profitOff:])
	binary.LittleEndian.PutUint64(payload[profitOff:], profit+1)
	binary.LittleEndian.PutUint32(snap[frame+4:], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(cfg.SnapshotPath, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	b := NewServer(cfg)
	if err := b.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := b.cache.Stats(); st.Restored != 1 {
		t.Fatalf("tampered entry not structurally restored: %+v", st)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	resp, raw = postSolve(t, client, tsB.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after tamper: %d %s", resp.StatusCode, raw)
	}
	// The poisoned hit must have been dropped and re-solved: correct
	// profit, reported as a miss, and counted as an invalid entry.
	var got struct {
		Profit int64 `json:"profit"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Profit != first.Profit {
		t.Fatalf("served profit %d, want the honest %d", got.Profit, first.Profit)
	}
	if h := resp.Header.Get(cacheHeader); h != "miss" {
		t.Fatalf("cache header %q after dropping poisoned entry, want miss", h)
	}
	if b.invalid.Value() == 0 {
		t.Fatal("poisoned entry not counted in sectord.invalid")
	}
}

// snapshotHeader returns the snapshot file header (magic + snapshot
// version + fingerprint version + count) after sanity-checking the magic.
func snapshotHeader(t *testing.T, snap []byte) []byte {
	t.Helper()
	const magic = "SPSNAP1\n"
	if len(snap) < len(magic)+24 || string(snap[:len(magic)]) != magic {
		t.Fatalf("not a snapshot file (%d bytes)", len(snap))
	}
	return snap[:len(magic)+24]
}

// TestSessionDeltaIdempotency: re-sending the last delta with its
// idempotency key answers from current state (marked by the replay header,
// delta counter unchanged); a new key applies normally.
func TestSessionDeltaIdempotency(t *testing.T) {
	dir := t.TempDir()
	tr := persistTrace()
	client := &http.Client{}
	srv := NewServer(durableConfig(dir))
	if err := srv.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, raw := doJSON(t, client, http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", tr.Instance, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	id := decodeSessResp(t, raw).SessionID

	resp, raw = doJSON(t, client, http.MethodPost, ts.URL+"/session/"+id+"/delta", deltaBodyWithKey(t, tr.Deltas[0], "once"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d %s", resp.StatusCode, raw)
	}
	applied := decodeSessResp(t, raw)
	if resp.Header.Get(idempotentHeader) != "" {
		t.Fatal("first application marked as replay")
	}

	// The retry: same delta, same key. Must not apply twice.
	resp, raw = doJSON(t, client, http.MethodPost, ts.URL+"/session/"+id+"/delta", deltaBodyWithKey(t, tr.Deltas[0], "once"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: %d %s", resp.StatusCode, raw)
	}
	replayed := decodeSessResp(t, raw)
	if resp.Header.Get(idempotentHeader) != "replay" {
		t.Fatalf("retry not marked idempotent (header %q)", resp.Header.Get(idempotentHeader))
	}
	if replayed.Stats.Deltas != applied.Stats.Deltas {
		t.Fatalf("retry applied the delta again: %d deltas, was %d", replayed.Stats.Deltas, applied.Stats.Deltas)
	}
	if solKey(replayed.Profit, replayed.Orientation, replayed.Owner) != solKey(applied.Profit, applied.Orientation, applied.Owner) {
		t.Fatal("replayed answer differs from the original application")
	}
	if srv.idemReplays.Value() != 1 {
		t.Fatalf("idem_replays = %d, want 1", srv.idemReplays.Value())
	}

	// A fresh key applies: the session advances, bit-identical to the
	// from-scratch solve of both deltas.
	resp, raw = doJSON(t, client, http.MethodPost, ts.URL+"/session/"+id+"/delta", deltaBodyWithKey(t, tr.Deltas[1], "twice"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second delta: %d %s", resp.StatusCode, raw)
	}
	next := decodeSessResp(t, raw)
	if next.Stats.Deltas != applied.Stats.Deltas+1 {
		t.Fatalf("second delta not applied: %d deltas", next.Stats.Deltas)
	}
	if got, want := solKey(next.Profit, next.Orientation, next.Owner), fromScratchKey(t, tr, 2); got != want {
		t.Fatalf("post-idempotency answer drifted:\n got  %s\n want %s", got, want)
	}
}

// TestDaemonCrashMatrix is the acceptance gate: a daemon lifetime (restore,
// solve, snapshot flush, session create, two deltas, final flush) is killed
// at every single filesystem operation, and a second daemon over the
// surviving directory must come up serving: any restored cache entry is
// complete (atomic snapshot: old, new, or absent — never torn), and any
// recovered session is bit-identical to a from-scratch solve of exactly the
// deltas its journal holds. A session may be cleanly absent; it may never
// be wrong.
func TestDaemonCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a long test")
	}
	tr := persistTrace()
	client := &http.Client{}
	solveB := solveBody(t, "greedy", sectorsInstance(), map[string]any{"seed": int64(1)})

	// lifetime drives one daemon life through fsys; HTTP-level failures are
	// expected once the injected crash fires (the "process" is dead to the
	// filesystem), so statuses are not asserted here.
	lifetime := func(fsys faultfs.FS, dir string) {
		cfg := durableConfig(dir)
		cfg.FS = fsys
		srv := NewServer(cfg)
		if err := srv.Restore(context.Background()); err != nil {
			return // crashed during restore
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		postSolve(t, client, ts.URL, solveB)
		srv.FlushState() // first snapshot
		resp, raw := doJSON(t, client, http.MethodPost, ts.URL+"/session", sessionCreateBody(t, "greedy", tr.Instance, 1))
		if resp.StatusCode == http.StatusOK {
			id := decodeSessResp(t, raw).SessionID
			doJSON(t, client, http.MethodPost, ts.URL+"/session/"+id+"/delta", deltaBodyWithKey(t, tr.Deltas[0], "k0"))
			doJSON(t, client, http.MethodPost, ts.URL+"/session/"+id+"/delta", deltaBodyWithKey(t, tr.Deltas[1], "k1"))
		}
		srv.FlushState() // final snapshot + journal sync
	}

	// Count pass.
	counter := faultfs.NewInjector(faultfs.OS)
	lifetime(counter, t.TempDir())
	total := counter.Ops()
	if total < 12 {
		t.Fatalf("suspiciously few filesystem ops in a full lifetime: %d", total)
	}

	for k := int64(1); k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("op-%02d", k), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS, faultfs.Fault{N: k, Mode: faultfs.Crash})
			lifetime(inj, dir)
			if !inj.Crashed() {
				t.Fatalf("crash at op %d did not fire (ops=%d)", k, inj.Ops())
			}

			// The second life runs on the real filesystem.
			b := NewServer(durableConfig(dir))
			if err := b.Restore(context.Background()); err != nil {
				t.Fatalf("restore after crash at op %d: %v", k, err)
			}
			// Atomic snapshot writes mean a load never sees a torn file:
			// nothing skipped, no load failures.
			if skipped := b.snapLoadSkipped.Value(); skipped != 0 {
				t.Fatalf("crash at op %d: %d snapshot entries skipped (snapshot should be all-or-nothing)", k, skipped)
			}
			if fails := b.snapLoadFailures.Value(); fails != 0 {
				t.Fatalf("crash at op %d: snapshot load failed %d times", k, fails)
			}

			// Every recovered session is bit-identical to the from-scratch
			// solve of exactly its journaled delta count.
			b.sessions.mu.Lock()
			entries := make([]*sessionEntry, 0, len(b.sessions.m))
			for _, e := range b.sessions.m {
				entries = append(entries, e)
			}
			b.sessions.mu.Unlock()
			for _, e := range entries {
				n := int(e.sess.Stats().Deltas)
				sol := e.sess.Solution()
				if got, want := solKey(sol.Profit, sol.Assignment.Orientation, sol.Assignment.Owner), fromScratchKey(t, tr, n); got != want {
					t.Fatalf("crash at op %d: recovered session (%d deltas) drifted:\n got  %s\n want %s", k, n, got, want)
				}
			}

			// The daemon serves, and a re-solve of the cached instance is
			// correct whether it hits the restored entry or solves fresh.
			ts := httptest.NewServer(b.Handler())
			defer ts.Close()
			resp, raw := postSolve(t, client, ts.URL, solveB)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("crash at op %d: restarted daemon cannot solve: %d %s", k, resp.StatusCode, raw)
			}
		})
	}
}
