// Durability: sectord can survive a restart — crash or SIGTERM — without
// losing its warm state.
//
// Two artifacts persist. The solve cache is snapshotted to a single
// checksummed file (Config.SnapshotPath): a background loop and the
// shutdown drain rewrite it atomically (temp + fsync + rename + dir fsync),
// and Restore warm-loads it, skipping any entry whose CRC or structure does
// not hold. Restored entries get no special trust — the serving path
// re-gates every cache hit through core.VerifySolution before it is served,
// so a stale or tampered snapshot can cost a cache miss, never a wrong
// answer.
//
// Sessions journal their life to an append-only WAL (Config.JournalDir, one
// <id>.journal per session): the create record, then every state-advancing
// delta. Restore replays surviving journals through the same session.New /
// Apply path the live requests used; by the session package's determinism
// contract the rebuilt session is bit-identical to the one that died. A
// journal with a torn tail is truncated to its last good frame (the torn
// suffix was never acknowledged); a journal whose create record is
// unreadable, whose replay fails, or whose replayed solution fails the
// verification gate is counted in sectord.sessions.recover_failed and left
// on disk for inspection — the session then cleanly does not exist, and the
// client's POST /session retry builds a fresh one.
//
// Recovery semantics for clients: a session ID stays valid across a restart
// exactly when its journal recovered. Deltas may carry an idempotency_key;
// re-sending the last delta with the same key (the retry after an ambiguous
// network error or a restart) is answered from the session's current state
// instead of being applied twice. Recovery restores the last journaled key,
// so the retry crossing the crash is safe too.
package daemon

import (
	"context"
	"errors"
	"io/fs"
	"log/slog"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sectorpack/internal/core"
	"sectorpack/internal/session"
)

// DefaultSnapshotInterval is the background cache-snapshot cadence when
// Config leaves it zero.
const DefaultSnapshotInterval = 30 * time.Second

// journalExt names session journal files: <session-id>.journal.
const journalExt = ".journal"

func (s *Server) snapshotEnabled() bool { return s.cache != nil && s.cfg.SnapshotPath != "" }
func (s *Server) journalEnabled() bool  { return s.cfg.JournalDir != "" }

func (s *Server) journalSyncEvery() int {
	if s.cfg.JournalSyncEvery > 1 {
		return s.cfg.JournalSyncEvery
	}
	return 1
}

func (s *Server) journalPath(id string) string {
	return filepath.Join(s.cfg.JournalDir, id+journalExt)
}

// Restore warm-loads persisted state before the server starts listening:
// the cache snapshot (if configured and present) and every recoverable
// session journal. Persistence problems degrade to a cold start — the only
// fatal error is a journal directory that cannot be created, because then
// the durability the configuration promises is impossible.
func (s *Server) Restore(ctx context.Context) error {
	if s.snapshotEnabled() {
		rep, err := s.cache.LoadSnapshot(s.fsys, s.cfg.SnapshotPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			s.logger.Info("no cache snapshot; cold start", slog.String("path", s.cfg.SnapshotPath))
		case err != nil:
			// A rejected snapshot (bad magic, version skew, fingerprint
			// skew) is a cold start, not a startup failure: serving
			// correctness never depends on the snapshot.
			s.snapLoadFailures.Add(1)
			s.logger.Warn("cache snapshot rejected; cold start",
				slog.String("path", s.cfg.SnapshotPath), slog.String("error", err.Error()))
		default:
			s.snapLoadSkipped.Add(rep.Skipped)
			s.logger.Info("cache snapshot restored",
				slog.Int64("entries", rep.Restored), slog.Int64("skipped", rep.Skipped))
		}
	}
	if s.journalEnabled() {
		if err := s.fsys.MkdirAll(s.cfg.JournalDir, 0o755); err != nil {
			return err
		}
		s.recoverSessions(ctx)
	}
	return nil
}

// recoverSessions replays every journal in the journal directory. Failures
// are per-journal: one unrecoverable session never blocks the rest.
func (s *Server) recoverSessions(ctx context.Context) {
	entries, err := s.fsys.ReadDir(s.cfg.JournalDir)
	if err != nil {
		s.logger.Warn("journal directory unreadable", slog.String("error", err.Error()))
		return
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, journalExt) {
			continue
		}
		id := strings.TrimSuffix(name, journalExt)
		if err := s.recoverSession(ctx, id); err != nil {
			s.sessRecoverFailed.Add(1)
			s.logger.Warn("session not recovered; journal left on disk",
				slog.String("session_id", id), slog.String("error", err.Error()))
			continue
		}
		s.sessRecovered.Add(1)
		s.logger.Info("session recovered", slog.String("session_id", id))
	}
}

func (s *Server) recoverSession(ctx context.Context, id string) error {
	path := s.journalPath(id)
	rec, err := session.ReadJournal(s.fsys, path)
	if err != nil {
		return err
	}
	sess, err := rec.Replay(ctx)
	if err != nil {
		return err
	}
	// The same gate every live session answer passes: a replayed session
	// whose solution is infeasible must not serve.
	if err := core.VerifySolution(rec.Solver, sess.Instance(), sess.Solution()); err != nil {
		return err
	}
	j, err := session.OpenAppend(s.fsys, path, s.journalSyncEvery())
	if err != nil {
		return err
	}
	e := &sessionEntry{sess: sess, solver: rec.Solver, journal: j, lastIdemKey: rec.LastIdemKey(), lastOK: true}
	e.touch()
	// Publish the replayed stats before the entry becomes visible, so the
	// store-wide sums see the recovered session immediately.
	st := sess.Stats()
	e.statsSnap.Store(&st)
	if !s.sessions.put(id, e, s.sessionMax()) {
		// Over the live-session cap. The journal stays on disk: a later
		// restart with free capacity can still recover it, and the client's
		// next delta gets a clean 404 rather than a corrupt session.
		return errors.Join(errors.New("session table full"), j.Close())
	}
	return nil
}

// FlushState persists everything the daemon would otherwise lose: the
// current cache contents as a fresh snapshot, and every open session
// journal's group-commit window fsynced to disk. Serve calls it after the
// shutdown drain; tests and embedders may call it at any time.
func (s *Server) FlushState() {
	s.saveSnapshot()
	s.syncJournals()
}

func (s *Server) saveSnapshot() {
	if !s.snapshotEnabled() {
		return
	}
	n, err := s.cache.SaveSnapshot(s.fsys, s.cfg.SnapshotPath)
	if err != nil {
		s.snapSaveFailures.Add(1)
		s.logger.Warn("cache snapshot write failed",
			slog.String("path", s.cfg.SnapshotPath), slog.String("error", err.Error()))
		return
	}
	s.snapSaves.Add(1)
	s.logger.Info("cache snapshot written",
		slog.String("path", s.cfg.SnapshotPath), slog.Int("entries", n))
}

func (s *Server) syncJournals() {
	s.sessions.mu.Lock()
	live := make([]*sessionEntry, 0, len(s.sessions.m))
	for _, e := range s.sessions.m {
		live = append(live, e)
	}
	s.sessions.mu.Unlock()
	for _, e := range live {
		e.mu.Lock()
		if e.journal != nil {
			if err := e.journal.Sync(); err != nil {
				s.journalFailures.Add(1)
				s.logger.Warn("journal sync failed at flush", slog.String("error", err.Error()))
			}
		}
		e.mu.Unlock()
	}
}

// startSnapshotLoop launches the periodic cache-snapshot writer and returns
// its stop function (idempotent). A disabled snapshot config returns a
// no-op.
func (s *Server) startSnapshotLoop() (stop func()) {
	if !s.snapshotEnabled() {
		return func() {}
	}
	interval := s.cfg.SnapshotInterval
	if interval <= 0 {
		interval = DefaultSnapshotInterval
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.saveSnapshot()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
