// Package daemon is the sectord HTTP solve daemon: POST an instance
// envelope to /solve and get the solution back as JSON. It is the
// repository's serving layer — every solver in the core registry is
// reachable by name, each request runs under a deadline derived from the
// request context, and load beyond the configured concurrency cap is shed
// with 429 instead of queued. cmd/sectord is the thin flag-parsing front;
// the package is importable so cmd/sectorproxy's fleet differential suite
// (and any embedder) can boot real in-process backends under the race
// detector.
//
// The pipeline is fail-soft: solver panics are isolated per request (500,
// daemon stays up), solver output is re-checked by the feasibility gate
// before it is served (invalid → 500, never an infeasible answer), and a
// request may opt into degraded mode with ?degraded=allow, where a timed
// out, panicking, erroring, or invalid primary solver falls back to the
// hedged greedy safety net (200 with "degraded": true) instead of 503.
//
// Repeated solves are served from a content-addressed cache: requests are
// fingerprinted over (instance, options, solver), identical concurrent
// requests collapse to one underlying solve (singleflight), and every hit
// is re-gated through the feasibility check before it is served. The
// X-Sectord-Cache response header reports hit/miss/collapsed/bypass, and
// ?cache=bypass opts a request out entirely. POST /solve/batch solves a
// whole envelope of instances on a bounded worker pool through the same
// cache, returning per-item results instead of failing the batch.
//
// Churning workloads use delta-solve sessions instead of repeated /solve
// round trips: POST /session opens a long-lived session (internal/session)
// around one instance, POST /session/{id}/delta applies a delta and returns
// the incremental re-solve, DELETE /session/{id} closes it. Sessions are
// capped, idle-evicted, and strictly cache-isolated — see sessions.go.
package daemon

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sectorpack/internal/cache"
	"sectorpack/internal/core"
	"sectorpack/internal/exact"
	"sectorpack/internal/faultfs"
	"sectorpack/internal/model"
)

// Config tunes the daemon.
type Config struct {
	// Timeout is the per-request solve deadline. Zero means no server-side
	// deadline (the client's context still applies).
	Timeout time.Duration
	// MaxInflight caps concurrent solves; requests beyond it get 429.
	// Zero means DefaultMaxInflight.
	MaxInflight int
	// Allowed restricts which solver names requests may use; empty allows
	// every registered solver.
	Allowed []string
	// Seed is the default Options.Seed when the request omits one.
	Seed int64
	// MaxTuples caps the exact solver's orientation-tuple budget per
	// request (Options.ExactLimits); zero keeps exact.DefaultMaxTuples.
	MaxTuples int64
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// DrainTimeout bounds graceful shutdown; zero means 5s.
	DrainTimeout time.Duration
	// CacheBytes bounds the solve cache: zero means cache.DefaultMaxBytes,
	// negative disables caching entirely.
	CacheBytes int64
	// SessionMax caps live delta-solve sessions; creates beyond it get 429.
	// Zero means DefaultSessionMax.
	SessionMax int
	// SessionTTL evicts sessions idle longer than this (lazily, on the next
	// session request). Zero means DefaultSessionTTL.
	SessionTTL time.Duration
	// SnapshotPath persists the solve cache across restarts: Restore
	// warm-loads it, a background loop and the shutdown drain rewrite it
	// atomically. Empty disables snapshotting.
	SnapshotPath string
	// SnapshotInterval is the background snapshot cadence; zero means
	// DefaultSnapshotInterval.
	SnapshotInterval time.Duration
	// JournalDir enables per-session delta journaling (WAL): every session
	// gets an append-only journal under this directory, and Restore replays
	// surviving journals back into live sessions. Empty disables journaling.
	JournalDir string
	// JournalSyncEvery is the journal group-commit window: an fsync per
	// this many delta appends. Values <= 1 fsync every append (the
	// default); larger values trade at most n-1 acknowledged deltas of
	// crash-durability for throughput.
	JournalSyncEvery int
	// FS is the filesystem the persistence paths write through; nil means
	// the real filesystem (faultfs.OS). Tests inject fault-scripted
	// filesystems here.
	FS faultfs.FS
	// ShardName, when set, is stamped on every response as the
	// X-Sectord-Shard header and exported as sectord.shard, so a routing
	// proxy (cmd/sectorproxy) and the load harness (cmd/sectorload) can
	// attribute answers and cache hit ratios to the backend that served
	// them. Empty omits the header.
	ShardName string
	// Logger receives one structured record per /solve request (request
	// ID, solver, duration, outcome, degraded flag) plus panic reports.
	// Nil discards logs.
	Logger *slog.Logger
}

// DefaultMaxInflight is the concurrency cap when Config leaves it zero.
const DefaultMaxInflight = 4

// maxBatchItems caps the /solve/batch envelope size.
const maxBatchItems = 256

// maxRequestBytes bounds the request body read (instances are small; this
// guards the decoder, not memory accounting).
const maxRequestBytes = 32 << 20

// Server is the sectord HTTP service. Metrics are per-Server (unpublished
// expvar vars, served by the /debug/vars handler below) so tests can build
// many Servers in one process without tripping expvar's duplicate-publish
// panic.
type Server struct {
	cfg     Config
	sem     chan struct{}
	mux     *http.ServeMux
	handler http.Handler
	allowed map[string]bool
	logger  *slog.Logger
	cache   *cache.Cache // nil when caching is disabled
	fsys    faultfs.FS   // persistence filesystem seam (faultfs.OS in production)

	ridPrefix string        // random per-Server request-ID prefix
	reqSeq    atomic.Uint64 // request-ID sequence

	sessions *sessionStore // live delta-solve sessions (sessions.go)
	sessSeq  atomic.Uint64 // session-ID sequence

	sessCreated expvar.Int // monotonic: sessions opened via POST /session
	sessClosed  expvar.Int // monotonic: sessions closed via DELETE
	sessEvicted expvar.Int // monotonic: sessions reaped by the idle sweep
	sessDeltas  expvar.Int // monotonic: deltas applied across all sessions

	snapSaves         expvar.Int // monotonic: cache snapshots written (periodic + drain)
	snapSaveFailures  expvar.Int // monotonic: snapshot writes that failed
	snapLoadSkipped   expvar.Int // monotonic: snapshot entries rejected at warm-load
	snapLoadFailures  expvar.Int // monotonic: whole-snapshot loads rejected (bad header/version)
	sessRecovered     expvar.Int // monotonic: sessions rebuilt from journals at Restore
	sessRecoverFailed expvar.Int // monotonic: journals that could not be recovered
	journalFailures   expvar.Int // monotonic: journal create/append failures (session dropped)
	journalOrphans    expvar.Int // monotonic: journal removals that failed (file left on disk)
	idemReplays       expvar.Int // monotonic: deltas answered from the idempotency check

	requests      expvar.Int // monotonic: total /solve requests
	solved        expvar.Int // monotonic: completed successfully (incl. degraded)
	cancellations expvar.Int // monotonic: ended by deadline or client disconnect
	shed          expvar.Int // monotonic: rejected with 429
	failures      expvar.Int // monotonic: bad requests and solver errors
	panics        expvar.Int // monotonic: recovered solver/handler panics
	fallbacks     expvar.Int // monotonic: degraded responses served by the safety net
	hedgeWins     expvar.Int // monotonic: fallback already done when the primary failed
	invalid       expvar.Int // monotonic: solver outputs rejected by the post-solve gate
	batches       expvar.Int // monotonic: /solve/batch requests
	batchItems    expvar.Int // monotonic: instances received across all batches

	latencyMu sync.Mutex
	latency   map[string]*latencyHist // guarded by latencyMu (per-solver)
}

// NewServer builds a Server from the config.
func NewServer(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var rid [4]byte
	if _, err := rand.Read(rid[:]); err != nil {
		copy(rid[:], "srvd") // crypto/rand never fails in practice
	}
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxInflight),
		mux:       http.NewServeMux(),
		logger:    logger,
		ridPrefix: hex.EncodeToString(rid[:]),
		latency:   map[string]*latencyHist{},
		sessions:  &sessionStore{m: map[string]*sessionEntry{}},
		fsys:      cfg.FS,
	}
	if s.fsys == nil {
		s.fsys = faultfs.OS
	}
	if cfg.CacheBytes >= 0 {
		s.cache = cache.New(cfg.CacheBytes)
	}
	if len(cfg.Allowed) > 0 {
		s.allowed = make(map[string]bool, len(cfg.Allowed))
		for _, name := range cfg.Allowed {
			s.allowed[name] = true
		}
	}
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/solve/batch", s.handleSolveBatch)
	s.mux.HandleFunc("POST /session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /session/{id}/delta", s.handleSessionDelta)
	s.mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.withRecovery(s.mux)
	if cfg.ShardName != "" {
		inner := s.handler
		s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(shardHeader, cfg.ShardName)
			inner.ServeHTTP(w, r)
		})
	}
	return s
}

// shardHeader names the backend that served a response, for proxy and
// load-harness observability. The daemon sets it when Config.ShardName is
// set; sectorproxy falls back to the backend's base URL when it is not.
const shardHeader = "X-Sectord-Shard"

// Handler returns the HTTP handler tree (for httptest and for Serve),
// wrapped in the panic-recovery middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// withRecovery converts a handler panic into a clean 500 instead of the
// net/http default (killed connection, no response). Registry solvers are
// already panic-isolated by core.Safe; this is the defense-in-depth layer
// for everything else on the request path.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.panics.Add(1)
				s.logger.Error("panic in handler",
					slog.String("path", r.URL.Path),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())))
				// Best effort: if the handler already wrote a status this
				// header write is a no-op, but no handler writes before
				// its final response.
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal server error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: in-flight solves keep running (their request contexts stay
// live) until done or until DrainTimeout passes. Once the drain completes
// (or fails), FlushState persists what the daemon has: the cache snapshot
// is rewritten and every open session journal is fsynced, so a SIGTERM
// loses nothing that was acknowledged.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stopSnapshots := s.startSnapshotLoop()
	defer stopSnapshots()
	// In-flight request contexts are per-connection, not children of ctx:
	// graceful drain lets running solves finish. If the drain deadline
	// passes, Close tears the connections down, which cancels the request
	// contexts and aborts the solves.
	srv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			srv.Close()
			s.FlushState()
			return err
		}
		<-errc // http.ErrServerClosed
		s.FlushState()
		return nil
	}
}

// solveRequest is the /solve body: the model.WriteJSON envelope plus
// request-level knobs.
type solveRequest struct {
	Solver        string          `json:"solver"`
	Seed          *int64          `json:"seed,omitempty"`
	TimeoutMillis int64           `json:"timeout_ms,omitempty"`
	FormatVersion int             `json:"format_version"`
	Instance      *model.Instance `json:"instance"`
}

// solveResponse is the /solve reply.
type solveResponse struct {
	Solver      string    `json:"solver"`
	Algorithm   string    `json:"algorithm"`
	Profit      int64     `json:"profit"`
	UpperBound  float64   `json:"upper_bound,omitempty"`
	Orientation []float64 `json:"orientation"`
	Owner       []int     `json:"owner"`
	ElapsedMS   float64   `json:"elapsed_ms"`

	// Degraded-mode provenance (?degraded=allow): set when the requested
	// solver failed and the hedged fallback answered instead.
	Degraded       bool   `json:"degraded,omitempty"`
	SolverUsed     string `json:"solver_used,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	FallbackDetail string `json:"fallback_detail,omitempty"`
	HedgeWin       bool   `json:"hedge_win,omitempty"`
}

// batchRequest is the /solve/batch body: shared solver/seed/deadline knobs
// plus the model.WriteBatchJSON instance envelope. TimeoutMillis is a
// per-item deadline, not a whole-batch one.
type batchRequest struct {
	Solver        string            `json:"solver"`
	Seed          *int64            `json:"seed,omitempty"`
	TimeoutMillis int64             `json:"timeout_ms,omitempty"`
	FormatVersion int               `json:"format_version"`
	Instances     []*model.Instance `json:"instances"`
}

// batchItemResponse is one item of the /solve/batch reply: either the
// embedded solve response (with cache provenance) or an error, never both.
type batchItemResponse struct {
	Index int    `json:"index"`
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	*solveResponse
}

// batchResponse is the /solve/batch reply. The batch itself always
// succeeds with 200 once it decodes; per-item failures live in Items.
type batchResponse struct {
	Solver    string              `json:"solver"`
	Count     int                 `json:"count"`
	OK        int                 `json:"ok"`
	Failed    int                 `json:"failed"`
	Degraded  int                 `json:"degraded"`
	ElapsedMS float64             `json:"elapsed_ms"`
	Items     []batchItemResponse `json:"items"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.ridPrefix, s.reqSeq.Add(1))
}

// solveOutcome is what one /solve request resolved to, for the structured
// log line and the per-request counters.
type solveOutcome struct {
	solver   string
	status   int
	outcome  string // ok, degraded, shed, bad_request, cancelled, panic, invalid, error
	degraded bool
	detail   string
	profit   int64
}

func (s *Server) logSolve(rid string, start time.Time, o *solveOutcome) {
	attrs := []slog.Attr{
		slog.String("request_id", rid),
		slog.String("solver", o.solver),
		slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)),
		slog.String("outcome", o.outcome),
		slog.Bool("degraded", o.degraded),
		slog.Int("status", o.status),
	}
	if o.outcome == "ok" || o.outcome == "degraded" {
		attrs = append(attrs, slog.Int64("profit", o.profit))
	}
	if o.detail != "" {
		attrs = append(attrs, slog.String("detail", o.detail))
	}
	level := slog.LevelInfo
	if o.status >= 500 && o.outcome != "degraded" && o.outcome != "cancelled" {
		level = slog.LevelWarn
	}
	s.logger.LogAttrs(context.Background(), level, "solve", attrs...)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rid := s.nextRequestID()
	start := time.Now()
	o := &solveOutcome{outcome: "error", status: http.StatusInternalServerError}
	defer func() { s.logSolve(rid, start, o) }()

	fail := func(status int, outcome, msg string) {
		o.status, o.outcome, o.detail = status, outcome, msg
		writeJSON(w, status, errorResponse{Error: msg})
	}

	if r.Method != http.MethodPost {
		s.failures.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		fail(http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	// Shed before reading the body: a saturated server should refuse work
	// as cheaply as possible.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		s.setRetryAfter(w)
		fail(http.StatusTooManyRequests, "shed", "server at capacity")
		return
	}

	degradedAllowed, err := parseDegradedParam(r)
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	bypass, err := parseCacheParam(r)
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	if req.FormatVersion != 1 {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("unsupported format_version %d (want 1)", req.FormatVersion))
		return
	}
	if req.Instance == nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", "request missing instance")
		return
	}
	req.Instance.Normalize()
	if err := req.Instance.Validate(); err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", "invalid instance: "+err.Error())
		return
	}
	name, solver, err := s.resolveSolver(req.Solver)
	o.solver = name
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	ctx := r.Context()
	if timeout := s.solveTimeout(req.TimeoutMillis); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opt := s.solveOptions(req.Seed)
	var sol model.Solution
	var cacheOutcome string
	if degradedAllowed {
		// The hedged pipeline races the cache-fronted requested solver
		// against the greedy safety net; both legs are panic-isolated and
		// gated, so the answer (primary or fallback) is always feasible.
		// The fallback leg never touches the cache, so a degraded answer
		// is always reported as a bypass.
		var pmu sync.Mutex
		pout := cacheBypass
		primary := func(ctx context.Context, in *model.Instance, o core.Options) (model.Solution, error) {
			psol, out, perr := s.solveThroughCache(ctx, name, solver, in, o, bypass)
			pmu.Lock()
			pout = out
			pmu.Unlock()
			return psol, perr
		}
		sol, err = core.SolveHedged(ctx, req.Instance, primary, core.HedgeOptions{
			Options:     opt,
			PrimaryName: name,
		})
		cacheOutcome = cacheBypass
		if err == nil && !sol.Degraded {
			pmu.Lock()
			cacheOutcome = pout
			pmu.Unlock()
		}
	} else {
		sol, cacheOutcome, err = s.solveThroughCache(ctx, name, solver, req.Instance, opt, bypass)
	}
	elapsed := time.Since(start)
	if err != nil {
		var pe *core.PanicError
		var ie *core.InvalidSolutionError
		switch {
		case errors.As(err, &pe):
			s.panics.Add(1)
			s.logger.Error("solver panic",
				slog.String("request_id", rid),
				slog.String("solver", pe.Solver),
				slog.String("panic", fmt.Sprint(pe.Value)),
				slog.String("stack", string(pe.Stack)))
			fail(http.StatusInternalServerError, "panic", "solve failed: "+pe.Error())
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.cancellations.Add(1)
			fail(http.StatusServiceUnavailable, "cancelled", "solve aborted: "+err.Error())
		case errors.As(err, &ie):
			s.invalid.Add(1)
			fail(http.StatusInternalServerError, "invalid", "solve failed: "+ie.Error())
		default:
			s.failures.Add(1)
			fail(http.StatusBadRequest, "error", "solve failed: "+err.Error())
		}
		return
	}
	if sol.Degraded {
		s.fallbacks.Add(1)
		if sol.FallbackReason == core.FallbackPanic {
			s.panics.Add(1)
		}
		if sol.HedgeWin {
			s.hedgeWins.Add(1)
		}
	}
	s.solved.Add(1)
	s.observeLatency(name, elapsed)
	o.status, o.profit = http.StatusOK, sol.Profit
	o.outcome, o.degraded, o.detail = "ok", sol.Degraded, sol.FallbackDetail
	if sol.Degraded {
		o.outcome = "degraded"
	}
	w.Header().Set(cacheHeader, cacheOutcome)
	writeJSON(w, http.StatusOK, newSolveResponse(name, sol, elapsed))
}

// cacheHeader reports how the cache treated a request: hit, miss,
// collapsed (waited on an identical in-flight solve), bypass (?cache=bypass
// or a degraded answer), or off (caching disabled).
const cacheHeader = "X-Sectord-Cache"

const (
	cacheBypass = "bypass"
	cacheOff    = "off"
)

func newSolveResponse(name string, sol model.Solution, elapsed time.Duration) *solveResponse {
	return &solveResponse{
		Solver:         name,
		Algorithm:      sol.Algorithm,
		Profit:         sol.Profit,
		UpperBound:     sol.UpperBound,
		Orientation:    sol.Assignment.Orientation,
		Owner:          sol.Assignment.Owner,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
		Degraded:       sol.Degraded,
		SolverUsed:     sol.SolverUsed,
		FallbackReason: sol.FallbackReason,
		FallbackDetail: sol.FallbackDetail,
		HedgeWin:       sol.HedgeWin,
	}
}

func parseDegradedParam(r *http.Request) (bool, error) {
	switch v := r.URL.Query().Get("degraded"); v {
	case "", "deny":
		return false, nil
	case "allow":
		return true, nil
	default:
		return false, fmt.Errorf("invalid degraded=%q (want allow or deny)", v)
	}
}

func parseCacheParam(r *http.Request) (bool, error) {
	switch v := r.URL.Query().Get("cache"); v {
	case "", "use":
		return false, nil
	case "bypass":
		return true, nil
	default:
		return false, fmt.Errorf("invalid cache=%q (want use or bypass)", v)
	}
}

// resolveSolver applies the empty-name default and the allowlist, then
// resolves through the registry (whose solvers are panic-isolated).
func (s *Server) resolveSolver(name string) (string, core.Solver, error) {
	if name == "" {
		name = "auto"
	}
	if s.allowed != nil && !s.allowed[name] {
		return name, nil, fmt.Errorf("solver %q not allowed (allowed: %v)", name, s.cfg.Allowed)
	}
	solver, err := core.Get(name)
	if err != nil {
		return name, nil, err
	}
	return name, solver, nil
}

// solveTimeout combines the server deadline with a request's timeout_ms:
// the request may tighten the server deadline, never loosen it.
func (s *Server) solveTimeout(requestMillis int64) time.Duration {
	timeout := s.cfg.Timeout
	if requestMillis > 0 {
		if t := time.Duration(requestMillis) * time.Millisecond; timeout <= 0 || t < timeout {
			timeout = t
		}
	}
	return timeout
}

func (s *Server) solveOptions(seed *int64) core.Options {
	opt := core.Options{Seed: s.cfg.Seed, ExactLimits: exact.Limits{MaxTuples: s.cfg.MaxTuples}}
	if seed != nil {
		opt.Seed = *seed
	}
	return opt
}

// solveFresh is one uncached solve behind the post-solve feasibility gate:
// a buggy solver's infeasible answer becomes an *InvalidSolutionError,
// never a served solution.
func (s *Server) solveFresh(ctx context.Context, name string, solver core.Solver, in *model.Instance, opt core.Options) (model.Solution, error) {
	sol, err := solver(ctx, in, opt)
	if err != nil {
		return model.Solution{}, err
	}
	if err := core.VerifySolution(name, in, sol); err != nil {
		return model.Solution{}, err
	}
	return sol, nil
}

// solveThroughCache routes one solve through the content-addressed cache:
// a fingerprint hit is re-verified against this request's instance before
// being served (a failure drops the entry and solves fresh), a miss solves
// and populates, and concurrent identical requests collapse onto one
// in-flight solve. The returned string is the cacheHeader value.
func (s *Server) solveThroughCache(ctx context.Context, name string, solver core.Solver, in *model.Instance, opt core.Options, bypass bool) (model.Solution, string, error) {
	if s.cache == nil {
		sol, err := s.solveFresh(ctx, name, solver, in, opt)
		return sol, cacheOff, err
	}
	if bypass {
		sol, err := s.solveFresh(ctx, name, solver, in, opt)
		return sol, cacheBypass, err
	}
	fp, err := cache.NewFingerprint(in, opt, name)
	if err != nil {
		sol, err := s.solveFresh(ctx, name, solver, in, opt)
		return sol, cacheBypass, err
	}
	sol, outcome, err := s.cache.GetOrSolve(ctx, fp, func(ctx context.Context) (model.Solution, error) {
		return s.solveFresh(ctx, name, solver, in, opt)
	})
	if err != nil {
		return model.Solution{}, outcome.String(), err
	}
	if outcome != cache.Miss {
		// Re-gate every cached answer against this request's instance. A
		// failure means a poisoned or colliding entry — count it, drop it,
		// and fall back to a fresh solve rather than serving it.
		if verr := core.VerifySolution(name, in, sol); verr != nil {
			s.invalid.Add(1)
			s.cache.Delete(fp.Key())
			s.logger.Warn("cache entry failed re-verification",
				slog.String("solver", name),
				slog.String("key", fp.Key()),
				slog.String("error", verr.Error()))
			fresh, ferr := s.solveFresh(ctx, name, solver, in, opt)
			return fresh, cache.Miss.String(), ferr
		}
	}
	return sol, outcome.String(), nil
}

// handleSolveBatch solves a whole envelope of instances through the cache
// on a bounded worker pool (core.SolveBatch). The batch is fail-soft:
// per-item failures (invalid instance, solver error, deadline) land in
// that item's slot while the rest proceed, and the response is 200 once
// the envelope decodes. The whole batch occupies one inflight-semaphore
// slot; its workers are bounded by the MaxInflight config so one batch
// cannot exceed the server's configured solve concurrency.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.batches.Add(1)
	rid := s.nextRequestID()
	start := time.Now()
	o := &solveOutcome{outcome: "error", status: http.StatusInternalServerError}
	defer func() { s.logSolve(rid, start, o) }()

	fail := func(status int, outcome, msg string) {
		o.status, o.outcome, o.detail = status, outcome, msg
		writeJSON(w, status, errorResponse{Error: msg})
	}

	if r.Method != http.MethodPost {
		s.failures.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		fail(http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		s.setRetryAfter(w)
		fail(http.StatusTooManyRequests, "shed", "server at capacity")
		return
	}

	degradedAllowed, err := parseDegradedParam(r)
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	bypass, err := parseCacheParam(r)
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	if req.FormatVersion != 1 {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("unsupported format_version %d (want 1)", req.FormatVersion))
		return
	}
	if len(req.Instances) == 0 {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", "batch has no instances")
		return
	}
	if len(req.Instances) > maxBatchItems {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("batch has %d instances (max %d)", len(req.Instances), maxBatchItems))
		return
	}
	s.batchItems.Add(int64(len(req.Instances)))
	name, solver, err := s.resolveSolver(req.Solver)
	o.solver = name
	if err != nil {
		s.failures.Add(1)
		fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	// Per-item validation is fail-soft: an invalid instance errors in its
	// own slot (the instance is nilled out so the pool skips it) instead
	// of rejecting the batch.
	itemErr := make([]string, len(req.Instances))
	for i, in := range req.Instances {
		if in == nil {
			itemErr[i] = "missing instance"
			continue
		}
		in.Normalize()
		if err := in.Validate(); err != nil {
			itemErr[i] = "invalid instance: " + err.Error()
			req.Instances[i] = nil
		}
	}

	opt := s.solveOptions(req.Seed)
	// outcomes records each item's cache provenance, keyed by its decoded
	// *Instance (unique per item even for identical payloads). Workers
	// store concurrently; reads happen after SolveBatch returns.
	var outcomes sync.Map
	cached := func(ctx context.Context, in *model.Instance, o core.Options) (model.Solution, error) {
		sol, out, err := s.solveThroughCache(ctx, name, solver, in, o, bypass)
		outcomes.Store(in, out)
		return sol, err
	}
	results := core.SolveBatch(r.Context(), req.Instances, cached, core.BatchOptions{
		Options:     opt,
		SolverName:  name,
		Workers:     s.cfg.MaxInflight,
		ItemTimeout: s.solveTimeout(req.TimeoutMillis),
		Hedged:      degradedAllowed,
	})

	resp := batchResponse{Solver: name, Count: len(req.Instances), Items: make([]batchItemResponse, len(req.Instances))}
	for i := range results {
		item := batchItemResponse{Index: i}
		switch {
		case itemErr[i] != "":
			s.failures.Add(1)
			item.Error = itemErr[i]
			resp.Failed++
		case results[i].Err != nil:
			s.countSolveError(rid, name, results[i].Err)
			item.Error = results[i].Err.Error()
			resp.Failed++
		default:
			sol := results[i].Solution
			item.solveResponse = newSolveResponse(name, sol, results[i].Elapsed)
			item.Cache = cacheBypass
			if !sol.Degraded {
				if out, ok := outcomes.Load(req.Instances[i]); ok {
					item.Cache = out.(string)
				}
			}
			s.solved.Add(1)
			s.observeLatency(name, results[i].Elapsed)
			resp.OK++
			if sol.Degraded {
				s.fallbacks.Add(1)
				if sol.HedgeWin {
					s.hedgeWins.Add(1)
				}
				resp.Degraded++
			}
		}
		resp.Items[i] = item
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	o.status, o.outcome = http.StatusOK, "batch"
	o.detail = fmt.Sprintf("count=%d ok=%d failed=%d degraded=%d", resp.Count, resp.OK, resp.Failed, resp.Degraded)
	w.Header().Set(cacheHeader, s.batchCacheSummary(resp.Items))
	writeJSON(w, http.StatusOK, resp)
}

// countSolveError bumps the counter matching a per-item solve error and
// logs panics with their captured stacks.
func (s *Server) countSolveError(rid, name string, err error) {
	var pe *core.PanicError
	var ie *core.InvalidSolutionError
	switch {
	case errors.As(err, &pe):
		s.panics.Add(1)
		s.logger.Error("solver panic",
			slog.String("request_id", rid),
			slog.String("solver", pe.Solver),
			slog.String("panic", fmt.Sprint(pe.Value)),
			slog.String("stack", string(pe.Stack)))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.cancellations.Add(1)
	case errors.As(err, &ie):
		s.invalid.Add(1)
	default:
		s.failures.Add(1)
	}
}

// batchCacheSummary renders the per-item cache outcomes as a compact
// header value, e.g. "hits=3,misses=1,collapsed=0,bypass=0".
func (s *Server) batchCacheSummary(items []batchItemResponse) string {
	counts := map[string]int{}
	for _, it := range items {
		if it.Cache != "" {
			counts[it.Cache]++
		}
	}
	return fmt.Sprintf("hits=%d,misses=%d,collapsed=%d,bypass=%d",
		counts["hit"], counts["miss"], counts["collapsed"], counts[cacheBypass]+counts[cacheOff])
}

// --- shed hint ---

// maxRetryAfterSeconds caps the shed hint so one latency spike cannot
// push clients away for minutes.
const maxRetryAfterSeconds = 30

// retryAfterSeconds derives an honest Retry-After hint for the 429 shed
// paths from current saturation. A shed means every inflight slot is
// busy; one slot frees on average after (mean solve latency / slot
// count), so that — rounded up to whole seconds and clamped to
// [1, maxRetryAfterSeconds] — is the earliest a retry has a real chance
// of being admitted. sectorclient's backoff and sectorproxy's retry
// budget both treat the value as a floor, so an inflated hint would
// stall honest clients and a deflated one would have them hammer a
// saturated daemon. With no latency history yet the hint is 1s.
func (s *Server) retryAfterSeconds() int {
	mean := s.meanLatencyMS()
	if mean <= 0 {
		return 1
	}
	secs := int(math.Ceil(mean / float64(cap(s.sem)) / 1000))
	if secs < 1 {
		return 1
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// setRetryAfter stamps the shed hint on a 429 response.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

// meanLatencyMS is the mean observed solve latency across all solvers,
// 0 when nothing has been observed yet.
func (s *Server) meanLatencyMS() float64 {
	s.latencyMu.Lock()
	hists := make([]*latencyHist, 0, len(s.latency))
	for _, h := range s.latency {
		hists = append(hists, h)
	}
	s.latencyMu.Unlock()
	var count int64
	var total float64
	for _, h := range hists {
		h.mu.Lock()
		count += h.count
		total += h.totalMS
		h.mu.Unlock()
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// --- metrics ---

// latencyHist is a power-of-two millisecond histogram implementing
// expvar.Var.
type latencyHist struct {
	mu      sync.Mutex
	count   int64   // guarded by mu
	totalMS float64 // guarded by mu
	// buckets[i] counts solves with latency < 2^i ms; the last bucket is
	// the overflow.
	buckets [12]int64 // guarded by mu
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(h.buckets)-1 && ms >= float64(int64(1)<<i) {
		i++
	}
	h.mu.Lock()
	h.count++
	h.totalMS += ms
	h.buckets[i]++
	h.mu.Unlock()
}

// String renders the histogram as JSON, satisfying expvar.Var.
func (h *latencyHist) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := map[string]any{"count": h.count, "total_ms": h.totalMS}
	hist := map[string]int64{}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if i == len(h.buckets)-1 {
			hist[">="+strconv.Itoa(1<<(i-1))+"ms"] = c
		} else {
			hist["<"+strconv.Itoa(1<<i)+"ms"] = c
		}
	}
	b["buckets"] = hist
	out, _ := json.Marshal(b)
	return string(out)
}

func (s *Server) observeLatency(solver string, d time.Duration) {
	s.latencyMu.Lock()
	h, ok := s.latency[solver]
	if !ok {
		h = &latencyHist{}
		s.latency[solver] = h
	}
	s.latencyMu.Unlock()
	h.observe(d)
}

// shardVar renders the configured shard name as an expvar string.
type shardVar string

func (v shardVar) String() string {
	out, _ := json.Marshal(string(v))
	return string(out)
}

// handleVars serves this Server's expvar counters in the standard
// /debug/vars wire format. The vars are deliberately not published to the
// global expvar registry — expvar.Publish panics on duplicate names, which
// would fire the second time a test (or an embedding program) builds a
// Server.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	vars := []struct {
		name string
		v    expvar.Var
	}{
		// Proxy-aware gauges: a router or load harness scraping
		// /debug/vars can see who this backend is and how close to
		// shedding it runs without parsing logs.
		{"sectord.shard", shardVar(s.cfg.ShardName)},
		{"sectord.inflight", expvar.Func(func() any { return len(s.sem) })},
		{"sectord.max_inflight", expvar.Func(func() any { return cap(s.sem) })},
		{"sectord.requests", &s.requests},
		{"sectord.solved", &s.solved},
		{"sectord.cancellations", &s.cancellations},
		{"sectord.shed", &s.shed},
		{"sectord.failures", &s.failures},
		{"sectord.panics", &s.panics},
		{"sectord.fallbacks", &s.fallbacks},
		{"sectord.hedge_wins", &s.hedgeWins},
		{"sectord.invalid", &s.invalid},
		{"sectord.batches", &s.batches},
		{"sectord.batch_items", &s.batchItems},
		{"sectord.snapshot.saves", &s.snapSaves},
		{"sectord.snapshot.save_failures", &s.snapSaveFailures},
		{"sectord.snapshot.load_skipped", &s.snapLoadSkipped},
		{"sectord.snapshot.load_failures", &s.snapLoadFailures},
		{"sectord.sessions.recovered", &s.sessRecovered},
		{"sectord.sessions.recover_failed", &s.sessRecoverFailed},
		{"sectord.sessions.journal_failures", &s.journalFailures},
		{"sectord.sessions.journal_orphans", &s.journalOrphans},
		{"sectord.sessions.idem_replays", &s.idemReplays},
	}
	vars = append(vars, s.sessionVars()...)
	if s.cache != nil {
		for _, nv := range s.cache.Vars() {
			vars = append(vars, struct {
				name string
				v    expvar.Var
			}{"sectord.cache." + nv.Name, nv.Var})
		}
	}
	fmt.Fprintf(w, "{\n")
	first := true
	for _, kv := range vars {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.name, kv.v.String())
	}
	s.latencyMu.Lock()
	names := make([]string, 0, len(s.latency))
	for name := range s.latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, ",\n%q: %s", "sectord.latency."+name, s.latency[name].String())
	}
	s.latencyMu.Unlock()
	fmt.Fprintf(w, "\n}\n")
}
