package angular

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// knapsackExact is a tiny exact knapsack via branch and bound for oracles.
func knapsackExact(items []knapsack.Item, capacity int64) (int64, error) {
	res, _, err := knapsack.BranchBound(items, capacity, 1<<40)
	return res.Profit, err
}

// singleAntennaOracle computes the true optimum for one antenna by subset
// enumeration: a subset is servable iff it fits the capacity and some
// candidate orientation covers all of it.
func singleAntennaOracle(in *model.Instance) int64 {
	n := in.N()
	a := in.Antennas[0]
	cands := Candidates(in, 0)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var demand, profit int64
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) != 0 {
				demand += in.Customers[i].Demand
				profit += in.Customers[i].Profit
			}
		}
		if demand > a.Capacity || profit <= best {
			continue
		}
		covered := false
		for _, alpha := range cands {
			all := true
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 && !a.Covers(alpha, in.Customers[i]) {
					all = false
					break
				}
			}
			if all {
				covered = true
				break
			}
		}
		if covered && ok {
			best = profit
		}
	}
	return best
}

func TestBestWindowMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(rng, 1+rng.Intn(9), 1, model.Sectors)
		want := singleAntennaOracle(in)
		win, err := BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
		if err != nil {
			t.Fatalf("BestWindow: %v", err)
		}
		if !win.Exact {
			t.Fatal("small instance should be solved exactly")
		}
		if win.Profit != want {
			t.Fatalf("BestWindow = %d, want %d", win.Profit, want)
		}
		// feasibility of the reported window
		var demand int64
		for _, i := range win.Customers {
			if !in.Antennas[0].Covers(win.Alpha, in.Customers[i]) {
				t.Fatalf("customer %d not covered at α=%v", i, win.Alpha)
			}
			demand += in.Customers[i].Demand
		}
		if demand > in.Antennas[0].Capacity {
			t.Fatalf("window demand %d exceeds capacity", demand)
		}
	}
}

func TestBestWindowParallelMatchesSequential(t *testing.T) {
	// Enough candidates to trigger the parallel path; the result must be
	// identical to the sequential oracle because evaluation is pure.
	rng := rand.New(rand.NewSource(33))
	in := randInstance(rng, 60, 1, model.Sectors)
	win, err := BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
	if err != nil {
		t.Fatalf("BestWindow: %v", err)
	}
	// sequential re-evaluation
	var best int64
	for _, alpha := range Candidates(in, 0) {
		items, _ := WindowItems(in, 0, alpha, nil)
		if len(items) == 0 {
			continue
		}
		p, err := knapsackExact(items, in.Antennas[0].Capacity)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if p > best {
			best = p
		}
	}
	if win.Profit != best {
		t.Fatalf("parallel BestWindow = %d, sequential = %d", win.Profit, best)
	}
}

func TestBestWindowRespectsActiveMask(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 0.2, R: 1, Demand: 5, Profit: 100},
			{Theta: 0.3, R: 1, Demand: 5, Profit: 1},
		},
		[]model.Antenna{{Rho: 1, Range: 10, Capacity: 10}},
		model.Sectors,
	)
	active := []bool{false, true}
	win, err := BestWindow(context.Background(), in, 0, active, knapsack.Options{})
	if err != nil {
		t.Fatalf("BestWindow: %v", err)
	}
	if win.Profit != 1 || len(win.Customers) != 1 || win.Customers[0] != 1 {
		t.Fatalf("window should only use active customers: %+v", win)
	}
}

func TestBestWindowEmptyInstance(t *testing.T) {
	in := instWith(nil, []model.Antenna{{Rho: 1, Range: 10, Capacity: 10}}, model.Sectors)
	win, err := BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
	if err != nil {
		t.Fatalf("BestWindow: %v", err)
	}
	if win.Profit != 0 || len(win.Customers) != 0 {
		t.Fatalf("empty instance window = %+v", win)
	}
}

func TestBestWindowZeroCapacity(t *testing.T) {
	in := instWith(
		[]model.Customer{{Theta: 0.2, R: 1, Demand: 5}},
		[]model.Antenna{{Rho: 1, Range: 10, Capacity: 0}},
		model.Sectors,
	)
	win, err := BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
	if err != nil {
		t.Fatalf("BestWindow: %v", err)
	}
	if win.Profit != 0 {
		t.Fatalf("zero capacity must serve nothing, got %+v", win)
	}
}

func TestBetterFoldExactness(t *testing.T) {
	a := Window{Profit: 5, Exact: true}
	b := Window{Profit: 3, Exact: false}
	merged := better(a, b)
	if merged.Exact {
		t.Error("exactness must AND across candidates")
	}
	if merged.Profit != 5 {
		t.Error("higher profit must win")
	}
	_ = geom.TwoPi
}
