package angular

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// bandedInstance builds an instance whose antennas partition the plane into
// disjoint radial annuli (band j = [j·w + margin, (j+1)·w − margin]), so a
// delta confined to one band radially touches exactly that band's antenna.
func bandedInstance(rng *rand.Rand, n, bands int) *model.Instance {
	const w = 3.0
	in := &model.Instance{Name: "banded", Variant: model.Sectors}
	for j := 0; j < bands; j++ {
		in.Antennas = append(in.Antennas, model.Antenna{
			Rho:      math.Pi / 2,
			MinRange: float64(j) * w,
			Range:    float64(j+1) * w,
			Capacity: 40,
		})
	}
	for i := 0; i < n; i++ {
		b := rng.Intn(bands)
		in.Customers = append(in.Customers, model.Customer{
			Theta:  rng.Float64() * 2 * math.Pi,
			R:      float64(b)*w + 0.5 + 2*rng.Float64(), // clear of band edges
			Demand: 1 + int64(rng.Intn(9)),
			Profit: 1 + int64(rng.Intn(20)),
		})
	}
	in.Normalize()
	if err := in.Validate(); err != nil {
		panic(err)
	}
	return in
}

// bandCustomer returns some customer index whose radius lies in band b.
func bandCustomer(in *model.Instance, b int, skip map[int]bool) int {
	lo, hi := float64(b)*3.0, float64(b+1)*3.0
	for i, c := range in.Customers {
		if c.R > lo && c.R < hi && !skip[i] {
			return i
		}
	}
	panic("no customer in band")
}

func sweepsEqual(t *testing.T, tag string, got, want *Sweep) {
	t.Helper()
	// Rebase promises bit identity with a fresh build, so floats compare
	// by bits.
	if math.Float64bits(got.rho) != math.Float64bits(want.rho) || len(got.ids) != len(want.ids) {
		t.Fatalf("%s: shape mismatch: rho %v/%v len %d/%d", tag, got.rho, want.rho, len(got.ids), len(want.ids))
	}
	for k := range want.ids {
		if got.ids[k] != want.ids[k] || math.Float64bits(got.thetas[k]) != math.Float64bits(want.thetas[k]) ||
			got.weights[k] != want.weights[k] || got.profits[k] != want.profits[k] ||
			got.density[k] != want.density[k] {
			t.Fatalf("%s: position %d differs: got (id %d θ %v w %d p %d d %d) want (id %d θ %v w %d p %d d %d)",
				tag, k,
				got.ids[k], got.thetas[k], got.weights[k], got.profits[k], got.density[k],
				want.ids[k], want.thetas[k], want.weights[k], want.profits[k], want.density[k])
		}
	}
}

// TestRebaseBitIdentical is the rebase differential: after a delta confined
// to one radial band, Rebase must keep exactly the untouched bands' sweeps,
// and every sweep and candidate list — kept, dropped-and-rebuilt, or
// lazily built — must be bit-identical to a fresh engine's.
func TestRebaseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	in := bandedInstance(rng, 300, 4)
	eng := NewEngine(in)
	if err := eng.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}

	const hot = 1 // the band the delta churns
	skip := map[int]bool{}
	rm1 := bandCustomer(in, hot, skip)
	skip[rm1] = true
	rm2 := bandCustomer(in, hot, skip)
	skip[rm2] = true
	chg := bandCustomer(in, hot, skip)
	d := model.Delta{
		SetDemand:   []model.DemandChange{{Customer: chg, Demand: 5, Profit: 9}},
		SetCapacity: []model.CapacityChange{{Antenna: 3, Capacity: 25}},
		Remove:      []int{rm1, rm2},
		Add: []model.Customer{
			{Theta: 1.2, R: hot*3.0 + 1.1, Demand: 2, Profit: 3},
			{Theta: 4.0, R: hot*3.0 + 2.2, Demand: 3},
		},
	}
	next, err := model.ApplyDelta(in, d)
	if err != nil {
		t.Fatal(err)
	}

	kept := eng.Rebase(next, d)
	for j, k := range kept {
		if want := j != hot; k != want {
			t.Errorf("kept[%d] = %v, want %v", j, k, want)
		}
	}
	if eng.Instance() != next {
		t.Error("Rebase did not adopt the new instance")
	}

	fresh := NewEngine(next)
	if err := fresh.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	for j := range next.Antennas {
		sweepsEqual(t, "antenna", eng.Sweep(j), fresh.Sweep(j))
		gc, fc := eng.Candidates(j), fresh.Candidates(j)
		if len(gc) != len(fc) {
			t.Fatalf("antenna %d: candidate count %d != %d", j, len(gc), len(fc))
		}
		for k := range fc {
			if math.Float64bits(gc[k]) != math.Float64bits(fc[k]) {
				t.Fatalf("antenna %d: candidate %d: %v != %v", j, k, gc[k], fc[k])
			}
		}
	}

	// Functional check: best windows agree everywhere, including the
	// capacity-changed antenna (capacity lives in the instance, not the
	// sweep, so the kept sweep must still see the new value).
	active := make([]bool, next.N())
	for i := range active {
		active[i] = true
	}
	for j := range next.Antennas {
		got, err := eng.BestWindow(context.Background(), j, active, knapsack.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.BestWindow(context.Background(), j, active, knapsack.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Alpha) != math.Float64bits(want.Alpha) ||
			got.Profit != want.Profit || len(got.Customers) != len(want.Customers) {
			t.Fatalf("antenna %d: window %+v != fresh %+v", j, got, want)
		}
		for k := range want.Customers {
			if got.Customers[k] != want.Customers[k] {
				t.Fatalf("antenna %d: customer %d: %d != %d", j, k, got.Customers[k], want.Customers[k])
			}
		}
	}
}

// TestRebaseLazySweeps: sweeps never built before the rebase stay nil (not
// kept) and build correctly against the new instance on demand.
func TestRebaseLazySweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	in := bandedInstance(rng, 120, 3)
	eng := NewEngine(in)
	_ = eng.Sweep(0) // build only band 0

	d := model.Delta{Remove: []int{bandCustomer(in, 2, nil)}}
	next, err := model.ApplyDelta(in, d)
	if err != nil {
		t.Fatal(err)
	}
	kept := eng.Rebase(next, d)
	if !kept[0] || kept[1] || kept[2] {
		t.Fatalf("kept = %v, want [true false false]", kept)
	}
	fresh := NewEngine(next)
	for j := range next.Antennas {
		sweepsEqual(t, "lazy", eng.Sweep(j), fresh.Sweep(j))
	}
}

// TestRebaseAntennaSetChange: a "delta" to an instance with a different
// antenna count resets every sweep instead of keeping stale state.
func TestRebaseAntennaSetChange(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	in := bandedInstance(rng, 60, 3)
	eng := NewEngine(in)
	if err := eng.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	next := in.Clone()
	next.Antennas = next.Antennas[:2]
	next.Normalize()
	kept := eng.Rebase(next, model.Delta{})
	if len(kept) != 2 || kept[0] || kept[1] {
		t.Fatalf("kept = %v, want [false false]", kept)
	}
	fresh := NewEngine(next)
	for j := range next.Antennas {
		sweepsEqual(t, "reset", eng.Sweep(j), fresh.Sweep(j))
	}
}
