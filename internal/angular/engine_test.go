package angular

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// unprunedBestWindow is the reference implementation of BestWindow: it
// materializes every candidate window via windowSets and solves every
// knapsack, with no bound pruning, no parallelism, and no scratch reuse —
// exactly the historical evaluation the Engine replaced. The metamorphic
// tests below demand bit-identical results from the pruned path.
func unprunedBestWindow(in *model.Instance, antenna int, active []bool, opt knapsack.Options) (Window, error) {
	s := NewSweep(in, antenna)
	alphas, members := s.windowSets(active)
	if len(alphas) == 0 {
		return Window{Exact: true}, nil
	}
	capacity := in.Antennas[antenna].Capacity
	acc := Window{Profit: -1, Exact: true}
	for k, alpha := range alphas {
		ids := members[k]
		if len(ids) == 0 {
			acc = better(acc, Window{Alpha: alpha, Exact: true})
			continue
		}
		items := make([]knapsack.Item, len(ids))
		for t, i := range ids {
			items[t] = knapsack.Item{Weight: in.Customers[i].Demand, Profit: in.Customers[i].Profit}
		}
		res, exact, err := knapsack.Solve(items, capacity, opt)
		if err != nil {
			return Window{}, err
		}
		w := Window{Alpha: alpha, Profit: res.Profit, Exact: exact}
		for t, take := range res.Take {
			if take {
				w.Customers = append(w.Customers, ids[t])
			}
		}
		acc = better(acc, w)
	}
	return clampEmpty(acc), nil
}

func windowsEqual(a, b Window) bool {
	// The determinism contract is bit identity, so Alpha compares by bits.
	if math.Float64bits(a.Alpha) != math.Float64bits(b.Alpha) ||
		a.Profit != b.Profit || a.Exact != b.Exact || len(a.Customers) != len(b.Customers) {
		return false
	}
	for k := range a.Customers {
		if a.Customers[k] != b.Customers[k] {
			return false
		}
	}
	return true
}

// TestBestWindowPruningInvariance is the metamorphic guarantee of the
// Dantzig-bound pruning: across generator families, problem variants,
// random active masks, and both the exact and the FPTAS inner solvers, the
// pruned Engine evaluation must return exactly the same (Alpha, Profit,
// Customers, Exact) as the exhaustive reference. The Engine is also called
// twice per case so scratch reuse is covered.
func TestBestWindowPruningInvariance(t *testing.T) {
	variants := []model.Variant{model.Sectors, model.Angles, model.DisjointAngles}
	opts := []knapsack.Options{{}, {ForceApprox: true, Eps: 0.3}}
	rng := rand.New(rand.NewSource(77))
	cases := 0
	for _, fam := range gen.Families() {
		for seed := int64(1); seed <= 6; seed++ {
			for _, n := range []int{12, 31} {
				in := gen.MustGenerate(gen.Config{
					Family:  fam,
					Seed:    seed,
					N:       n,
					M:       1,
					Variant: variants[cases%len(variants)],
				})
				var active []bool
				if cases%2 == 1 {
					active = make([]bool, in.N())
					for i := range active {
						active[i] = rng.Intn(4) != 0
					}
				}
				eng := NewEngine(in)
				for _, opt := range opts {
					want, err := unprunedBestWindow(in, 0, active, opt)
					if err != nil {
						t.Fatalf("%s/%d/n%d reference: %v", fam, seed, n, err)
					}
					for rep := 0; rep < 2; rep++ {
						got, err := eng.BestWindow(context.Background(), 0, active, opt)
						if err != nil {
							t.Fatalf("%s/%d/n%d engine: %v", fam, seed, n, err)
						}
						if !windowsEqual(got, want) {
							t.Fatalf("%s/%d/n%d opt=%+v rep=%d: pruned %+v != unpruned %+v",
								fam, seed, n, opt, rep, got, want)
						}
					}
				}
				cases++
			}
		}
	}
	if cases < 50 {
		t.Fatalf("only %d seeded instances, want >= 50", cases)
	}
}

// TestBestWindowAtMatchesScanReference checks the explicit-angle evaluation
// (the constrained solvers' entry point) against a direct Covered/
// WindowItems scan, including non-customer angles and empty windows, which
// the constrained fold must skip.
func TestBestWindowAtMatchesScanReference(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(rng, 1+rng.Intn(25), 1, model.Sectors)
		alphas := append([]float64{}, Candidates(in, 0)...)
		for k := 0; k < 4; k++ {
			alphas = append(alphas, rng.Float64()*6.283)
		}
		var active []bool
		if trial%2 == 1 {
			active = make([]bool, in.N())
			for i := range active {
				active[i] = rng.Intn(3) != 0
			}
		}
		capacity := in.Antennas[0].Capacity
		want := Window{Profit: -1, Exact: true}
		for _, alpha := range alphas {
			items, ids := WindowItems(in, 0, alpha, active)
			if len(ids) == 0 {
				continue
			}
			res, exact, err := knapsack.Solve(items, capacity, knapsack.Options{})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			w := Window{Alpha: alpha, Profit: res.Profit, Exact: exact}
			for k, take := range res.Take {
				if take {
					w.Customers = append(w.Customers, ids[k])
				}
			}
			want = better(want, w)
		}
		want = clampEmpty(want)

		got, err := NewEngine(in).BestWindowAt(context.Background(), 0, alphas, active, knapsack.Options{})
		if err != nil {
			t.Fatalf("BestWindowAt: %v", err)
		}
		if !windowsEqual(got, want) {
			t.Fatalf("trial %d: BestWindowAt %+v != scan %+v", trial, got, want)
		}
	}
}

// TestDantzigBoundDominatesOptimum property-checks pruning soundness at its
// root: every candidate window's fractional bound must be at least the
// window's true 0/1 optimum, for both the range and the explicit-set bound.
func TestDantzigBoundDominatesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(rng, 1+rng.Intn(14), 1, model.Sectors)
		var active []bool
		if trial%2 == 1 {
			active = make([]bool, in.N())
			for i := range active {
				active[i] = rng.Intn(3) != 0
			}
		}
		s := NewSweep(in, 0)
		capacity := in.Antennas[0].Capacity
		n := s.Len()
		s.forEachRange(func(start, count int, alpha float64) bool {
			bound := s.dantzigRange(start, count, active, capacity)
			var items []knapsack.Item
			var set []int32
			for k := start; k < start+count; k++ {
				p := k % n
				if i := s.ids[p]; active == nil || active[i] {
					items = append(items, knapsack.Item{Weight: in.Customers[i].Demand, Profit: in.Customers[i].Profit})
					set = append(set, int32(p))
				}
			}
			if setBound := s.dantzigSet(set, active, capacity); setBound != bound {
				t.Fatalf("window at %v: dantzigSet %d != dantzigRange %d", alpha, setBound, bound)
			}
			opt, err := knapsackExact(items, capacity)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if bound < opt {
				t.Fatalf("window at %v: bound %d below optimum %d", alpha, bound, opt)
			}
			return true
		})
	}
}

// TestEngineCachesSweeps pins the core caching contract: repeated queries
// for the same antenna must reuse one Sweep and one candidate slice.
func TestEngineCachesSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	in := randInstance(rng, 20, 2, model.Sectors)
	eng := NewEngine(in)
	if eng.Sweep(1) != eng.Sweep(1) {
		t.Fatal("Sweep not cached per antenna")
	}
	c1, c2 := eng.Candidates(0), eng.Candidates(0)
	if len(c1) > 0 && &c1[0] != &c2[0] {
		t.Fatal("Candidates not cached per antenna")
	}
}

// TestCeilFrac pins the integer ceiling arithmetic of the split item,
// including the overflow fallback.
func TestCeilFrac(t *testing.T) {
	cases := []struct{ p, rem, w, want int64 }{
		{10, 3, 4, 8},                        // ceil(30/4) = 8 > 7.5
		{10, 4, 4, 10},                       // exact division
		{0, 3, 4, 0},                         // zero profit
		{10, 0, 4, 0},                        // no room
		{1 << 62, 1 << 10, 1 << 20, 1 << 62}, // overflow: fall back to p
	}
	for _, c := range cases {
		if got := ceilFrac(c.p, c.rem, c.w); got != c.want {
			t.Errorf("ceilFrac(%d,%d,%d) = %d, want %d", c.p, c.rem, c.w, got, c.want)
		}
	}
}
