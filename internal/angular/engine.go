package angular

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sectorpack/internal/cols"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// maxWorkersVar caps the worker count of every parallel path in this
// package (candidate-window evaluation, Prewarm's per-antenna sweep
// builds, CandidatesAll); 0 means GOMAXPROCS. Results are bit-identical at
// any setting — the knob exists so the scalar-vs-parallel differential
// tests and sectorbench can pin each path explicitly.
var maxWorkersVar atomic.Int32

// SetMaxWorkers caps the package's parallel paths at n workers (n <= 1
// forces the scalar path, 0 restores the GOMAXPROCS default) and returns
// the previous setting. Safe for concurrent use, but intended for test and
// benchmark setup, not per-request tuning.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkersVar.Swap(int32(n)))
}

// Workers reports the effective worker count the package's parallel paths
// would use right now.
func Workers() int {
	if n := int(maxWorkersVar.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Engine is the reusable best-window evaluator behind the greedy, local
// search, and constrained solvers. It caches one Sweep (and one candidate
// list) per antenna for the lifetime of a solve — the sweep depends only on
// instance geometry, so successive greedy steps and local-search
// reorientations share it instead of re-filtering and re-sorting all
// customers — and evaluates candidate windows with Dantzig-bound pruning:
//
//  1. For every candidate window a fractional (Dantzig) upper bound is
//     computed in O(window) from the sweep's density order, using integer
//     ceiling arithmetic so the bound NEVER undershoots the window's true
//     knapsack optimum.
//  2. Candidates are visited in descending-bound order; a candidate whose
//     bound is strictly below the best profit already solved is skipped —
//     its knapsack provably cannot win.
//  3. The surviving evaluations fold in original candidate order with the
//     same strictly-greater comparison as the unpruned path.
//
// Pruning is invisible in the results (see the correctness argument on
// bestBound): Alpha, Profit, Customers, and Exact all match the unpruned
// evaluation bit for bit on any input whose inner-solver exactness is
// uniform across windows, and unconditionally for the first three. A
// metamorphic test sweeps generator families × solvers to enforce this.
//
// An Engine is not safe for concurrent use; its methods parallelize
// internally across GOMAXPROCS workers.
type Engine struct {
	in     *model.Instance
	view   *cols.View // columnar core, built once and shared by every sweep
	sweeps []*Sweep
	cands  [][]float64

	// Per-call scratch, reused across calls to keep the steady state
	// allocation-free.
	wins   []windowCand
	order  []int32
	outs   []outcome
	posBuf []int32
	posEnd []int32 // prefix ends of each candidate's segment in posBuf
}

// windowCand is one candidate window awaiting evaluation: either a circular
// position range of the sweep (count >= 0, the streaming enumeration) or a
// segment of Engine.posBuf (count < 0, arbitrary-angle candidates).
type windowCand struct {
	alpha float64
	bound int64
	start int32
	count int32
}

type outcome struct {
	win    Window
	err    error
	solved bool // evaluated (possibly trivially); false = pruned
	empty  bool // no active members: participates only in unconstrained folds
}

// NewEngine prepares an engine for the instance. Sweeps are built lazily,
// one per antenna, on first use.
func NewEngine(in *model.Instance) *Engine {
	return &Engine{
		in:     in,
		sweeps: make([]*Sweep, len(in.Antennas)),
		cands:  make([][]float64, len(in.Antennas)),
	}
}

// Instance returns the instance the engine was built for.
func (e *Engine) Instance() *model.Instance { return e.in }

// View returns the engine's columnar view of the instance, building it on
// first use. The instance is sorted exactly once per engine; every sweep
// gathers from these shared read-only columns.
func (e *Engine) View() *cols.View {
	if e.view == nil {
		e.view = cols.New(e.in)
	}
	return e.view
}

// Sweep returns the antenna's cached sweep, building it on first use.
func (e *Engine) Sweep(antenna int) *Sweep {
	if e.sweeps[antenna] == nil {
		e.sweeps[antenna] = newSweepFromView(e.View(), e.in.Antennas[antenna])
	}
	return e.sweeps[antenna]
}

// Candidates returns the antenna's candidate start angles (sorted customer
// angles of in-range customers, deduplicated within geom.Eps), cached per
// antenna. Callers must not mutate the returned slice.
func (e *Engine) Candidates(antenna int) []float64 {
	if e.cands[antenna] == nil {
		e.cands[antenna] = candidatesFromSweep(e.Sweep(antenna))
	}
	return e.cands[antenna]
}

// candidatesFromSweep derives an antenna's deduplicated candidate angles
// from its sweep's already-sorted thetas.
func candidatesFromSweep(s *Sweep) []float64 {
	out := dedupAngles(append(make([]float64, 0, len(s.thetas)), s.thetas...))
	if out == nil {
		out = []float64{} // non-nil: cache hit marker
	}
	return out
}

// prewarmParallelMin gates Prewarm's fan-out: below this much total work
// (customers × antennas) goroutine spawn costs more than it saves and the
// serial loop is used. The threshold never changes results, only cost.
const prewarmParallelMin = 1 << 14

// Prewarm builds every antenna's sweep and candidate list up front,
// fanning the per-antenna builds across Workers() goroutines on large
// instances. The merge is deterministic by construction: antenna j's
// sweep lands in slot j and its content depends only on the shared view
// and the antenna, never on scheduling, so a prewarmed engine is
// bit-identical to one that built sweeps lazily — and to the scalar path.
//
// Cancellation: each worker consults ctx before every antenna it claims;
// on cancellation the already-built sweeps are kept (they are valid
// caches) and ctx.Err() is returned.
func (e *Engine) Prewarm(ctx context.Context) error {
	m := len(e.sweeps)
	if m == 0 {
		return ctx.Err()
	}
	view := e.View() // built serially, before the fan-out
	workers := Workers()
	if workers > m {
		workers = m
	}
	if workers <= 1 || view.Len()*m < prewarmParallelMin {
		for j := 0; j < m; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			e.prewarmAntenna(view, j)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return // consult ctx once per claimed antenna
				}
				j := int(next.Add(1)) - 1
				if j >= m {
					return
				}
				e.prewarmAntenna(view, j)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// prewarmAntenna fills antenna j's sweep and candidate slots if still
// empty. Distinct antennas touch distinct slots, so Prewarm's workers
// never race.
func (e *Engine) prewarmAntenna(v *cols.View, j int) {
	if e.sweeps[j] == nil {
		e.sweeps[j] = newSweepFromView(v, e.in.Antennas[j])
	}
	if e.cands[j] == nil {
		e.cands[j] = candidatesFromSweep(e.sweeps[j])
	}
}

// BestWindow finds the most profitable placement of a single antenna over
// the active customers: the cached sweep streams every candidate window,
// the Dantzig bound prunes hopeless ones, and a knapsack selects within
// each survivor. Results are identical to evaluating every candidate.
//
// With an exact inner solver the result is the true single-antenna optimum
// (by the candidate-orientation lemma); with the FPTAS it is a (1−ε)
// approximation of it.
//
// Cancellation: the evaluation loop checks ctx between candidate windows
// and returns ctx.Err() promptly, discarding partial work. An uncancelled
// run is bit-identical to the pre-context behavior.
func (e *Engine) BestWindow(ctx context.Context, antenna int, active []bool, opt knapsack.Options) (Window, error) {
	s := e.Sweep(antenna)
	capacity := e.in.Antennas[antenna].Capacity
	e.wins = e.wins[:0]
	s.forEachRange(func(start, count int, alpha float64) bool {
		e.wins = append(e.wins, windowCand{
			alpha: alpha,
			bound: s.dantzigRange(start, count, active, capacity),
			start: int32(start),
			count: int32(count),
		})
		return true
	})
	if len(e.wins) == 0 {
		return Window{Exact: true}, nil
	}
	return e.evaluate(ctx, s, capacity, active, opt, false)
}

// BestWindowAt evaluates an explicit set of candidate orientations — which
// need not be customer angles (placed-sector ends, grid points) — with the
// same pruned, parallel machinery as BestWindow. Window membership follows
// Covers' tolerance semantics and knapsack items are ordered by ascending
// customer index, matching the Covered/WindowItems scan it replaces.
// Candidates whose window has no active member are skipped entirely (they
// never become the incumbent), mirroring the historical constrained-search
// behavior; if every candidate is empty the zero Window is returned.
func (e *Engine) BestWindowAt(ctx context.Context, antenna int, alphas []float64, active []bool, opt knapsack.Options) (Window, error) {
	s := e.Sweep(antenna)
	capacity := e.in.Antennas[antenna].Capacity
	e.wins = e.wins[:0]
	e.posBuf = e.posBuf[:0]
	e.posEnd = e.posEnd[:0]
	for _, alpha := range alphas {
		off := len(e.posBuf)
		e.posBuf = s.appendCovered(alpha, e.posBuf)
		seg := e.posBuf[off:]
		e.posEnd = append(e.posEnd, int32(len(e.posBuf)))
		e.wins = append(e.wins, windowCand{
			alpha: alpha,
			bound: s.dantzigSet(seg, active, capacity),
			start: int32(off),
			count: -1,
		})
	}
	if len(e.wins) == 0 {
		return Window{}, nil
	}
	return e.evaluate(ctx, s, capacity, active, opt, true)
}

// parallelThreshold is the candidate count below which the fan-out is not
// worth its synchronization cost.
const parallelThreshold = 16

// evaluate runs the prune-and-solve loop over e.wins and folds the
// outcomes. skipEmpty selects the constrained fold (empty windows are
// ignored) versus the unconstrained one (an empty window still proposes
// its orientation at profit 0, preserving BestWindow's historical
// all-empty behavior).
//
// ctx is checked once per candidate in both the serial and the parallel
// path; on cancellation the partial fold is abandoned and ctx.Err() is
// returned. With a never-cancelled ctx every branch below behaves exactly
// as before the context was threaded through.
func (e *Engine) evaluate(ctx context.Context, s *Sweep, capacity int64, active []bool, opt knapsack.Options, skipEmpty bool) (Window, error) {
	nc := len(e.wins)
	if cap(e.order) < nc {
		e.order = make([]int32, nc)
		e.outs = make([]outcome, nc)
	}
	e.order, e.outs = e.order[:nc], e.outs[:nc]
	for k := range e.outs {
		e.outs[k] = outcome{}
	}
	for k := range e.order {
		e.order[k] = int32(k)
	}
	// Descending bound, ties by original candidate order: the highest
	// upper bound is the best chance to raise the incumbent early.
	sort.Slice(e.order, func(x, y int) bool {
		a, b := e.order[x], e.order[y]
		if e.wins[a].bound != e.wins[b].bound {
			return e.wins[a].bound > e.wins[b].bound
		}
		return a < b
	})

	// best is the highest profit of any solved candidate so far; −1 until
	// the first solve, so the first candidate in bound order — which has
	// the globally highest bound — is never pruned. Pruning strictly
	// (bound < best) is what makes the fold below provably identical to
	// the unpruned path: a pruned candidate's true window optimum is at
	// most its bound, hence strictly below some solved profit, so it can
	// be neither the maximum nor a first-index tie-winner.
	var best atomic.Int64
	best.Store(-1)

	workers := Workers()
	if nc < parallelThreshold || workers <= 1 {
		sc := evalPool.Get().(*evalScratch)
		for _, k := range e.order {
			if ctx.Err() != nil {
				break
			}
			if e.wins[k].bound < best.Load() {
				continue
			}
			e.solve(s, int(k), capacity, active, opt, &best, sc)
		}
		evalPool.Put(sc)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		if workers > nc {
			workers = nc
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := evalPool.Get().(*evalScratch)
				defer evalPool.Put(sc)
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= nc {
						return
					}
					k := e.order[i]
					if e.wins[k].bound < best.Load() {
						continue
					}
					e.solve(s, int(k), capacity, active, opt, &best, sc)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return Window{}, err
	}

	// Fold in original candidate order, exactly as the unpruned path did.
	acc := Window{Profit: -1, Exact: true}
	for k := range e.outs {
		o := &e.outs[k]
		if !o.solved {
			continue
		}
		if o.err != nil {
			return Window{}, o.err
		}
		if o.empty && skipEmpty {
			continue
		}
		acc = better(acc, o.win)
	}
	return clampEmpty(acc), nil
}

// evalScratch is a worker's reusable id/item workspace.
type evalScratch struct {
	ids   []int
	items []knapsack.Item
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

// solve evaluates candidate k into e.outs[k] and raises the shared
// incumbent. Member enumeration preserves the historical item orders:
// sweep order (rotated theta order) for range candidates, ascending
// customer index for explicit-angle candidates.
func (e *Engine) solve(s *Sweep, k int, capacity int64, active []bool, opt knapsack.Options, best *atomic.Int64, sc *evalScratch) {
	c := e.wins[k]
	n := s.Len()
	ids := sc.ids[:0]
	if c.count >= 0 {
		for t := int(c.start); t < int(c.start)+int(c.count); t++ {
			i := int(s.ids[t%n])
			if active == nil || active[i] {
				ids = append(ids, i)
			}
		}
	} else {
		for _, p := range e.posBuf[c.start:e.posEnd[k]] {
			i := int(s.ids[p])
			if active == nil || active[i] {
				ids = append(ids, i)
			}
		}
		sort.Ints(ids) // Covered() order: ascending customer index
	}
	sc.ids = ids
	if len(ids) == 0 {
		e.outs[k] = outcome{win: Window{Alpha: c.alpha, Exact: true}, solved: true, empty: true}
		raise(best, 0)
		return
	}
	items := sc.items[:0]
	for _, i := range ids {
		items = append(items, knapsack.Item{Weight: e.in.Customers[i].Demand, Profit: e.in.Customers[i].Profit})
	}
	sc.items = items
	res, exact, err := knapsack.Solve(items, capacity, opt)
	if err != nil {
		e.outs[k] = outcome{err: err, solved: true}
		return
	}
	w := Window{Alpha: c.alpha, Profit: res.Profit, Exact: exact}
	for t, take := range res.Take {
		if take {
			w.Customers = append(w.Customers, ids[t])
		}
	}
	e.outs[k] = outcome{win: w, solved: true}
	raise(best, res.Profit)
}

// raise lifts the atomic incumbent to at least p.
func raise(best *atomic.Int64, p int64) {
	for {
		cur := best.Load()
		if p <= cur || best.CompareAndSwap(cur, p) {
			return
		}
	}
}

// dantzigRange computes the Dantzig fractional upper bound of the window
// given as a circular position range, over active members only. Walking the
// sweep's density order and rounding the split item's contribution UP with
// integer arithmetic makes the result an exact-arithmetic upper bound on
// the window's 0/1 optimum — no float rounding can pull it below.
func (s *Sweep) dantzigRange(start, count int, active []bool, capacity int64) int64 {
	n := len(s.ids)
	rem := capacity
	var bound int64
	for _, p32 := range s.density {
		p := int(p32)
		rel := p - start
		if rel < 0 {
			rel += n
		}
		if rel >= count {
			continue
		}
		if active != nil && !active[s.ids[p]] {
			continue
		}
		w := s.weights[p]
		if w <= rem {
			bound += s.profits[p]
			rem -= w
			if rem == 0 {
				break
			}
		} else {
			bound += ceilFrac(s.profits[p], rem, w)
			break
		}
	}
	return bound
}

// dantzigSet is dantzigRange for an explicit member-position set; the set
// must be sorted or not — only membership matters. It marks the members
// and walks the density order, so cost is O(set + prefix of density walk).
func (s *Sweep) dantzigSet(set []int32, active []bool, capacity int64) int64 {
	if len(set) == 0 {
		return 0
	}
	if cap(s.markBuf) < len(s.ids) {
		s.markBuf = make([]int32, len(s.ids))
		s.markEpoch = 0
	}
	s.markBuf = s.markBuf[:len(s.ids)]
	s.markEpoch++
	if s.markEpoch == 0 { // wrapped: reset
		clear(s.markBuf)
		s.markEpoch = 1
	}
	for _, p := range set {
		s.markBuf[p] = s.markEpoch
	}
	rem := capacity
	var bound int64
	for _, p32 := range s.density {
		p := int(p32)
		if s.markBuf[p] != s.markEpoch {
			continue
		}
		if active != nil && !active[s.ids[p]] {
			continue
		}
		w := s.weights[p]
		if w <= rem {
			bound += s.profits[p]
			rem -= w
			if rem == 0 {
				break
			}
		} else {
			bound += ceilFrac(s.profits[p], rem, w)
			break
		}
	}
	return bound
}

// ceilFrac returns ceil(p·rem/w), the split item's share of the Dantzig
// bound, computed in integers so it can only round UP (a float could round
// below the true fraction and break the pruning soundness proof). If the
// product would overflow it falls back to p, which is always a valid upper
// bound on the fraction since rem < w.
func ceilFrac(p, rem, w int64) int64 {
	if p == 0 || rem == 0 {
		return 0
	}
	if p > math.MaxInt64/rem {
		return p
	}
	return (p*rem + w - 1) / w
}
