package angular

import (
	"context"
	"fmt"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// BenchmarkBestWindow measures one pruned best-window search on a warm
// Engine — the unit of work the greedy solver repeats per antenna step.
func BenchmarkBestWindow(b *testing.B) {
	for _, n := range []int{100, 400, 800} {
		in := gen.MustGenerate(gen.Config{
			Family: gen.Uniform, Variant: model.Sectors,
			Seed: 42, N: n, M: 1,
		})
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			eng := NewEngine(in)
			if _, err := eng.BestWindow(context.Background(), 0, nil, knapsack.Options{}); err != nil {
				b.Fatal(err) // warm the sweep outside the timed loop
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.BestWindow(context.Background(), 0, nil, knapsack.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBestWindowCold includes the sweep construction, as paid by a
// one-shot caller that does not reuse an Engine.
func BenchmarkBestWindowCold(b *testing.B) {
	in := gen.MustGenerate(gen.Config{
		Family: gen.Uniform, Variant: model.Sectors,
		Seed: 42, N: 400, M: 1,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BestWindow(context.Background(), in, 0, nil, knapsack.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
