package angular

import (
	"context"
	"math"
	"testing"

	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// largeDiffInstance is big enough (n*m >= prewarmParallelMin) that
// CandidatesAll and Prewarm take their worker-pool paths when more than one
// worker is allowed.
func largeDiffInstance(t *testing.T) *model.Instance {
	t.Helper()
	in := gen.MustGenerate(gen.Config{Family: gen.Hotspot, Seed: 9, N: 3000, M: 6, MinRange: 2})
	if in.N()*in.M() < prewarmParallelMin {
		t.Fatalf("instance too small to cross the parallel gate: %d < %d", in.N()*in.M(), prewarmParallelMin)
	}
	return in
}

// TestCandidatesAllScalarVsParallel pins CandidatesAll's determinism claim:
// the worker-pool path must return exactly the per-antenna Candidates
// slices, element for element, that the scalar path (and the one-antenna
// reference implementation) produce.
func TestCandidatesAllScalarVsParallel(t *testing.T) {
	in := largeDiffInstance(t)
	run := func(workers int) [][]float64 {
		prev := SetMaxWorkers(workers)
		defer SetMaxWorkers(prev)
		out, err := CandidatesAll(context.Background(), in)
		if err != nil {
			t.Fatalf("CandidatesAll at %d workers: %v", workers, err)
		}
		return out
	}
	scalar := run(1)
	parallel := run(8)
	if len(scalar) != in.M() || len(parallel) != in.M() {
		t.Fatalf("got %d/%d antenna slices, want %d", len(scalar), len(parallel), in.M())
	}
	for j := 0; j < in.M(); j++ {
		ref := Candidates(in, j)
		for path, got := range map[string][]float64{"scalar": scalar[j], "parallel": parallel[j]} {
			if len(got) != len(ref) {
				t.Fatalf("antenna %d %s path: %d candidates, reference has %d", j, path, len(got), len(ref))
			}
			for k := range ref {
				if math.Float64bits(got[k]) != math.Float64bits(ref[k]) {
					t.Fatalf("antenna %d %s path candidate %d: got %v, reference %v", j, path, k, got[k], ref[k])
				}
			}
		}
	}
}

// TestPrewarmScalarVsParallel checks that a parallel-prewarmed engine holds
// bit-identical sweeps and candidate lists to a scalar-prewarmed one: slot
// j's content must be a pure function of the view and antenna j, never of
// goroutine scheduling.
func TestPrewarmScalarVsParallel(t *testing.T) {
	in := largeDiffInstance(t)
	prewarm := func(workers int) *Engine {
		prev := SetMaxWorkers(workers)
		defer SetMaxWorkers(prev)
		e := NewEngine(in)
		if err := e.Prewarm(context.Background()); err != nil {
			t.Fatalf("Prewarm at %d workers: %v", workers, err)
		}
		return e
	}
	scalar := prewarm(1)
	parallel := prewarm(8)
	for j := 0; j < in.M(); j++ {
		s, p := scalar.sweeps[j], parallel.sweeps[j]
		if s == nil || p == nil {
			t.Fatalf("antenna %d: prewarm left a nil sweep (scalar=%v parallel=%v)", j, s == nil, p == nil)
		}
		if s.Len() != p.Len() {
			t.Fatalf("antenna %d: sweep lengths differ: %d vs %d", j, s.Len(), p.Len())
		}
		for k := 0; k < s.Len(); k++ {
			if s.ids[k] != p.ids[k] || math.Float64bits(s.thetas[k]) != math.Float64bits(p.thetas[k]) ||
				s.weights[k] != p.weights[k] || s.profits[k] != p.profits[k] ||
				s.density[k] != p.density[k] {
				t.Fatalf("antenna %d: sweeps diverge at position %d", j, k)
			}
		}
		sc, pc := scalar.cands[j], parallel.cands[j]
		if len(sc) != len(pc) {
			t.Fatalf("antenna %d: candidate counts differ: %d vs %d", j, len(sc), len(pc))
		}
		for k := range sc {
			if math.Float64bits(sc[k]) != math.Float64bits(pc[k]) {
				t.Fatalf("antenna %d: candidates diverge at %d: %v vs %v", j, k, sc[k], pc[k])
			}
		}
	}
}
