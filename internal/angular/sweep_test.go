package angular

import (
	"math/rand"
	"sort"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// TestSweepMatchesCoveredScan cross-checks the rotating sweep against the
// naive per-candidate scan on random general-position instances.
func TestSweepMatchesCoveredScan(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		in := randInstance(rng, 1+rng.Intn(30), 1, model.Sectors)
		sw := NewSweep(in, 0)
		seen := 0
		sw.ForEach(func(alpha float64, ids []int) bool {
			seen++
			want := Covered(in, 0, alpha, nil)
			got := append([]int(nil), ids...)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("window at %v: sweep %v vs scan %v", alpha, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("window at %v: sweep %v vs scan %v", alpha, got, want)
				}
			}
			return true
		})
		wantCands := len(Candidates(in, 0))
		if seen != wantCands {
			t.Fatalf("sweep enumerated %d windows, candidates say %d", seen, wantCands)
		}
	}
}

func TestSweepFullCircleWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	in := randInstance(rng, 12, 1, model.Angles)
	in.Antennas[0].Rho = 6.28318 // ~2π: every window covers everyone
	sw := NewSweep(in, 0)
	sw.ForEach(func(alpha float64, ids []int) bool {
		if len(ids) != in.N() {
			t.Fatalf("full-circle window covers %d/%d", len(ids), in.N())
		}
		return true
	})
}

// TestSweepSeamDedup is the regression test for duplicate-angle
// deduplication across the 2π seam: a customer just below 2π and one at 0
// are the same candidate angle within geom.Eps, but the plain
// adjacent-difference check cannot see it (they sit at opposite ends of the
// sorted slice) and used to emit two near-identical windows.
func TestSweepSeamDedup(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 0, R: 1, Demand: 1},
			{Theta: geom.TwoPi - geom.Eps/2, R: 1, Demand: 1},
			{Theta: 1.0, R: 1, Demand: 1},
		},
		[]model.Antenna{{Rho: 1.5, Range: 5, Capacity: 5}},
		model.Sectors,
	)
	var alphas []float64
	var sizes []int
	NewSweep(in, 0).ForEach(func(alpha float64, ids []int) bool {
		alphas = append(alphas, alpha)
		sizes = append(sizes, len(ids))
		return true
	})
	if len(alphas) != 2 {
		t.Fatalf("windows at %v, want 2 (seam pair deduplicated)", alphas)
	}
	// The surviving seam window starts at the near-2π twin and must cover
	// all three customers (0 and 1.0 are both within rho of it).
	if sizes[1] != 3 {
		t.Fatalf("seam window covers %d customers, want 3", sizes[1])
	}
}

func TestSweepRangeFilter(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 0.1, R: 1, Demand: 1},
			{Theta: 0.2, R: 100, Demand: 1}, // out of range
		},
		[]model.Antenna{{Rho: 1, Range: 5, Capacity: 5}},
		model.Sectors,
	)
	sw := NewSweep(in, 0)
	if sw.Len() != 1 {
		t.Fatalf("sweep kept %d customers, want 1", sw.Len())
	}
}

func TestSweepEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	in := randInstance(rng, 10, 1, model.Sectors)
	calls := 0
	NewSweep(in, 0).ForEach(func(float64, []int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestSweepEmpty(t *testing.T) {
	in := instWith(nil, []model.Antenna{{Rho: 1, Range: 5, Capacity: 5}}, model.Sectors)
	NewSweep(in, 0).ForEach(func(float64, []int) bool {
		t.Fatal("no windows expected")
		return true
	})
}

func TestSweepActiveMaskInWindowSets(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 0.1, R: 1, Demand: 1},
			{Theta: 0.2, R: 1, Demand: 1},
		},
		[]model.Antenna{{Rho: 1, Range: 5, Capacity: 5}},
		model.Sectors,
	)
	alphas, members := NewSweep(in, 0).windowSets([]bool{true, false})
	if len(alphas) != 2 {
		t.Fatalf("windows = %d, want 2", len(alphas))
	}
	for k, ids := range members {
		for _, i := range ids {
			if i == 1 {
				t.Fatalf("window %d contains masked customer", k)
			}
		}
	}
}
