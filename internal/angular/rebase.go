package angular

import (
	"math"
	"sort"

	"sectorpack/internal/cols"
	"sectorpack/internal/model"
)

// Rebase retargets the engine at next — the instance produced by applying
// delta d to the engine's current instance (model.ApplyDelta) — while
// preserving every per-antenna sweep the delta provably cannot have
// touched. It returns kept[j] == true iff antenna j's warm sweep (and
// candidate list) survived; dropped or never-built sweeps rebuild lazily
// against next on first use. Rebase is the incremental core of a delta
// session: on localized churn most sweeps survive, so a re-solve skips the
// dominant from-scratch cost of rebuilding them.
//
// Soundness. A sweep's membership is the pure radial predicate
// cols.InRadialRange (sweeps gather exactly the customers whose radius lies
// in the antenna's RadialBounds interval), and its contents are a
// deterministic function of (member geometry, member demand/profit, member
// customer-index order). The delta's "touch radii" are the radii of every
// customer it removes or re-prices (read from the OLD instance) and every
// customer it adds. If no touch radius lies in antenna j's radial interval
// (cols.TouchesRadially), then:
//
//   - no removed, re-priced, or added customer is a member of sweep j, so
//     its member set, thetas, weights, profits, and density order are those
//     a fresh build against next would produce;
//   - removals renumber surviving customers order-preservingly
//     (model.ApplyDelta), so the only stale state is the member customer
//     indices, fixed here by subtracting each id's count of removed
//     predecessors — after which the sweep is bit-identical to a fresh
//     build (the rebase differential test enforces this);
//   - candidate angles derive from sweep thetas only, so they survive too.
//
// Antenna capacity changes never invalidate a sweep: capacity is read from
// the engine's instance at solve time, not stored in sweep state. Antenna
// geometry changes are outside the delta vocabulary; Rebase still compares
// geometry defensively and drops the sweep of any antenna whose shape
// differs. If the antenna count itself differs — next is not a delta of the
// current instance — every sweep is dropped.
func (e *Engine) Rebase(next *model.Instance, d model.Delta) (kept []bool) {
	old := e.in
	m := len(next.Antennas)
	kept = make([]bool, m)
	e.in = next
	if len(old.Antennas) != m {
		e.view = nil
		e.sweeps = make([]*Sweep, m)
		e.cands = make([][]float64, m)
		return kept
	}
	if e.view != nil {
		// The instance-wide columnar view survives every delta: cols.Rebase
		// merges the churned customers into the old sort orders in
		// O(n + k log k), so a dropped sweep's lazy rebuild never pays the
		// O(n log n) from-scratch view sort. The result is bit-identical to
		// cols.New(next) (differential-tested), so sweeps built from it
		// match fresh builds exactly.
		e.view = cols.Rebase(e.view, next, d.Remove, len(d.Add))
	}
	touch := make([]float64, 0, len(d.SetDemand)+len(d.Remove)+len(d.Add))
	for _, ch := range d.SetDemand {
		touch = append(touch, old.Customers[ch.Customer].R)
	}
	for _, id := range d.Remove {
		touch = append(touch, old.Customers[id].R)
	}
	for _, c := range d.Add {
		touch = append(touch, c.R)
	}
	sort.Float64s(touch)
	removed := append([]int(nil), d.Remove...)
	sort.Ints(removed)
	for j := 0; j < m; j++ {
		if e.sweeps[j] == nil {
			continue // never built; nothing to keep
		}
		oa, na := old.Antennas[j], next.Antennas[j]
		// Deliberately bit-level, not tolerance-based: ANY geometry change,
		// however small, changes what a fresh sweep would contain, and the
		// contract here is bit-identity with a fresh build.
		if !bitsEq(oa.Rho, na.Rho) || !bitsEq(oa.Range, na.Range) || !bitsEq(oa.MinRange, na.MinRange) {
			e.sweeps[j], e.cands[j] = nil, nil
			continue
		}
		if cols.TouchesRadially(na, touch) {
			e.sweeps[j], e.cands[j] = nil, nil
			continue
		}
		if len(removed) > 0 {
			s := e.sweeps[j]
			for t, id := range s.ids {
				// id is not removed (its radius would be a touch radius in
				// this antenna's interval), so SearchInts counts exactly the
				// removed customers numbered below it.
				s.ids[t] = id - int32(sort.SearchInts(removed, int(id)))
			}
		}
		kept[j] = true
	}
	return kept
}

// bitsEq is bit-level float equality (NaN == NaN, -0 != +0), the explicit
// form of the identity comparison Rebase's sweep-survival proof needs.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
