package angular

import (
	"math/rand"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

func instWith(customers []model.Customer, antennas []model.Antenna, v model.Variant) *model.Instance {
	in := &model.Instance{Variant: v, Customers: customers, Antennas: antennas}
	return in.Normalize()
}

func TestCandidatesFilterAndDedup(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 1.0, R: 2, Demand: 1},
			{Theta: 1.0, R: 3, Demand: 1}, // duplicate angle
			{Theta: 2.0, R: 50, Demand: 1},
			{Theta: 3.0, R: 1, Demand: 1},
		},
		[]model.Antenna{{Rho: 1, Range: 10, Capacity: 5}},
		model.Sectors,
	)
	c := Candidates(in, 0)
	if len(c) != 2 {
		t.Fatalf("candidates = %v, want [1.0 3.0] (dedup + range filter)", c)
	}
	//sectorlint:ignore floateq candidate angles are customer thetas copied verbatim; the inputs are these exact literals
	if c[0] != 1.0 || c[1] != 3.0 {
		t.Errorf("candidates = %v", c)
	}
}

func TestCandidatesUnboundedRange(t *testing.T) {
	in := instWith(
		[]model.Customer{{Theta: 0.5, R: 1e9, Demand: 1}},
		[]model.Antenna{{Rho: 1, Range: 0, Capacity: 5}}, // unbounded
		model.Angles,
	)
	if c := Candidates(in, 0); len(c) != 1 {
		t.Fatalf("unbounded antenna should see every customer, got %v", c)
	}
}

func TestCoveredRespectsActiveMask(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 0.2, R: 1, Demand: 1},
			{Theta: 0.4, R: 1, Demand: 1},
			{Theta: 3.0, R: 1, Demand: 1},
		},
		[]model.Antenna{{Rho: 1, Range: 10, Capacity: 5}},
		model.Sectors,
	)
	got := Covered(in, 0, 0, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Covered = %v, want [0 1]", got)
	}
	active := []bool{false, true, true}
	got = Covered(in, 0, 0, active)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Covered with mask = %v, want [1]", got)
	}
}

func TestWindowItemsAlignment(t *testing.T) {
	in := instWith(
		[]model.Customer{
			{Theta: 0.2, R: 1, Demand: 7, Profit: 9},
			{Theta: 0.4, R: 1, Demand: 3},
		},
		[]model.Antenna{{Rho: 1, Range: 10, Capacity: 5}},
		model.Sectors,
	)
	items, ids := WindowItems(in, 0, 0, nil)
	if len(items) != 2 || len(ids) != 2 {
		t.Fatalf("items=%v ids=%v", items, ids)
	}
	if items[0].Weight != 7 || items[0].Profit != 9 {
		t.Errorf("item 0 = %+v, want weight 7 profit 9", items[0])
	}
	if items[1].Weight != 3 || items[1].Profit != 3 {
		t.Errorf("item 1 = %+v, want demand-defaulted profit", items[1])
	}
}

// randInstance generates a random valid instance for fuzz-style tests.
func randInstance(rng *rand.Rand, n, m int, variant model.Variant) *model.Instance {
	in := &model.Instance{Variant: variant}
	for i := 0; i < n; i++ {
		in.Customers = append(in.Customers, model.Customer{
			Theta:  rng.Float64() * geom.TwoPi,
			R:      rng.Float64() * 10,
			Demand: 1 + rng.Int63n(8),
		})
	}
	for j := 0; j < m; j++ {
		a := model.Antenna{
			Rho:      0.3 + rng.Float64()*2,
			Capacity: 5 + rng.Int63n(25),
		}
		if variant == model.Sectors {
			a.Range = 2 + rng.Float64()*9
		}
		in.Antennas = append(in.Antennas, a)
	}
	return in.Normalize()
}

// TestCandidateOrientationLemma property-checks the discretization: for a
// single antenna, no random orientation covers a customer set whose best
// knapsack value beats the best over candidate orientations.
func TestCandidateOrientationLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		in := randInstance(rng, 1+rng.Intn(10), 1, model.Sectors)
		bestCand := coveredMaxProfit(in, Candidates(in, 0))
		var randomAlphas []float64
		for k := 0; k < 200; k++ {
			randomAlphas = append(randomAlphas, rng.Float64()*geom.TwoPi)
		}
		bestRand := coveredMaxProfit(in, randomAlphas)
		if bestRand > bestCand {
			t.Fatalf("random orientation beats candidates: %d > %d", bestRand, bestCand)
		}
	}
}

// coveredMaxProfit returns the best exact knapsack value over the given
// orientations for antenna 0.
func coveredMaxProfit(in *model.Instance, alphas []float64) int64 {
	var best int64
	for _, alpha := range alphas {
		items, _ := WindowItems(in, 0, alpha, nil)
		if len(items) == 0 {
			continue
		}
		res, _ := knapsackExact(items, in.Antennas[0].Capacity)
		if res > best {
			best = res
		}
	}
	return best
}
