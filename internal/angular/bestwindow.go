package angular

import (
	"runtime"
	"sync"

	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// Window is the outcome of a best-single-window search: an orientation, the
// customers to serve there, and the resulting profit.
type Window struct {
	Alpha     float64
	Customers []int // customer indices to serve
	Profit    int64
	Exact     bool // whether the inner knapsack was solved exactly at every candidate
}

// BestWindow finds the most profitable placement of a single antenna: the
// rotating sweep enumerates every candidate window (orientation plus
// covered set), a knapsack selects within each, and the best candidate
// wins. Candidates are evaluated in parallel across GOMAXPROCS workers
// when there are enough of them to pay for the fan-out.
//
// With an exact inner solver the result is the true single-antenna optimum
// (by the candidate-orientation lemma); with the FPTAS it is a (1−ε)
// approximation of it.
func BestWindow(in *model.Instance, antenna int, active []bool, opt knapsack.Options) (Window, error) {
	alphas, members := NewSweep(in, antenna).windowSets(active)
	if len(alphas) == 0 {
		return Window{Exact: true}, nil
	}
	capacity := in.Antennas[antenna].Capacity

	type outcome struct {
		win Window
		err error
	}
	eval := func(k int) outcome {
		ids := members[k]
		if len(ids) == 0 {
			return outcome{win: Window{Alpha: alphas[k], Exact: true}}
		}
		items := make([]knapsack.Item, len(ids))
		for t, i := range ids {
			items[t] = knapsack.Item{Weight: in.Customers[i].Demand, Profit: in.Customers[i].Profit}
		}
		res, exact, err := knapsack.Solve(items, capacity, opt)
		if err != nil {
			return outcome{err: err}
		}
		w := Window{Alpha: alphas[k], Profit: res.Profit, Exact: exact}
		for t, take := range res.Take {
			if take {
				w.Customers = append(w.Customers, ids[t])
			}
		}
		return outcome{win: w}
	}

	const parallelThreshold = 16
	workers := runtime.GOMAXPROCS(0)
	if len(alphas) < parallelThreshold || workers <= 1 {
		best := Window{Profit: -1, Exact: true}
		for k := range alphas {
			o := eval(k)
			if o.err != nil {
				return Window{}, o.err
			}
			best = better(best, o.win)
		}
		return clampEmpty(best), nil
	}

	results := make([]outcome, len(alphas))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				results[k] = eval(k)
			}
		}()
	}
	for k := range alphas {
		next <- k
	}
	close(next)
	wg.Wait()

	best := Window{Profit: -1, Exact: true}
	for _, o := range results {
		if o.err != nil {
			return Window{}, o.err
		}
		best = better(best, o.win)
	}
	return clampEmpty(best), nil
}

// better merges two windows: higher profit wins; exactness survives only if
// both the winner and every considered candidate were exact, which callers
// get by folding with this function (Exact of the fold = AND of all).
func better(acc, cand Window) Window {
	exact := acc.Exact && cand.Exact
	if cand.Profit > acc.Profit {
		cand.Exact = exact
		return cand
	}
	acc.Exact = exact
	return acc
}

// clampEmpty normalizes the "nothing profitable" case to a zero window.
func clampEmpty(w Window) Window {
	if w.Profit < 0 {
		w.Profit = 0
		w.Customers = nil
	}
	return w
}
