package angular

import (
	"context"

	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// Window is the outcome of a best-single-window search: an orientation, the
// customers to serve there, and the resulting profit.
type Window struct {
	Alpha     float64
	Customers []int // customer indices to serve
	Profit    int64
	Exact     bool // whether the result is certifiably the candidate-set optimum
}

// BestWindow finds the most profitable placement of a single antenna: the
// rotating sweep enumerates every candidate window (orientation plus
// covered set), a knapsack selects within each, and the best candidate
// wins. Evaluation goes through a one-shot Engine: candidate windows are
// streamed (never materialized), visited in descending Dantzig-bound order,
// pruned when their bound cannot beat the incumbent, and fanned out over
// GOMAXPROCS workers when there are enough of them to pay for it. Callers
// evaluating many windows of the same instance — one per greedy step, one
// per local-search reorientation — should build an Engine once and reuse it
// so the per-antenna sweeps are shared.
//
// With an exact inner solver the result is the true single-antenna optimum
// (by the candidate-orientation lemma); with the FPTAS it is a (1−ε)
// approximation of it.
func BestWindow(ctx context.Context, in *model.Instance, antenna int, active []bool, opt knapsack.Options) (Window, error) {
	return NewEngine(in).BestWindow(ctx, antenna, active, opt)
}

// better merges two windows: higher profit wins; exactness survives only if
// both the winner and every considered candidate were exact, which callers
// get by folding with this function (Exact of the fold = AND of all).
func better(acc, cand Window) Window {
	exact := acc.Exact && cand.Exact
	if cand.Profit > acc.Profit {
		cand.Exact = exact
		return cand
	}
	acc.Exact = exact
	return acc
}

// clampEmpty normalizes the "nothing profitable" case to a zero window.
func clampEmpty(w Window) Window {
	if w.Profit < 0 {
		w.Profit = 0
		w.Customers = nil
	}
	return w
}
