package angular

import (
	"sort"

	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// Sweep enumerates all candidate windows of one antenna with a rotating
// two-pointer over the customers sorted by angle: across the whole
// enumeration each customer enters and leaves the window once, so building
// every window's member list costs O(total member count) instead of the
// naive O(n) scan per candidate.
//
// General position caveat: a customer strictly less than geom.Eps *behind*
// a window's start angle (and not exactly at it) is treated as outside,
// whereas the tolerant geometric test would include it; such
// configurations only arise from sub-Eps angular gaps, which the
// generators never produce and real inputs cannot meaningfully encode.
type Sweep struct {
	thetas []float64 // sorted angles of in-range customers
	ids    []int     // customer index per sorted position
	rho    float64
}

// NewSweep prepares the sweep for one antenna: customers outside the
// antenna's radial range are dropped here once, rather than per window.
func NewSweep(in *model.Instance, antenna int) *Sweep {
	a := in.Antennas[antenna]
	s := &Sweep{rho: a.Rho}
	for i, c := range in.Customers {
		if a.InRange(c) {
			s.ids = append(s.ids, i)
			s.thetas = append(s.thetas, c.Theta)
		}
	}
	sort.Sort(byTheta{s})
	return s
}

// byTheta sorts ids and thetas together.
type byTheta struct{ s *Sweep }

func (b byTheta) Len() int           { return len(b.s.ids) }
func (b byTheta) Less(i, j int) bool { return b.s.thetas[i] < b.s.thetas[j] }
func (b byTheta) Swap(i, j int) {
	b.s.thetas[i], b.s.thetas[j] = b.s.thetas[j], b.s.thetas[i]
	b.s.ids[i], b.s.ids[j] = b.s.ids[j], b.s.ids[i]
}

// Len returns the number of in-range customers.
func (s *Sweep) Len() int { return len(s.ids) }

// ForEach calls fn for every distinct candidate window (start angle =
// some customer angle, deduplicated within geom.Eps) with the customer
// indices inside [alpha, alpha+rho]. The ids slice is reused between
// calls — callers must copy if they retain it. Returning false stops the
// enumeration early.
func (s *Sweep) ForEach(fn func(alpha float64, ids []int) bool) {
	n := len(s.ids)
	if n == 0 {
		return
	}
	buf := make([]int, 0, n)
	e := 0 // exclusive end pointer in doubled-index space
	for start := 0; start < n; start++ {
		if start > 0 && s.thetas[start]-s.thetas[start-1] <= geom.Eps {
			continue // duplicate candidate angle
		}
		if e < start+1 {
			e = start + 1 // the window always contains its own start
		}
		for e < start+n {
			theta := s.thetas[e%n]
			if geom.AngleDist(s.thetas[start], theta) <= s.rho+geom.Eps {
				e++
			} else {
				break
			}
		}
		buf = buf[:0]
		for k := start; k < e; k++ {
			buf = append(buf, s.ids[k%n])
		}
		if !fn(s.thetas[start], buf) {
			return
		}
	}
}

// windowSets returns every candidate window as (alpha, member ids) pairs
// with the active mask applied; used by BestWindow.
func (s *Sweep) windowSets(active []bool) (alphas []float64, members [][]int) {
	s.ForEach(func(alpha float64, ids []int) bool {
		kept := make([]int, 0, len(ids))
		for _, i := range ids {
			if active == nil || active[i] {
				kept = append(kept, i)
			}
		}
		alphas = append(alphas, alpha)
		members = append(members, kept)
		return true
	})
	return alphas, members
}
