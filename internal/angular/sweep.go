package angular

import (
	"sort"

	"sectorpack/internal/cols"
	"sectorpack/internal/geom"
	"sectorpack/internal/model"
)

// Sweep enumerates all candidate windows of one antenna with a rotating
// two-pointer over the customers sorted by angle: across the whole
// enumeration each customer enters and leaves the window once, so building
// every window's member list costs O(total member count) instead of the
// naive O(n) scan per candidate.
//
// A Sweep depends only on the instance geometry (positions, the antenna's
// radial range and width), not on which customers are currently active or
// where other antennas point, so one Sweep per antenna can be cached for
// the lifetime of a solve — Engine does exactly that. Beyond the sorted
// angles it carries the per-position demands/profits and a profit-density
// order, the raw material of the Dantzig fractional bound used to prune
// candidate windows before their knapsack is solved.
//
// General position caveat: a customer strictly less than geom.Eps *behind*
// a window's start angle (and not exactly at it) is treated as outside,
// whereas the tolerant geometric test would include it; such
// configurations only arise from sub-Eps angular gaps, which the
// generators never produce and real inputs cannot meaningfully encode.
type Sweep struct {
	thetas []float64 // sorted angles of in-range customers
	ids    []int32   // customer index per sorted position
	rho    float64

	weights []int64 // demand per sorted position
	profits []int64 // profit per sorted position
	density []int32 // positions in Dantzig order (profit density descending)

	buf []int // reusable member buffer for ForEach

	markBuf   []int32 // epoch marks for membership tests in dantzigSet
	markEpoch int32
}

// NewSweep prepares the sweep for one antenna through a one-off columnar
// view. Callers building sweeps for several antennas of the same instance
// should share one view (Engine does; see Engine.Prewarm) so the instance
// is sorted once, not per antenna.
func NewSweep(in *model.Instance, antenna int) *Sweep {
	return newSweepFromView(cols.New(in), in.Antennas[antenna])
}

// newSweepFromView gathers the antenna's in-range customers from the
// theta-sorted columnar view: the radial pre-filter selects the eligible
// positions (cols.View.AppendEligible) and the columns are gathered in
// position order, which IS ascending-angle order — no per-antenna sort.
// Angle ties inherit the view's deterministic (theta, customer index)
// order; the previous per-antenna sort agreed with it on every input with
// distinct angles, and on the small tied fixtures in the tests, so sweep
// layouts — and everything downstream — are unchanged.
func newSweepFromView(v *cols.View, a model.Antenna) *Sweep {
	s := &Sweep{rho: a.Rho}
	pos := v.AppendEligible(a, nil)
	k := len(pos)
	s.thetas = make([]float64, k)
	s.ids = make([]int32, k)
	s.weights = make([]int64, k)
	s.profits = make([]int64, k)
	s.density = make([]int32, k)
	for t, p := range pos {
		s.thetas[t] = v.Theta[p]
		s.ids[t] = v.ID[p]
		s.weights[t] = v.Demand[p]
		s.profits[t] = v.Profit[p]
		s.density[t] = int32(t)
	}
	// Dantzig order: profit/weight descending, zero-weight (infinite
	// density) first, ties by higher profit then position — the same
	// comparator as knapsack's byDensity, with an explicit final tie-break
	// so the order (and therefore every computed bound) is deterministic.
	sort.Slice(s.density, func(x, y int) bool {
		a, b := s.density[x], s.density[y]
		wa, wb := s.weights[a], s.weights[b]
		pa, pb := s.profits[a], s.profits[b]
		if wa == 0 || wb == 0 {
			if wa == 0 && wb == 0 {
				if pa != pb {
					return pa > pb
				}
				return a < b
			}
			return wa == 0
		}
		lhs, rhs := pa*wb, pb*wa
		if lhs != rhs {
			return lhs > rhs
		}
		if pa != pb {
			return pa > pb
		}
		return a < b
	})
	return s
}

// Len returns the number of in-range customers.
func (s *Sweep) Len() int { return len(s.ids) }

// forEachRange is the streaming core of the sweep: it calls fn for every
// distinct candidate window as a circular position range — the window's
// members are positions start, start+1, …, start+count−1 (mod Len) in the
// theta-sorted order — without materializing member lists. Start angles are
// deduplicated within geom.Eps, including across the 2π seam: the first
// sorted angle is skipped when it lies within Eps of the last one around
// the circle, which the plain adjacent-difference check used to miss (the
// seam pair would otherwise yield two near-identical candidate windows).
// Returning false stops the enumeration early.
func (s *Sweep) forEachRange(fn func(start, count int, alpha float64) bool) {
	n := len(s.ids)
	if n == 0 {
		return
	}
	e := 0 // exclusive end pointer in doubled-index space
	for start := 0; start < n; start++ {
		if start > 0 && s.thetas[start]-s.thetas[start-1] <= geom.Eps {
			continue // duplicate candidate angle
		}
		if start == 0 && n > 1 && geom.WrapGap(s.thetas[n-1], s.thetas[0]) <= geom.Eps {
			continue // duplicate of the last angle across the 2π seam
		}
		if e < start+1 {
			e = start + 1 // the window always contains its own start
		}
		for e < start+n {
			theta := s.thetas[e%n]
			if geom.AngleDist(s.thetas[start], theta) <= s.rho+geom.Eps {
				e++
			} else {
				break
			}
		}
		if !fn(start, e-start, s.thetas[start]) {
			return
		}
	}
}

// ForEach calls fn for every distinct candidate window (start angle =
// some customer angle, deduplicated within geom.Eps, across the 2π seam
// too) with the customer indices inside [alpha, alpha+rho]. The ids slice
// is reused between calls — callers must copy if they retain it. Returning
// false stops the enumeration early.
func (s *Sweep) ForEach(fn func(alpha float64, ids []int) bool) {
	n := len(s.ids)
	if cap(s.buf) < n {
		s.buf = make([]int, 0, n)
	}
	s.forEachRange(func(start, count int, alpha float64) bool {
		buf := s.buf[:0]
		for k := start; k < start+count; k++ {
			buf = append(buf, int(s.ids[k%n]))
		}
		return fn(alpha, buf)
	})
}

// appendCovered appends to out the sweep positions of customers covered by
// a window starting at alpha, using the same tolerance semantics as
// model.Antenna.Covers (geom.AngleBetween: Eps slack on both boundaries).
// Unlike forEachRange, alpha may be any angle — placed-sector ends, grid
// points — not just a customer angle. Cost is O(log n + window size).
func (s *Sweep) appendCovered(alpha float64, out []int32) []int32 {
	n := len(s.ids)
	if n == 0 {
		return out
	}
	if s.rho >= geom.TwoPi-geom.Eps {
		for p := 0; p < n; p++ {
			out = append(out, int32(p))
		}
		return out
	}
	// The members form one contiguous circular run of sorted positions.
	// Over-approximate the run with a slightly widened arc located by
	// binary search, then filter each position with the exact predicate.
	lo := geom.NormAngle(alpha - 2*geom.Eps)
	span := s.rho + 4*geom.Eps
	idx0 := sort.SearchFloat64s(s.thetas, lo)
	for k := 0; k < n; k++ {
		p := idx0 + k
		if p >= n {
			p -= n
		}
		if geom.AngleDist(lo, s.thetas[p]) > span {
			break
		}
		if geom.AngleBetween(s.thetas[p], alpha, s.rho) {
			out = append(out, int32(p))
		}
	}
	return out
}

// windowSets returns every candidate window as (alpha, member ids) pairs
// with the active mask applied; kept as the reference materialization for
// the pruning-equivalence tests (the Engine streams windows instead).
func (s *Sweep) windowSets(active []bool) (alphas []float64, members [][]int) {
	s.ForEach(func(alpha float64, ids []int) bool {
		kept := make([]int, 0, len(ids))
		for _, i := range ids {
			if active == nil || active[i] {
				kept = append(kept, i)
			}
		}
		alphas = append(alphas, alpha)
		members = append(members, kept)
		return true
	})
	return alphas, members
}
