package angular

import (
	"context"
	"math/rand"
	"testing"

	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/mkp"
	"sectorpack/internal/model"
)

// disjointOracle computes the DisjointAngles optimum for m <= 2 antennas by
// enumerating composite candidate orientations (customer angles plus sums
// of other antennas' widths — the chain discretization) for each antenna,
// keeping interior-disjoint combinations, and solving the restricted MKP
// exactly under the induced eligibility.
func disjointOracle(t *testing.T, in *model.Instance) int64 {
	t.Helper()
	m := in.M()
	if m > 2 {
		t.Fatal("oracle supports m <= 2")
	}
	// Composite candidates per antenna: both the additive family
	// (start-anchored chain tails) and the subtractive family
	// (end-anchored chain heads) — for m ≤ 2 a chain has at most one
	// partner, so single-width offsets suffice.
	cands := make([][]float64, m)
	for j := 0; j < m; j++ {
		seen := map[float64]bool{}
		for _, c := range in.Customers {
			seen[geom.NormAngle(c.Theta)] = true
			seen[geom.NormAngle(c.Theta-in.Antennas[j].Rho)] = true
			for j2 := 0; j2 < m; j2++ {
				if j2 != j {
					seen[geom.NormAngle(c.Theta+in.Antennas[j2].Rho)] = true
					seen[geom.NormAngle(c.Theta-in.Antennas[j].Rho-in.Antennas[j2].Rho)] = true
				}
			}
		}
		for a := range seen {
			cands[j] = append(cands[j], a)
		}
	}
	var best int64
	evaluate := func(alphas []float64) {
		ivs := make([]geom.Interval, m)
		for j := range alphas {
			ivs[j] = geom.NewInterval(alphas[j], in.Antennas[j].Rho)
		}
		if !geom.Disjoint(ivs) {
			return
		}
		p := &mkp.Problem{
			Capacities: make([]int64, m),
			Eligible:   make([][]bool, in.N()),
		}
		for j := 0; j < m; j++ {
			p.Capacities[j] = in.Antennas[j].Capacity
		}
		for i, c := range in.Customers {
			p.Items = append(p.Items, knapsack.Item{Weight: c.Demand, Profit: c.Profit})
			p.Eligible[i] = make([]bool, m)
			for j := 0; j < m; j++ {
				p.Eligible[i][j] = in.Antennas[j].Covers(alphas[j], c)
			}
		}
		res, ok, err := mkp.Exact(p, 1<<40)
		if err != nil || !ok {
			t.Fatalf("oracle MKP: ok=%v err=%v", ok, err)
		}
		if res.Profit > best {
			best = res.Profit
		}
	}
	if m == 1 {
		for _, a0 := range cands[0] {
			evaluate([]float64{a0})
		}
	} else {
		for _, a0 := range cands[0] {
			for _, a1 := range cands[1] {
				evaluate([]float64{a0, a1})
			}
		}
	}
	return best
}

func randDisjointInstance(rng *rand.Rand, n, m int) *model.Instance {
	in := &model.Instance{Variant: model.DisjointAngles}
	for i := 0; i < n; i++ {
		in.Customers = append(in.Customers, model.Customer{
			Theta:  rng.Float64() * geom.TwoPi,
			R:      rng.Float64() * 10,
			Demand: 1 + rng.Int63n(6),
		})
	}
	totalWidth := 0.0
	for j := 0; j < m; j++ {
		maxW := (geom.TwoPi - totalWidth) / float64(m-j) * 0.9
		w := 0.2 + rng.Float64()*(maxW-0.2)
		totalWidth += w
		in.Antennas = append(in.Antennas, model.Antenna{
			Rho:      w,
			Capacity: 3 + rng.Int63n(15),
		})
	}
	return in.Normalize()
}

func TestSolveDisjointSingleAntennaMatchesBestWindow(t *testing.T) {
	// With one antenna, DisjointAngles degenerates to the single best
	// window (no disjointness constraint binds).
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		in := randDisjointInstance(rng, 1+rng.Intn(10), 1)
		sol, err := SolveDisjoint(context.Background(), in, knapsack.Options{})
		if err != nil {
			t.Fatalf("SolveDisjoint: %v", err)
		}
		if err := sol.Assignment.Check(in); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		if got := sol.Assignment.Profit(in); got != sol.Profit {
			t.Fatalf("reported profit %d != assignment profit %d", sol.Profit, got)
		}
		win, err := BestWindow(context.Background(), in, 0, nil, knapsack.Options{})
		if err != nil {
			t.Fatalf("BestWindow: %v", err)
		}
		if sol.Profit != win.Profit {
			t.Fatalf("SolveDisjoint = %d, BestWindow = %d", sol.Profit, win.Profit)
		}
	}
}

func TestSolveDisjointMatchesOracleTwoAntennas(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 45; trial++ {
		in := randDisjointInstance(rng, 2+rng.Intn(7), 2)
		sol, err := SolveDisjoint(context.Background(), in, knapsack.Options{})
		if err != nil {
			t.Fatalf("SolveDisjoint: %v", err)
		}
		if err := sol.Assignment.Check(in); err != nil {
			t.Fatalf("infeasible: %v", err)
		}
		want := disjointOracle(t, in)
		if sol.Profit != want {
			t.Fatalf("SolveDisjoint = %d, oracle = %d (trial %d)", sol.Profit, want, trial)
		}
	}
}

func TestSolveDisjointFlushChainRequired(t *testing.T) {
	// Hand-built instance where the optimum needs a flush chain: two
	// clusters of customers separated by exactly the first antenna's
	// width, so the second sector must start flush at the first's end.
	in := &model.Instance{
		Variant: model.DisjointAngles,
		Customers: []model.Customer{
			{Theta: 0.0, R: 1, Demand: 1, Profit: 10},
			{Theta: 0.9, R: 1, Demand: 1, Profit: 10},
			{Theta: 1.1, R: 1, Demand: 1, Profit: 10},
			{Theta: 1.9, R: 1, Demand: 1, Profit: 10},
		},
		Antennas: []model.Antenna{
			{Rho: 1.0, Capacity: 2},
			{Rho: 1.0, Capacity: 2},
		},
	}
	in.Normalize()
	sol, err := SolveDisjoint(context.Background(), in, knapsack.Options{})
	if err != nil {
		t.Fatalf("SolveDisjoint: %v", err)
	}
	if err := sol.Assignment.Check(in); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	if sol.Profit != 40 {
		t.Fatalf("profit = %d, want 40 (serve everyone via flush chain)", sol.Profit)
	}
}

func TestSolveDisjointRejections(t *testing.T) {
	in := randDisjointInstance(rand.New(rand.NewSource(43)), 3, 1)
	in.Variant = model.Angles
	if _, err := SolveDisjoint(context.Background(), in, knapsack.Options{}); err == nil {
		t.Error("wrong variant must be rejected")
	}
	in.Variant = model.DisjointAngles
	in.Antennas[0].Rho = 0
	if sol, err := SolveDisjoint(context.Background(), in, knapsack.Options{}); err != nil {
		t.Errorf("zero-width antenna must be served as a degenerate ray, got error: %v", err)
	} else if err := sol.Assignment.Check(in); err != nil {
		t.Errorf("ray solution infeasible: %v", err)
	}
	many := &model.Instance{Variant: model.DisjointAngles}
	for j := 0; j <= MaxDisjointAntennas; j++ {
		many.Antennas = append(many.Antennas, model.Antenna{Rho: 0.1, Capacity: 1})
	}
	many.Customers = []model.Customer{{Theta: 1, R: 1, Demand: 1}}
	many.Normalize()
	if _, err := SolveDisjoint(context.Background(), many, knapsack.Options{}); err == nil {
		t.Error("too many antennas must be rejected")
	}
}

func TestSolveDisjointEmpty(t *testing.T) {
	in := (&model.Instance{Variant: model.DisjointAngles}).Normalize()
	sol, err := SolveDisjoint(context.Background(), in, knapsack.Options{})
	if err != nil || sol.Profit != 0 {
		t.Fatalf("empty: profit=%d err=%v", sol.Profit, err)
	}
}

func TestSolveDisjointCapacityBinds(t *testing.T) {
	// One antenna covering everything but capacity for only the best two.
	in := &model.Instance{
		Variant: model.DisjointAngles,
		Customers: []model.Customer{
			{Theta: 0.1, R: 1, Demand: 3, Profit: 5},
			{Theta: 0.2, R: 1, Demand: 3, Profit: 7},
			{Theta: 0.3, R: 1, Demand: 3, Profit: 6},
		},
		Antennas: []model.Antenna{{Rho: 1.0, Capacity: 6}},
	}
	in.Normalize()
	sol, err := SolveDisjoint(context.Background(), in, knapsack.Options{})
	if err != nil {
		t.Fatalf("SolveDisjoint: %v", err)
	}
	if sol.Profit != 13 {
		t.Fatalf("profit = %d, want 13 (7+6)", sol.Profit)
	}
}
