package angular

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// MaxDisjointAntennas bounds the antenna count SolveDisjoint accepts: the
// dynamic program is exponential in m (it tracks the set of antennas
// already placed).
const MaxDisjointAntennas = 6

// startAnchored marks a chain whose head window begins at the anchor
// customer's angle; mode values >= 0 name the head antenna of an
// end-anchored chain (whose head window *ends* at the anchor customer).
const startAnchored = -1

// boundaryNudge shifts end-anchored chain starts forward by a hair so the
// anchor customer falls strictly inside the head's half-open window and
// strictly outside the flush follower's: 2·Eps clears the membership
// tolerance band on both sides.
const boundaryNudge = 2 * geom.Eps

// SolveDisjoint solves the DisjointAngles variant exactly (for instances in
// general position, see below) by a dynamic program over "chains".
//
// Structure theorem [reconstruction]: shift every sector of an optimal
// disjoint solution counterclockwise (decreasing its start angle α) until
// blocked. A sector stops either because decreasing α further would lose a
// covered customer — then its END sits at that customer's angle
// ("end-anchored", α = θ_x − ρ) — or because it hits the end of the
// preceding sector ("flush"). Sectors therefore form chains: maximal flush
// runs whose head is end-anchored at a customer angle. (The mirrored
// clockwise argument yields start-anchored chain tails; the DP enumerates
// end-anchored heads plus, for robustness, plain start-anchored heads.)
//
// The DP cuts the circle at every candidate chain start; in the cut's
// linear domain it scans the sorted chain-start events — (customer angle,
// start-anchored) and (customer angle − antenna width, end-anchored) pairs
// — deciding at each event whether a chain begins there and with which
// ordered antenna set it extends; each placed sector's content is an exact
// knapsack over the customers in its half-open angular window. Scanning by
// chain START (not anchor) keeps the invariant that every placed window
// lies at or after the previous chain's frontier, so windows never overlap
// and no customer is double-counted.
//
// General position: a customer lying exactly at a chain junction (an
// anchor angle plus/minus a sum of antenna widths) is credited to exactly
// one adjacent sector, which can in principle lose optimality in contrived
// ties; random instances never trigger this.
//
// Zero-width antennas (degenerate rays, Rho ≤ geom.Eps) occupy no arc and
// are exempt from disjointness, so they take no part in the chain DP.
// They are served in a per-cut post-pass instead: each ray, in decreasing
// capacity order, is aimed at the exactly-aligned customer angle whose
// knapsack over still-unserved customers is most profitable. The combined
// result is exact when rays and sectors do not compete for the same
// customers (competition needs a customer exactly aligned with a ray, a
// measure-zero coincidence the generators never produce); instances
// without rays keep the DP's full exactness guarantee.
//
// Cancellation: ctx is checked once per cut; a cancelled solve discards
// all partial work and returns ctx.Err().
//
// Complexity: O(n²·m²·3^m·K) where K is the per-window knapsack cost.
func SolveDisjoint(ctx context.Context, in *model.Instance, opt knapsack.Options) (model.Solution, error) {
	if err := in.Validate(); err != nil {
		return model.Solution{}, fmt.Errorf("angular: SolveDisjoint: %w", err)
	}
	if in.Variant != model.DisjointAngles {
		return model.Solution{}, fmt.Errorf("angular: SolveDisjoint requires variant %v, got %v", model.DisjointAngles, in.Variant)
	}
	m := in.M()
	if m > MaxDisjointAntennas {
		return model.Solution{}, fmt.Errorf("angular: SolveDisjoint limited to %d antennas, got %d", MaxDisjointAntennas, m)
	}
	rayMask := 0
	var rays []int // zero-width antennas, excluded from the chain DP
	for j, a := range in.Antennas {
		if a.Rho <= geom.Eps {
			rayMask |= 1 << j
			rays = append(rays, j)
		}
	}
	n := in.N()
	sol := model.Solution{Algorithm: "disjoint-dp", Assignment: model.NewAssignment(n, m)}
	if n == 0 || m == 0 {
		return sol, nil
	}

	// Cut candidates are all possible chain starts.
	cutSet := make([]float64, 0, n*(m+1))
	for _, c := range in.Customers {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		cutSet = append(cutSet, c.Theta)
		for _, a := range in.Antennas {
			if a.Rho <= geom.Eps {
				continue // rays never head a chain
			}
			cutSet = append(cutSet, geom.NormAngle(c.Theta-a.Rho+boundaryNudge))
		}
	}
	sort.Float64s(cutSet)
	cuts := dedupAngles(cutSet)

	best := int64(-1)
	var bestAssign *model.Assignment
	for _, cut := range cuts {
		if err := ctx.Err(); err != nil {
			return model.Solution{}, err
		}
		p, as := solveCut(in, cut, opt, rayMask)
		p += assignRays(in, rays, as)
		if p > best {
			best = p
			bestAssign = as
		}
	}
	if bestAssign != nil {
		sol.Assignment = bestAssign
		sol.Profit = best
	}
	return sol, nil
}

// assignRays serves still-unserved customers with the zero-width antennas:
// each ray, in decreasing capacity order (ties by index), tries every
// distinct unserved-customer angle and keeps the most profitable aligned
// knapsack (ties broken toward the earlier candidate, so the pass is
// deterministic). The assignment is mutated in place; the added profit is
// returned. A ray's empty-interior sector never violates disjointness.
func assignRays(in *model.Instance, rays []int, as *model.Assignment) int64 {
	if len(rays) == 0 {
		return 0
	}
	order := append([]int(nil), rays...)
	sort.SliceStable(order, func(a, b int) bool {
		return in.Antennas[order[a]].Capacity > in.Antennas[order[b]].Capacity
	})
	var added int64
	for _, j := range order {
		ant := in.Antennas[j]
		// Candidate aims: the distinct angles of unserved in-range customers.
		cands := make([]float64, 0, in.N())
		for i, c := range in.Customers {
			if as.Owner[i] == model.Unassigned && ant.InRange(c) {
				cands = append(cands, c.Theta)
			}
		}
		sort.Float64s(cands)
		cands = dedupAngles(cands)
		var bestProfit int64 = -1
		var bestAlpha float64
		var bestTake []int
		for _, alpha := range cands {
			var items []knapsack.Item
			var ids []int
			for i, c := range in.Customers {
				if as.Owner[i] == model.Unassigned && ant.Covers(alpha, c) {
					items = append(items, knapsack.Item{Weight: c.Demand, Profit: c.Profit})
					ids = append(ids, i)
				}
			}
			if len(items) == 0 {
				continue
			}
			res, _, err := knapsack.Solve(items, ant.Capacity, knapsack.Options{})
			if err != nil || res.Profit <= bestProfit {
				continue
			}
			bestProfit = res.Profit
			bestAlpha = alpha
			bestTake = bestTake[:0]
			for k, take := range res.Take {
				if take {
					bestTake = append(bestTake, ids[k])
				}
			}
		}
		if bestProfit > 0 {
			as.Orientation[j] = bestAlpha
			for _, i := range bestTake {
				as.Owner[i] = j
			}
			added += bestProfit
		}
	}
	return added
}

// event is a candidate chain start in cut coordinates.
type event struct {
	start float64
	mode  int // startAnchored or the end-anchored head antenna
}

// cutDP holds the per-cut state of the chain dynamic program.
type cutDP struct {
	in  *model.Instance
	opt knapsack.Options
	cut float64

	d      []float64 // d[i] = clockwise distance from the cut to customer i
	events []event   // chain-start candidates sorted by start
	m      int

	// g memo over (eventIdx, used).
	gVal  []int64
	gSeen []bool

	// window value cache: key = (eventIdx, chainMask, antenna).
	winCache map[winKey]winVal
}

type winKey struct {
	event int
	chain int
	ant   int
}

type winVal struct {
	profit int64
	take   []int // customer indices served
}

// solveCut runs the chain DP for one cut and reconstructs the assignment.
// Antennas in rayMask (zero-width rays) are treated as pre-consumed: they
// never join a chain and are served by the assignRays post-pass instead.
func solveCut(in *model.Instance, cut float64, opt knapsack.Options, rayMask int) (int64, *model.Assignment) {
	n, m := in.N(), in.M()
	dp := &cutDP{in: in, opt: opt, cut: cut, m: m, winCache: make(map[winKey]winVal)}
	dp.d = make([]float64, n)
	for i, c := range in.Customers {
		dp.d[i] = geom.AngleDist(cut, c.Theta)
	}
	for i := range in.Customers {
		dp.events = append(dp.events, event{start: dp.d[i], mode: startAnchored})
		for h := 0; h < m; h++ {
			if rayMask&(1<<h) != 0 {
				continue
			}
			cs := dp.d[i] - in.Antennas[h].Rho + boundaryNudge
			if cs >= -geom.Eps {
				if cs < 0 {
					cs = 0
				}
				dp.events = append(dp.events, event{start: cs, mode: h})
			}
		}
	}
	sort.Slice(dp.events, func(a, b int) bool {
		//sectorlint:ignore floateq sort tie-break wants exact start order; dedupEvents collapses Eps-close starts afterwards
		if dp.events[a].start != dp.events[b].start {
			return dp.events[a].start < dp.events[b].start
		}
		return dp.events[a].mode < dp.events[b].mode
	})
	dp.events = dedupEvents(dp.events)

	nState := (len(dp.events) + 1) * (1 << m)
	dp.gVal = make([]int64, nState)
	dp.gSeen = make([]bool, nState)

	total := dp.g(0, rayMask)

	as := model.NewAssignment(n, m)
	dp.reconstruct(0, rayMask, as)
	return total, as
}

// dedupEvents removes (start, mode) duplicates within Eps of each other.
func dedupEvents(evs []event) []event {
	if len(evs) == 0 {
		return evs
	}
	out := evs[:1]
	for _, e := range evs[1:] {
		last := out[len(out)-1]
		if e.mode == last.mode && e.start-last.start <= geom.Eps {
			continue
		}
		out = append(out, e)
	}
	return out
}

// g is the event-scan value function: best profit obtainable from events
// eIdx onward with the antenna set `used` already consumed, given that the
// previous frontier lies at or before events[eIdx].start.
func (dp *cutDP) g(eIdx, used int) int64 {
	if eIdx >= len(dp.events) {
		return 0
	}
	key := eIdx*(1<<dp.m) + used
	if dp.gSeen[key] {
		return dp.gVal[key]
	}
	// Option 1: no chain starts at this event.
	best := dp.g(eIdx+1, used)
	// Option 2: start a chain here (the event's mode constrains the head).
	ev := dp.events[eIdx]
	if ev.mode == startAnchored || used&(1<<ev.mode) == 0 {
		if v := dp.chain(eIdx, 0, used); v > best {
			best = v
		}
	}
	dp.gSeen[key] = true
	dp.gVal[key] = best
	return best
}

// chain explores extensions of the chain rooted at events[eIdx] with
// chainMask already placed (frontier = event start + width sum); used is
// the global consumed set. It returns the best profit from the frontier
// onward, including the option of ending the chain.
func (dp *cutDP) chain(eIdx, chainMask, used int) int64 {
	ev := dp.events[eIdx]
	frontier := ev.start + dp.width(chainMask)
	// Ending the chain resumes the event scan at the first event at or
	// after the frontier. An empty chain may not "end" — that would
	// re-enter g at the same event (g's skip option covers it); it must
	// place at least one antenna to count as a chain.
	best := int64(math.MinInt64 / 4)
	if chainMask != 0 {
		best = dp.g(dp.nextEvent(frontier), used)
	}
	for j := 0; j < dp.m; j++ {
		if used&(1<<j) != 0 {
			continue
		}
		// An end-anchored chain's first window must belong to the head
		// antenna — the anchor sits at ITS end.
		if chainMask == 0 && ev.mode != startAnchored && j != ev.mode {
			continue
		}
		end := frontier + dp.in.Antennas[j].Rho
		if end > geom.TwoPi+geom.Eps {
			continue // would wrap past the cut
		}
		wv := dp.window(eIdx, chainMask, j)
		if v := wv.profit + dp.chain(eIdx, chainMask|1<<j, used|1<<j); v > best {
			best = v
		}
	}
	return best
}

// width sums the angular widths of the antennas in mask.
func (dp *cutDP) width(mask int) float64 {
	var w float64
	for j := 0; j < dp.m; j++ {
		if mask&(1<<j) != 0 {
			w += dp.in.Antennas[j].Rho
		}
	}
	return w
}

// nextEvent returns the first event index with start >= x - Eps.
func (dp *cutDP) nextEvent(x float64) int {
	return sort.Search(len(dp.events), func(k int) bool {
		return dp.events[k].start >= x-geom.Eps
	})
}

// window computes (with caching) the exact knapsack over the customers in
// the half-open window [start, start+ρ_j) where start = event start +
// width of the chain so far. The half-open end credits junction customers
// to the later flush sector, keeping windows within a chain disjoint; the
// boundaryNudge on end-anchored events places the anchor customer strictly
// inside its head window.
func (dp *cutDP) window(eIdx, chainMask, j int) winVal {
	key := winKey{event: eIdx, chain: chainMask, ant: j}
	if v, ok := dp.winCache[key]; ok {
		return v
	}
	start := dp.events[eIdx].start + dp.width(chainMask)
	end := start + dp.in.Antennas[j].Rho
	var items []knapsack.Item
	var ids []int
	ant := dp.in.Antennas[j]
	for i := range dp.in.Customers {
		if !ant.InRange(dp.in.Customers[i]) {
			continue // annulus-sector exclusion (MinRange)
		}
		di := dp.d[i]
		if di >= start-geom.Eps && di < end-geom.Eps {
			items = append(items, knapsack.Item{
				Weight: dp.in.Customers[i].Demand,
				Profit: dp.in.Customers[i].Profit,
			})
			ids = append(ids, i)
		}
	}
	v := winVal{}
	if len(items) > 0 {
		res, _, err := knapsack.Solve(items, dp.in.Antennas[j].Capacity, dp.opt)
		if err == nil {
			v.profit = res.Profit
			for k, take := range res.Take {
				if take {
					v.take = append(v.take, ids[k])
				}
			}
		}
	}
	dp.winCache[key] = v
	return v
}

// reconstruct replays the argmax decisions of g/chain into the assignment.
func (dp *cutDP) reconstruct(eIdx, used int, as *model.Assignment) {
	for eIdx < len(dp.events) {
		target := dp.g(eIdx, used)
		if dp.g(eIdx+1, used) == target {
			eIdx++
			continue
		}
		ev := dp.events[eIdx]
		// Replay the chain rooted at this event.
		chainMask := 0
		for {
			frontier := ev.start + dp.width(chainMask)
			target = dp.chain(eIdx, chainMask, used)
			if chainMask != 0 && dp.g(dp.nextEvent(frontier), used) == target {
				// Chain ends; resume the scan.
				eIdx = dp.nextEvent(frontier)
				break
			}
			placed := false
			for j := 0; j < dp.m; j++ {
				if used&(1<<j) != 0 {
					continue
				}
				if chainMask == 0 && ev.mode != startAnchored && j != ev.mode {
					continue
				}
				end := frontier + dp.in.Antennas[j].Rho
				if end > geom.TwoPi+geom.Eps {
					continue
				}
				wv := dp.window(eIdx, chainMask, j)
				if wv.profit+dp.chain(eIdx, chainMask|1<<j, used|1<<j) == target {
					as.Orientation[j] = geom.NormAngle(dp.cut + frontier)
					for _, i := range wv.take {
						as.Owner[i] = j
					}
					chainMask |= 1 << j
					used |= 1 << j
					placed = true
					break
				}
			}
			if !placed {
				// Numerical tie fell through; end the chain defensively.
				eIdx = dp.nextEvent(frontier)
				break
			}
		}
	}
	// Idle antennas keep orientation 0 and serve nobody; the feasibility
	// checker exempts them from disjointness.
}
