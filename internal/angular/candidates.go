// Package angular implements the angular-combinatorics core of sector
// packing: candidate-orientation enumeration, best-single-window search,
// and an exact dynamic program for the disjoint-sectors variant.
//
// Everything rests on the candidate-orientation lemma: rotating a sector
// clockwise (increasing its start angle α) never loses a covered customer
// until α passes some covered customer's angle, so there is always an
// optimal solution in which every sector's start angle coincides with a
// customer angle — except in the disjoint variant, where a sector may
// instead be packed flush against its predecessor, forming "chains"
// anchored at a customer angle (see SolveDisjoint).
package angular

import (
	"sort"

	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// Candidates returns the candidate start angles for the given antenna:
// the angles of all customers radially within reach, deduplicated and
// sorted ascending. By the candidate-orientation lemma these suffice for
// optimality in the Sectors and Angles variants.
func Candidates(in *model.Instance, antenna int) []float64 {
	a := in.Antennas[antenna]
	out := make([]float64, 0, in.N())
	for _, c := range in.Customers {
		if a.InRange(c) {
			out = append(out, c.Theta)
		}
	}
	sort.Float64s(out)
	return dedupAngles(out)
}

// dedupAngles removes duplicates (within geom.Eps) from a sorted slice.
func dedupAngles(sorted []float64) []float64 {
	if len(sorted) == 0 {
		return sorted
	}
	out := sorted[:1]
	for _, a := range sorted[1:] {
		if a-out[len(out)-1] > geom.Eps {
			out = append(out, a)
		}
	}
	return out
}

// Covered returns the indices of customers covered by the antenna when
// oriented at alpha, skipping customers for which active[i] is false
// (active == nil means all customers are active).
func Covered(in *model.Instance, antenna int, alpha float64, active []bool) []int {
	a := in.Antennas[antenna]
	var out []int
	for i, c := range in.Customers {
		if active != nil && !active[i] {
			continue
		}
		if a.Covers(alpha, c) {
			out = append(out, i)
		}
	}
	return out
}

// WindowItems converts the covered customers of an oriented antenna into
// knapsack items, returning the items and the parallel customer indices.
func WindowItems(in *model.Instance, antenna int, alpha float64, active []bool) ([]knapsack.Item, []int) {
	ids := Covered(in, antenna, alpha, active)
	items := make([]knapsack.Item, len(ids))
	for k, i := range ids {
		items[k] = knapsack.Item{Weight: in.Customers[i].Demand, Profit: in.Customers[i].Profit}
	}
	return items, ids
}
