// Package angular implements the angular-combinatorics core of sector
// packing: candidate-orientation enumeration, best-single-window search,
// and an exact dynamic program for the disjoint-sectors variant.
//
// Everything rests on the candidate-orientation lemma: rotating a sector
// clockwise (increasing its start angle α) never loses a covered customer
// until α passes some covered customer's angle, so there is always an
// optimal solution in which every sector's start angle coincides with a
// customer angle — except in the disjoint variant, where a sector may
// instead be packed flush against its predecessor, forming "chains"
// anchored at a customer angle (see SolveDisjoint).
package angular

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"sectorpack/internal/cols"
	"sectorpack/internal/geom"
	"sectorpack/internal/knapsack"
	"sectorpack/internal/model"
)

// Candidates returns the candidate start angles for the given antenna:
// the angles of all customers radially within reach, deduplicated and
// sorted ascending. By the candidate-orientation lemma these suffice for
// optimality in the Sectors and Angles variants.
func Candidates(in *model.Instance, antenna int) []float64 {
	a := in.Antennas[antenna]
	out := make([]float64, 0, in.N())
	for _, c := range in.Customers {
		if a.InRange(c) {
			out = append(out, c.Theta)
		}
	}
	sort.Float64s(out)
	return dedupAngles(out)
}

// CandidatesAll returns Candidates for every antenna at once, over one
// shared columnar view: the instance is sorted once (not scanned and
// sorted per antenna), each antenna's angles are gathered through the
// radial pre-filter, and on large instances the per-antenna work fans out
// across Workers() goroutines. The merge is deterministic — antenna j's
// slice lands at index j and is a pure function of the view — so the
// output is identical to calling Candidates(in, j) for each j, on either
// the scalar or the parallel path.
//
// Cancellation: ctx is consulted once per antenna on the scalar path and
// once per claimed antenna by each worker on the parallel path; a
// cancelled call returns ctx.Err() and no slices.
func CandidatesAll(ctx context.Context, in *model.Instance) ([][]float64, error) {
	m := len(in.Antennas)
	out := make([][]float64, m)
	if m == 0 {
		return out, ctx.Err()
	}
	v := cols.New(in)
	build := func(j int, pos []int32) []int32 {
		pos = v.AppendEligible(in.Antennas[j], pos[:0])
		angles := make([]float64, len(pos))
		for t, p := range pos {
			angles[t] = v.Theta[p] // ascending: positions are theta-sorted
		}
		out[j] = dedupAngles(angles)
		return pos
	}
	workers := Workers()
	if workers > m {
		workers = m
	}
	if workers <= 1 || v.Len()*m < prewarmParallelMin {
		var pos []int32
		for j := 0; j < m; j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pos = build(j, pos)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pos []int32
			for {
				if ctx.Err() != nil {
					return // consult ctx once per claimed antenna
				}
				j := int(next.Add(1)) - 1
				if j >= m {
					return
				}
				pos = build(j, pos)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// dedupAngles removes duplicates (within geom.Eps) from a sorted slice.
func dedupAngles(sorted []float64) []float64 {
	if len(sorted) == 0 {
		return sorted
	}
	out := sorted[:1]
	for _, a := range sorted[1:] {
		if a-out[len(out)-1] > geom.Eps {
			out = append(out, a)
		}
	}
	return out
}

// Covered returns the indices of customers covered by the antenna when
// oriented at alpha, skipping customers for which active[i] is false
// (active == nil means all customers are active).
func Covered(in *model.Instance, antenna int, alpha float64, active []bool) []int {
	a := in.Antennas[antenna]
	var out []int
	for i, c := range in.Customers {
		if active != nil && !active[i] {
			continue
		}
		if a.Covers(alpha, c) {
			out = append(out, i)
		}
	}
	return out
}

// WindowItems converts the covered customers of an oriented antenna into
// knapsack items, returning the items and the parallel customer indices.
func WindowItems(in *model.Instance, antenna int, alpha float64, active []bool) ([]knapsack.Item, []int) {
	ids := Covered(in, antenna, alpha, active)
	items := make([]knapsack.Item, len(ids))
	for k, i := range ids {
		items[k] = knapsack.Item{Weight: in.Customers[i].Demand, Profit: in.Customers[i].Profit}
	}
	return items, ids
}
