package knapsack

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxMeetInMiddle is the largest item count MeetInMiddle accepts; 2^(n/2)
// subsets per half stays comfortably in memory up to n = 40.
const MaxMeetInMiddle = 40

// MeetInMiddle solves 0/1 knapsack exactly in O(2^{n/2}·n) by enumerating
// both halves, Pareto-pruning one, and binary-searching the combination.
// It exists as an algorithmically independent oracle for cross-checking
// the DPs and BranchBound in tests, and handles n ≤ MaxMeetInMiddle.
func MeetInMiddle(items []Item, capacity int64) (Result, error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	if n > MaxMeetInMiddle {
		return Result{}, fmt.Errorf("knapsack: MeetInMiddle limited to %d items, got %d", MaxMeetInMiddle, n)
	}
	half := n / 2
	left, right := items[:half], items[half:]

	type subset struct {
		weight int64
		profit int64
		mask   uint64
	}
	enumerate := func(part []Item) []subset {
		m := len(part)
		out := make([]subset, 0, 1<<m)
		for mask := uint64(0); mask < 1<<m; mask++ {
			var w, p int64
			rem := mask
			for rem != 0 {
				i := bits.TrailingZeros64(rem)
				rem &= rem - 1
				w += part[i].Weight
				p += part[i].Profit
			}
			if w <= capacity {
				out = append(out, subset{weight: w, profit: p, mask: mask})
			}
		}
		return out
	}

	ls := enumerate(left)
	rs := enumerate(right)
	// Pareto-prune the right half: sort by weight, keep only entries whose
	// profit strictly improves on all lighter ones.
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].weight != rs[b].weight {
			return rs[a].weight < rs[b].weight
		}
		return rs[a].profit > rs[b].profit
	})
	pruned := rs[:0]
	var bestProfit int64 = -1
	for _, s := range rs {
		if s.profit > bestProfit {
			pruned = append(pruned, s)
			bestProfit = s.profit
		}
	}
	rs = pruned

	var best subset
	var bestRight subset
	var bestTotal int64 = -1
	for _, l := range ls {
		rem := capacity - l.weight
		// binary search: last pruned entry with weight <= rem
		lo, hi := 0, len(rs)-1
		pos := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			if rs[mid].weight <= rem {
				pos = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if pos < 0 {
			continue
		}
		if total := l.profit + rs[pos].profit; total > bestTotal {
			bestTotal = total
			best = l
			bestRight = rs[pos]
		}
	}
	res := Result{Profit: bestTotal, Take: make([]bool, n)}
	if bestTotal < 0 {
		res.Profit = 0
		return res, nil
	}
	for i := 0; i < half; i++ {
		if best.mask&(1<<uint(i)) != 0 {
			res.Take[i] = true
		}
	}
	for i := 0; i < n-half; i++ {
		if bestRight.mask&(1<<uint(i)) != 0 {
			res.Take[half+i] = true
		}
	}
	return res, nil
}
