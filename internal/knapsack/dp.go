package knapsack

import (
	"fmt"
	"sync"
)

// MaxDPCells bounds the table size (rows × columns) a DP solver will
// accept; beyond it the solver refuses and callers should fall back to
// BranchBound or the FPTAS. The rolling-row implementation below no longer
// materializes the full value table — memory is one row plus one decision
// BIT per cell (64× less than the former int64 table) — but the guard is
// kept at the historical threshold so the Solve dispatcher selects exactly
// the same method per input as it always has.
const MaxDPCells = 1 << 28

// dpScratch is the reusable workspace of the rolling-row DPs: one value row
// and a packed decision bitset (one bit per item×capacity or item×profit
// cell, recording whether taking the item improved that cell). Pooling it
// makes steady-state solver loops — greedy evaluates thousands of candidate
// windows per solve — allocate nothing beyond the returned Take slice.
type dpScratch struct {
	row  []int64
	bits []uint64
}

var dpPool = sync.Pool{New: func() any { return new(dpScratch) }}

// grow sizes the workspace for a rowLen-value row and bitCount decision
// bits, zeroing the bits (the row is initialized by each DP's own fill).
func (s *dpScratch) grow(rowLen, bitCount int) (row []int64, bits []uint64) {
	if cap(s.row) < rowLen {
		s.row = make([]int64, rowLen)
	}
	words := (bitCount + 63) / 64
	if cap(s.bits) < words {
		s.bits = make([]uint64, words)
	}
	s.row, s.bits = s.row[:rowLen], s.bits[:words]
	clear(s.bits)
	return s.row, s.bits
}

// DPByWeight solves 0/1 knapsack exactly by the textbook weight-indexed
// dynamic program in O(n·C) time. Memory is a single rolling row plus a
// packed decision bitset used to reconstruct the chosen subset; both come
// from a sync.Pool, so repeated calls allocate only the Take slice. It
// returns an error when the (virtual) table would exceed MaxDPCells.
func DPByWeight(items []Item, capacity int64) (Result, error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	if int64(n+1)*(capacity+1) > MaxDPCells {
		return Result{}, fmt.Errorf("knapsack: DPByWeight table %d×%d exceeds budget", n+1, capacity+1)
	}
	w := int(capacity)
	sc := dpPool.Get().(*dpScratch)
	defer dpPool.Put(sc)
	row, bits := sc.grow(w+1, n*(w+1))
	clear(row)
	// row[c] = best profit within capacity c using the items seen so far.
	// Iterating c downward makes the in-place update read previous-item
	// values only; bit (i-1)·(w+1)+c records that taking item i improved
	// cell c — exactly the dp[i][c] != dp[i-1][c] condition the full-table
	// reconstruction used, so the chosen subset is bit-identical.
	for i := 1; i <= n; i++ {
		it := items[i-1]
		if it.Weight > int64(w) {
			continue
		}
		wi := int(it.Weight)
		base := (i - 1) * (w + 1)
		for c := w; c >= wi; c-- {
			if cand := row[c-wi] + it.Profit; cand > row[c] {
				row[c] = cand
				pos := base + c
				bits[pos>>6] |= 1 << uint(pos&63)
			}
		}
	}
	res := Result{Profit: row[w], Take: make([]bool, n)}
	c := w
	for i := n; i >= 1; i-- {
		pos := (i-1)*(w+1) + c
		if bits[pos>>6]&(1<<uint(pos&63)) != 0 {
			res.Take[i-1] = true
			c -= int(items[i-1].Weight)
		}
	}
	return res, nil
}

// DPByProfit solves 0/1 knapsack exactly by the profit-indexed dynamic
// program: row[p] is the least weight achieving profit exactly p. Runs in
// O(n·P) where P is the total profit; it is the engine behind the FPTAS.
// Like DPByWeight it keeps one rolling row plus a pooled decision bitset.
// Returns an error when the (virtual) table would exceed MaxDPCells.
func DPByProfit(items []Item, capacity int64) (Result, error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	P := totalProfit(items)
	if int64(n+1)*(P+1) > MaxDPCells {
		return Result{}, fmt.Errorf("knapsack: DPByProfit table %d×%d exceeds budget", n+1, P+1)
	}
	const inf = int64(1) << 62
	sc := dpPool.Get().(*dpScratch)
	defer dpPool.Put(sc)
	row, bits := sc.grow(int(P+1), n*int(P+1))
	for p := range row {
		row[p] = inf
	}
	row[0] = 0
	// Iterating p downward keeps row[p-profit] at its previous-item value;
	// a zero-profit item can never strictly lower row[p] (weights are
	// non-negative), matching the full-table transition, so it is skipped.
	for i := 1; i <= n; i++ {
		it := items[i-1]
		if it.Profit == 0 {
			continue
		}
		base := (i - 1) * int(P+1)
		for p := P; p >= it.Profit; p-- {
			if prev := row[p-it.Profit]; prev < inf {
				if cand := prev + it.Weight; cand < row[p] {
					row[p] = cand
					pos := base + int(p)
					bits[pos>>6] |= 1 << uint(pos&63)
				}
			}
		}
	}
	var bestP int64
	for p := P; p >= 0; p-- {
		if row[p] <= capacity {
			bestP = p
			break
		}
	}
	res := Result{Profit: bestP, Take: make([]bool, n)}
	p := bestP
	for i := n; i >= 1; i-- {
		pos := (i-1)*int(P+1) + int(p)
		if bits[pos>>6]&(1<<uint(pos&63)) != 0 {
			res.Take[i-1] = true
			p -= items[i-1].Profit
		}
	}
	return res, nil
}

// scaledPool recycles the FPTAS's scaled-item slice.
var scaledPool = sync.Pool{New: func() any { return new([]Item) }}

// FPTAS returns a (1−eps)-approximate solution by scaling profits down to
// make the profit-indexed DP polynomial: classical Ibarra–Kim. eps must lie
// in (0, 1). The returned Result reports the true (unscaled) profit of the
// chosen subset.
func FPTAS(items []Item, capacity int64, eps float64) (Result, error) {
	if eps <= 0 || eps >= 1 {
		return Result{}, fmt.Errorf("knapsack: FPTAS eps %v outside (0,1)", eps)
	}
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	if n == 0 {
		return Result{Take: []bool{}}, nil
	}
	var pmax int64
	for _, it := range items {
		if it.Weight <= capacity && it.Profit > pmax {
			pmax = it.Profit
		}
	}
	if pmax == 0 {
		// Nothing profitable fits individually; the optimum is 0 profit.
		return Result{Take: make([]bool, n)}, nil
	}
	k := eps * float64(pmax) / float64(n)
	if k < 1 {
		k = 1 // profits already small: the DP below is exact
	}
	sp := scaledPool.Get().(*[]Item)
	defer scaledPool.Put(sp)
	if cap(*sp) < n {
		*sp = make([]Item, n)
	}
	scaled := (*sp)[:n]
	for i, it := range items {
		scaled[i] = Item{Weight: it.Weight, Profit: int64(float64(it.Profit) / k)}
		if it.Weight > capacity {
			// Unusable item: zero it out so it cannot inflate the table.
			scaled[i] = Item{Weight: capacity + 1, Profit: 0}
		}
	}
	res, err := DPByProfit(scaled, capacity)
	if err != nil {
		return Result{}, fmt.Errorf("knapsack: FPTAS inner DP: %w", err)
	}
	// Re-price the chosen subset with true profits.
	var trueProfit int64
	for i, t := range res.Take {
		if t {
			trueProfit += items[i].Profit
		}
	}
	return Result{Profit: trueProfit, Take: res.Take}, nil
}
