package knapsack

import "fmt"

// MaxDPCells bounds the table size (rows × columns) a DP solver will
// allocate; beyond it the solver refuses and callers should fall back to
// BranchBound or the FPTAS. At 8 bytes per cell this caps a table at ~2 GB
// in the worst case, but in practice the experiments stay far below it.
const MaxDPCells = 1 << 28

// DPByWeight solves 0/1 knapsack exactly by the textbook weight-indexed
// dynamic program in O(n·C) time and memory (the full table is kept to
// reconstruct the chosen subset). It returns an error when the table would
// exceed MaxDPCells.
func DPByWeight(items []Item, capacity int64) (Result, error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	if int64(n+1)*(capacity+1) > MaxDPCells {
		return Result{}, fmt.Errorf("knapsack: DPByWeight table %d×%d exceeds budget", n+1, capacity+1)
	}
	w := int(capacity)
	// dp[i][c] = best profit using items[:i] within capacity c.
	dp := make([][]int64, n+1)
	for i := range dp {
		dp[i] = make([]int64, w+1)
	}
	for i := 1; i <= n; i++ {
		it := items[i-1]
		prev, cur := dp[i-1], dp[i]
		for c := 0; c <= w; c++ {
			best := prev[c]
			if it.Weight <= int64(c) {
				if cand := prev[c-int(it.Weight)] + it.Profit; cand > best {
					best = cand
				}
			}
			cur[c] = best
		}
	}
	res := Result{Profit: dp[n][w], Take: make([]bool, n)}
	c := w
	for i := n; i >= 1; i-- {
		if dp[i][c] != dp[i-1][c] {
			res.Take[i-1] = true
			c -= int(items[i-1].Weight)
		}
	}
	return res, nil
}

// DPByProfit solves 0/1 knapsack exactly by the profit-indexed dynamic
// program: minWeight[p] is the least weight achieving profit exactly p.
// Runs in O(n·P) where P is the total profit; it is the engine behind the
// FPTAS. Returns an error when the table would exceed MaxDPCells.
func DPByProfit(items []Item, capacity int64) (Result, error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	P := totalProfit(items)
	if int64(n+1)*(P+1) > MaxDPCells {
		return Result{}, fmt.Errorf("knapsack: DPByProfit table %d×%d exceeds budget", n+1, P+1)
	}
	const inf = int64(1) << 62
	// minw[i][p] = least weight achieving profit exactly p with items[:i].
	minw := make([][]int64, n+1)
	for i := range minw {
		minw[i] = make([]int64, P+1)
		for p := range minw[i] {
			minw[i][p] = inf
		}
		minw[i][0] = 0
	}
	for i := 1; i <= n; i++ {
		it := items[i-1]
		prev, cur := minw[i-1], minw[i]
		for p := int64(0); p <= P; p++ {
			best := prev[p]
			if it.Profit <= p && prev[p-it.Profit] < inf {
				if cand := prev[p-it.Profit] + it.Weight; cand < best {
					best = cand
				}
			}
			cur[p] = best
		}
	}
	var bestP int64
	for p := P; p >= 0; p-- {
		if minw[n][p] <= capacity {
			bestP = p
			break
		}
	}
	res := Result{Profit: bestP, Take: make([]bool, n)}
	p := bestP
	for i := n; i >= 1; i-- {
		if minw[i][p] != minw[i-1][p] {
			res.Take[i-1] = true
			p -= items[i-1].Profit
		}
	}
	return res, nil
}

// FPTAS returns a (1−eps)-approximate solution by scaling profits down to
// make the profit-indexed DP polynomial: classical Ibarra–Kim. eps must lie
// in (0, 1). The returned Result reports the true (unscaled) profit of the
// chosen subset.
func FPTAS(items []Item, capacity int64, eps float64) (Result, error) {
	if eps <= 0 || eps >= 1 {
		return Result{}, fmt.Errorf("knapsack: FPTAS eps %v outside (0,1)", eps)
	}
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	if n == 0 {
		return Result{Take: []bool{}}, nil
	}
	var pmax int64
	for _, it := range items {
		if it.Weight <= capacity && it.Profit > pmax {
			pmax = it.Profit
		}
	}
	if pmax == 0 {
		// Nothing profitable fits individually; the optimum is 0 profit.
		return Result{Take: make([]bool, n)}, nil
	}
	k := eps * float64(pmax) / float64(n)
	if k < 1 {
		k = 1 // profits already small: the DP below is exact
	}
	scaled := make([]Item, n)
	for i, it := range items {
		scaled[i] = Item{Weight: it.Weight, Profit: int64(float64(it.Profit) / k)}
		if it.Weight > capacity {
			// Unusable item: zero it out so it cannot inflate the table.
			scaled[i] = Item{Weight: capacity + 1, Profit: 0}
		}
	}
	res, err := DPByProfit(scaled, capacity)
	if err != nil {
		return Result{}, fmt.Errorf("knapsack: FPTAS inner DP: %w", err)
	}
	// Re-price the chosen subset with true profits.
	var trueProfit int64
	for i, t := range res.Take {
		if t {
			trueProfit += items[i].Profit
		}
	}
	return Result{Profit: trueProfit, Take: res.Take}, nil
}
