package knapsack

// Greedy is the classical density greedy with the best-single-item
// fallback: fill by profit/weight density, then return the better of the
// greedy fill and the single most profitable item that fits. This is a
// 1/2-approximation (the two candidates together dominate the fractional
// optimum) and runs in O(n log n).
func Greedy(items []Item, capacity int64) (Result, error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, err
	}
	n := len(items)
	fill := Result{Take: make([]bool, n)}
	remaining := capacity
	for _, i := range byDensity(items) {
		if items[i].Weight <= remaining {
			fill.Take[i] = true
			fill.Profit += items[i].Profit
			remaining -= items[i].Weight
		}
	}
	// best single item that fits
	bestIdx, bestProfit := -1, int64(-1)
	for i, it := range items {
		if it.Weight <= capacity && it.Profit > bestProfit {
			bestIdx, bestProfit = i, it.Profit
		}
	}
	if bestIdx >= 0 && bestProfit > fill.Profit {
		single := Result{Profit: bestProfit, Take: make([]bool, n)}
		single.Take[bestIdx] = true
		return single, nil
	}
	return fill, nil
}

// FractionalBound returns the Dantzig LP relaxation optimum: fill by
// density and take the breaking item fractionally. It upper-bounds the
// integral optimum and is the bounding function of BranchBound.
func FractionalBound(items []Item, capacity int64) float64 {
	var bound float64
	remaining := capacity
	for _, i := range byDensity(items) {
		it := items[i]
		if it.Weight == 0 {
			bound += float64(it.Profit)
			continue
		}
		if it.Weight <= remaining {
			bound += float64(it.Profit)
			remaining -= it.Weight
		} else {
			bound += float64(it.Profit) * float64(remaining) / float64(it.Weight)
			break
		}
	}
	return bound
}
