package knapsack

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchItems(n int) ([]Item, int64) {
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, n)
	var total int64
	for i := range items {
		w := 1 + rng.Int63n(10)
		items[i] = Item{Weight: w, Profit: 1 + rng.Int63n(20)}
		total += w
	}
	return items, total / 2
}

// BenchmarkKnapsackDP measures the rolling-row DP kernels; both should run
// allocation-free apart from the returned Take slice.
func BenchmarkKnapsackDP(b *testing.B) {
	for _, n := range []int{50, 200} {
		items, capacity := benchItems(n)
		b.Run(fmt.Sprintf("byWeight/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DPByWeight(items, capacity); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("byProfit/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DPByProfit(items, capacity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFPTAS covers the scaled path the approximation pipeline uses.
func BenchmarkFPTAS(b *testing.B) {
	items, capacity := benchItems(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FPTAS(items, capacity, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
