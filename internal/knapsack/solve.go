package knapsack

// Options tunes the Solve dispatcher.
type Options struct {
	// Eps is the FPTAS approximation parameter used when no exact method
	// is affordable. Zero means DefaultEps.
	Eps float64
	// MaxBBNodes caps the branch-and-bound search. Zero means
	// DefaultMaxBBNodes.
	MaxBBNodes int64
	// ForceApprox skips exact methods entirely (used by experiments that
	// measure the approximation pipeline in isolation).
	ForceApprox bool
}

// DefaultEps is the dispatcher's FPTAS parameter when none is given.
const DefaultEps = 0.05

// DefaultMaxBBNodes is the dispatcher's branch-and-bound node budget.
const DefaultMaxBBNodes = 2_000_000

// Solve picks a solver automatically: the weight DP when the capacity is
// small, otherwise branch and bound within a node budget, otherwise the
// FPTAS. The second return reports whether the result is certifiably
// optimal.
func Solve(items []Item, capacity int64, opt Options) (Result, bool, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	maxNodes := opt.MaxBBNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxBBNodes
	}
	n := len(items)
	if n == 0 {
		return Result{Take: []bool{}}, true, nil
	}
	if !opt.ForceApprox {
		if int64(n+1)*(capacity+1) <= MaxDPCells/16 {
			res, err := DPByWeight(items, capacity)
			if err == nil {
				return res, true, nil
			}
		}
		res, ok, err := BranchBound(items, capacity, maxNodes)
		if err != nil {
			return Result{}, false, err
		}
		if ok {
			return res, true, nil
		}
		// Budget exhausted: keep the incumbent if the FPTAS cannot beat it.
		approx, err := FPTAS(items, capacity, eps)
		if err != nil {
			return Result{}, false, err
		}
		if res.Profit >= approx.Profit {
			return res, false, nil
		}
		return approx, false, nil
	}
	res, err := FPTAS(items, capacity, eps)
	return res, false, err
}
