package knapsack

// BranchBound solves 0/1 knapsack exactly by depth-first search over items
// in density order, pruning with the Dantzig fractional bound. Memory is
// O(n); time is worst-case exponential but the bound makes it fast on the
// correlated instances sector packing produces. The maxNodes budget guards
// pathological cases: when exceeded, ok is false and the best solution
// found so far is returned (still feasible, possibly suboptimal).
func BranchBound(items []Item, capacity int64, maxNodes int64) (res Result, ok bool, err error) {
	if err := validate(items, capacity); err != nil {
		return Result{}, false, err
	}
	n := len(items)
	order := byDensity(items)
	// Reorder once so the DFS explores high-density items first and the
	// suffix bound is the Dantzig bound of the remaining items.
	sorted := make([]Item, n)
	for k, i := range order {
		sorted[k] = items[i]
	}
	// suffix bounds: bound[k] = fractional optimum of sorted[k:] with a
	// given remaining capacity is computed on the fly; precompute suffix
	// profit sums for the cheap "take everything" bound.
	suffixProfit := make([]int64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffixProfit[k] = suffixProfit[k+1] + sorted[k].Profit
	}

	best := int64(0)
	bestTake := make([]bool, n) // in sorted order
	curTake := make([]bool, n)
	var nodes int64
	budgetHit := false

	var dfs func(k int, remCap, curProfit int64)
	dfs = func(k int, remCap, curProfit int64) {
		nodes++
		if nodes > maxNodes {
			budgetHit = true
			return
		}
		if curProfit > best {
			best = curProfit
			copy(bestTake, curTake)
		}
		if k == n || budgetHit {
			return
		}
		// cheap bound first, then the exact fractional bound
		if curProfit+suffixProfit[k] <= best {
			return
		}
		if curProfit+int64(fractionalSuffix(sorted[k:], remCap)) < best {
			return
		}
		if sorted[k].Weight <= remCap {
			curTake[k] = true
			dfs(k+1, remCap-sorted[k].Weight, curProfit+sorted[k].Profit)
			curTake[k] = false
		}
		dfs(k+1, remCap, curProfit)
	}
	dfs(0, capacity, 0)

	res = Result{Profit: best, Take: make([]bool, n)}
	for k, t := range bestTake {
		if t {
			res.Take[order[k]] = true
		}
	}
	return res, !budgetHit, nil
}

// fractionalSuffix is FractionalBound specialized to an already
// density-sorted slice, avoiding the re-sort on every node.
func fractionalSuffix(sorted []Item, capacity int64) float64 {
	var bound float64
	remaining := capacity
	for _, it := range sorted {
		if it.Weight == 0 {
			bound += float64(it.Profit)
			continue
		}
		if it.Weight <= remaining {
			bound += float64(it.Profit)
			remaining -= it.Weight
		} else {
			bound += float64(it.Profit) * float64(remaining) / float64(it.Weight)
			break
		}
	}
	return bound
}
