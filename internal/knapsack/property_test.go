package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDPMonotoneInCapacity: more capacity never hurts.
func TestDPMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 100; trial++ {
		items := randomItems(rng, 1+rng.Intn(10), 15, 20)
		prev := int64(-1)
		for c := int64(0); c <= 60; c += 5 {
			res, err := DPByWeight(items, c)
			if err != nil {
				t.Fatalf("DPByWeight: %v", err)
			}
			if res.Profit < prev {
				t.Fatalf("profit decreased with capacity: %d -> %d at c=%d", prev, res.Profit, c)
			}
			prev = res.Profit
		}
	}
}

// TestDPSupersetDominance: adding an item never decreases the optimum.
func TestDPSupersetDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 100; trial++ {
		items := randomItems(rng, 1+rng.Intn(10), 15, 20)
		capacity := rng.Int63n(60)
		base, err := DPByWeight(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		extended := append(append([]Item(nil), items...), Item{Weight: 1 + rng.Int63n(15), Profit: 1 + rng.Int63n(20)})
		bigger, err := DPByWeight(extended, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if bigger.Profit < base.Profit {
			t.Fatalf("superset lost profit: %d -> %d", base.Profit, bigger.Profit)
		}
	}
}

// TestScaleInvariance: doubling all profits doubles the optimum and keeps
// the same subset feasible/optimal structure.
func TestProfitScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(rng, 1+rng.Intn(8), 10, 15)
		capacity := rng.Int63n(40)
		base, err := DPByWeight(items, capacity)
		if err != nil {
			return false
		}
		scaled := make([]Item, len(items))
		for i, it := range items {
			scaled[i] = Item{Weight: it.Weight, Profit: it.Profit * 2}
		}
		doubled, err := DPByWeight(scaled, capacity)
		if err != nil {
			return false
		}
		return doubled.Profit == 2*base.Profit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGreedyNeverExceedsExact: sanity direction of the approximation.
func TestGreedyNeverExceedsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 150; trial++ {
		items := randomItems(rng, 1+rng.Intn(12), 20, 25)
		capacity := rng.Int63n(80)
		g, err := Greedy(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := DPByWeight(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if g.Profit > ex.Profit {
			t.Fatalf("greedy %d beats exact %d — infeasible subset?", g.Profit, ex.Profit)
		}
	}
}

// TestFPTASMonotoneInEps: a smaller eps can only help (within the same
// instance, FPTAS profit is not strictly monotone per-instance because the
// scaling grid changes; assert the guarantee floor instead at each eps).
func TestFPTASFloorAcrossEps(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 60; trial++ {
		items := randomItems(rng, 1+rng.Intn(10), 15, 500)
		capacity := rng.Int63n(70)
		ex, err := DPByWeight(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.6, 0.3, 0.15, 0.07} {
			res, err := FPTAS(items, capacity, eps)
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.Profit) < (1-eps)*float64(ex.Profit)-1e-9 {
				t.Fatalf("FPTAS(%v) = %d < floor of OPT %d", eps, res.Profit, ex.Profit)
			}
		}
	}
}

func FuzzDPConsistency(f *testing.F) {
	f.Add(int64(1), 5, int64(30))
	f.Add(int64(99), 12, int64(0))
	f.Fuzz(func(t *testing.T, seed int64, n int, capacity int64) {
		if n < 0 || n > 14 || capacity < 0 || capacity > 200 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(rng, n, 20, 30)
		dw, err1 := DPByWeight(items, capacity)
		dp, err2 := DPByProfit(items, capacity)
		bb, ok, err3 := BranchBound(items, capacity, 10_000_000)
		if err1 != nil || err2 != nil || err3 != nil || !ok {
			t.Fatalf("solver errors: %v %v %v ok=%v", err1, err2, err3, ok)
		}
		if dw.Profit != dp.Profit || dw.Profit != bb.Profit {
			t.Fatalf("exact solvers disagree: %d %d %d (items=%v cap=%d)",
				dw.Profit, dp.Profit, bb.Profit, items, capacity)
		}
	})
}
