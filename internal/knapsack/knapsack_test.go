package knapsack

import (
	"math/rand"
	"testing"
)

// bruteForce is the trusted oracle: full 2^n enumeration for n <= 20.
func bruteForce(items []Item, capacity int64) int64 {
	n := len(items)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var w, p int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += items[i].Weight
				p += items[i].Profit
			}
		}
		if w <= capacity && p > best {
			best = p
		}
	}
	return best
}

func randomItems(rng *rand.Rand, n int, maxW, maxP int64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Weight: 1 + rng.Int63n(maxW), Profit: 1 + rng.Int63n(maxP)}
	}
	return items
}

// checkResult verifies internal consistency: reported profit matches the
// subset, and the subset respects the capacity.
func checkResult(t *testing.T, items []Item, capacity int64, res Result, label string) {
	t.Helper()
	if len(res.Take) != len(items) {
		t.Fatalf("%s: Take length %d != %d items", label, len(res.Take), len(items))
	}
	var w, p int64
	for i, take := range res.Take {
		if take {
			w += items[i].Weight
			p += items[i].Profit
		}
	}
	if p != res.Profit {
		t.Fatalf("%s: reported profit %d != subset profit %d", label, res.Profit, p)
	}
	if w > capacity {
		t.Fatalf("%s: subset weight %d exceeds capacity %d", label, w, capacity)
	}
}

func TestExactSolversAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		items := randomItems(rng, n, 20, 30)
		capacity := rng.Int63n(80)
		want := bruteForce(items, capacity)

		dw, err := DPByWeight(items, capacity)
		if err != nil {
			t.Fatalf("DPByWeight: %v", err)
		}
		checkResult(t, items, capacity, dw, "DPByWeight")
		if dw.Profit != want {
			t.Fatalf("DPByWeight = %d, want %d (items=%v cap=%d)", dw.Profit, want, items, capacity)
		}

		dp, err := DPByProfit(items, capacity)
		if err != nil {
			t.Fatalf("DPByProfit: %v", err)
		}
		checkResult(t, items, capacity, dp, "DPByProfit")
		if dp.Profit != want {
			t.Fatalf("DPByProfit = %d, want %d", dp.Profit, want)
		}

		bb, ok, err := BranchBound(items, capacity, DefaultMaxBBNodes)
		if err != nil || !ok {
			t.Fatalf("BranchBound: ok=%v err=%v", ok, err)
		}
		checkResult(t, items, capacity, bb, "BranchBound")
		if bb.Profit != want {
			t.Fatalf("BranchBound = %d, want %d", bb.Profit, want)
		}

		mm, err := MeetInMiddle(items, capacity)
		if err != nil {
			t.Fatalf("MeetInMiddle: %v", err)
		}
		checkResult(t, items, capacity, mm, "MeetInMiddle")
		if mm.Profit != want {
			t.Fatalf("MeetInMiddle = %d, want %d", mm.Profit, want)
		}
	}
}

func TestExactSolversAgreeOnLargerInstances(t *testing.T) {
	// Beyond brute-force reach: cross-check the independent exact methods
	// against each other.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 20 + rng.Intn(16)
		items := randomItems(rng, n, 50, 60)
		capacity := rng.Int63n(400) + 50

		dw, err := DPByWeight(items, capacity)
		if err != nil {
			t.Fatalf("DPByWeight: %v", err)
		}
		bb, ok, err := BranchBound(items, capacity, 50_000_000)
		if err != nil || !ok {
			t.Fatalf("BranchBound: ok=%v err=%v", ok, err)
		}
		mm, err := MeetInMiddle(items, capacity)
		if err != nil {
			t.Fatalf("MeetInMiddle: %v", err)
		}
		if dw.Profit != bb.Profit || dw.Profit != mm.Profit {
			t.Fatalf("exact solvers disagree: DP=%d BB=%d MiM=%d", dw.Profit, bb.Profit, mm.Profit)
		}
	}
}

func TestGreedyHalfApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(14)
		items := randomItems(rng, n, 25, 40)
		capacity := rng.Int63n(100)
		want := bruteForce(items, capacity)
		g, err := Greedy(items, capacity)
		if err != nil {
			t.Fatalf("Greedy: %v", err)
		}
		checkResult(t, items, capacity, g, "Greedy")
		if 2*g.Profit < want {
			t.Fatalf("Greedy %d < OPT/2 (OPT=%d): items=%v cap=%d", g.Profit, want, items, capacity)
		}
	}
}

func TestFPTASGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, eps := range []float64{0.5, 0.2, 0.05} {
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(13)
			items := randomItems(rng, n, 30, 1000)
			capacity := rng.Int63n(150)
			want := bruteForce(items, capacity)
			res, err := FPTAS(items, capacity, eps)
			if err != nil {
				t.Fatalf("FPTAS: %v", err)
			}
			checkResult(t, items, capacity, res, "FPTAS")
			if float64(res.Profit) < (1-eps)*float64(want)-1e-9 {
				t.Fatalf("FPTAS(%v) = %d < (1-eps)·OPT (OPT=%d)", eps, res.Profit, want)
			}
		}
	}
}

func TestFractionalBoundDominatesOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		items := randomItems(rng, n, 20, 30)
		capacity := rng.Int63n(80)
		want := bruteForce(items, capacity)
		if b := FractionalBound(items, capacity); b < float64(want)-1e-9 {
			t.Fatalf("FractionalBound %v < OPT %d", b, want)
		}
	}
}

func TestSolveDispatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		items := randomItems(rng, n, 20, 30)
		capacity := rng.Int63n(80)
		want := bruteForce(items, capacity)
		res, exact, err := Solve(items, capacity, Options{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		checkResult(t, items, capacity, res, "Solve")
		if !exact {
			t.Fatal("small instances should be solved exactly")
		}
		if res.Profit != want {
			t.Fatalf("Solve = %d, want %d", res.Profit, want)
		}
	}
}

func TestSolveForceApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(rng, 15, 20, 500)
	capacity := int64(100)
	want := bruteForce(items, capacity)
	res, exact, err := Solve(items, capacity, Options{ForceApprox: true, Eps: 0.1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if exact {
		t.Error("ForceApprox must not report exactness")
	}
	if float64(res.Profit) < 0.9*float64(want) {
		t.Errorf("forced FPTAS %d < 0.9·OPT (%d)", res.Profit, want)
	}
}

func TestEdgeCases(t *testing.T) {
	// empty item set
	for name, f := range map[string]func([]Item, int64) (Result, error){
		"DPByWeight": DPByWeight,
		"DPByProfit": DPByProfit,
		"Greedy":     Greedy,
		"MiM":        MeetInMiddle,
	} {
		res, err := f(nil, 10)
		if err != nil {
			t.Errorf("%s(nil): %v", name, err)
		}
		if res.Profit != 0 {
			t.Errorf("%s(nil) profit = %d", name, res.Profit)
		}
	}
	// zero capacity with zero-weight items: free profit must be taken
	items := []Item{{Weight: 0, Profit: 5}, {Weight: 3, Profit: 10}}
	res, err := DPByWeight(items, 0)
	if err != nil || res.Profit != 5 {
		t.Errorf("zero capacity: profit=%d err=%v, want 5", res.Profit, err)
	}
	g, err := Greedy(items, 0)
	if err != nil || g.Profit != 5 {
		t.Errorf("greedy zero capacity: profit=%d err=%v, want 5", g.Profit, err)
	}
	// item heavier than capacity is never taken
	res, err = DPByWeight([]Item{{Weight: 100, Profit: 99}}, 10)
	if err != nil || res.Profit != 0 || res.Take[0] {
		t.Errorf("oversized item: %+v err=%v", res, err)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Item{{Weight: -1, Profit: 1}}
	if _, err := DPByWeight(bad, 10); err == nil {
		t.Error("negative weight must be rejected")
	}
	if _, err := DPByWeight([]Item{{Weight: 1, Profit: -1}}, 10); err == nil {
		t.Error("negative profit must be rejected")
	}
	if _, err := Greedy([]Item{{1, 1}}, -1); err == nil {
		t.Error("negative capacity must be rejected")
	}
	if _, err := FPTAS([]Item{{1, 1}}, 10, 0); err == nil {
		t.Error("eps=0 must be rejected")
	}
	if _, err := FPTAS([]Item{{1, 1}}, 10, 1); err == nil {
		t.Error("eps=1 must be rejected")
	}
	if _, err := MeetInMiddle(make([]Item, MaxMeetInMiddle+1), 1); err == nil {
		t.Error("oversized MeetInMiddle input must be rejected")
	}
}

func TestDPBudgetExceeded(t *testing.T) {
	items := []Item{{Weight: 1, Profit: 1}}
	if _, err := DPByWeight(items, MaxDPCells); err == nil {
		t.Error("oversized weight table must be refused")
	}
	big := []Item{{Weight: 1, Profit: MaxDPCells}}
	if _, err := DPByProfit(big, 1); err == nil {
		t.Error("oversized profit table must be refused")
	}
}

func TestResultHelpers(t *testing.T) {
	items := []Item{{2, 3}, {4, 5}, {6, 7}}
	res := Result{Profit: 8, Take: []bool{true, false, true}}
	if w := res.Weight(items); w != 8 {
		t.Errorf("Weight = %d, want 8", w)
	}
	if c := res.Count(); c != 2 {
		t.Errorf("Count = %d, want 2", c)
	}
}

func TestByDensityOrdering(t *testing.T) {
	items := []Item{{Weight: 2, Profit: 2}, {Weight: 0, Profit: 1}, {Weight: 1, Profit: 3}}
	order := byDensity(items)
	if order[0] != 1 {
		t.Errorf("zero-weight item should sort first, got order %v", order)
	}
	if order[1] != 2 {
		t.Errorf("density-3 item should sort second, got order %v", order)
	}
}

func TestBranchBoundBudget(t *testing.T) {
	// A tiny node budget must still return a feasible (if suboptimal)
	// solution and report ok=false.
	rng := rand.New(rand.NewSource(8))
	items := randomItems(rng, 30, 1000, 1000)
	res, ok, err := BranchBound(items, 5000, 10)
	if err != nil {
		t.Fatalf("BranchBound: %v", err)
	}
	if ok {
		t.Error("10-node budget on n=30 should be exhausted")
	}
	checkResult(t, items, 5000, res, "BranchBound(budget)")
}
