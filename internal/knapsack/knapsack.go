// Package knapsack implements the 0/1 knapsack solvers that sector packing
// reduces to: once an antenna's orientation is fixed, choosing which covered
// customers to serve subject to the antenna's capacity is exactly 0/1
// knapsack with weights = demands and profits = customer profits.
//
// The package offers the full classical toolbox:
//
//   - DPByWeight: exact O(n·C) dynamic program (pseudo-polynomial in the
//     capacity), the method of choice when capacities are small integers.
//   - DPByProfit: exact O(n·P) dynamic program over total profit, the basis
//     of the FPTAS.
//   - FPTAS: (1−ε)-approximation in O(n³/ε) by profit scaling.
//   - Greedy: the density greedy with the best-single-item fallback, a
//     1/2-approximation in O(n log n).
//   - BranchBound: exact depth-first search with the Dantzig fractional
//     upper bound; fast in practice for n up to a few hundred.
//   - MeetInMiddle: exact O(2^{n/2}) enumeration for tiny n, used as an
//     independent cross-check in tests.
//   - Solve: a dispatcher that picks an exact method when affordable and
//     falls back to the FPTAS.
//
// All solvers return the chosen subset aligned with the input order, so
// callers can map selections back to customers without bookkeeping.
package knapsack

import (
	"fmt"
	"sort"
)

// Item is one knapsack item.
type Item struct {
	Weight int64 // capacity consumed (customer demand); must be >= 0
	Profit int64 // objective contribution; must be >= 0
}

// Result is a solved knapsack: the total profit and the chosen subset in
// input order.
type Result struct {
	Profit int64
	Take   []bool
}

// Weight returns the total weight of the chosen subset.
func (r Result) Weight(items []Item) int64 {
	var w int64
	for i, t := range r.Take {
		if t {
			w += items[i].Weight
		}
	}
	return w
}

// Count returns the number of chosen items.
func (r Result) Count() int {
	n := 0
	for _, t := range r.Take {
		if t {
			n++
		}
	}
	return n
}

// validate rejects negative weights/profits and a negative capacity, which
// would silently corrupt every DP below.
func validate(items []Item, capacity int64) error {
	if capacity < 0 {
		return fmt.Errorf("knapsack: negative capacity %d", capacity)
	}
	for i, it := range items {
		if it.Weight < 0 {
			return fmt.Errorf("knapsack: item %d has negative weight %d", i, it.Weight)
		}
		if it.Profit < 0 {
			return fmt.Errorf("knapsack: item %d has negative profit %d", i, it.Profit)
		}
	}
	return nil
}

// totalProfit sums profits of all items.
func totalProfit(items []Item) int64 {
	var s int64
	for _, it := range items {
		s += it.Profit
	}
	return s
}

// byDensity returns item indices sorted by profit density (profit/weight)
// descending, with zero-weight items (infinite density) first and ties
// broken by higher profit. The ordering is shared by Greedy and the
// Dantzig bound so their analyses line up.
func byDensity(items []Item) []int {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := items[idx[a]], items[idx[b]]
		// compare ia.Profit/ia.Weight > ib.Profit/ib.Weight without division
		if ia.Weight == 0 || ib.Weight == 0 {
			if ia.Weight == 0 && ib.Weight == 0 {
				return ia.Profit > ib.Profit
			}
			return ia.Weight == 0
		}
		lhs := ia.Profit * ib.Weight
		rhs := ib.Profit * ia.Weight
		if lhs != rhs {
			return lhs > rhs
		}
		return ia.Profit > ib.Profit
	})
	return idx
}
