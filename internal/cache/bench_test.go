package cache

import (
	"context"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func benchInstance() *model.Instance {
	return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 42, N: 200, M: 3, Variant: model.Sectors})
}

// BenchmarkCacheHit measures the full hit path — fingerprint the instance,
// look up, remap into request coordinates — against BenchmarkFreshGreedy
// below on the identical instance. The hit must be far cheaper than even
// the fastest solver; the `sectorbench -compare` gate tracks both.
func BenchmarkCacheHit(b *testing.B) {
	in := benchInstance()
	opt := core.Options{Seed: 1, SkipBound: true}
	solver, err := core.Get("greedy")
	if err != nil {
		b.Fatal(err)
	}
	c := New(0)
	fp, err := NewFingerprint(in, opt, "greedy")
	if err != nil {
		b.Fatal(err)
	}
	if _, out, err := c.GetOrSolve(context.Background(), fp, func(ctx context.Context) (model.Solution, error) {
		return solver(ctx, in, opt)
	}); err != nil || out != Miss {
		b.Fatalf("warm-up: outcome %v err %v", out, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp, err := NewFingerprint(in, opt, "greedy")
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Get(fp); !ok {
			b.Fatal("warm cache missed")
		}
	}
}

// BenchmarkFreshGreedy is the uncached baseline for BenchmarkCacheHit:
// same instance, same options, no cache.
func BenchmarkFreshGreedy(b *testing.B) {
	in := benchInstance()
	opt := core.Options{Seed: 1, SkipBound: true}
	solver, err := core.Get("greedy")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver(context.Background(), in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint isolates the canonicalization + SHA-256 cost, the
// fixed overhead every cached request pays.
func BenchmarkFingerprint(b *testing.B) {
	in := benchInstance()
	opt := core.Options{Seed: 1, SkipBound: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFingerprint(in, opt, "greedy"); err != nil {
			b.Fatal(err)
		}
	}
}
