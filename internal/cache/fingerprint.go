// Package cache provides the solve cache for repeated sector-packing
// instances: a canonical, order-insensitive fingerprint of
// (Instance, Options, solver) and a byte-bounded LRU of verified Solutions
// with singleflight collapse, so N concurrent identical requests cost one
// underlying solve.
//
// The fingerprint is computed over a *canonical form* of the instance:
// customers and antennas are sorted by their semantic fields (IDs and the
// cosmetic Name are excluded, and the encodings of "unbounded range" all
// hash identically), and the sorted fields are streamed into SHA-256 as a
// length-prefixed, fixed-order binary serialization with floats spelled as
// their IEEE-754 bit patterns — canonical like sorted-key JSON, but
// allocation-free, because the fingerprint is paid on every cached request
// and must stay far cheaper than the cheapest solver. Two instances that
// differ only by a permutation of their customer or antenna slices share a
// key, while flipping any Options field, any demand unit, or the solver
// name changes it.
//
// Because solutions are expressed in slice coordinates, the cache stores
// them in canonical coordinates and each Fingerprint carries the
// permutation that maps its own instance onto the canonical form. A solve
// cached from one ordering is served to a permuted duplicate by remapping
// through both permutations; for the *same* ordering the round trip is the
// identity, so a cache hit is bit-identical to the fresh solve that
// populated it (the differential tests in this package enforce exactly
// that).
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"sectorpack/internal/core"
	"sectorpack/internal/model"
)

// fingerprintVersion is bumped whenever the canonical document changes
// shape, so stale keys from older builds can never alias new ones.
const fingerprintVersion = 1

// Fingerprint identifies one (instance, options, solver) solve and carries
// the canonicalization permutations needed to move solutions between the
// instance's coordinates and the cache's canonical coordinates.
type Fingerprint struct {
	key string
	// cust[k] is the original index of the k-th customer in canonical
	// order; ant likewise for antennas.
	cust []int
	ant  []int
}

// Key returns the hex SHA-256 cache key.
func (f *Fingerprint) Key() string { return f.key }

// hasher streams the canonical document into SHA-256 through a reused
// 8-byte buffer: every field is written in a fixed order, strings are
// length-prefixed, so the encoding is injective and stable across runs and
// builds without materializing an intermediate document.
type hasher struct {
	sum hash.Hash
	buf [8]byte
}

func newHasher() *hasher {
	return &hasher{sum: sha256.New()}
}

func (w *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.sum.Write(w.buf[:])
}

func (w *hasher) i64(v int64) { w.u64(uint64(v)) }

// float spells a float as its IEEE-754 bit pattern: exact, total, and
// immune to formatting round trips. Instances are validated NaN-free, so
// bit equality coincides with semantic equality here.
func (w *hasher) float(x float64) { w.u64(math.Float64bits(x)) }

func (w *hasher) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *hasher) str(s string) {
	w.u64(uint64(len(s)))
	w.sum.Write([]byte(s))
}

func (w *hasher) key() string {
	var digest [sha256.Size]byte
	return hex.EncodeToString(w.sum.Sum(digest[:0]))
}

// options hashes every core.Options field. A new field added to
// core.Options (or its nested structs) MUST be added here, or identical
// keys would alias solves with different semantics;
// TestFingerprintSensitiveToEveryOptionsField walks core.Options by
// reflection and fails when a field does not move the key.
func (w *hasher) options(opt core.Options) {
	w.float(opt.Knapsack.Eps)
	w.i64(opt.Knapsack.MaxBBNodes)
	w.bool(opt.Knapsack.ForceApprox)
	w.i64(opt.ExactLimits.MaxTuples)
	w.i64(opt.ExactLimits.MKPNodes)
	w.i64(opt.Seed)
	w.i64(int64(opt.RoundTrials))
	w.i64(int64(opt.LocalSearchRounds))
	w.bool(opt.SkipBound)
}

// RoutingKey returns the canonical fingerprint key of (instance, options,
// solver) without retaining the coordinate permutations — the form a
// request router needs. Consistent-hash routing on this key sends every
// repeat (and every permuted duplicate) of a solve to the same shard, so
// that shard's LRU stays hot and its singleflight collapses the
// fleet-wide duplicates; the key is identical to the one the daemon's own
// cache uses, by construction.
func RoutingKey(in *model.Instance, opt core.Options, solver string) (string, error) {
	f, err := NewFingerprint(in, opt, solver)
	if err != nil {
		return "", err
	}
	return f.Key(), nil
}

// NewFingerprint canonicalizes and hashes one solve. The instance must be
// normalized and valid (the callers — daemon, CLI, tests — validate before
// solving); the error return is reserved for future canonicalization
// failures and is currently always nil.
func NewFingerprint(in *model.Instance, opt core.Options, solver string) (*Fingerprint, error) {
	f := &Fingerprint{
		cust: make([]int, in.N()),
		ant:  make([]int, in.M()),
	}
	for i := range f.cust {
		f.cust[i] = i
	}
	for j := range f.ant {
		f.ant[j] = j
	}
	// The canonical sort orders by exact float values on purpose: the
	// fingerprint hashes IEEE-754 bit patterns, so two instances hash alike
	// iff their sorted field streams are bit-identical — an Eps-tolerant
	// comparator would make the canonical order (and thus the key) depend
	// on which permutation arrived first.
	cs := in.Customers
	sort.SliceStable(f.cust, func(a, b int) bool {
		x, y := cs[f.cust[a]], cs[f.cust[b]]
		if x.Theta != y.Theta { //sectorlint:ignore floateq canonical order must distinguish every bit pattern the hash distinguishes
			return x.Theta < y.Theta
		}
		if x.R != y.R { //sectorlint:ignore floateq canonical order must distinguish every bit pattern the hash distinguishes
			return x.R < y.R
		}
		if x.Demand != y.Demand {
			return x.Demand < y.Demand
		}
		return x.Profit < y.Profit
	})
	as := in.Antennas
	sort.SliceStable(f.ant, func(a, b int) bool {
		x, y := as[f.ant[a]], as[f.ant[b]]
		if x.Rho != y.Rho { //sectorlint:ignore floateq canonical order must distinguish every bit pattern the hash distinguishes
			return x.Rho < y.Rho
		}
		// EffRange folds the two unbounded encodings (<= 0 and +Inf)
		// together so semantically identical antennas sort and hash alike.
		if x.EffRange() != y.EffRange() { //sectorlint:ignore floateq canonical order must distinguish every bit pattern the hash distinguishes
			return x.EffRange() < y.EffRange()
		}
		if x.Capacity != y.Capacity {
			return x.Capacity < y.Capacity
		}
		return x.MinRange < y.MinRange
	})

	w := newHasher()
	w.i64(fingerprintVersion)
	w.str(solver)
	w.options(opt)
	w.i64(int64(in.Variant))
	w.i64(int64(in.N()))
	for _, i := range f.cust {
		c := &cs[i]
		w.float(c.Theta)
		w.float(c.R)
		w.i64(c.Demand)
		w.i64(c.Profit)
	}
	w.i64(int64(in.M()))
	for _, j := range f.ant {
		a := &as[j]
		w.float(a.Rho)
		w.float(a.EffRange())
		w.i64(a.Capacity)
		w.float(a.MinRange)
	}
	f.key = w.key()
	return f, nil
}

// toCanonical re-expresses a solution produced in this fingerprint's
// instance coordinates in canonical coordinates. The assignment slices are
// freshly allocated; the input is not modified.
func (f *Fingerprint) toCanonical(sol model.Solution) model.Solution {
	if sol.Assignment == nil {
		return sol
	}
	antToCanon := make([]int, len(f.ant))
	for k, j := range f.ant {
		antToCanon[j] = k
	}
	as := &model.Assignment{
		Orientation: make([]float64, len(f.ant)),
		Owner:       make([]int, len(f.cust)),
	}
	for k, j := range f.ant {
		as.Orientation[k] = sol.Assignment.Orientation[j]
	}
	for k, i := range f.cust {
		owner := sol.Assignment.Owner[i]
		if owner == model.Unassigned {
			as.Owner[k] = model.Unassigned
		} else {
			as.Owner[k] = antToCanon[owner]
		}
	}
	sol.Assignment = as
	return sol
}

// fromCanonical re-expresses a canonical-coordinate solution in this
// fingerprint's instance coordinates. For the ordering that produced the
// cached entry this inverts toCanonical exactly, so a hit reproduces the
// original solve bit for bit; for a permuted duplicate it yields the
// equivalent permuted assignment (same profit, same served multiset).
func (f *Fingerprint) fromCanonical(sol model.Solution) model.Solution {
	if sol.Assignment == nil {
		return sol
	}
	as := &model.Assignment{
		Orientation: make([]float64, len(f.ant)),
		Owner:       make([]int, len(f.cust)),
	}
	for k, j := range f.ant {
		as.Orientation[j] = sol.Assignment.Orientation[k]
	}
	for k, i := range f.cust {
		owner := sol.Assignment.Owner[k]
		if owner == model.Unassigned {
			as.Owner[i] = model.Unassigned
		} else {
			as.Owner[i] = f.ant[owner]
		}
	}
	sol.Assignment = as
	return sol
}
