package cache

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

func fpKey(t *testing.T, in *model.Instance, opt core.Options, solver string) string {
	t.Helper()
	fp, err := NewFingerprint(in, opt, solver)
	if err != nil {
		t.Fatalf("NewFingerprint: %v", err)
	}
	return fp.Key()
}

func testInstance(seed int64) *model.Instance {
	return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: seed, N: 24, M: 3, Variant: model.Sectors})
}

// shuffleCustomers returns a deep copy with the customer slice permuted
// and re-normalized (IDs must equal slice positions to stay valid).
func shuffleCustomers(in *model.Instance, seed int64) *model.Instance {
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out.Customers), func(i, j int) {
		out.Customers[i], out.Customers[j] = out.Customers[j], out.Customers[i]
	})
	return out.Normalize()
}

func shuffleAntennas(in *model.Instance, seed int64) *model.Instance {
	out := in.Clone()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out.Antennas), func(i, j int) {
		out.Antennas[i], out.Antennas[j] = out.Antennas[j], out.Antennas[i]
	})
	return out.Normalize()
}

// TestFingerprintPermutationInvariant: the key is a function of the
// instance's *content*, not its slice order — shuffling customers or
// antennas (with IDs renumbered to stay valid) must not move it.
func TestFingerprintPermutationInvariant(t *testing.T) {
	in := testInstance(3)
	opt := core.Options{Seed: 1}
	base := fpKey(t, in, opt, "greedy")
	for trial := int64(0); trial < 10; trial++ {
		if got := fpKey(t, shuffleCustomers(in, trial), opt, "greedy"); got != base {
			t.Fatalf("customer shuffle (seed %d) moved the key: %s != %s", trial, got, base)
		}
		if got := fpKey(t, shuffleAntennas(in, trial), opt, "greedy"); got != base {
			t.Fatalf("antenna shuffle (seed %d) moved the key: %s != %s", trial, got, base)
		}
		both := shuffleAntennas(shuffleCustomers(in, trial), trial+100)
		if got := fpKey(t, both, opt, "greedy"); got != base {
			t.Fatalf("double shuffle (seed %d) moved the key", trial)
		}
	}
}

// TestFingerprintIgnoresCosmetics: the instance Name and the two
// encodings of "unbounded range" are semantically irrelevant and must not
// move the key.
func TestFingerprintIgnoresCosmetics(t *testing.T) {
	in := testInstance(4)
	opt := core.Options{Seed: 1}
	base := fpKey(t, in, opt, "greedy")

	renamed := in.Clone()
	renamed.Name = "something-else"
	if got := fpKey(t, renamed, opt, "greedy"); got != base {
		t.Errorf("instance Name moved the key")
	}

	unbounded := in.Clone()
	unbounded.Antennas[0].Range = 0 // unbounded, encoding 1
	k0 := fpKey(t, unbounded, opt, "greedy")
	unbounded.Antennas[0].Range = -1 // unbounded, encoding 2
	if got := fpKey(t, unbounded, opt, "greedy"); got != k0 {
		t.Errorf("equivalent unbounded-range encodings hash differently")
	}
	unbounded.Antennas[0].Range = math.Inf(1) // unbounded, encoding 3
	if got := fpKey(t, unbounded, opt, "greedy"); got != k0 {
		t.Errorf("+Inf range hashes differently from other unbounded encodings")
	}
	if k0 == base {
		t.Errorf("making antenna 0 unbounded did not move the key")
	}
}

// TestFingerprintSensitiveToInstanceContent: one demand unit, one profit
// unit, a nudged coordinate, the variant, and the solver name each change
// the key.
func TestFingerprintSensitiveToInstanceContent(t *testing.T) {
	in := testInstance(5)
	opt := core.Options{Seed: 1}
	base := fpKey(t, in, opt, "greedy")

	mutations := map[string]func(*model.Instance){
		"demand+1":     func(m *model.Instance) { m.Customers[7].Demand++ },
		"profit+1":     func(m *model.Instance) { m.Customers[7].Profit++ },
		"theta-nudge":  func(m *model.Instance) { m.Customers[7].Theta += 1e-9 },
		"r-nudge":      func(m *model.Instance) { m.Customers[7].R += 1e-9 },
		"rho-nudge":    func(m *model.Instance) { m.Antennas[1].Rho += 1e-9 },
		"capacity+1":   func(m *model.Instance) { m.Antennas[1].Capacity++ },
		"range-nudge":  func(m *model.Instance) { m.Antennas[1].Range += 1e-9 },
		"minrange-set": func(m *model.Instance) { m.Antennas[1].MinRange = 0.01 },
		"drop-cust":    func(m *model.Instance) { m.Customers = m.Customers[:len(m.Customers)-1] },
	}
	for name, mutate := range mutations {
		mut := in.Clone()
		mutate(mut)
		if got := fpKey(t, mut, opt, "greedy"); got == base {
			t.Errorf("mutation %q did not move the key", name)
		}
	}
	variant := in.Clone()
	variant.Variant = model.Angles
	for j := range variant.Antennas {
		variant.Antennas[j].Range = 0
	}
	varKey := fpKey(t, variant, opt, "greedy")
	sameShape := variant.Clone()
	sameShape.Variant = model.Sectors
	if got := fpKey(t, sameShape, opt, "greedy"); got == varKey {
		t.Errorf("variant change did not move the key")
	}
	if got := fpKey(t, in, opt, "localsearch"); got == base {
		t.Errorf("solver name did not move the key")
	}
}

// optionsLeaves enumerates every leaf field of core.Options (recursing
// into nested structs) as dotted paths with a mutator that flips just that
// field. It is the future-proofing half of the sensitivity test: a field
// added to core.Options shows up here automatically, and if canonOptions
// does not hash it the flip will not move the key and the test fails.
func optionsLeaves(t *testing.T) map[string]func(*core.Options) {
	t.Helper()
	leaves := map[string]func(*core.Options){}
	var walk func(prefix string, path []int, typ reflect.Type)
	walk = func(prefix string, path []int, typ reflect.Type) {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			fieldPath := append(append([]int(nil), path...), i)
			name := prefix + f.Name
			if f.Type.Kind() == reflect.Struct {
				walk(name+".", fieldPath, f.Type)
				continue
			}
			leaves[name] = func(o *core.Options) {
				v := reflect.ValueOf(o).Elem().FieldByIndex(fieldPath)
				switch v.Kind() {
				case reflect.Bool:
					v.SetBool(!v.Bool())
				case reflect.Int, reflect.Int64:
					v.SetInt(v.Int() + 3)
				case reflect.Float64:
					v.SetFloat(v.Float() + 0.125)
				default:
					t.Fatalf("optionsLeaves: unhandled kind %v for field %s — extend the walker", v.Kind(), name)
				}
			}
		}
	}
	walk("", nil, reflect.TypeOf(core.Options{}))
	return leaves
}

// TestFingerprintSensitiveToEveryOptionsField walks core.Options by
// reflection and asserts that flipping any single leaf field — including
// fields of the nested knapsack.Options and exact.Limits — yields a
// different key. This is the guard that keeps canonOptions in sync with
// core.Options: a new field that is not hashed fails here, not in
// production as silently aliased cache entries.
func TestFingerprintSensitiveToEveryOptionsField(t *testing.T) {
	in := testInstance(6)
	base := fpKey(t, in, core.Options{Seed: 1}, "greedy")
	leaves := optionsLeaves(t)
	if len(leaves) < 9 {
		t.Fatalf("expected >= 9 Options leaf fields, found %d — walker broken?", len(leaves))
	}
	for name, flip := range leaves {
		opt := core.Options{Seed: 1}
		flip(&opt)
		if got := fpKey(t, in, opt, "greedy"); got == base {
			t.Errorf("flipping Options.%s did not move the key — add it to canonOptions", name)
		}
	}
}

// TestFingerprintRemapRoundTrip: toCanonical/fromCanonical invert each
// other for the fingerprint's own ordering, and remapping a solution
// cached under one ordering onto a shuffled duplicate stays feasible with
// the same profit.
func TestFingerprintRemapRoundTrip(t *testing.T) {
	in := testInstance(7)
	opt := core.Options{Seed: 1}
	solver, err := core.Get("greedy")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFingerprint(in, opt, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	round := fp.fromCanonical(fp.toCanonical(sol))
	if fmt.Sprint(round.Assignment) != fmt.Sprint(sol.Assignment) {
		t.Fatalf("remap round trip not identity:\n got  %v\n want %v", round.Assignment, sol.Assignment)
	}

	perm := shuffleCustomers(shuffleAntennas(in, 99), 42)
	fp2, err := NewFingerprint(perm, opt, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if fp2.Key() != fp.Key() {
		t.Fatalf("shuffled duplicate has a different key")
	}
	mapped := fp2.fromCanonical(fp.toCanonical(sol))
	mapped.Profit = mapped.Assignment.Profit(perm)
	if err := mapped.Assignment.Check(perm); err != nil {
		t.Fatalf("remapped solution infeasible on shuffled duplicate: %v", err)
	}
	if mapped.Profit != sol.Profit {
		t.Fatalf("remapped profit %d != original %d", mapped.Profit, sol.Profit)
	}
}

// TestRoutingKeyMatchesFingerprint pins the routing contract ISSUE 9's
// proxy relies on: the exported RoutingKey is exactly the cache key the
// daemon computes, and permuted duplicates route identically — so the
// shard a request hashes to is the shard whose LRU holds its answer.
func TestRoutingKeyMatchesFingerprint(t *testing.T) {
	in := testInstance(31)
	opt := core.Options{Seed: 7}
	key, err := RoutingKey(in, opt, "greedy")
	if err != nil {
		t.Fatalf("RoutingKey: %v", err)
	}
	if want := fpKey(t, in, opt, "greedy"); key != want {
		t.Fatalf("RoutingKey %s != Fingerprint.Key %s", key, want)
	}
	for trial := int64(0); trial < 5; trial++ {
		dup := shuffleAntennas(shuffleCustomers(in, trial), trial+50)
		got, err := RoutingKey(dup, opt, "greedy")
		if err != nil {
			t.Fatalf("RoutingKey(shuffled): %v", err)
		}
		if got != key {
			t.Fatalf("permuted duplicate routes elsewhere: %s != %s", got, key)
		}
	}
	other, err := RoutingKey(in, opt, "localsearch")
	if err != nil {
		t.Fatal(err)
	}
	if other == key {
		t.Fatal("solver name does not move the routing key")
	}
}
