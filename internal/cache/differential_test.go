package cache

import (
	"context"
	"strings"
	"testing"

	"sectorpack/internal/core"
	"sectorpack/internal/gen"
	"sectorpack/internal/model"
)

// differentialInstance picks an instance every registered solver accepts:
// disjoint-dp needs the DisjointAngles variant, everything else gets the
// same unit-demand Sectors instance the core determinism goldens use.
func differentialInstance(solver string) *model.Instance {
	if solver == "disjoint-dp" {
		return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 11, N: 10, M: 2, Variant: model.DisjointAngles})
	}
	return gen.MustGenerate(gen.Config{Family: gen.Uniform, Seed: 7, N: 10, M: 2, Variant: model.Sectors, UnitDemand: true})
}

// TestDifferentialCachedEqualsFreshAllSolvers is the cache's central
// correctness claim, checked for every registered solver: the solve served
// from a cache hit is bit-identical (profit, algorithm, full-precision
// orientations, owners) to the fresh solve that populated it, and to a
// bypassing solve that never touched the cache. It also pins the hit/miss
// accounting: one miss to populate, then only hits.
func TestDifferentialCachedEqualsFreshAllSolvers(t *testing.T) {
	for _, name := range core.Names() {
		if strings.HasPrefix(name, "test-") {
			continue // solvers injected by other tests in this package tree
		}
		t.Run(name, func(t *testing.T) {
			in := differentialInstance(name)
			opt := core.Options{Seed: 1}
			solver, err := core.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			solve := func(ctx context.Context) (model.Solution, error) {
				sol, err := solver(ctx, in, opt)
				if err != nil {
					return model.Solution{}, err
				}
				if err := core.VerifySolution(name, in, sol); err != nil {
					return model.Solution{}, err
				}
				return sol, nil
			}

			// Fresh: the reference answer, no cache anywhere near it.
			fresh, err := solve(context.Background())
			if err != nil {
				t.Fatalf("fresh solve: %v", err)
			}
			want := solutionString(fresh)

			c := New(0)
			fp := mustFingerprint(t, in, opt, name)

			// Miss: populates the cache; must be the fresh bytes untouched.
			miss, out, err := c.GetOrSolve(context.Background(), fp, solve)
			if err != nil || out != Miss {
				t.Fatalf("populate: outcome %v err %v", out, err)
			}
			if got := solutionString(miss); got != want {
				t.Fatalf("miss path drifted from fresh:\n got  %s\n want %s", got, want)
			}

			// Hit: served from the stored entry; must re-verify and match.
			for trial := 0; trial < 3; trial++ {
				hit, out, err := c.GetOrSolve(context.Background(), fp, solve)
				if err != nil || out != Hit {
					t.Fatalf("hit trial %d: outcome %v err %v", trial, out, err)
				}
				if err := core.VerifySolution(name, in, hit); err != nil {
					t.Fatalf("hit trial %d failed the feasibility gate: %v", trial, err)
				}
				if got := solutionString(hit); got != want {
					t.Fatalf("hit trial %d drifted from fresh:\n got  %s\n want %s", trial, got, want)
				}
			}

			// Bypass: a fresh solve next to a warm cache; must still match
			// (the cache cannot perturb an uncached solve).
			bypass, err := solve(context.Background())
			if err != nil {
				t.Fatalf("bypass solve: %v", err)
			}
			if got := solutionString(bypass); got != want {
				t.Fatalf("bypass path drifted from fresh:\n got  %s\n want %s", got, want)
			}

			st := c.Stats()
			if st.Misses != 1 || st.Hits != 3 {
				t.Fatalf("stats %+v, want exactly 1 miss and 3 hits", st)
			}
		})
	}
}

// TestDifferentialSeedSeparation: the same instance under two seeds must
// occupy two cache entries — a hit for one seed can never answer for the
// other (lpround's rounding depends on the seed).
func TestDifferentialSeedSeparation(t *testing.T) {
	in := differentialInstance("lpround")
	solver, err := core.Get("lpround")
	if err != nil {
		t.Fatal(err)
	}
	c := New(0)
	for _, seed := range []int64{1, 2} {
		opt := core.Options{Seed: seed}
		fp := mustFingerprint(t, in, opt, "lpround")
		_, out, err := c.GetOrSolve(context.Background(), fp, func(ctx context.Context) (model.Solution, error) {
			return solver(ctx, in, opt)
		})
		if err != nil || out != Miss {
			t.Fatalf("seed %d: outcome %v err %v, want a distinct miss", seed, out, err)
		}
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("two seeds share an entry: %+v", st)
	}
}
