// Cache snapshots: a versioned, checksummed dump of the verified canonical
// solutions the LRU holds, written atomically (temp + fsync + rename +
// dir-fsync via faultfs) so a crash or redeploy never leaves a torn file,
// and loaded entry-by-entry on restart so one corrupt frame costs one entry,
// not the warm start.
//
// Trust model: a snapshot is a warm-start hint, not an authority. The load
// path checks the envelope versions (snapshot layout AND fingerprint
// version — a key computed by an older canonicalization must never alias a
// new one), a CRC per entry frame, and structural sanity per entry (key
// shape, owner indices in range, finite floats, non-negative profit);
// anything that fails is skipped and counted, never restored. Semantic
// verification is deliberately NOT done here — it needs the instance, which
// only arrives with a request — so every restored entry is re-gated through
// core.VerifySolution by the serving layer on its first hit, exactly like
// any other cache entry (a failure drops the entry and solves fresh). A
// restored solution is therefore never served unverified.
//
// What is deliberately not persisted: hit/miss/eviction counters (they
// describe one process's life), in-flight singleflights, and degraded
// solutions (never cached in the first place).
package cache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sectorpack/internal/faultfs"
	"sectorpack/internal/model"
)

// snapshotMagic identifies a sectord cache snapshot file.
const snapshotMagic = "SPSNAP1\n"

// snapshotVersion is bumped whenever the byte layout below changes.
const snapshotVersion = 1

// maxSnapshotDim bounds per-entry slice lengths at load time; anything
// larger is a corrupt length field, not a real instance.
const maxSnapshotDim = 1 << 26

// SnapshotReport describes one load: how many entries were restored into
// the cache and how many were rejected (CRC mismatch, torn frame,
// structural nonsense).
type SnapshotReport struct {
	Restored int64
	Skipped  int64
}

// entrySnap is one entry in snapshot order.
type entrySnap struct {
	key string
	sol model.Solution
}

// snapshotEntries copies the live entries in LRU→MRU order, so restoring
// them in file order with putLocked (which pushes to the front) rebuilds
// the same recency order.
func (c *Cache) snapshotEntries() []entrySnap {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]entrySnap, 0, c.ll.Len())
	for e := c.ll.Back(); e != nil; e = e.Prev() {
		ent := e.Value.(*entry)
		out = append(out, entrySnap{key: ent.key, sol: ent.sol})
	}
	return out
}

// WriteSnapshot streams a snapshot of the current entries to w and returns
// the number of entries written. The entries are copied out under the lock
// first; the (possibly slow) writing happens unlocked, so a periodic flush
// never stalls serving.
func (c *Cache) WriteSnapshot(w io.Writer) (int, error) {
	entries := c.snapshotEntries()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return 0, err
	}
	var buf [8]byte
	u64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := u64(snapshotVersion); err != nil {
		return 0, err
	}
	if err := u64(fingerprintVersion); err != nil {
		return 0, err
	}
	if err := u64(uint64(len(entries))); err != nil {
		return 0, err
	}
	for _, e := range entries {
		payload := encodeSnapshotEntry(e.key, e.sol)
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(buf[:8]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(payload); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// SaveSnapshot writes the snapshot to path atomically through fsys
// (faultfs.WriteFileAtomic: temp file, fsync, rename, directory fsync). On
// any error the previous snapshot at path is untouched.
func (c *Cache) SaveSnapshot(fsys faultfs.FS, path string) (int, error) {
	var n int
	err := faultfs.WriteFileAtomic(fsys, path, func(w io.Writer) error {
		var werr error
		n, werr = c.WriteSnapshot(w)
		return werr
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// encodeSnapshotEntry renders one entry's frame payload: every field
// length-prefixed or fixed-width, little-endian, floats as IEEE-754 bits.
func encodeSnapshotEntry(key string, sol model.Solution) []byte {
	m, n := len(sol.Assignment.Orientation), len(sol.Assignment.Owner)
	size := 4 + len(key) + 4 + len(sol.Algorithm) + 8 + 8 + 4 + 8*m + 4 + 8*n
	b := make([]byte, 0, size)
	str := func(s string) {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	str(key)
	str(sol.Algorithm)
	b = binary.LittleEndian.AppendUint64(b, uint64(sol.Profit))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sol.UpperBound))
	b = binary.LittleEndian.AppendUint32(b, uint32(m))
	for _, a := range sol.Assignment.Orientation {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for _, o := range sol.Assignment.Owner {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(o)))
	}
	return b
}

// decodeSnapshotEntry parses and structurally validates one frame payload.
func decodeSnapshotEntry(b []byte) (string, model.Solution, error) {
	var sol model.Solution
	str := func() (string, error) {
		if len(b) < 4 {
			return "", fmt.Errorf("truncated length")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if n > uint32(len(b)) {
			return "", fmt.Errorf("string length %d beyond payload", n)
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	u64 := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("truncated u64")
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	u32 := func() (uint32, error) {
		if len(b) < 4 {
			return 0, fmt.Errorf("truncated u32")
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, nil
	}
	key, err := str()
	if err != nil {
		return "", sol, fmt.Errorf("key: %w", err)
	}
	if len(key) != 64 || !isHex(key) {
		return "", sol, fmt.Errorf("key %q is not a hex fingerprint", key)
	}
	if sol.Algorithm, err = str(); err != nil {
		return "", sol, fmt.Errorf("algorithm: %w", err)
	}
	profit, err := u64()
	if err != nil {
		return "", sol, err
	}
	sol.Profit = int64(profit)
	if sol.Profit < 0 {
		return "", sol, fmt.Errorf("negative profit %d", sol.Profit)
	}
	ubBits, err := u64()
	if err != nil {
		return "", sol, err
	}
	sol.UpperBound = math.Float64frombits(ubBits)
	if math.IsNaN(sol.UpperBound) || sol.UpperBound < 0 {
		return "", sol, fmt.Errorf("invalid upper bound %v", sol.UpperBound)
	}
	m, err := u32()
	if err != nil {
		return "", sol, err
	}
	if m > maxSnapshotDim {
		return "", sol, fmt.Errorf("orientation length %d beyond sanity cap", m)
	}
	as := &model.Assignment{Orientation: make([]float64, m)}
	for j := range as.Orientation {
		bits, err := u64()
		if err != nil {
			return "", sol, fmt.Errorf("orientation[%d]: %w", j, err)
		}
		as.Orientation[j] = math.Float64frombits(bits)
		if math.IsNaN(as.Orientation[j]) {
			return "", sol, fmt.Errorf("orientation[%d] is NaN", j)
		}
	}
	n, err := u32()
	if err != nil {
		return "", sol, err
	}
	if n > maxSnapshotDim {
		return "", sol, fmt.Errorf("owner length %d beyond sanity cap", n)
	}
	as.Owner = make([]int, n)
	for i := range as.Owner {
		v, err := u64()
		if err != nil {
			return "", sol, fmt.Errorf("owner[%d]: %w", i, err)
		}
		o := int64(v)
		if o != int64(model.Unassigned) && (o < 0 || o >= int64(m)) {
			return "", sol, fmt.Errorf("owner[%d] = %d out of range [0,%d)", i, o, m)
		}
		as.Owner[i] = int(o)
	}
	if len(b) != 0 {
		return "", sol, fmt.Errorf("%d trailing bytes in entry", len(b))
	}
	sol.Assignment = as
	return key, sol, nil
}

func isHex(s string) bool {
	for _, c := range s {
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// ReadSnapshot restores entries from r into the cache. The envelope (magic
// and both versions) must match exactly — a stale snapshot from an older
// layout or fingerprint scheme is rejected whole, because its keys could
// silently alias different solves. Per-entry failures (bad CRC, torn frame,
// structural nonsense) skip that entry and are counted in the report; a
// torn tail additionally counts every entry the header promised but the
// file no longer holds.
func (c *Cache) ReadSnapshot(r io.Reader) (SnapshotReport, error) {
	var rep SnapshotReport
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return rep, fmt.Errorf("snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return rep, fmt.Errorf("not a cache snapshot (bad magic %q)", magic)
	}
	var buf [8]byte
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	ver, err := u64()
	if err != nil {
		return rep, fmt.Errorf("snapshot header: %w", err)
	}
	if ver != snapshotVersion {
		return rep, fmt.Errorf("unsupported snapshot version %d (want %d)", ver, snapshotVersion)
	}
	fpv, err := u64()
	if err != nil {
		return rep, fmt.Errorf("snapshot header: %w", err)
	}
	if fpv != fingerprintVersion {
		return rep, fmt.Errorf("snapshot fingerprint version %d does not match this build's %d; keys would alias different solves", fpv, fingerprintVersion)
	}
	count, err := u64()
	if err != nil {
		return rep, fmt.Errorf("snapshot header: %w", err)
	}
	for k := uint64(0); k < count; k++ {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			// Torn tail: every remaining promised entry is lost.
			rep.Skipped += int64(count - k)
			break
		}
		plen := binary.LittleEndian.Uint32(buf[:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if plen > 16*maxSnapshotDim {
			rep.Skipped += int64(count - k)
			break // a corrupt length desynchronizes framing; stop here
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			rep.Skipped += int64(count - k)
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			// The frame boundary is still trustworthy (we read exactly plen
			// bytes), so a bit-rotted entry costs itself, not the rest.
			rep.Skipped++
			continue
		}
		key, sol, err := decodeSnapshotEntry(payload)
		if err != nil {
			rep.Skipped++
			continue
		}
		c.restore(key, sol)
		rep.Restored++
	}
	return rep, nil
}

// LoadSnapshot reads the snapshot at path through fsys into the cache. A
// missing file is not an error — it is a cold start — and returns a zero
// report with os.ErrNotExist wrapped for callers that care.
func (c *Cache) LoadSnapshot(fsys faultfs.FS, path string) (SnapshotReport, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return SnapshotReport{}, err
	}
	defer f.Close()
	return c.ReadSnapshot(f)
}

// restore inserts a snapshot entry. Restores count separately from live
// stores and never overwrite an entry a request already populated (the live
// entry is at least as fresh).
func (c *Cache) restore(key string, sol model.Solution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.putCountedLocked(key, sol, &c.restored)
}
